file(REMOVE_RECURSE
  "CMakeFiles/concurrent_writers.dir/concurrent_writers.cpp.o"
  "CMakeFiles/concurrent_writers.dir/concurrent_writers.cpp.o.d"
  "concurrent_writers"
  "concurrent_writers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_writers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
