# Empty dependencies file for concurrent_writers.
# This may be replaced when dependencies are built.
