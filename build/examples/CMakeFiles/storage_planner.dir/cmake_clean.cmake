file(REMOVE_RECURSE
  "CMakeFiles/storage_planner.dir/storage_planner.cpp.o"
  "CMakeFiles/storage_planner.dir/storage_planner.cpp.o.d"
  "storage_planner"
  "storage_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
