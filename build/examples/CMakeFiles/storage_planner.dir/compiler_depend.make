# Empty compiler generated dependencies file for storage_planner.
# This may be replaced when dependencies are built.
