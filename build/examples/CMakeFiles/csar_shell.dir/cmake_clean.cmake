file(REMOVE_RECURSE
  "CMakeFiles/csar_shell.dir/csar_shell.cpp.o"
  "CMakeFiles/csar_shell.dir/csar_shell.cpp.o.d"
  "csar_shell"
  "csar_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
