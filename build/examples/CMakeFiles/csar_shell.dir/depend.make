# Empty dependencies file for csar_shell.
# This may be replaced when dependencies are built.
