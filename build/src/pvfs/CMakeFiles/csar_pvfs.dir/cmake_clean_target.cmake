file(REMOVE_RECURSE
  "libcsar_pvfs.a"
)
