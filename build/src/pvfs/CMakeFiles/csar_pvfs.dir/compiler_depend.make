# Empty compiler generated dependencies file for csar_pvfs.
# This may be replaced when dependencies are built.
