file(REMOVE_RECURSE
  "CMakeFiles/csar_pvfs.dir/client.cpp.o"
  "CMakeFiles/csar_pvfs.dir/client.cpp.o.d"
  "CMakeFiles/csar_pvfs.dir/io_server.cpp.o"
  "CMakeFiles/csar_pvfs.dir/io_server.cpp.o.d"
  "CMakeFiles/csar_pvfs.dir/layout.cpp.o"
  "CMakeFiles/csar_pvfs.dir/layout.cpp.o.d"
  "libcsar_pvfs.a"
  "libcsar_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
