file(REMOVE_RECURSE
  "libcsar_sim.a"
)
