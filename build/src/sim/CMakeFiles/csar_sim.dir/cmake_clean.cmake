file(REMOVE_RECURSE
  "CMakeFiles/csar_sim.dir/simulation.cpp.o"
  "CMakeFiles/csar_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/csar_sim.dir/sync.cpp.o"
  "CMakeFiles/csar_sim.dir/sync.cpp.o.d"
  "libcsar_sim.a"
  "libcsar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
