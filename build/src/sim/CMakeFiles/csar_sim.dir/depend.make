# Empty dependencies file for csar_sim.
# This may be replaced when dependencies are built.
