file(REMOVE_RECURSE
  "libcsar_mpiio.a"
)
