file(REMOVE_RECURSE
  "CMakeFiles/csar_mpiio.dir/collective.cpp.o"
  "CMakeFiles/csar_mpiio.dir/collective.cpp.o.d"
  "libcsar_mpiio.a"
  "libcsar_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
