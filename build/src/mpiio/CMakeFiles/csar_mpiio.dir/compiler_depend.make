# Empty compiler generated dependencies file for csar_mpiio.
# This may be replaced when dependencies are built.
