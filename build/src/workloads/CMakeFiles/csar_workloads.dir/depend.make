# Empty dependencies file for csar_workloads.
# This may be replaced when dependencies are built.
