file(REMOVE_RECURSE
  "CMakeFiles/csar_workloads.dir/trace.cpp.o"
  "CMakeFiles/csar_workloads.dir/trace.cpp.o.d"
  "CMakeFiles/csar_workloads.dir/workloads.cpp.o"
  "CMakeFiles/csar_workloads.dir/workloads.cpp.o.d"
  "libcsar_workloads.a"
  "libcsar_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
