file(REMOVE_RECURSE
  "libcsar_workloads.a"
)
