# CMake generated Testfile for 
# Source directory: /root/repo/src/localfs
# Build directory: /root/repo/build/src/localfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
