file(REMOVE_RECURSE
  "CMakeFiles/csar_localfs.dir/local_fs.cpp.o"
  "CMakeFiles/csar_localfs.dir/local_fs.cpp.o.d"
  "libcsar_localfs.a"
  "libcsar_localfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_localfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
