file(REMOVE_RECURSE
  "libcsar_localfs.a"
)
