# Empty compiler generated dependencies file for csar_localfs.
# This may be replaced when dependencies are built.
