# Empty dependencies file for csar_raid.
# This may be replaced when dependencies are built.
