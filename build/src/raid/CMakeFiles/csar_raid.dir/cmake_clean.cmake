file(REMOVE_RECURSE
  "CMakeFiles/csar_raid.dir/csar_fs.cpp.o"
  "CMakeFiles/csar_raid.dir/csar_fs.cpp.o.d"
  "CMakeFiles/csar_raid.dir/recovery.cpp.o"
  "CMakeFiles/csar_raid.dir/recovery.cpp.o.d"
  "CMakeFiles/csar_raid.dir/scrub.cpp.o"
  "CMakeFiles/csar_raid.dir/scrub.cpp.o.d"
  "libcsar_raid.a"
  "libcsar_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
