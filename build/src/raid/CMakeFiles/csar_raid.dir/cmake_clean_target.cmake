file(REMOVE_RECURSE
  "libcsar_raid.a"
)
