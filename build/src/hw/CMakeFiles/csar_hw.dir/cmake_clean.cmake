file(REMOVE_RECURSE
  "CMakeFiles/csar_hw.dir/page_cache.cpp.o"
  "CMakeFiles/csar_hw.dir/page_cache.cpp.o.d"
  "CMakeFiles/csar_hw.dir/profiles.cpp.o"
  "CMakeFiles/csar_hw.dir/profiles.cpp.o.d"
  "libcsar_hw.a"
  "libcsar_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
