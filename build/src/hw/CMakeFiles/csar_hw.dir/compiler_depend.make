# Empty compiler generated dependencies file for csar_hw.
# This may be replaced when dependencies are built.
