file(REMOVE_RECURSE
  "libcsar_hw.a"
)
