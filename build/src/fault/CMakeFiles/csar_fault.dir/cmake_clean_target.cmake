file(REMOVE_RECURSE
  "libcsar_fault.a"
)
