# Empty dependencies file for csar_fault.
# This may be replaced when dependencies are built.
