file(REMOVE_RECURSE
  "CMakeFiles/csar_fault.dir/fault.cpp.o"
  "CMakeFiles/csar_fault.dir/fault.cpp.o.d"
  "CMakeFiles/csar_fault.dir/storm.cpp.o"
  "CMakeFiles/csar_fault.dir/storm.cpp.o.d"
  "libcsar_fault.a"
  "libcsar_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
