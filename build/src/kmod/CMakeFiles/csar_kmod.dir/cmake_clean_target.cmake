file(REMOVE_RECURSE
  "libcsar_kmod.a"
)
