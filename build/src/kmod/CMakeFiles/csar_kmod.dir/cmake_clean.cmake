file(REMOVE_RECURSE
  "CMakeFiles/csar_kmod.dir/mounted_client.cpp.o"
  "CMakeFiles/csar_kmod.dir/mounted_client.cpp.o.d"
  "libcsar_kmod.a"
  "libcsar_kmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_kmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
