# Empty dependencies file for csar_kmod.
# This may be replaced when dependencies are built.
