# Empty dependencies file for csar_common.
# This may be replaced when dependencies are built.
