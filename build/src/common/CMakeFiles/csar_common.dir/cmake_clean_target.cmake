file(REMOVE_RECURSE
  "libcsar_common.a"
)
