file(REMOVE_RECURSE
  "CMakeFiles/csar_common.dir/buffer.cpp.o"
  "CMakeFiles/csar_common.dir/buffer.cpp.o.d"
  "CMakeFiles/csar_common.dir/interval_set.cpp.o"
  "CMakeFiles/csar_common.dir/interval_set.cpp.o.d"
  "CMakeFiles/csar_common.dir/log.cpp.o"
  "CMakeFiles/csar_common.dir/log.cpp.o.d"
  "CMakeFiles/csar_common.dir/parity.cpp.o"
  "CMakeFiles/csar_common.dir/parity.cpp.o.d"
  "CMakeFiles/csar_common.dir/result.cpp.o"
  "CMakeFiles/csar_common.dir/result.cpp.o.d"
  "CMakeFiles/csar_common.dir/rng.cpp.o"
  "CMakeFiles/csar_common.dir/rng.cpp.o.d"
  "CMakeFiles/csar_common.dir/table.cpp.o"
  "CMakeFiles/csar_common.dir/table.cpp.o.d"
  "CMakeFiles/csar_common.dir/units.cpp.o"
  "CMakeFiles/csar_common.dir/units.cpp.o.d"
  "libcsar_common.a"
  "libcsar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
