# Empty dependencies file for csar_report.
# This may be replaced when dependencies are built.
