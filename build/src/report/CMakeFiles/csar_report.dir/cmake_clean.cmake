file(REMOVE_RECURSE
  "CMakeFiles/csar_report.dir/report.cpp.o"
  "CMakeFiles/csar_report.dir/report.cpp.o.d"
  "libcsar_report.a"
  "libcsar_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csar_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
