file(REMOVE_RECURSE
  "libcsar_report.a"
)
