# Empty dependencies file for raid_error_paths_test.
# This may be replaced when dependencies are built.
