file(REMOVE_RECURSE
  "CMakeFiles/raid_error_paths_test.dir/raid_error_paths_test.cpp.o"
  "CMakeFiles/raid_error_paths_test.dir/raid_error_paths_test.cpp.o.d"
  "raid_error_paths_test"
  "raid_error_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_error_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
