file(REMOVE_RECURSE
  "CMakeFiles/fault_storm_test.dir/fault_storm_test.cpp.o"
  "CMakeFiles/fault_storm_test.dir/fault_storm_test.cpp.o.d"
  "fault_storm_test"
  "fault_storm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_storm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
