
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_storm_test.cpp" "tests/CMakeFiles/fault_storm_test.dir/fault_storm_test.cpp.o" "gcc" "tests/CMakeFiles/fault_storm_test.dir/fault_storm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/csar_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/csar_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/csar_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/localfs/CMakeFiles/csar_localfs.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/csar_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/csar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
