# Empty dependencies file for fault_storm_test.
# This may be replaced when dependencies are built.
