# Empty compiler generated dependencies file for common_units_test.
# This may be replaced when dependencies are built.
