file(REMOVE_RECURSE
  "CMakeFiles/common_units_test.dir/common_units_test.cpp.o"
  "CMakeFiles/common_units_test.dir/common_units_test.cpp.o.d"
  "common_units_test"
  "common_units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
