file(REMOVE_RECURSE
  "CMakeFiles/localfs_test.dir/localfs_test.cpp.o"
  "CMakeFiles/localfs_test.dir/localfs_test.cpp.o.d"
  "localfs_test"
  "localfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
