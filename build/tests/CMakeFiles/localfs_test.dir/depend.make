# Empty dependencies file for localfs_test.
# This may be replaced when dependencies are built.
