file(REMOVE_RECURSE
  "CMakeFiles/common_buffer_test.dir/common_buffer_test.cpp.o"
  "CMakeFiles/common_buffer_test.dir/common_buffer_test.cpp.o.d"
  "common_buffer_test"
  "common_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
