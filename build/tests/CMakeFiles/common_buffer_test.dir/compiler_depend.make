# Empty compiler generated dependencies file for common_buffer_test.
# This may be replaced when dependencies are built.
