file(REMOVE_RECURSE
  "CMakeFiles/raid_degraded_write_test.dir/raid_degraded_write_test.cpp.o"
  "CMakeFiles/raid_degraded_write_test.dir/raid_degraded_write_test.cpp.o.d"
  "raid_degraded_write_test"
  "raid_degraded_write_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_degraded_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
