# Empty dependencies file for raid_degraded_write_test.
# This may be replaced when dependencies are built.
