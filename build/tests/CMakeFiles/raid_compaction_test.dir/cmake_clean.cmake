file(REMOVE_RECURSE
  "CMakeFiles/raid_compaction_test.dir/raid_compaction_test.cpp.o"
  "CMakeFiles/raid_compaction_test.dir/raid_compaction_test.cpp.o.d"
  "raid_compaction_test"
  "raid_compaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
