# Empty compiler generated dependencies file for raid_compaction_test.
# This may be replaced when dependencies are built.
