# Empty dependencies file for pvfs_system_test.
# This may be replaced when dependencies are built.
