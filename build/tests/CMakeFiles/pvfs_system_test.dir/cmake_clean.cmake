file(REMOVE_RECURSE
  "CMakeFiles/pvfs_system_test.dir/pvfs_system_test.cpp.o"
  "CMakeFiles/pvfs_system_test.dir/pvfs_system_test.cpp.o.d"
  "pvfs_system_test"
  "pvfs_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
