file(REMOVE_RECURSE
  "CMakeFiles/pvfs_io_server_test.dir/pvfs_io_server_test.cpp.o"
  "CMakeFiles/pvfs_io_server_test.dir/pvfs_io_server_test.cpp.o.d"
  "pvfs_io_server_test"
  "pvfs_io_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_io_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
