# Empty compiler generated dependencies file for pvfs_io_server_test.
# This may be replaced when dependencies are built.
