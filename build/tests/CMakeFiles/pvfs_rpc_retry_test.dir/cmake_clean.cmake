file(REMOVE_RECURSE
  "CMakeFiles/pvfs_rpc_retry_test.dir/pvfs_rpc_retry_test.cpp.o"
  "CMakeFiles/pvfs_rpc_retry_test.dir/pvfs_rpc_retry_test.cpp.o.d"
  "pvfs_rpc_retry_test"
  "pvfs_rpc_retry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_rpc_retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
