# Empty dependencies file for pvfs_rpc_retry_test.
# This may be replaced when dependencies are built.
