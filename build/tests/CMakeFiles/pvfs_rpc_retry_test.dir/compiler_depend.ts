# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pvfs_rpc_retry_test.
