# Empty dependencies file for kmod_test.
# This may be replaced when dependencies are built.
