file(REMOVE_RECURSE
  "CMakeFiles/kmod_test.dir/kmod_test.cpp.o"
  "CMakeFiles/kmod_test.dir/kmod_test.cpp.o.d"
  "kmod_test"
  "kmod_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
