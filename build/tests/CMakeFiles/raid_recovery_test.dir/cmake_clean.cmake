file(REMOVE_RECURSE
  "CMakeFiles/raid_recovery_test.dir/raid_recovery_test.cpp.o"
  "CMakeFiles/raid_recovery_test.dir/raid_recovery_test.cpp.o.d"
  "raid_recovery_test"
  "raid_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
