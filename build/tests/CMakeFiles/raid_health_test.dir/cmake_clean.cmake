file(REMOVE_RECURSE
  "CMakeFiles/raid_health_test.dir/raid_health_test.cpp.o"
  "CMakeFiles/raid_health_test.dir/raid_health_test.cpp.o.d"
  "raid_health_test"
  "raid_health_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_health_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
