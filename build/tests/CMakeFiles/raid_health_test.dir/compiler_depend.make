# Empty compiler generated dependencies file for raid_health_test.
# This may be replaced when dependencies are built.
