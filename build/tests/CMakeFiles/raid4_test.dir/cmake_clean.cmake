file(REMOVE_RECURSE
  "CMakeFiles/raid4_test.dir/raid4_test.cpp.o"
  "CMakeFiles/raid4_test.dir/raid4_test.cpp.o.d"
  "raid4_test"
  "raid4_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
