# Empty compiler generated dependencies file for raid4_test.
# This may be replaced when dependencies are built.
