file(REMOVE_RECURSE
  "CMakeFiles/mpiio_test.dir/mpiio_test.cpp.o"
  "CMakeFiles/mpiio_test.dir/mpiio_test.cpp.o.d"
  "mpiio_test"
  "mpiio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
