# Empty compiler generated dependencies file for raid_lifecycle_test.
# This may be replaced when dependencies are built.
