file(REMOVE_RECURSE
  "CMakeFiles/raid_lifecycle_test.dir/raid_lifecycle_test.cpp.o"
  "CMakeFiles/raid_lifecycle_test.dir/raid_lifecycle_test.cpp.o.d"
  "raid_lifecycle_test"
  "raid_lifecycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
