# Empty compiler generated dependencies file for common_interval_test.
# This may be replaced when dependencies are built.
