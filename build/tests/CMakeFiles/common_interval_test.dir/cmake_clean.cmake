file(REMOVE_RECURSE
  "CMakeFiles/common_interval_test.dir/common_interval_test.cpp.o"
  "CMakeFiles/common_interval_test.dir/common_interval_test.cpp.o.d"
  "common_interval_test"
  "common_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
