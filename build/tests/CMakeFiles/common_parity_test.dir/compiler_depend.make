# Empty compiler generated dependencies file for common_parity_test.
# This may be replaced when dependencies are built.
