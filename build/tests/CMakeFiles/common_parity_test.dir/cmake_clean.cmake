file(REMOVE_RECURSE
  "CMakeFiles/common_parity_test.dir/common_parity_test.cpp.o"
  "CMakeFiles/common_parity_test.dir/common_parity_test.cpp.o.d"
  "common_parity_test"
  "common_parity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
