file(REMOVE_RECURSE
  "CMakeFiles/raid_balanced_read_test.dir/raid_balanced_read_test.cpp.o"
  "CMakeFiles/raid_balanced_read_test.dir/raid_balanced_read_test.cpp.o.d"
  "raid_balanced_read_test"
  "raid_balanced_read_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_balanced_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
