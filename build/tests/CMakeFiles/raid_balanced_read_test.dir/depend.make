# Empty dependencies file for raid_balanced_read_test.
# This may be replaced when dependencies are built.
