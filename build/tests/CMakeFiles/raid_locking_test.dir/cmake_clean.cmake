file(REMOVE_RECURSE
  "CMakeFiles/raid_locking_test.dir/raid_locking_test.cpp.o"
  "CMakeFiles/raid_locking_test.dir/raid_locking_test.cpp.o.d"
  "raid_locking_test"
  "raid_locking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_locking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
