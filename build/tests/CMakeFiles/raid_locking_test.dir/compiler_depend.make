# Empty compiler generated dependencies file for raid_locking_test.
# This may be replaced when dependencies are built.
