file(REMOVE_RECURSE
  "CMakeFiles/raid_schemes_test.dir/raid_schemes_test.cpp.o"
  "CMakeFiles/raid_schemes_test.dir/raid_schemes_test.cpp.o.d"
  "raid_schemes_test"
  "raid_schemes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
