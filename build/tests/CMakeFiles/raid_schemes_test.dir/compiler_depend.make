# Empty compiler generated dependencies file for raid_schemes_test.
# This may be replaced when dependencies are built.
