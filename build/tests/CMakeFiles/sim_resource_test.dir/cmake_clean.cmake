file(REMOVE_RECURSE
  "CMakeFiles/sim_resource_test.dir/sim_resource_test.cpp.o"
  "CMakeFiles/sim_resource_test.dir/sim_resource_test.cpp.o.d"
  "sim_resource_test"
  "sim_resource_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
