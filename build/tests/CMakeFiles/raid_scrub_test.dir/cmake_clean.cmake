file(REMOVE_RECURSE
  "CMakeFiles/raid_scrub_test.dir/raid_scrub_test.cpp.o"
  "CMakeFiles/raid_scrub_test.dir/raid_scrub_test.cpp.o.d"
  "raid_scrub_test"
  "raid_scrub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_scrub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
