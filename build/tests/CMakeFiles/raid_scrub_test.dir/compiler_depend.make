# Empty compiler generated dependencies file for raid_scrub_test.
# This may be replaced when dependencies are built.
