# Empty dependencies file for pvfs_layout_test.
# This may be replaced when dependencies are built.
