file(REMOVE_RECURSE
  "CMakeFiles/pvfs_layout_test.dir/pvfs_layout_test.cpp.o"
  "CMakeFiles/pvfs_layout_test.dir/pvfs_layout_test.cpp.o.d"
  "pvfs_layout_test"
  "pvfs_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
