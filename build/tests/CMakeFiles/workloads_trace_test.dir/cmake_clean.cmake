file(REMOVE_RECURSE
  "CMakeFiles/workloads_trace_test.dir/workloads_trace_test.cpp.o"
  "CMakeFiles/workloads_trace_test.dir/workloads_trace_test.cpp.o.d"
  "workloads_trace_test"
  "workloads_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
