file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_parity_kernel.dir/bench/bench_ablate_parity_kernel.cpp.o"
  "CMakeFiles/bench_ablate_parity_kernel.dir/bench/bench_ablate_parity_kernel.cpp.o.d"
  "bench/bench_ablate_parity_kernel"
  "bench/bench_ablate_parity_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_parity_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
