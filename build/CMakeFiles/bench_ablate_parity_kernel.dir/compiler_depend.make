# Empty compiler generated dependencies file for bench_ablate_parity_kernel.
# This may be replaced when dependencies are built.
