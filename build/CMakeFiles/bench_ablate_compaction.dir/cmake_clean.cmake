file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_compaction.dir/bench/bench_ablate_compaction.cpp.o"
  "CMakeFiles/bench_ablate_compaction.dir/bench/bench_ablate_compaction.cpp.o.d"
  "bench/bench_ablate_compaction"
  "bench/bench_ablate_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
