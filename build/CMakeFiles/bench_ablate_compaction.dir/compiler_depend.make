# Empty compiler generated dependencies file for bench_ablate_compaction.
# This may be replaced when dependencies are built.
