# Empty dependencies file for bench_fig5_romio.
# This may be replaced when dependencies are built.
