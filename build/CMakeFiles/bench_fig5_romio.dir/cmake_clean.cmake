file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_romio.dir/bench/bench_fig5_romio.cpp.o"
  "CMakeFiles/bench_fig5_romio.dir/bench/bench_fig5_romio.cpp.o.d"
  "bench/bench_fig5_romio"
  "bench/bench_fig5_romio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_romio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
