file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_storage.dir/bench/bench_table2_storage.cpp.o"
  "CMakeFiles/bench_table2_storage.dir/bench/bench_table2_storage.cpp.o.d"
  "bench/bench_table2_storage"
  "bench/bench_table2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
