file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_btio_classb.dir/bench/bench_fig6_btio_classb.cpp.o"
  "CMakeFiles/bench_fig6_btio_classb.dir/bench/bench_fig6_btio_classb.cpp.o.d"
  "bench/bench_fig6_btio_classb"
  "bench/bench_fig6_btio_classb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_btio_classb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
