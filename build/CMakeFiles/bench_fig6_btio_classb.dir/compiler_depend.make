# Empty compiler generated dependencies file for bench_fig6_btio_classb.
# This may be replaced when dependencies are built.
