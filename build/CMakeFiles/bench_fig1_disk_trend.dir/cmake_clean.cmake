file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_disk_trend.dir/bench/bench_fig1_disk_trend.cpp.o"
  "CMakeFiles/bench_fig1_disk_trend.dir/bench/bench_fig1_disk_trend.cpp.o.d"
  "bench/bench_fig1_disk_trend"
  "bench/bench_fig1_disk_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_disk_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
