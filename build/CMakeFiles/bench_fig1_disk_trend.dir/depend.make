# Empty dependencies file for bench_fig1_disk_trend.
# This may be replaced when dependencies are built.
