file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_raid4.dir/bench/bench_ablate_raid4.cpp.o"
  "CMakeFiles/bench_ablate_raid4.dir/bench/bench_ablate_raid4.cpp.o.d"
  "bench/bench_ablate_raid4"
  "bench/bench_ablate_raid4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_raid4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
