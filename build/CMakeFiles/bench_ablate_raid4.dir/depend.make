# Empty dependencies file for bench_ablate_raid4.
# This may be replaced when dependencies are built.
