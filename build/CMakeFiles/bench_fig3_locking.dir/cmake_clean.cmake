file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_locking.dir/bench/bench_fig3_locking.cpp.o"
  "CMakeFiles/bench_fig3_locking.dir/bench/bench_fig3_locking.cpp.o.d"
  "bench/bench_fig3_locking"
  "bench/bench_fig3_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
