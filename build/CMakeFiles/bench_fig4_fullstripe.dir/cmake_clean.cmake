file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fullstripe.dir/bench/bench_fig4_fullstripe.cpp.o"
  "CMakeFiles/bench_fig4_fullstripe.dir/bench/bench_fig4_fullstripe.cpp.o.d"
  "bench/bench_fig4_fullstripe"
  "bench/bench_fig4_fullstripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fullstripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
