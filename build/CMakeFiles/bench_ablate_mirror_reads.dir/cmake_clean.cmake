file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_mirror_reads.dir/bench/bench_ablate_mirror_reads.cpp.o"
  "CMakeFiles/bench_ablate_mirror_reads.dir/bench/bench_ablate_mirror_reads.cpp.o.d"
  "bench/bench_ablate_mirror_reads"
  "bench/bench_ablate_mirror_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_mirror_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
