# Empty dependencies file for bench_ablate_mirror_reads.
# This may be replaced when dependencies are built.
