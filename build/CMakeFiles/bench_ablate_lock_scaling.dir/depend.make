# Empty dependencies file for bench_ablate_lock_scaling.
# This may be replaced when dependencies are built.
