file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_lock_scaling.dir/bench/bench_ablate_lock_scaling.cpp.o"
  "CMakeFiles/bench_ablate_lock_scaling.dir/bench/bench_ablate_lock_scaling.cpp.o.d"
  "bench/bench_ablate_lock_scaling"
  "bench/bench_ablate_lock_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_lock_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
