file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_stripe_unit.dir/bench/bench_ablate_stripe_unit.cpp.o"
  "CMakeFiles/bench_ablate_stripe_unit.dir/bench/bench_ablate_stripe_unit.cpp.o.d"
  "bench/bench_ablate_stripe_unit"
  "bench/bench_ablate_stripe_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_stripe_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
