# Empty dependencies file for bench_ablate_stripe_unit.
# This may be replaced when dependencies are built.
