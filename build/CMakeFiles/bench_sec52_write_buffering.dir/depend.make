# Empty dependencies file for bench_sec52_write_buffering.
# This may be replaced when dependencies are built.
