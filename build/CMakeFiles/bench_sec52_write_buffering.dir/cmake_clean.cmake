file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_write_buffering.dir/bench/bench_sec52_write_buffering.cpp.o"
  "CMakeFiles/bench_sec52_write_buffering.dir/bench/bench_sec52_write_buffering.cpp.o.d"
  "bench/bench_sec52_write_buffering"
  "bench/bench_sec52_write_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_write_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
