file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_fault_storm.dir/bench/bench_ablate_fault_storm.cpp.o"
  "CMakeFiles/bench_ablate_fault_storm.dir/bench/bench_ablate_fault_storm.cpp.o.d"
  "bench/bench_ablate_fault_storm"
  "bench/bench_ablate_fault_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_fault_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
