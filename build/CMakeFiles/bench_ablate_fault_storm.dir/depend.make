# Empty dependencies file for bench_ablate_fault_storm.
# This may be replaced when dependencies are built.
