file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_smallwrite.dir/bench/bench_fig4_smallwrite.cpp.o"
  "CMakeFiles/bench_fig4_smallwrite.dir/bench/bench_fig4_smallwrite.cpp.o.d"
  "bench/bench_fig4_smallwrite"
  "bench/bench_fig4_smallwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_smallwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
