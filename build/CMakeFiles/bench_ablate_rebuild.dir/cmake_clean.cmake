file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_rebuild.dir/bench/bench_ablate_rebuild.cpp.o"
  "CMakeFiles/bench_ablate_rebuild.dir/bench/bench_ablate_rebuild.cpp.o.d"
  "bench/bench_ablate_rebuild"
  "bench/bench_ablate_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
