# Empty compiler generated dependencies file for bench_ablate_rebuild.
# This may be replaced when dependencies are built.
