# Empty dependencies file for bench_fig7_btio_classc.
# This may be replaced when dependencies are built.
