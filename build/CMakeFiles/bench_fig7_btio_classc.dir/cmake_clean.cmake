file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_btio_classc.dir/bench/bench_fig7_btio_classc.cpp.o"
  "CMakeFiles/bench_fig7_btio_classc.dir/bench/bench_fig7_btio_classc.cpp.o.d"
  "bench/bench_fig7_btio_classc"
  "bench/bench_fig7_btio_classc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_btio_classc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
