# Empty compiler generated dependencies file for bench_fig8_apps.
# This may be replaced when dependencies are built.
