file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_apps.dir/bench/bench_fig8_apps.cpp.o"
  "CMakeFiles/bench_fig8_apps.dir/bench/bench_fig8_apps.cpp.o.d"
  "bench/bench_fig8_apps"
  "bench/bench_fig8_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
