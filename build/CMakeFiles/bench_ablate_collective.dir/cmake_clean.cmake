file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_collective.dir/bench/bench_ablate_collective.cpp.o"
  "CMakeFiles/bench_ablate_collective.dir/bench/bench_ablate_collective.cpp.o.d"
  "bench/bench_ablate_collective"
  "bench/bench_ablate_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
