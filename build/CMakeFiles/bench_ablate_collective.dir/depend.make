# Empty dependencies file for bench_ablate_collective.
# This may be replaced when dependencies are built.
