#include "codec.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CSAR_CODEC_X86 1
#else
#define CSAR_CODEC_X86 0
#endif

namespace csar {

// --- XOR kernels (moved from common/parity.cpp) ---

void xor_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  assert(src.size() <= dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
}

void xor_words_single(std::span<std::byte> dst,
                      std::span<const std::byte> src) {
  assert(src.size() <= dst.size());
  std::size_t n = src.size();
  std::size_t i = 0;
  constexpr std::size_t W = sizeof(std::uint64_t);
  for (; i + W <= n; i += W) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst.data() + i, W);
    std::memcpy(&b, src.data() + i, W);
    a ^= b;
    std::memcpy(dst.data() + i, &a, W);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void xor_words(std::span<std::byte> dst, std::span<const std::byte> src) {
  assert(src.size() <= dst.size());
  const std::size_t n = src.size();
  std::size_t i = 0;
  constexpr std::size_t W = sizeof(std::uint64_t);
  // 32-byte blocks (4 independent words per iteration) measure fastest
  // here: wide enough to keep multiple XORs in flight, narrow enough that
  // GCC still vectorizes the block instead of spilling the local arrays.
  constexpr std::size_t B = 4 * W;
  for (; i + B <= n; i += B) {
    std::uint64_t a[4];
    std::uint64_t b[4];
    std::memcpy(a, dst.data() + i, B);
    std::memcpy(b, src.data() + i, B);
    a[0] ^= b[0];
    a[1] ^= b[1];
    a[2] ^= b[2];
    a[3] ^= b[3];
    std::memcpy(dst.data() + i, a, B);
  }
  for (; i + W <= n; i += W) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst.data() + i, W);
    std::memcpy(&b, src.data() + i, W);
    a ^= b;
    std::memcpy(dst.data() + i, &a, W);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void xor_accumulate(std::span<std::byte> dst,
                    std::span<const std::span<const std::byte>> sources) {
  for (const auto& s : sources) {
    xor_words(dst, s.subspan(0, std::min(s.size(), dst.size())));
  }
}

// --- GF(2^8) region kernels ---

namespace {

/// One 256-entry product row for a fixed constant c: row[b] = c * b.
/// Building it costs 256 table walks; the scalar region loop then does one
/// load per byte instead of two log lookups and an exp lookup.
struct MulRow {
  std::uint8_t row[256];
  explicit MulRow(std::uint8_t c) {
    row[0] = 0;
    if (c == 0) {
      std::memset(row, 0, sizeof(row));
      return;
    }
    const std::uint32_t lc = gf_log[c];
    for (std::uint32_t b = 1; b < 256; ++b) {
      row[b] = gf_exp[lc + gf_log[b]];
    }
  }
};

void muladd_scalar(std::byte* dst, const std::byte* src, std::size_t n,
                   std::uint8_t c) {
  const MulRow t(c);
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] ^= static_cast<std::byte>(
        t.row[static_cast<std::uint8_t>(src[i])]);
  }
}

void mul_scalar(std::byte* dst, const std::byte* src, std::size_t n,
                std::uint8_t c) {
  const MulRow t(c);
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::byte>(t.row[static_cast<std::uint8_t>(src[i])]);
  }
}

#if CSAR_CODEC_X86

/// Split nibble tables for the PSHUFB kernel: lo[v] = c*v, hi[v] = c*(v<<4)
/// for v in [0,16). A product byte is lo[b & 0xF] ^ hi[b >> 4] because GF
/// multiplication distributes over the XOR split b = (b & 0xF) ^ (b & 0xF0).
struct NibbleTables {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
  explicit NibbleTables(std::uint8_t c) {
    for (std::uint32_t v = 0; v < 16; ++v) {
      lo[v] = gf_mul(c, static_cast<std::uint8_t>(v));
      hi[v] = gf_mul(c, static_cast<std::uint8_t>(v << 4));
    }
  }
};

__attribute__((target("ssse3"))) void muladd_ssse3(std::byte* dst,
                                                   const std::byte* src,
                                                   std::size_t n,
                                                   std::uint8_t c) {
  const NibbleTables t(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    const __m128i prod = _mm_xor_si128(pl, ph);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, prod));
  }
  if (i < n) muladd_scalar(dst + i, src + i, n - i, c);
}

__attribute__((target("avx2"))) void muladd_avx2(std::byte* dst,
                                                 const std::byte* src,
                                                 std::size_t n,
                                                 std::uint8_t c) {
  const NibbleTables t(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    const __m256i prod = _mm256_xor_si256(pl, ph);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, prod));
  }
  if (i < n) muladd_scalar(dst + i, src + i, n - i, c);
}

#endif  // CSAR_CODEC_X86

using MulAddFn = void (*)(std::byte*, const std::byte*, std::size_t,
                          std::uint8_t);

struct Dispatch {
  MulAddFn muladd = &muladd_scalar;
  const char* name = "scalar";
};

/// Single runtime-dispatch point for the codec: resolved once, at first
/// use, from CPU feature bits. All variants are bit-identical (GF and XOR
/// arithmetic are exact), so the choice never affects simulated results.
const Dispatch& dispatch() {
  static const Dispatch d = [] {
    Dispatch r;
#if CSAR_CODEC_X86
    if (__builtin_cpu_supports("avx2")) {
      r.muladd = &muladd_avx2;
      r.name = "avx2";
    } else if (__builtin_cpu_supports("ssse3")) {
      r.muladd = &muladd_ssse3;
      r.name = "ssse3";
    }
#endif
    return r;
  }();
  return d;
}

}  // namespace

const char* codec_dispatch_name() { return dispatch().name; }

void gf_muladd_region(std::span<std::byte> dst, std::span<const std::byte> src,
                      std::uint8_t c) {
  assert(src.size() <= dst.size());
  if (c == 0) return;
  if (c == 1) {
    xor_words(dst, src);
    return;
  }
  dispatch().muladd(dst.data(), src.data(), src.size(), c);
}

void gf_mul_region(std::span<std::byte> dst, std::span<const std::byte> src,
                   std::uint8_t c) {
  assert(src.size() <= dst.size());
  if (c == 0) {
    std::memset(dst.data(), 0, src.size());
    return;
  }
  if (c == 1) {
    std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  // dst = c*src as muladd into a zeroed destination keeps one dispatch
  // point; the memset is cheap next to the multiply.
  std::memset(dst.data(), 0, src.size());
  dispatch().muladd(dst.data(), src.data(), src.size(), c);
}

void gf_muladd_region_scalar(std::span<std::byte> dst,
                             std::span<const std::byte> src, std::uint8_t c) {
  assert(src.size() <= dst.size());
  if (c == 0) return;
  muladd_scalar(dst.data(), src.data(), src.size(), c);
}

void gf_mul_region_scalar(std::span<std::byte> dst,
                          std::span<const std::byte> src, std::uint8_t c) {
  assert(src.size() <= dst.size());
  mul_scalar(dst.data(), src.data(), src.size(), c);
}

// --- Reed-Solomon coefficients ---

std::uint8_t rs_coeff(CodeSpec spec, std::uint32_t j, std::uint32_t i) {
  assert(spec.k >= 1 && spec.m >= 1 && spec.fragments() <= kMaxCodeFragments);
  assert(j < spec.m && i < spec.k);
  // Cauchy matrix over the disjoint index sets x_j = k+j, y_i = i, with
  // column i scaled by (x_0 ^ y_i) so row 0 is all ones (coding fragment 0
  // == XOR parity; RS(k,1) is byte-identical to the RAID5 parity path).
  const std::uint8_t xj = static_cast<std::uint8_t>(spec.k + j);
  const std::uint8_t yi = static_cast<std::uint8_t>(i);
  const std::uint8_t cauchy = gf_inv(xj ^ yi);
  const std::uint8_t scale = static_cast<std::uint8_t>(spec.k) ^ yi;
  return gf_mul(cauchy, scale);
}

std::vector<std::uint8_t> rs_reconstruct_coeffs(
    CodeSpec spec, std::span<const std::uint32_t> present,
    std::uint32_t target) {
  const std::uint32_t k = spec.k;
  if (present.size() != k || target >= spec.fragments()) std::abort();

  // Trivial selector when the target is itself present.
  for (std::uint32_t r = 0; r < k; ++r) {
    if (present[r] == target) {
      std::vector<std::uint8_t> sel(k, 0);
      sel[r] = 1;
      return sel;
    }
  }

  // Row r of A is the [I; G] row of fragment present[r], restricted to the
  // k data columns; invert A by Gauss-Jordan with the identity augmented.
  std::vector<std::uint8_t> a(k * k, 0);
  std::vector<std::uint8_t> inv(k * k, 0);
  for (std::uint32_t r = 0; r < k; ++r) {
    const std::uint32_t f = present[r];
    if (f >= spec.fragments()) std::abort();
    for (std::uint32_t r2 = r + 1; r2 < k; ++r2) {
      if (present[r2] == f) std::abort();  // duplicate fragment index
    }
    if (f < k) {
      a[r * k + f] = 1;
    } else {
      for (std::uint32_t i = 0; i < k; ++i) a[r * k + i] = rs_coeff(spec, f - k, i);
    }
    inv[r * k + r] = 1;
  }
  for (std::uint32_t col = 0; col < k; ++col) {
    std::uint32_t piv = col;
    while (piv < k && a[piv * k + col] == 0) ++piv;
    if (piv == k) std::abort();  // singular: impossible for an MDS code
    if (piv != col) {
      for (std::uint32_t i = 0; i < k; ++i) {
        std::swap(a[piv * k + i], a[col * k + i]);
        std::swap(inv[piv * k + i], inv[col * k + i]);
      }
    }
    const std::uint8_t pinv = gf_inv(a[col * k + col]);
    for (std::uint32_t i = 0; i < k; ++i) {
      a[col * k + i] = gf_mul(a[col * k + i], pinv);
      inv[col * k + i] = gf_mul(inv[col * k + i], pinv);
    }
    for (std::uint32_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const std::uint8_t f = a[r * k + col];
      if (f == 0) continue;
      for (std::uint32_t i = 0; i < k; ++i) {
        a[r * k + i] ^= gf_mul(f, a[col * k + i]);
        inv[r * k + i] ^= gf_mul(f, inv[col * k + i]);
      }
    }
  }

  std::vector<std::uint8_t> coeffs(k, 0);
  if (target < k) {
    // data_target = row `target` of A^{-1} applied to the present fragments.
    for (std::uint32_t r = 0; r < k; ++r) coeffs[r] = inv[target * k + r];
  } else {
    // coding_j = G_j · data = (G_j · A^{-1}) applied to the present
    // fragments.
    const std::uint32_t j = target - k;
    for (std::uint32_t r = 0; r < k; ++r) {
      std::uint8_t acc = 0;
      for (std::uint32_t d = 0; d < k; ++d) {
        acc ^= gf_mul(rs_coeff(spec, j, d), inv[d * k + r]);
      }
      coeffs[r] = acc;
    }
  }
  return coeffs;
}

void rs_encode_delta(CodeSpec spec, std::uint32_t data_index,
                     std::span<const std::byte> src,
                     std::span<const std::span<std::byte>> coding) {
  assert(coding.size() == spec.m);
  for (std::uint32_t j = 0; j < spec.m; ++j) {
    gf_muladd_region(coding[j], src, rs_coeff(spec, j, data_index));
  }
}

}  // namespace csar
