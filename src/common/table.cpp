#include "table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace csar {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != '%' &&
        c != 'e') {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out.append(pad, ' ');
        out += row[c];
      } else {
        out += row[c];
        out.append(pad, ' ');
      }
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 < row.size()) ? "," : "";
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace csar
