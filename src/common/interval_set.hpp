// IntervalSet: a set of disjoint, coalesced half-open byte ranges [start,end).
//
// Used for sparse-file allocation maps, dirty-region tracking and overflow
// invalidation. All operations keep the invariant that stored intervals are
// non-empty, non-overlapping, non-adjacent (adjacent ranges are merged) and
// sorted by start offset.
//
// Flat representation: a sorted std::vector<Interval> instead of a node-based
// std::map. Lookups are branch-friendly binary searches over contiguous
// memory, mutations splice with batched vector moves, and the backing store
// is reused across clear() — at the range counts the simulator sees
// (tens to a few thousand per file), this is uniformly faster than the map
// and allocation-free in steady state.
#pragma once

#include <cstdint>
#include <vector>

namespace csar {

struct Interval {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  ///< exclusive

  std::uint64_t length() const { return end - start; }
  bool empty() const { return end <= start; }
  bool operator==(const Interval&) const = default;
};

class IntervalSet {
 public:
  /// Add [start, end). Overlapping/adjacent ranges are merged.
  void insert(std::uint64_t start, std::uint64_t end);

  /// Remove [start, end), splitting partially-covered ranges.
  void erase(std::uint64_t start, std::uint64_t end);

  /// True iff every byte of [start, end) is covered.
  bool covers(std::uint64_t start, std::uint64_t end) const;

  /// True iff any byte of [start, end) is covered.
  bool intersects(std::uint64_t start, std::uint64_t end) const;

  /// The covered sub-ranges of [start, end), in order.
  std::vector<Interval> intersection(std::uint64_t start,
                                     std::uint64_t end) const;

  /// The uncovered sub-ranges ("holes") of [start, end), in order.
  std::vector<Interval> holes(std::uint64_t start, std::uint64_t end) const;

  /// Sum of lengths of all ranges.
  std::uint64_t total() const;

  /// End offset of the last range, or 0 if empty (size of a sparse file).
  std::uint64_t upper_bound() const;

  bool empty() const { return ranges_.empty(); }
  std::size_t range_count() const { return ranges_.size(); }
  void clear() { ranges_.clear(); }

  /// All ranges in order (for iteration and debugging).
  std::vector<Interval> to_vector() const { return ranges_; }

 private:
  /// Index of the first range with range.start > start (upper bound).
  std::size_t upper_idx(std::uint64_t start) const;

  std::vector<Interval> ranges_;  // sorted by start, disjoint, coalesced
};

}  // namespace csar
