// TextTable: fixed-column pretty printer for bench harness output, so every
// figure/table reproduction prints rows in a uniform, diff-friendly format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace csar {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 1);
  static std::string num(std::uint64_t v);

  /// Render with aligned columns; numeric-looking cells right-aligned.
  std::string to_string() const;

  /// Render as CSV (header + rows), for machine consumption.
  std::string to_csv() const;

  /// Print to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csar
