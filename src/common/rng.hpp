// Deterministic pseudo-random number generation for simulations and tests.
//
// All randomness in a CSAR run flows from one seeded root generator so that
// every experiment is exactly reproducible; generators can be split so that
// independent processes draw from decorrelated streams regardless of
// scheduling order.
#pragma once

#include <cstdint>

namespace csar {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Seeded through SplitMix64 so that any 64-bit seed gives a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times for open-loop workloads).
  double exponential(double mean);

  /// Pareto-distributed value with shape `alpha` and scale `xm` (minimum).
  /// Heavy-tailed interarrival gaps and request sizes; the mean is
  /// xm * alpha / (alpha - 1) for alpha > 1.
  double pareto(double alpha, double xm);

  /// Derive an independent generator; deterministic in the parent's state.
  Rng split() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  std::uint64_t s_[4];
};

}  // namespace csar
