// Buffer: a byte payload that is either materialized (real bytes, used by
// tests/examples so that parity, mirroring and reconstruction are verified on
// actual content) or phantom (size-only, used by large benchmarks such as
// BTIO Class C whose 6.6 GB payload should not live in host RAM).
//
// Phantom buffers participate in all bookkeeping — sizes, extents, simulated
// CPU/XOR charges — but carry no bytes. Mixing a phantom and a materialized
// buffer in one mutating operation is a programming error (assert).
//
// Storage is copy-on-write: a materialized buffer is a [off, off+size) view
// into shared backing bytes. Copying a buffer or taking a slice() shares the
// backing (a refcount bump — payloads traverse the whole RPC stack without
// byte copies); every mutating member first materializes an unshared copy of
// its view, so two buffers can never observe each other's writes. Value
// semantics are exactly those of the old deep-copy representation, minus the
// copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace csar {

class Buffer {
 public:
  /// Empty materialized buffer.
  Buffer() = default;

  /// Materialized, zero-filled buffer of `size` bytes.
  static Buffer real(std::uint64_t size);

  /// Phantom buffer: size only, no storage.
  static Buffer phantom(std::uint64_t size);

  /// Materialized buffer taking ownership of `bytes`.
  static Buffer from_bytes(std::vector<std::byte> bytes);

  /// Materialized buffer filled with a deterministic pattern derived from
  /// `seed` (used by tests to make every file region distinguishable).
  static Buffer pattern(std::uint64_t size, std::uint64_t seed);

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool materialized() const { return materialized_; }

  /// Read-only view of the bytes; requires a materialized buffer.
  std::span<const std::byte> bytes() const;

  /// Mutable view of the bytes; requires a materialized buffer.
  std::span<std::byte> mutable_bytes();

  /// View of the sub-range [off, off+len); shares the backing bytes
  /// (copy-on-write, so the slice behaves as an independent copy). Phantom
  /// stays phantom.
  Buffer slice(std::uint64_t off, std::uint64_t len) const;

  /// Splice `src` into this buffer at `off`. Requires off+src.size()<=size().
  /// Both buffers must have the same materialization.
  void write_at(std::uint64_t off, const Buffer& src);

  /// XOR `other` into this buffer (prefix of the shorter length). On phantom
  /// buffers this is a no-op; callers charge simulated XOR cost separately.
  void xor_with(const Buffer& other);

  /// XOR `src` into this buffer starting at `off` (off+src.size()<=size()).
  /// Both buffers must have the same materialization; no-op on phantom.
  void xor_at(std::uint64_t off, const Buffer& src);

  /// Grow (zero-extending) or shrink to `size`.
  void resize(std::uint64_t size);

  /// Content equality. Phantom buffers compare equal iff sizes match.
  bool operator==(const Buffer& other) const;

 private:
  /// Reallocate the view into exclusively-owned backing if anyone else
  /// shares it. After this, writes through data_ are invisible elsewhere.
  void ensure_unique();

  std::uint64_t size_ = 0;
  bool materialized_ = true;
  std::uint64_t off_ = 0;  ///< view start within *data_
  /// Backing bytes; null for phantom and for empty buffers. May be larger
  /// than the view and shared with other buffers (see ensure_unique).
  std::shared_ptr<std::vector<std::byte>> data_;
};

}  // namespace csar
