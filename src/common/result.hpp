// Lightweight expected-style result type for fallible CSAR operations.
//
// We avoid exceptions on the simulated data path (they interact badly with
// coroutine frames and make failure injection harder to reason about); all
// client-visible file-system operations return Result<T>.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace csar {

/// Error codes for file-system and cluster operations.
enum class Errc {
  ok = 0,
  not_found,        ///< file or handle does not exist
  already_exists,   ///< create() of an existing file
  invalid_argument, ///< malformed offset/size/layout
  server_failed,    ///< the I/O server holding required data is down
  unavailable,      ///< operation cannot proceed (e.g. manager down)
  corrupted,        ///< redundancy verification failed
  io_error,         ///< generic underlying storage failure
  timeout,          ///< RPC deadline expired with no reply
  media_error,      ///< latent sector error on the underlying disk
  conn_dropped,     ///< connection reset / message dropped by the fabric
  stale_generation, ///< set_scheme with a non-monotonic redundancy generation
  stale_epoch,      ///< fenced meta op from before a manager restart
};

/// Human-readable name of an error code.
const char* errc_name(Errc e);

/// An error with a code and an optional context message.
struct Error {
  Errc code = Errc::io_error;
  std::string message;
  /// Index of the I/O server implicated in the failure, or -1 when unknown.
  /// Lets failover code route around the faulty server without re-probing.
  int server = -1;

  std::string to_string() const {
    std::string s = errc_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

/// Result<T>: either a value or an Error. Minimal std::expected stand-in
/// (libstdc++ 12 does not ship <expected>).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) {}  // NOLINT: implicit by design
  Result(Errc code, std::string msg = {})
      : v_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> specialization: success carries no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error err) : err_(std::move(err)), ok_(false) {}  // NOLINT
  Result(Errc code, std::string msg = {})
      : err_(Error{code, std::move(msg)}), ok_(false) {}

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  const Error& error() const {
    assert(!ok_);
    return err_;
  }

  static Result success() { return Result{}; }

 private:
  Error err_{};
  bool ok_ = true;
};

}  // namespace csar
