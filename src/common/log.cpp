#include "log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace csar::log {

namespace {
Level g_level = Level::off;
std::function<std::uint64_t()> g_time_source;

const char* level_tag(Level lvl) {
  switch (lvl) {
    case Level::trace:
      return "T";
    case Level::debug:
      return "D";
    case Level::info:
      return "I";
    case Level::warn:
      return "W";
    case Level::error:
      return "E";
    case Level::off:
      return "?";
  }
  return "?";
}
}  // namespace

void set_level(Level lvl) { g_level = lvl; }
Level level() { return g_level; }

void set_time_source(std::function<std::uint64_t()> src) {
  g_time_source = std::move(src);
}

void write(Level lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) < static_cast<int>(g_level)) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  if (g_time_source) {
    const double t = static_cast<double>(g_time_source()) / 1e9;
    std::fprintf(stderr, "[%s %12.6fs] %s\n", level_tag(lvl), t, msg);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_tag(lvl), msg);
  }
}

void init_from_env() {
  const char* v = std::getenv("CSAR_LOG");
  if (v == nullptr) return;
  const std::string s{v};
  if (s == "trace") {
    g_level = Level::trace;
  } else if (s == "debug") {
    g_level = Level::debug;
  } else if (s == "info") {
    g_level = Level::info;
  } else if (s == "warn") {
    g_level = Level::warn;
  } else if (s == "error") {
    g_level = Level::error;
  } else {
    g_level = Level::off;
  }
}

}  // namespace csar::log
