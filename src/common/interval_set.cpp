#include "interval_set.hpp"

#include <algorithm>
#include <cassert>

namespace csar {

std::size_t IntervalSet::upper_idx(std::uint64_t start) const {
  return static_cast<std::size_t>(
      std::upper_bound(ranges_.begin(), ranges_.end(), start,
                       [](std::uint64_t v, const Interval& iv) {
                         return v < iv.start;
                       }) -
      ranges_.begin());
}

void IntervalSet::insert(std::uint64_t start, std::uint64_t end) {
  if (start >= end) return;
  // First range that could merge with us: the one before start, if it
  // reaches start (adjacency merges too).
  std::size_t i = upper_idx(start);
  if (i > 0 && ranges_[i - 1].end >= start) {
    --i;
    start = ranges_[i].start;
    end = std::max(end, ranges_[i].end);
  }
  // Swallow every range that begins at or before the (growing) end.
  std::size_t j = i;
  while (j < ranges_.size() && ranges_[j].start <= end) {
    end = std::max(end, ranges_[j].end);
    ++j;
  }
  if (i == j) {
    ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(i),
                   Interval{start, end});
  } else {
    ranges_[i] = Interval{start, end};
    ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  ranges_.begin() + static_cast<std::ptrdiff_t>(j));
  }
}

void IntervalSet::erase(std::uint64_t start, std::uint64_t end) {
  if (start >= end) return;
  std::size_t i = upper_idx(start);
  if (i > 0 && ranges_[i - 1].end > start) --i;
  // [i, j) is the run of ranges overlapping [start, end); the first and
  // last survivors (if any) become the clipped head/tail pieces.
  std::size_t j = i;
  Interval head{0, 0};
  Interval tail{0, 0};
  while (j < ranges_.size() && ranges_[j].start < end) {
    if (ranges_[j].start < start) head = {ranges_[j].start, start};
    if (ranges_[j].end > end) tail = {end, ranges_[j].end};
    ++j;
  }
  if (i == j) return;
  std::size_t keep = (head.empty() ? 0u : 1u) + (tail.empty() ? 0u : 1u);
  if (keep == 2) {
    if (j - i == 1) {  // splitting one range in two: make room
      ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     Interval{});
      ++j;
    }
    ranges_[i] = head;
    ranges_[i + 1] = tail;
  } else if (keep == 1) {
    ranges_[i] = head.empty() ? tail : head;
  }
  ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i + keep),
                ranges_.begin() + static_cast<std::ptrdiff_t>(j));
}

bool IntervalSet::covers(std::uint64_t start, std::uint64_t end) const {
  if (start >= end) return true;
  const std::size_t i = upper_idx(start);
  if (i == 0) return false;
  return ranges_[i - 1].start <= start && ranges_[i - 1].end >= end;
}

bool IntervalSet::intersects(std::uint64_t start, std::uint64_t end) const {
  if (start >= end) return false;
  const std::size_t i = upper_idx(start);
  if (i > 0 && ranges_[i - 1].end > start) return true;
  return i < ranges_.size() && ranges_[i].start < end;
}

std::vector<Interval> IntervalSet::intersection(std::uint64_t start,
                                                std::uint64_t end) const {
  std::vector<Interval> out;
  if (start >= end) return out;
  std::size_t i = upper_idx(start);
  if (i > 0 && ranges_[i - 1].end > start) --i;
  for (; i < ranges_.size() && ranges_[i].start < end; ++i) {
    out.push_back({std::max(ranges_[i].start, start),
                   std::min(ranges_[i].end, end)});
  }
  return out;
}

std::vector<Interval> IntervalSet::holes(std::uint64_t start,
                                         std::uint64_t end) const {
  std::vector<Interval> out;
  std::uint64_t cursor = start;
  for (const auto& iv : intersection(start, end)) {
    if (iv.start > cursor) out.push_back({cursor, iv.start});
    cursor = iv.end;
  }
  if (cursor < end) out.push_back({cursor, end});
  return out;
}

std::uint64_t IntervalSet::total() const {
  std::uint64_t sum = 0;
  for (const auto& iv : ranges_) sum += iv.end - iv.start;
  return sum;
}

std::uint64_t IntervalSet::upper_bound() const {
  return ranges_.empty() ? 0 : ranges_.back().end;
}

}  // namespace csar
