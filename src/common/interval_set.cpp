#include "interval_set.hpp"

#include <cassert>

namespace csar {

void IntervalSet::insert(std::uint64_t start, std::uint64_t end) {
  if (start >= end) return;
  // Find the first range that could merge with us: the one before start, if
  // it reaches start (adjacency merges too).
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = ranges_.erase(prev);
    }
  }
  // Swallow every range that begins at or before the (growing) end.
  while (it != ranges_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_.emplace(start, end);
}

void IntervalSet::erase(std::uint64_t start, std::uint64_t end) {
  if (start >= end) return;
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) it = prev;
  }
  while (it != ranges_.end() && it->first < end) {
    const std::uint64_t rs = it->first;
    const std::uint64_t re = it->second;
    it = ranges_.erase(it);
    if (rs < start) ranges_.emplace(rs, start);
    if (re > end) {
      ranges_.emplace(end, re);
      break;
    }
  }
}

bool IntervalSet::covers(std::uint64_t start, std::uint64_t end) const {
  if (start >= end) return true;
  auto it = ranges_.upper_bound(start);
  if (it == ranges_.begin()) return false;
  auto prev = std::prev(it);
  return prev->first <= start && prev->second >= end;
}

bool IntervalSet::intersects(std::uint64_t start, std::uint64_t end) const {
  if (start >= end) return false;
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) return true;
  }
  return it != ranges_.end() && it->first < end;
}

std::vector<Interval> IntervalSet::intersection(std::uint64_t start,
                                                std::uint64_t end) const {
  std::vector<Interval> out;
  if (start >= end) return out;
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) it = prev;
  }
  for (; it != ranges_.end() && it->first < end; ++it) {
    out.push_back(
        {std::max(it->first, start), std::min(it->second, end)});
  }
  return out;
}

std::vector<Interval> IntervalSet::holes(std::uint64_t start,
                                         std::uint64_t end) const {
  std::vector<Interval> out;
  std::uint64_t cursor = start;
  for (const auto& iv : intersection(start, end)) {
    if (iv.start > cursor) out.push_back({cursor, iv.start});
    cursor = iv.end;
  }
  if (cursor < end) out.push_back({cursor, end});
  return out;
}

std::uint64_t IntervalSet::total() const {
  std::uint64_t sum = 0;
  for (const auto& [s, e] : ranges_) sum += e - s;
  return sum;
}

std::uint64_t IntervalSet::upper_bound() const {
  return ranges_.empty() ? 0 : ranges_.rbegin()->second;
}

std::vector<Interval> IntervalSet::to_vector() const {
  std::vector<Interval> out;
  out.reserve(ranges_.size());
  for (const auto& [s, e] : ranges_) out.push_back({s, e});
  return out;
}

}  // namespace csar
