// Unified redundancy codec: XOR parity kernels plus the GF(2^8)
// Reed-Solomon encode/decode kernel, behind one runtime-dispatch point.
//
// The XOR half reproduces the Swift/RAID observation (§3 of the CSAR paper)
// that word-wise parity beats byte-wise parity; the byte-wise kernel is kept
// for the ablation benchmark. The GF half generalizes parity to k+m erasure
// codes: coding fragment j of a group is sum_i g[j][i] * data_i over
// GF(2^8), with the generator matrix chosen so its first row is all ones —
// RS(k,1) therefore produces byte-identical output to the XOR parity path,
// and every classic scheme is a special case of the code (RAID1 ≈ RS(1,1),
// RAID4/5 ≈ RS(k,1)).
//
// Region kernels (gf_mul_region / gf_muladd_region) follow the same layout
// discipline as xor_words: a 32-byte-block main loop over unaligned-safe
// memcpy loads, then word and byte tails. The SIMD variant (PSHUFB over
// split nibble tables, SSSE3/AVX2) and the scalar table walk are
// bit-identical by construction — GF arithmetic is exact — so runtime
// dispatch never perturbs simulated results. Dispatch is resolved once, at
// the first region call, for both the XOR and GF kernels (codec_dispatch()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace csar {

// --- XOR kernels (formerly common/parity.hpp) ---

/// dst[i] ^= src[i], one byte at a time (deliberately naive baseline).
void xor_bytes(std::span<std::byte> dst, std::span<const std::byte> src);

/// dst[i] ^= src[i], one 64-bit word at a time with a byte tail (the
/// pre-blocking kernel, kept for the ablation benchmark).
void xor_words_single(std::span<std::byte> dst, std::span<const std::byte> src);

/// dst[i] ^= src[i], 32-byte blocks of four independent 64-bit words per
/// iteration (autovectorizer-friendly at the default -O2), then a word tail
/// and a byte tail. Handles unaligned buffers via memcpy word loads, which
/// GCC lowers to plain loads on x86.
void xor_words(std::span<std::byte> dst, std::span<const std::byte> src);

/// Parity of `sources` accumulated into `dst` (dst must be zero-filled or
/// hold the first source). Sources shorter than dst contribute only their
/// prefix; this matches parity of zero-padded stripe units.
void xor_accumulate(std::span<std::byte> dst,
                    std::span<const std::span<const std::byte>> sources);

// --- GF(2^8) scalar arithmetic ---
// Field: GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
// the conventional choice for storage RS codes. gf_exp is doubled so
// gf_exp[gf_log[a] + gf_log[b]] never needs a mod-255 reduction. The tables
// are constexpr — computed at compile time, immune to static-init order.

namespace gf_detail {
struct Tables {
  std::uint8_t log[256] = {};
  std::uint8_t exp[512] = {};
};
constexpr Tables make_tables() {
  Tables t{};
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (std::uint32_t i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // log(0) is undefined; gf_mul guards the zero cases
  return t;
}
inline constexpr Tables kTables = make_tables();
}  // namespace gf_detail

inline constexpr const std::uint8_t* gf_log = gf_detail::kTables.log;
inline constexpr const std::uint8_t* gf_exp = gf_detail::kTables.exp;

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return gf_exp[gf_log[a] + gf_log[b]];
}

/// Multiplicative inverse; a must be nonzero.
constexpr std::uint8_t gf_inv(std::uint8_t a) {
  return gf_exp[255 - gf_log[a]];
}

// --- GF(2^8) region kernels ---

/// dst[i] ^= c * src[i] over GF(2^8). c == 0 is a no-op; c == 1 degrades to
/// xor_words. Runtime-dispatched (see codec_dispatch()).
void gf_muladd_region(std::span<std::byte> dst, std::span<const std::byte> src,
                      std::uint8_t c);

/// dst[i] = c * src[i] over GF(2^8) (no accumulate).
void gf_mul_region(std::span<std::byte> dst, std::span<const std::byte> src,
                   std::uint8_t c);

/// Scalar (per-byte table walk) variants, exposed for the parity-kernel
/// ablation benchmark and for bit-identity tests against the SIMD path.
void gf_muladd_region_scalar(std::span<std::byte> dst,
                             std::span<const std::byte> src, std::uint8_t c);
void gf_mul_region_scalar(std::span<std::byte> dst,
                          std::span<const std::byte> src, std::uint8_t c);

/// The instruction set the region kernels resolved to at runtime:
/// "avx2", "ssse3" or "scalar". Resolved once per process.
const char* codec_dispatch_name();

// --- Reed-Solomon code over the fragments of one group ---

/// A k+m erasure code: k data fragments, m coding fragments, any k of the
/// k+m suffice to recover everything (MDS). Fragment indices are global:
/// data fragments are [0, k), coding fragments are [k, k+m).
struct CodeSpec {
  std::uint32_t k = 1;
  std::uint32_t m = 0;
  std::uint32_t fragments() const { return k + m; }
  friend bool operator==(const CodeSpec&, const CodeSpec&) = default;
};

/// Hard bounds for CodeSpec validation. k+m <= 255 is the field-size limit
/// of the Cauchy construction; the persisted scheme-tag packing is tighter
/// (k <= 16, m <= 7, see raid/scheme.hpp) and is what parse_scheme enforces.
inline constexpr std::uint32_t kMaxCodeFragments = 255;

/// Generator coefficient g[j][i]: the factor data fragment i contributes to
/// coding fragment j (j in [0, m), i in [0, k)). Built from a Cauchy matrix
/// with columns scaled so row 0 is all ones: coding fragment 0 is exactly
/// the XOR parity of the data fragments, and any k rows of [I; G] stay
/// invertible (column scaling preserves the Cauchy MDS property). Requires
/// spec.fragments() <= kMaxCodeFragments.
std::uint8_t rs_coeff(CodeSpec spec, std::uint32_t j, std::uint32_t i);

/// Coefficients reconstructing fragment `target` from the k fragments
/// listed in `present` (distinct indices in [0, k+m), any order; exactly k
/// of them). Returns one coefficient per present fragment:
///   frag[target] = sum_r coeffs[r] * frag[present[r]].
/// If target itself appears in `present` the result is the trivial
/// selector. The k x k system is always invertible for an MDS code, so this
/// never fails for valid input; it aborts on malformed input (duplicate or
/// out-of-range indices, wrong count).
std::vector<std::uint8_t> rs_reconstruct_coeffs(
    CodeSpec spec, std::span<const std::uint32_t> present,
    std::uint32_t target);

/// Accumulate `coeff * src` into every coding region: for each j in [0, m),
/// coding[j] ^= rs_coeff(j, data_index) * src. The delta form of the RS
/// small-write update — pass src = old ^ new.
void rs_encode_delta(CodeSpec spec, std::uint32_t data_index,
                     std::span<const std::byte> src,
                     std::span<const std::span<std::byte>> coding);

}  // namespace csar
