#include "result.hpp"

namespace csar {

const char* errc_name(Errc e) {
  switch (e) {
    case Errc::ok:
      return "ok";
    case Errc::not_found:
      return "not_found";
    case Errc::already_exists:
      return "already_exists";
    case Errc::invalid_argument:
      return "invalid_argument";
    case Errc::server_failed:
      return "server_failed";
    case Errc::unavailable:
      return "unavailable";
    case Errc::corrupted:
      return "corrupted";
    case Errc::io_error:
      return "io_error";
    case Errc::timeout:
      return "timeout";
    case Errc::media_error:
      return "media_error";
    case Errc::conn_dropped:
      return "conn_dropped";
    case Errc::stale_generation:
      return "stale_generation";
    case Errc::stale_epoch:
      return "stale_epoch";
  }
  return "unknown";
}

}  // namespace csar
