// IntervalMap<V>: disjoint half-open ranges [start,end) each carrying a
// value. Inserting over existing ranges overwrites them, slicing partially
// covered entries via a user-supplied Slicer so that the surviving pieces
// keep consistent payloads.
//
// Used for sparse file content (V = Buffer) and for the Hybrid scheme's
// overflow tables (V = overflow location).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace csar {

/// Slicer concept: given a value covering `len_total` bytes, produce the
/// payload for the sub-range starting `offset` bytes in, `len` bytes long.
///   V operator()(const V& v, std::uint64_t offset, std::uint64_t len) const;
template <typename V, typename Slicer>
class IntervalMap {
 public:
  struct Chunk {
    std::uint64_t start;
    std::uint64_t end;
    const V* value;
  };

  IntervalMap() = default;
  explicit IntervalMap(Slicer slicer) : slicer_(std::move(slicer)) {}

  /// Map [start,end) to `value`, overwriting any previous contents.
  void insert(std::uint64_t start, std::uint64_t end, V value) {
    if (start >= end) return;
    erase(start, end);
    entries_.emplace(start, Entry{end, std::move(value)});
  }

  /// Remove [start,end), splitting partially covered entries.
  void erase(std::uint64_t start, std::uint64_t end) {
    if (start >= end) return;
    auto it = entries_.upper_bound(start);
    if (it != entries_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > start) it = prev;
    }
    while (it != entries_.end() && it->first < end) {
      const std::uint64_t rs = it->first;
      const std::uint64_t re = it->second.end;
      V v = std::move(it->second.value);
      it = entries_.erase(it);
      if (rs < start) {
        entries_.emplace(rs, Entry{start, slicer_(v, 0, start - rs)});
      }
      if (re > end) {
        entries_.emplace(end, Entry{re, slicer_(v, end - rs, re - end)});
        break;
      }
    }
  }

  /// The mapped sub-ranges of [start,end), clipped, in order. The returned
  /// `value` pointers refer to the *whole* stored entry; `start - entry_start`
  /// gives the offset of the clipped chunk within it. To keep that
  /// arithmetic trivial for callers, each Chunk also records the entry start.
  struct Query {
    std::uint64_t start;        ///< clipped chunk start
    std::uint64_t end;          ///< clipped chunk end
    std::uint64_t entry_start;  ///< start of the stored entry
    const V* value;             ///< payload of the stored entry
  };
  std::vector<Query> query(std::uint64_t start, std::uint64_t end) const {
    std::vector<Query> out;
    if (start >= end) return out;
    auto it = entries_.upper_bound(start);
    if (it != entries_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > start) it = prev;
    }
    for (; it != entries_.end() && it->first < end; ++it) {
      out.push_back({std::max(it->first, start),
                     std::min(it->second.end, end), it->first,
                     &it->second.value});
    }
    return out;
  }

  /// True iff any byte of [start, end) is mapped.
  bool intersects(std::uint64_t start, std::uint64_t end) const {
    if (start >= end) return false;
    auto it = entries_.upper_bound(start);
    if (it != entries_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > start) return true;
    }
    return it != entries_.end() && it->first < end;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Total bytes covered by all entries.
  std::uint64_t covered_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& [s, e] : entries_) sum += e.end - s;
    return sum;
  }

  /// Largest mapped end offset, or 0 when empty.
  std::uint64_t upper_bound() const {
    return entries_.empty() ? 0 : entries_.rbegin()->second.end;
  }

  /// Visit every entry in order: f(start, end, const V&).
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [s, e] : entries_) f(s, e.end, e.value);
  }

 private:
  struct Entry {
    std::uint64_t end;
    V value;
  };
  std::map<std::uint64_t, Entry> entries_;
  Slicer slicer_;
};

}  // namespace csar
