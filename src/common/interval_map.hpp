// IntervalMap<V>: disjoint half-open ranges [start,end) each carrying a
// value. Inserting over existing ranges overwrites them, slicing partially
// covered entries via a user-supplied Slicer so that the surviving pieces
// keep consistent payloads.
//
// Used for sparse file content (V = Buffer) and for the Hybrid scheme's
// overflow tables (V = overflow location).
//
// Flat representation: entries live in a start-sorted std::vector, so every
// lookup is a binary search over contiguous memory and the per-entry
// node allocations of the old std::map layout are gone. Entry values move
// during splices; V must be cheaply movable (Buffer is).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace csar {

/// Slicer concept: given a value covering `len_total` bytes, produce the
/// payload for the sub-range starting `offset` bytes in, `len` bytes long.
///   V operator()(const V& v, std::uint64_t offset, std::uint64_t len) const;
template <typename V, typename Slicer>
class IntervalMap {
 public:
  struct Chunk {
    std::uint64_t start;
    std::uint64_t end;
    const V* value;
  };

  IntervalMap() = default;
  explicit IntervalMap(Slicer slicer) : slicer_(std::move(slicer)) {}

  /// Map [start,end) to `value`, overwriting any previous contents.
  void insert(std::uint64_t start, std::uint64_t end, V value) {
    if (start >= end) return;
    erase(start, end);
    entries_.insert(
        entries_.begin() + static_cast<std::ptrdiff_t>(upper_idx(start)),
        Entry{start, end, std::move(value)});
  }

  /// Remove [start,end), splitting partially covered entries.
  void erase(std::uint64_t start, std::uint64_t end) {
    if (start >= end) return;
    std::size_t i = upper_idx(start);
    if (i > 0 && entries_[i - 1].end > start) --i;
    std::size_t j = i;
    bool have_head = false, have_tail = false;
    Entry head, tail;
    while (j < entries_.size() && entries_[j].start < end) {
      const std::uint64_t rs = entries_[j].start;
      const std::uint64_t re = entries_[j].end;
      V v = std::move(entries_[j].value);
      ++j;
      if (rs < start) {
        head = Entry{rs, start, slicer_(v, 0, start - rs)};
        have_head = true;
      }
      if (re > end) {
        tail = Entry{end, re, slicer_(v, end - rs, re - end)};
        have_tail = true;
        break;
      }
    }
    if (i == j) return;
    const std::size_t keep =
        (have_head ? 1u : 0u) + (have_tail ? 1u : 0u);
    if (keep == 2) {
      if (j - i == 1) {  // splitting one entry in two: make room
        entries_.insert(
            entries_.begin() + static_cast<std::ptrdiff_t>(i) + 1, Entry{});
        ++j;
      }
      entries_[i] = std::move(head);
      entries_[i + 1] = std::move(tail);
    } else if (keep == 1) {
      entries_[i] = have_head ? std::move(head) : std::move(tail);
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i + keep),
                   entries_.begin() + static_cast<std::ptrdiff_t>(j));
  }

  /// The mapped sub-ranges of [start,end), clipped, in order. The returned
  /// `value` pointers refer to the *whole* stored entry; `start - entry_start`
  /// gives the offset of the clipped chunk within it. To keep that
  /// arithmetic trivial for callers, each Chunk also records the entry start.
  /// Pointers are valid until the next mutation.
  struct Query {
    std::uint64_t start;        ///< clipped chunk start
    std::uint64_t end;          ///< clipped chunk end
    std::uint64_t entry_start;  ///< start of the stored entry
    const V* value;             ///< payload of the stored entry
  };
  std::vector<Query> query(std::uint64_t start, std::uint64_t end) const {
    std::vector<Query> out;
    if (start >= end) return out;
    std::size_t i = upper_idx(start);
    if (i > 0 && entries_[i - 1].end > start) --i;
    for (; i < entries_.size() && entries_[i].start < end; ++i) {
      out.push_back({std::max(entries_[i].start, start),
                     std::min(entries_[i].end, end), entries_[i].start,
                     &entries_[i].value});
    }
    return out;
  }

  /// True iff any byte of [start, end) is mapped.
  bool intersects(std::uint64_t start, std::uint64_t end) const {
    if (start >= end) return false;
    const std::size_t i = upper_idx(start);
    if (i > 0 && entries_[i - 1].end > start) return true;
    return i < entries_.size() && entries_[i].start < end;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Total bytes covered by all entries.
  std::uint64_t covered_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& e : entries_) sum += e.end - e.start;
    return sum;
  }

  /// Largest mapped end offset, or 0 when empty.
  std::uint64_t upper_bound() const {
    return entries_.empty() ? 0 : entries_.back().end;
  }

  /// Visit every entry in order: f(start, end, const V&).
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& e : entries_) f(e.start, e.end, e.value);
  }

 private:
  struct Entry {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    V value{};
  };

  /// Index of the first entry with entry.start > start.
  std::size_t upper_idx(std::uint64_t start) const {
    return static_cast<std::size_t>(
        std::upper_bound(entries_.begin(), entries_.end(), start,
                         [](std::uint64_t v, const Entry& e) {
                           return v < e.start;
                         }) -
        entries_.begin());
  }

  std::vector<Entry> entries_;  // sorted by start, disjoint
  Slicer slicer_;
};

}  // namespace csar
