// Minimal leveled logger with an injectable time source so that log lines
// carry *simulated* time when emitted from inside a simulation.
//
// Logging is off by default in tests and benches; enable with
// csar::log::set_level or the CSAR_LOG environment variable
// (trace|debug|info|warn|error|off).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <functional>

namespace csar::log {

enum class Level { trace = 0, debug, info, warn, error, off };

void set_level(Level lvl);
Level level();

/// Install a function returning the current simulated time in nanoseconds;
/// pass nullptr to revert to no timestamp.
void set_time_source(std::function<std::uint64_t()> src);

/// printf-style logging. Prefer the CSAR_LOG_* macros, which skip argument
/// evaluation when the level is disabled.
void write(Level lvl, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Initialize the level from the CSAR_LOG environment variable (idempotent).
void init_from_env();

}  // namespace csar::log

#define CSAR_LOG_AT(lvl, ...)                                       \
  do {                                                              \
    if (static_cast<int>(lvl) >= static_cast<int>(csar::log::level())) \
      csar::log::write(lvl, __VA_ARGS__);                           \
  } while (0)

#define CSAR_TRACE(...) CSAR_LOG_AT(csar::log::Level::trace, __VA_ARGS__)
#define CSAR_DEBUG(...) CSAR_LOG_AT(csar::log::Level::debug, __VA_ARGS__)
#define CSAR_INFO(...) CSAR_LOG_AT(csar::log::Level::info, __VA_ARGS__)
#define CSAR_WARN(...) CSAR_LOG_AT(csar::log::Level::warn, __VA_ARGS__)
#define CSAR_ERROR(...) CSAR_LOG_AT(csar::log::Level::error, __VA_ARGS__)
