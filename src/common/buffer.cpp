#include "buffer.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "parity.hpp"

namespace csar {

Buffer Buffer::real(std::uint64_t size) {
  Buffer b;
  b.size_ = size;
  b.materialized_ = true;
  b.data_.assign(static_cast<std::size_t>(size), std::byte{0});
  return b;
}

Buffer Buffer::phantom(std::uint64_t size) {
  Buffer b;
  b.size_ = size;
  b.materialized_ = false;
  return b;
}

Buffer Buffer::from_bytes(std::vector<std::byte> bytes) {
  Buffer b;
  b.size_ = bytes.size();
  b.materialized_ = true;
  b.data_ = std::move(bytes);
  return b;
}

Buffer Buffer::pattern(std::uint64_t size, std::uint64_t seed) {
  Buffer b = real(size);
  // Cheap per-byte mix; distinct seeds give distinct, reproducible content.
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  for (std::uint64_t i = 0; i < size; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    b.data_[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((x >> 33) & 0xFF);
  }
  return b;
}

std::span<const std::byte> Buffer::bytes() const {
  assert(materialized_);
  return {data_.data(), data_.size()};
}

std::span<std::byte> Buffer::mutable_bytes() {
  assert(materialized_);
  return {data_.data(), data_.size()};
}

Buffer Buffer::slice(std::uint64_t off, std::uint64_t len) const {
  assert(off + len <= size_);
  if (!materialized_) return phantom(len);
  Buffer b;
  b.size_ = len;
  b.materialized_ = true;
  b.data_.assign(data_.begin() + static_cast<std::ptrdiff_t>(off),
                 data_.begin() + static_cast<std::ptrdiff_t>(off + len));
  return b;
}

void Buffer::write_at(std::uint64_t off, const Buffer& src) {
  assert(off + src.size_ <= size_);
  assert(materialized_ == src.materialized_);
  if (!materialized_ || src.size_ == 0) return;
  std::memcpy(data_.data() + off, src.data_.data(),
              static_cast<std::size_t>(src.size_));
}

void Buffer::xor_with(const Buffer& other) {
  if (!materialized_ || !other.materialized_) {
    assert(materialized_ == other.materialized_);
    return;
  }
  const std::uint64_t n = std::min(size_, other.size_);
  xor_words({data_.data(), static_cast<std::size_t>(n)},
            {other.data_.data(), static_cast<std::size_t>(n)});
}

void Buffer::xor_at(std::uint64_t off, const Buffer& src) {
  assert(off + src.size_ <= size_);
  assert(materialized_ == src.materialized_);
  if (!materialized_ || src.size_ == 0) return;
  xor_words({data_.data() + off, static_cast<std::size_t>(src.size_)},
            {src.data_.data(), static_cast<std::size_t>(src.size_)});
}

void Buffer::resize(std::uint64_t size) {
  size_ = size;
  if (materialized_) data_.resize(static_cast<std::size_t>(size), std::byte{0});
}

bool Buffer::operator==(const Buffer& other) const {
  if (size_ != other.size_) return false;
  if (!materialized_ || !other.materialized_) {
    return materialized_ == other.materialized_;
  }
  return data_ == other.data_;
}

}  // namespace csar
