#include "buffer.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <utility>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "parity.hpp"

namespace csar {

Buffer Buffer::real(std::uint64_t size) {
  Buffer b;
  b.size_ = size;
  b.materialized_ = true;
  if (size > 0) {
    b.data_ = std::make_shared<std::vector<std::byte>>(
        static_cast<std::size_t>(size), std::byte{0});
  }
  return b;
}

Buffer Buffer::phantom(std::uint64_t size) {
  Buffer b;
  b.size_ = size;
  b.materialized_ = false;
  return b;
}

Buffer Buffer::from_bytes(std::vector<std::byte> bytes) {
  Buffer b;
  b.size_ = bytes.size();
  b.materialized_ = true;
  if (!bytes.empty()) {
    b.data_ = std::make_shared<std::vector<std::byte>>(std::move(bytes));
  }
  return b;
}

void Buffer::ensure_unique() {
  if (data_ && data_.use_count() > 1) {
    const std::byte* p = data_->data() + off_;
    data_ = std::make_shared<std::vector<std::byte>>(p, p + size_);
    off_ = 0;
  }
}

namespace {

// Buffer::pattern's byte stream: byte[i] = bits 33..40 of the (i+1)th state
// of the LCG x' = A*x + C started from the mixed seed. The recurrence is a
// serial latency chain, so the fast paths run K jump-ahead lanes in
// parallel: lane j holds state i+1+j and stepping a lane by K is
// x' = A_K*x + C_K with A_K = A^K, C_K = (A^{K-1}+...+A+1)*C (mod 2^64).
// Every path emits the identical byte sequence — storm shadows, scrub
// checksums and run fingerprints all depend on the exact bytes.
constexpr std::uint64_t kLcgA = 6364136223846793005ULL;
constexpr std::uint64_t kLcgC = 1442695040888963407ULL;

/// Fill `lane[0..K)` with states x_{1..K} (given x = x_0), returning
/// {A_K, C_K} for the K-step jump.
template <int K>
std::pair<std::uint64_t, std::uint64_t> lcg_lanes(std::uint64_t x,
                                                  std::uint64_t* lane) {
  std::uint64_t aK = 1, cK = 0;
  for (int j = 0; j < K; ++j) {
    x = x * kLcgA + kLcgC;
    lane[j] = x;
    cK = cK * kLcgA + kLcgC;
    aK *= kLcgA;
  }
  return {aK, cK};
}

void pattern_fill_scalar(std::byte* out, std::uint64_t size, std::uint64_t x) {
  std::uint64_t i = 0;
  if (size >= 8) {
    std::uint64_t lane[8];
    const auto [a8, c8] = lcg_lanes<8>(x, lane);
    if constexpr (std::endian::native == std::endian::little) {
      for (; i + 8 <= size; i += 8) {
        std::uint64_t packed = 0;
        for (int j = 0; j < 8; ++j) {
          packed |= ((lane[j] >> 33) & 0xFF) << (8 * j);
          lane[j] = lane[j] * a8 + c8;
        }
        std::memcpy(out + i, &packed, 8);  // byte j lands at offset i+j
      }
    } else {
      for (; i + 8 <= size; i += 8) {
        for (int j = 0; j < 8; ++j) {
          out[i + j] = static_cast<std::byte>((lane[j] >> 33) & 0xFF);
          lane[j] = lane[j] * a8 + c8;
        }
      }
    }
    // At exit lane[j] holds the state for index i+j; the tail (fewer than
    // 8 bytes) reads straight from the lanes.
    for (std::uint64_t j = 0; i < size; ++i, ++j) {
      out[i] = static_cast<std::byte>((lane[j] >> 33) & 0xFF);
    }
  } else {
    for (; i < size; ++i) {
      x = x * kLcgA + kLcgC;
      out[i] = static_cast<std::byte>((x >> 33) & 0xFF);
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
/// AVX-512 fill: 32 lanes in four zmm registers (enough independent chains
/// to hide vpmullq latency). vpsrlq extracts bits 33.., vpmovqb truncates
/// eight qwords to eight bytes in one instruction. Same bytes as the
/// scalar path; selected at runtime only when the CPU has AVX512DQ.
// GCC-12's unmasked srli intrinsic passes an undefined register as the
// merge operand, tripping -Wmaybe-uninitialized; it is by-design dead.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f,avx512dq")))
void pattern_fill_avx512(std::byte* out, std::uint64_t size, std::uint64_t x) {
  constexpr int K = 32;
  if (size < K) {
    pattern_fill_scalar(out, size, x);
    return;
  }
  alignas(64) std::uint64_t lane[K];
  const auto [aK, cK] = lcg_lanes<K>(x, lane);
  const __m512i va = _mm512_set1_epi64(static_cast<long long>(aK));
  const __m512i vc = _mm512_set1_epi64(static_cast<long long>(cK));
  __m512i v0 = _mm512_load_si512(lane + 0);
  __m512i v1 = _mm512_load_si512(lane + 8);
  __m512i v2 = _mm512_load_si512(lane + 16);
  __m512i v3 = _mm512_load_si512(lane + 24);
  std::uint64_t i = 0;
  for (; i + K <= size; i += K) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i + 0),
                     _mm512_maskz_cvtepi64_epi8(0xFF, _mm512_srli_epi64(v0, 33)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i + 8),
                     _mm512_maskz_cvtepi64_epi8(0xFF, _mm512_srli_epi64(v1, 33)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i + 16),
                     _mm512_maskz_cvtepi64_epi8(0xFF, _mm512_srli_epi64(v2, 33)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i + 24),
                     _mm512_maskz_cvtepi64_epi8(0xFF, _mm512_srli_epi64(v3, 33)));
    v0 = _mm512_add_epi64(_mm512_mullo_epi64(v0, va), vc);
    v1 = _mm512_add_epi64(_mm512_mullo_epi64(v1, va), vc);
    v2 = _mm512_add_epi64(_mm512_mullo_epi64(v2, va), vc);
    v3 = _mm512_add_epi64(_mm512_mullo_epi64(v3, va), vc);
  }
  _mm512_store_si512(lane + 0, v0);
  _mm512_store_si512(lane + 8, v1);
  _mm512_store_si512(lane + 16, v2);
  _mm512_store_si512(lane + 24, v3);
  for (std::uint64_t j = 0; i < size; ++i, ++j) {
    out[i] = static_cast<std::byte>((lane[j] >> 33) & 0xFF);
  }
}
#pragma GCC diagnostic pop
#endif  // __x86_64__ && __GNUC__

void pattern_fill(std::byte* out, std::uint64_t size, std::uint64_t x) {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool kHasAvx512 = __builtin_cpu_supports("avx512dq") != 0;
  if (kHasAvx512) {
    pattern_fill_avx512(out, size, x);
    return;
  }
#endif
  pattern_fill_scalar(out, size, x);
}

}  // namespace

Buffer Buffer::pattern(std::uint64_t size, std::uint64_t seed) {
  Buffer b = real(size);
  // Cheap per-byte mix; distinct seeds give distinct, reproducible content.
  const std::uint64_t x0 =
      seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  if (size > 0) pattern_fill(b.data_->data(), size, x0);
  return b;
}

std::span<const std::byte> Buffer::bytes() const {
  assert(materialized_);
  if (!data_) return {};
  return {data_->data() + off_, static_cast<std::size_t>(size_)};
}

std::span<std::byte> Buffer::mutable_bytes() {
  assert(materialized_);
  if (!data_) return {};
  ensure_unique();
  return {data_->data() + off_, static_cast<std::size_t>(size_)};
}

Buffer Buffer::slice(std::uint64_t off, std::uint64_t len) const {
  assert(off + len <= size_);
  if (!materialized_) return phantom(len);
  Buffer b;
  b.size_ = len;
  b.materialized_ = true;
  if (len > 0) {
    b.data_ = data_;
    b.off_ = off_ + off;
  }
  return b;
}

void Buffer::write_at(std::uint64_t off, const Buffer& src) {
  assert(off + src.size_ <= size_);
  assert(materialized_ == src.materialized_);
  if (!materialized_ || src.size_ == 0) return;
  ensure_unique();
  // memmove: after ensure_unique an overlap is only possible when `src` is
  // *this buffer itself* (a shared slice would have forced a fresh copy),
  // and memmove handles that exactly like the old copy-the-slice-first
  // representation did.
  std::memmove(data_->data() + off_ + off, src.data_->data() + src.off_,
               static_cast<std::size_t>(src.size_));
}

void Buffer::xor_with(const Buffer& other) {
  if (!materialized_ || !other.materialized_) {
    assert(materialized_ == other.materialized_);
    return;
  }
  const std::uint64_t n = std::min(size_, other.size_);
  if (n == 0) return;
  ensure_unique();
  xor_words({data_->data() + off_, static_cast<std::size_t>(n)},
            {other.data_->data() + other.off_, static_cast<std::size_t>(n)});
}

void Buffer::xor_at(std::uint64_t off, const Buffer& src) {
  assert(off + src.size_ <= size_);
  assert(materialized_ == src.materialized_);
  if (!materialized_ || src.size_ == 0) return;
  ensure_unique();
  xor_words({data_->data() + off_ + off, static_cast<std::size_t>(src.size_)},
            {src.data_->data() + src.off_, static_cast<std::size_t>(src.size_)});
}

void Buffer::resize(std::uint64_t size) {
  if (!materialized_) {
    size_ = size;
    return;
  }
  if (size == size_) return;
  if (size < size_) {
    size_ = size;  // shrink the view; excess backing stays shared
    if (size == 0) {
      data_.reset();
      off_ = 0;
    }
    return;
  }
  // Grow: zero-extend into exclusively-owned, exactly-sized backing.
  auto nv = std::make_shared<std::vector<std::byte>>(
      static_cast<std::size_t>(size), std::byte{0});
  if (data_ && size_ > 0) {
    std::memcpy(nv->data(), data_->data() + off_,
                static_cast<std::size_t>(size_));
  }
  data_ = std::move(nv);
  off_ = 0;
  size_ = size;
}

bool Buffer::operator==(const Buffer& other) const {
  if (size_ != other.size_) return false;
  if (!materialized_ || !other.materialized_) {
    return materialized_ == other.materialized_;
  }
  if (size_ == 0) return true;
  return std::memcmp(data_->data() + off_, other.data_->data() + other.off_,
                     static_cast<std::size_t>(size_)) == 0;
}

}  // namespace csar
