// Byte-size units and alignment arithmetic used throughout CSAR.
#pragma once

#include <cstdint>
#include <string>

namespace csar {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// The paper reports sizes in decimal MB (e.g. "BTIO Class B outputs about
/// 1600 MB"); we keep a decimal constant for workload definitions.
inline constexpr std::uint64_t MB = 1000ULL * 1000ULL;

/// Ceiling division for unsigned quantities.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Round `x` down to a multiple of `align` (align > 0).
constexpr std::uint64_t align_down(std::uint64_t x, std::uint64_t align) {
  return x - (x % align);
}

/// Round `x` up to a multiple of `align` (align > 0).
constexpr std::uint64_t align_up(std::uint64_t x, std::uint64_t align) {
  return div_ceil(x, align) * align;
}

/// Human-readable byte count, e.g. "1.50 MiB". Used by reports and logs.
std::string format_bytes(std::uint64_t bytes);

/// Bandwidth pretty-printer, e.g. "87.3 MB/s" (decimal, as the paper plots).
std::string format_bandwidth(double bytes_per_sec);

}  // namespace csar
