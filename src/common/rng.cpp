#include "rng.hpp"

#include <cmath>

namespace csar {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xm) {
  double u = uniform();
  // Guard against division by zero (u == 0 would be the infinite tail).
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace csar
