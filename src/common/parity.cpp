#include "parity.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace csar {

void xor_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  assert(src.size() <= dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
}

void xor_words_single(std::span<std::byte> dst,
                      std::span<const std::byte> src) {
  assert(src.size() <= dst.size());
  std::size_t n = src.size();
  std::size_t i = 0;
  constexpr std::size_t W = sizeof(std::uint64_t);
  for (; i + W <= n; i += W) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst.data() + i, W);
    std::memcpy(&b, src.data() + i, W);
    a ^= b;
    std::memcpy(dst.data() + i, &a, W);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void xor_words(std::span<std::byte> dst, std::span<const std::byte> src) {
  assert(src.size() <= dst.size());
  const std::size_t n = src.size();
  std::size_t i = 0;
  constexpr std::size_t W = sizeof(std::uint64_t);
  // 32-byte blocks (4 independent words per iteration) measure fastest
  // here: wide enough to keep multiple XORs in flight, narrow enough that
  // GCC still vectorizes the block instead of spilling the local arrays.
  constexpr std::size_t B = 4 * W;
  for (; i + B <= n; i += B) {
    std::uint64_t a[4];
    std::uint64_t b[4];
    std::memcpy(a, dst.data() + i, B);
    std::memcpy(b, src.data() + i, B);
    a[0] ^= b[0];
    a[1] ^= b[1];
    a[2] ^= b[2];
    a[3] ^= b[3];
    std::memcpy(dst.data() + i, a, B);
  }
  for (; i + W <= n; i += W) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst.data() + i, W);
    std::memcpy(&b, src.data() + i, W);
    a ^= b;
    std::memcpy(dst.data() + i, &a, W);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void xor_accumulate(std::span<std::byte> dst,
                    std::span<const std::span<const std::byte>> sources) {
  for (const auto& s : sources) {
    xor_words(dst, s.subspan(0, std::min(s.size(), dst.size())));
  }
}

}  // namespace csar
