#include "units.hpp"

#include <array>
#include <cstdio>

namespace csar {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 4> kSuffix = {"B", "KiB", "MiB",
                                                         "GiB"};
  double v = static_cast<double>(bytes);
  std::size_t s = 0;
  while (v >= 1024.0 && s + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++s;
  }
  char buf[64];
  if (s == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kSuffix[s]);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_sec / 1e6);
  return buf;
}

}  // namespace csar
