// Compatibility shim: the XOR parity kernels moved into the unified
// redundancy codec (common/codec.hpp) alongside the GF(2^8) Reed-Solomon
// routines, so both share one runtime-dispatch point. Include codec.hpp in
// new code.
#pragma once

#include "common/codec.hpp"
