// XOR parity kernels.
//
// The Swift/RAID paper (and §3 of the CSAR paper) reports that computing
// parity one machine word at a time instead of one byte at a time
// significantly improves RAID5/Hybrid performance. We keep both kernels: the
// word-wise one is the production path; the byte-wise one exists for the
// ablation benchmark reproducing that observation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace csar {

/// dst[i] ^= src[i], one byte at a time (deliberately naive baseline).
void xor_bytes(std::span<std::byte> dst, std::span<const std::byte> src);

/// dst[i] ^= src[i], one 64-bit word at a time with a byte tail (the
/// pre-blocking kernel, kept for the ablation benchmark).
void xor_words_single(std::span<std::byte> dst, std::span<const std::byte> src);

/// dst[i] ^= src[i], 32-byte blocks of four independent 64-bit words per
/// iteration (autovectorizer-friendly at the default -O2), then a word tail
/// and a byte tail. Handles unaligned buffers via memcpy word loads, which
/// GCC lowers to plain loads on x86.
void xor_words(std::span<std::byte> dst, std::span<const std::byte> src);

/// Parity of `sources` accumulated into `dst` (dst must be zero-filled or
/// hold the first source). Sources shorter than dst contribute only their
/// prefix; this matches parity of zero-padded stripe units.
void xor_accumulate(std::span<std::byte> dst,
                    std::span<const std::span<const std::byte>> sources);

}  // namespace csar
