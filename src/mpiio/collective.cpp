#include "mpiio/collective.hpp"

#include <algorithm>
#include <cassert>

#include "common/units.hpp"

namespace csar::mpiio {

CollectiveFile::CollectiveFile(raid::Rig& rig, pvfs::OpenFile file,
                               std::uint32_t nprocs, CollectiveParams params)
    : rig_(&rig),
      file_(file),
      nprocs_(nprocs),
      p_(params),
      barrier_(rig.sim, nprocs),
      writes_(nprocs),
      reads_(nprocs),
      write_status_(nprocs, Result<void>::success()) {
  assert(rig.p.nclients >= nprocs && "one rig client per rank");
  if (p_.cb_nodes == 0) {
    p_.cb_nodes = std::min(nprocs, rig.p.nservers);
  }
  p_.cb_nodes = std::min(p_.cb_nodes, nprocs);
}

sim::Task<Result<void>> CollectiveFile::write_at(std::uint32_t rank,
                                                 std::uint64_t off,
                                                 Buffer data) {
  co_return co_await rig_->client_fs(rank).write(file_, off,
                                                 std::move(data));
}

sim::Task<Result<Buffer>> CollectiveFile::read_at(std::uint32_t rank,
                                                  std::uint64_t off,
                                                  std::uint64_t len) {
  co_return co_await rig_->client_fs(rank).read(file_, off, len);
}

sim::Task<void> CollectiveFile::barrier(std::uint32_t /*rank*/) {
  co_await barrier_.arrive_and_wait();
}

Interval CollectiveFile::aggregator_range(std::uint64_t lo, std::uint64_t hi,
                                          std::uint32_t a) const {
  // ROMIO partitions the merged extent evenly among the aggregators, on
  // file-domain boundaries.
  const std::uint64_t span = hi - lo;
  const std::uint64_t per = div_ceil(span, p_.cb_nodes);
  const std::uint64_t start = std::min(hi, lo + a * per);
  const std::uint64_t end = std::min(hi, start + per);
  return {start, end};
}

sim::Task<Result<void>> CollectiveFile::write_at_all(std::uint32_t rank,
                                                     std::uint64_t off,
                                                     Buffer data) {
  std::vector<Piece> pieces;
  if (!data.empty()) pieces.push_back(Piece{off, std::move(data)});
  co_return co_await write_at_all_v(rank, std::move(pieces));
}

sim::Task<Result<void>> CollectiveFile::write_at_all_v(
    std::uint32_t rank, std::vector<Piece> pieces) {
  writes_[rank] = PendingWrite{std::move(pieces), true};
  co_await barrier_.arrive_and_wait();

  // Every rank sees all requests now; compute the merged extent.
  std::uint64_t lo = ~0ULL;
  std::uint64_t hi = 0;
  for (const auto& w : writes_) {
    if (!w.present) continue;
    for (const auto& piece : w.pieces) {
      if (piece.data.empty()) continue;
      lo = std::min(lo, piece.off);
      hi = std::max(hi, piece.off + piece.data.size());
    }
  }

  if (hi > 0 && rank < p_.cb_nodes) {
    // Phase 1+2 for this aggregator: pull overlapping bytes from their
    // owner ranks over the fabric, then issue large contiguous writes.
    const Interval range = aggregator_range(lo, hi, rank);
    IntervalMap<Buffer, BufferSlicer> content;
    for (std::uint32_t src = 0; src < nprocs_; ++src) {
      const auto& w = writes_[src];
      if (!w.present) continue;
      std::uint64_t wire_bytes = 0;
      for (const auto& piece : w.pieces) {
        const std::uint64_t s = std::max(range.start, piece.off);
        const std::uint64_t e =
            std::min(range.end, piece.off + piece.data.size());
        if (s >= e) continue;
        wire_bytes += e - s;
        content.insert(s, e, piece.data.slice(s - piece.off, e - s));
      }
      if (src != rank && wire_bytes > 0) {
        // One coalesced exchange message per (source, aggregator) pair.
        co_await rig_->fabric.transfer(rank_node(src), rank_node(rank),
                                       wire_bytes);
      }
    }
    // Write each covered run in cb_buffer pieces (the exchange rounds).
    std::vector<Interval> runs;
    content.for_each([&](std::uint64_t s, std::uint64_t e, const Buffer&) {
      if (!runs.empty() && runs.back().end == s) {
        runs.back().end = e;
      } else {
        runs.push_back({s, e});
      }
    });
    for (const auto& run : runs) {
      for (std::uint64_t pos = run.start; pos < run.end;
           pos += p_.cb_buffer) {
        const std::uint64_t n = std::min(p_.cb_buffer, run.end - pos);
        // Assemble the piece from the gathered chunks.
        const auto chunks = content.query(pos, pos + n);
        bool phantom = false;
        for (const auto& c : chunks) {
          if (!c.value->materialized()) phantom = true;
        }
        Buffer piece = phantom ? Buffer::phantom(n) : Buffer::real(n);
        if (!phantom) {
          for (const auto& c : chunks) {
            piece.write_at(c.start - pos,
                           c.value->slice(c.start - c.entry_start,
                                          c.end - c.start));
          }
        }
        auto wr = co_await rig_->client_fs(rank).write(file_, pos,
                                                       std::move(piece));
        if (!wr.ok()) {
          write_status_[rank] = wr;
          failed_ = true;
        }
      }
    }
  }

  co_await barrier_.arrive_and_wait();
  const bool ok = !failed_;
  writes_[rank] = PendingWrite{};
  co_await barrier_.arrive_and_wait();
  if (rank == 0) failed_ = false;
  if (!ok) co_return Error{Errc::io_error, "collective write failed"};
  co_return Result<void>::success();
}

sim::Task<Result<Buffer>> CollectiveFile::read_at_all(std::uint32_t rank,
                                                      std::uint64_t off,
                                                      std::uint64_t len) {
  reads_[rank] = PendingRead{off, len, true};
  co_await barrier_.arrive_and_wait();

  std::uint64_t lo = ~0ULL;
  std::uint64_t hi = 0;
  for (const auto& r : reads_) {
    if (!r.present || r.len == 0) continue;
    lo = std::min(lo, r.off);
    hi = std::max(hi, r.off + r.len);
  }

  // Aggregators read their partition; results land in the shared member.
  IntervalMap<Buffer, BufferSlicer>* content = &read_content_;

  if (hi > 0 && rank < p_.cb_nodes) {
    const Interval range = aggregator_range(lo, hi, rank);
    if (range.end > range.start) {
      auto rd = co_await rig_->client_fs(rank).read(file_, range.start,
                                                    range.end - range.start);
      if (rd.ok()) {
        content->insert(range.start, range.end, std::move(rd.value()));
      } else {
        failed_ = true;
      }
    }
  }
  co_await barrier_.arrive_and_wait();

  Result<Buffer> out = Buffer::real(0);
  if (failed_) {
    out = Error{Errc::io_error, "collective read failed"};
  } else if (len > 0) {
    // Pull this rank's bytes back from the aggregators over the fabric.
    bool phantom = false;
    const auto chunks = content->query(off, off + len);
    for (const auto& c : chunks) {
      if (!c.value->materialized()) phantom = true;
      const std::uint32_t agg = [&] {
        for (std::uint32_t a = 0; a < p_.cb_nodes; ++a) {
          const Interval range = aggregator_range(lo, hi, a);
          if (c.start >= range.start && c.start < range.end) return a;
        }
        return 0u;
      }();
      if (agg != rank) {
        co_await rig_->fabric.transfer(rank_node(agg), rank_node(rank),
                                       c.end - c.start);
      }
    }
    Buffer mine = phantom ? Buffer::phantom(len) : Buffer::real(len);
    if (!phantom) {
      for (const auto& c : chunks) {
        mine.write_at(c.start - off,
                      c.value->slice(c.start - c.entry_start,
                                     c.end - c.start));
      }
    }
    out = std::move(mine);
  }

  co_await barrier_.arrive_and_wait();  // everyone done extracting
  reads_[rank] = PendingRead{};
  co_await barrier_.arrive_and_wait();
  if (rank == 0) {
    failed_ = false;
    read_content_.clear();
  }
  co_return out;
}

}  // namespace csar::mpiio
