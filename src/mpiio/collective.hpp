// A ROMIO-like MPI-IO layer over CSAR: independent and collective file I/O
// with two-phase collective buffering.
//
// Every application the paper evaluates reaches PVFS through ROMIO ("ROMIO
// optimizes small, non-contiguous accesses by merging them into large
// requests when possible... for the BTIO benchmark, the PVFS layer sees
// large writes, most of which are about 4 MB", §6.5). This module provides
// that substrate: in a collective write, the ranks' requests are merged,
// the covered file range is partitioned among `cb_nodes` aggregator ranks,
// data is exchanged rank->aggregator over the fabric, and each aggregator
// issues large contiguous writes in `cb_buffer` pieces — exactly ROMIO's
// generalized two-phase algorithm.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/interval_map.hpp"
#include "common/interval_set.hpp"
#include "raid/rig.hpp"
#include "sim/sync.hpp"

namespace csar::mpiio {

struct CollectiveParams {
  /// Aggregator count (ROMIO's cb_nodes). 0 = min(nprocs, nservers).
  std::uint32_t cb_nodes = 0;
  /// Collective buffer size per aggregator per exchange round
  /// (ROMIO's cb_buffer_size; 4 MiB default, like the paper's era).
  std::uint64_t cb_buffer = 4ull << 20;
};

/// A file opened by an `nprocs`-rank communicator whose rank r runs on the
/// rig's client r. Collective calls must be made by every rank.
class CollectiveFile {
 public:
  CollectiveFile(raid::Rig& rig, pvfs::OpenFile file, std::uint32_t nprocs,
                 CollectiveParams params = {});

  const pvfs::OpenFile& handle() const { return file_; }
  std::uint32_t nprocs() const { return nprocs_; }
  std::uint32_t cb_nodes() const { return p_.cb_nodes; }

  // --- independent I/O (plain pass-through to the rank's client) ---
  sim::Task<Result<void>> write_at(std::uint32_t rank, std::uint64_t off,
                                   Buffer data);
  sim::Task<Result<Buffer>> read_at(std::uint32_t rank, std::uint64_t off,
                                    std::uint64_t len);

  /// One piece of a (possibly non-contiguous) rank request — what an MPI
  /// derived datatype flattens to.
  struct Piece {
    std::uint64_t off = 0;
    Buffer data;
  };

  // --- collective two-phase I/O ---
  /// Every rank calls with its own (possibly empty) request; completes for
  /// all ranks when the merged region has been written by the aggregators.
  sim::Task<Result<void>> write_at_all(std::uint32_t rank, std::uint64_t off,
                                       Buffer data);

  /// Non-contiguous collective write: each rank contributes any number of
  /// pieces (an MPI datatype's flattened offset/length list). This is where
  /// two-phase I/O shines — interleaved per-rank records merge into large
  /// contiguous aggregator writes (§6.5).
  sim::Task<Result<void>> write_at_all_v(std::uint32_t rank,
                                         std::vector<Piece> pieces);
  /// Every rank calls; aggregators read the merged region and the fabric
  /// redistributes each rank's bytes back to it.
  sim::Task<Result<Buffer>> read_at_all(std::uint32_t rank,
                                        std::uint64_t off, std::uint64_t len);

  /// Collective barrier (MPI_Barrier over the communicator).
  sim::Task<void> barrier(std::uint32_t rank);

 private:
  struct BufferSlicer {
    Buffer operator()(const Buffer& b, std::uint64_t off,
                      std::uint64_t len) const {
      return b.slice(off, len);
    }
  };
  struct PendingWrite {
    std::vector<Piece> pieces;
    bool present = false;
  };
  struct PendingRead {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    bool present = false;
  };

  /// The file range [start, end) aggregator `a` owns for this collective.
  Interval aggregator_range(std::uint64_t lo, std::uint64_t hi,
                            std::uint32_t a) const;
  hw::NodeId rank_node(std::uint32_t rank) const {
    return rig_->client(rank).node_id();
  }

  raid::Rig* rig_;
  pvfs::OpenFile file_;
  std::uint32_t nprocs_;
  CollectiveParams p_;
  sim::Barrier barrier_;
  // Collective-call shared state (valid between the two barriers).
  std::vector<PendingWrite> writes_;
  std::vector<PendingRead> reads_;
  std::vector<Result<void>> write_status_;
  IntervalMap<Buffer, BufferSlicer> read_content_;
  bool failed_ = false;
};

}  // namespace csar::mpiio
