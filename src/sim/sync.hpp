// Synchronization primitives for simulation coroutines.
//
// All primitives are strictly FIFO: waiters are released in arrival order,
// which both avoids starvation and keeps runs deterministic. None of these
// are thread-safe — the simulation is single-threaded by design.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace csar::sim {

/// FIFO mutex. Ownership passes directly to the next waiter on unlock.
class Mutex {
 public:
  explicit Mutex(Simulation& sim) : sim_(&sim) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Awaitable acquire. Completes immediately when free.
  auto lock() {
    struct Awaiter {
      Mutex* m;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) const {
        if (!m->held_) {
          m->held_ = true;
          return false;  // acquired without suspending
        }
        m->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Release; the longest-waiting acquirer (if any) becomes the owner and is
  /// resumed at the current time.
  void unlock() {
    assert(held_);
    if (waiters_.empty()) {
      held_ = false;
      return;
    }
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_now(h);  // ownership transfers; held_ stays true
  }

  bool held() const { return held_; }
  std::size_t waiting() const { return waiters_.size(); }

  /// RAII guard; obtain with `auto g = co_await mutex.scoped();`.
  class Guard {
   public:
    explicit Guard(Mutex* m) : m_(m) {}
    Guard(Guard&& o) noexcept : m_(std::exchange(o.m_, nullptr)) {}
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    ~Guard() {
      if (m_) m_->unlock();
    }

   private:
    Mutex* m_;
  };

  /// Awaitable acquire returning a Guard.
  Task<Guard> scoped() {
    co_await lock();
    co_return Guard{this};
  }

 private:
  Simulation* sim_;
  bool held_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// FIFO counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::uint64_t initial)
      : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() {
    struct Awaiter {
      Semaphore* s;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) const {
        if (s->count_ > 0) {
          --s->count_;
          return false;
        }
        s->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_now(h);  // the unit passes straight to the waiter
      return;
    }
    ++count_;
  }

  std::uint64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulation* sim_;
  std::uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot event: wait() suspends until set() is called; set releases all
/// current and future waiters.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  auto wait() {
    struct Awaiter {
      Event* e;
      bool await_ready() const noexcept { return e->set_; }
      void await_suspend(std::coroutine_handle<> h) const {
        e->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->schedule_now(h);
    waiters_.clear();
  }

  bool is_set() const { return set_; }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier for `parties` processes (MPI_Barrier analogue for the
/// parallel workload generators).
class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t parties)
      : sim_(&sim), parties_(parties) {
    assert(parties > 0);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Awaitable: suspends until all parties have arrived; the last arrival
  /// releases everyone and resets the barrier for the next round.
  auto arrive_and_wait() {
    struct Awaiter {
      Barrier* b;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) const {
        if (b->arrived_ + 1 == b->parties_) {
          // Last arrival: release the round without suspending.
          b->arrived_ = 0;
          for (auto w : b->waiters_) b->sim_->schedule_now(w);
          b->waiters_.clear();
          return false;
        }
        ++b->arrived_;
        b->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counter that lets a coroutine wait for N forked activities to finish.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(&sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::uint64_t n = 1) { count_ += n; }

  void done() {
    assert(count_ > 0);
    if (--count_ == 0) {
      for (auto h : waiters_) sim_->schedule_now(h);
      waiters_.clear();
    }
  }

  auto wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const noexcept { return wg->count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        wg->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  std::uint64_t pending() const { return count_; }

 private:
  Simulation* sim_;
  std::uint64_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Token-bucket rate limiter for pacing bulk transfers (e.g. rebuild traffic
/// yielding bandwidth to foreground IO). Callers `take(bytes)` before issuing
/// work; when the bucket is dry the caller sleeps until enough tokens have
/// accrued at `rate_per_sec`. A Mutex keeps takers FIFO so pacing stays
/// deterministic. `rate_per_sec <= 0` disables pacing (take() still counts).
class TokenBucket {
 public:
  TokenBucket(Simulation& sim, double rate_per_sec, std::uint64_t burst)
      : sim_(&sim),
        rate_(rate_per_sec),
        burst_(burst > 0 ? burst : 1),
        tokens_(static_cast<double>(burst_)),
        last_(sim.now()),
        m_(sim) {}
  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  Task<void> take(std::uint64_t n) {
    taken_ += n;
    if (rate_ <= 0.0) co_return;
    co_await m_.lock();
    refill();
    // A request larger than the burst drains in burst-sized gulps so a huge
    // unit can never starve the clock arithmetic.
    while (n > 0) {
      const std::uint64_t gulp = n < burst_ ? n : burst_;
      const double want = static_cast<double>(gulp);
      while (tokens_ < want) {
        const std::uint64_t deficit =
            static_cast<std::uint64_t>(want - tokens_) + 1;
        co_await sim_->sleep(transfer_time(deficit, rate_));
        refill();
      }
      tokens_ -= want;
      n -= gulp;
    }
    m_.unlock();
  }

  /// Total bytes ever requested through take(), paced or not.
  std::uint64_t taken() const { return taken_; }

 private:
  /// Fractional tokens are kept (tokens_ is a double): flooring the earned
  /// amount and resetting last_ would discard up to one token per refill,
  /// and a 1-byte deficit could then respin forever without ever accruing.
  void refill() {
    const Time now = sim_->now();
    const double earned = to_seconds(now - last_) * rate_;
    last_ = now;
    const double cap = static_cast<double>(burst_);
    tokens_ = tokens_ + earned > cap ? cap : tokens_ + earned;
  }

  Simulation* sim_;
  double rate_;
  std::uint64_t burst_;
  double tokens_;
  Time last_;
  Mutex m_;
  std::uint64_t taken_ = 0;
};

/// Run all tasks as concurrent child processes; completes when every one has
/// finished. The workhorse for fan-out I/O (a client writing to N servers).
Task<void> when_all(Simulation& sim, std::vector<Task<void>> tasks);

}  // namespace csar::sim
