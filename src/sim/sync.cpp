#include "sim/sync.hpp"

namespace csar::sim {

Task<void> when_all(Simulation& sim, std::vector<Task<void>> tasks) {
  std::vector<ProcessHandle> handles;
  handles.reserve(tasks.size());
  for (auto& t : tasks) handles.push_back(sim.spawn(std::move(t)));
  for (auto& h : handles) co_await h.join();
}

}  // namespace csar::sim
