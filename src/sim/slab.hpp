// Size-classed slab allocator for coroutine frames and other hot simulator
// allocations.
//
// The DES steady state creates and destroys millions of short-lived
// coroutine frames (every co_awaited Task<T> is one heap allocation under
// the default allocator). The slab recycles freed blocks through per-class
// free lists carved from large chunks, so the steady state never touches
// malloc. Blocks are never returned to the OS; peak usage is bounded by the
// peak number of live frames, which the simulator's structure keeps small.
//
// Single-threaded by design, like the simulator itself.
//
// Escape hatch: set CSAR_SIM_SLAB=OFF in the environment to route every
// call straight to ::operator new/delete. Sanitizer runs want this —
// recycled slab blocks would otherwise hide use-after-free of coroutine
// frames from ASan's poisoning.
#pragma once

#include <cstddef>
#include <cstdint>

namespace csar::sim::slab {

/// True unless CSAR_SIM_SLAB=OFF (checked once, cached).
bool enabled();

/// Allocate `n` bytes (16-byte aligned). Never returns nullptr.
void* allocate(std::size_t n);

/// Release a block obtained from allocate().
void deallocate(void* p) noexcept;

struct Stats {
  std::uint64_t allocs = 0;        ///< total allocate() calls
  std::uint64_t frees = 0;         ///< total deallocate() calls
  std::uint64_t recycled = 0;      ///< allocs served from a free list
  std::uint64_t fallback = 0;      ///< allocs too large for any class
  std::uint64_t chunk_bytes = 0;   ///< bytes reserved from the system
};
const Stats& stats();

}  // namespace csar::sim::slab
