// BandwidthServer: a FIFO resource that serves byte transfers at a fixed
// rate, the common model for NIC links, buses and disk streaming.
//
// Implementation uses virtual-clock reservation: an arriving transfer is
// booked from max(now, busy_until); there is no explicit queue, yet the
// result is exact FIFO service with full work conservation. Utilization and
// byte counters feed the bench reports.
#pragma once

#include <cstdint>

#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::sim {

class BandwidthServer {
 public:
  /// `bytes_per_sec` service rate; `per_op` fixed cost charged per transfer
  /// (e.g. interrupt/protocol overhead per message).
  BandwidthServer(Simulation& sim, double bytes_per_sec, Duration per_op = 0)
      : sim_(&sim), bytes_per_sec_(bytes_per_sec), per_op_(per_op) {}
  BandwidthServer(const BandwidthServer&) = delete;
  BandwidthServer& operator=(const BandwidthServer&) = delete;

  /// Occupy the resource for `bytes`; completes when the transfer finishes.
  Task<void> transfer(std::uint64_t bytes) {
    bytes_total_ += bytes;
    co_await occupy(per_op_ + transfer_time(bytes, bytes_per_sec_));
  }

  /// Occupy the resource for an explicit service duration (used for compute
  /// charges whose rate differs from the byte rate, e.g. XOR vs memcpy).
  Task<void> occupy(Duration dur) {
    const Time start =
        sim_->now() > busy_until_ ? sim_->now() : busy_until_;
    busy_until_ = start + dur;
    busy_time_ += dur;
    ++ops_total_;
    co_await sim_->sleep_until(busy_until_);
  }

  /// Earliest time a new transfer could start.
  Time available_at() const {
    return busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  }

  double bytes_per_sec() const { return bytes_per_sec_; }
  std::uint64_t bytes_total() const { return bytes_total_; }
  std::uint64_t ops_total() const { return ops_total_; }

  /// Cumulative busy time (for utilization = busy/elapsed).
  Duration busy_time() const { return busy_time_; }

 private:
  Simulation* sim_;
  double bytes_per_sec_;
  Duration per_op_;
  Time busy_until_ = 0;
  Duration busy_time_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::uint64_t ops_total_ = 0;
};

}  // namespace csar::sim
