// Small statistics helpers for experiments: running counters, min/mean/max
// accumulators and fixed-bucket latency histograms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace csar::sim {

/// Accumulates samples; reports count/min/mean/max.
class Accumulator {
 public:
  void add(double v) {
    ++n_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Measures aggregate bandwidth over a window of simulated time.
class BandwidthMeter {
 public:
  void start(Time t) { start_ = t; }
  void stop(Time t) { stop_ = t; }
  void add_bytes(std::uint64_t b) { bytes_ += b; }

  std::uint64_t bytes() const { return bytes_; }
  Duration elapsed() const { return stop_ > start_ ? stop_ - start_ : 0; }

  /// Bytes per second over the [start, stop] window; 0 if the window is
  /// empty.
  double bytes_per_sec() const {
    const Duration e = elapsed();
    return e == 0 ? 0.0
                  : static_cast<double>(bytes_) / to_seconds(e);
  }

 private:
  Time start_ = 0;
  Time stop_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Log2-bucketed histogram of durations (ns), for latency distributions.
class LatencyHistogram {
 public:
  LatencyHistogram() : buckets_(64, 0) {}

  void add(Duration d) {
    int b = 0;
    while ((1ULL << (b + 1)) <= d && b < 62) ++b;
    ++buckets_[static_cast<std::size_t>(d == 0 ? 0 : b + 1)];
    acc_.add(static_cast<double>(d));
  }

  const Accumulator& summary() const { return acc_; }

  /// Smallest duration `p` such that >= q fraction of samples are <= p
  /// (bucket upper bound approximation).
  Duration percentile(double q) const {
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(acc_.count()));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b];
      if (seen >= target) return b == 0 ? 0 : (1ULL << b);
    }
    return std::numeric_limits<Duration>::max();
  }

 private:
  std::vector<std::uint64_t> buckets_;
  Accumulator acc_;
};

}  // namespace csar::sim
