// Simulation: single-threaded discrete-event executor for Task coroutines.
//
// Processes are coroutines spawned on the simulation; they advance simulated
// time only by awaiting (sleep, channels, resources). Events with equal
// timestamps fire in schedule order (FIFO by sequence number), making every
// run deterministic.
//
// The hot path is allocation-free in steady state: events live in a
// hierarchical timer wheel (sim/event_queue.hpp), cancellable timers use a
// generation-stamped recycling pool instead of shared_ptr flags, spawned
// processes draw their completion state from a recycling pool, and coroutine
// frames come from the slab allocator (sim/slab.hpp).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/slab.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::sim {

class Simulation;

/// Observer of *named* spawned processes (see Simulation::spawn(t, name)).
/// Implemented by obs::Tracer to render long-lived simulator tasks as trace
/// lanes. on_task_start returns a token handed back at completion. The
/// wrapper that drives these callbacks runs inline on the spawning/finishing
/// resume chain — it never schedules an event — so installing an observer
/// cannot change simulated time or event counts.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;
  virtual std::uint64_t on_task_start(const char* name) = 0;
  virtual void on_task_end(std::uint64_t token) = 0;
};

/// Completion state of a spawned process. Pool-backed: slots recycle as soon
/// as the process finishes, with a generation stamp so handles to finished
/// processes stay valid (a stale generation reads as "done"). The first
/// joiner parks in an inline slot — the overwhelmingly common case — so
/// joining allocates nothing.
struct ProcessState {
  std::uint32_t gen = 0;
  bool done = false;
  std::coroutine_handle<> joiner0;  ///< inline single-joiner slot
  std::vector<std::coroutine_handle<>> extra_joiners;
};

/// Cancellation token for schedule_cancellable_at. Cancelling after the
/// event has fired (or was discarded) is a harmless no-op: the pool slot's
/// generation has moved on and the stale token no longer matches.
class CancelToken {
 public:
  CancelToken() = default;

  /// True iff this token was issued by schedule_cancellable_at (it may
  /// still be stale).
  bool armed() const { return q_ != nullptr; }

  /// Discard the pending event without touching its coroutine handle.
  void cancel() const {
    if (q_ != nullptr) q_->cancel(idx_, gen_);
  }

 private:
  friend class Simulation;
  CancelToken(EventQueue* q, std::uint32_t idx, std::uint32_t gen)
      : q_(q), idx_(idx), gen_(gen) {}

  EventQueue* q_ = nullptr;
  std::uint32_t idx_ = 0;
  std::uint32_t gen_ = 0;
};

/// Handle to a spawned process; lets other coroutines await its completion.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool valid() const { return sim_ != nullptr; }
  inline bool done() const;

  /// Awaitable: suspends until the process finishes (no-op if it already
  /// has). Join order among multiple joiners is FIFO.
  inline auto join() const;

 private:
  friend class Simulation;
  ProcessHandle(Simulation* sim, std::uint32_t idx, std::uint32_t gen)
      : sim_(sim), idx_(idx), gen_(gen) {}

  Simulation* sim_ = nullptr;
  std::uint32_t idx_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Start `t` as a process at the current time. The task body runs
  /// immediately (same timestamp) until its first suspension.
  ProcessHandle spawn(Task<void> t);

  /// spawn() with a process name reported to the installed TaskObserver
  /// (`name` must outlive the process — use a string literal). Without an
  /// observer this is exactly spawn(): no wrapper, no extra frame.
  ProcessHandle spawn(Task<void> t, const char* name);

  /// Install (or clear, with nullptr) the named-spawn observer. Not owned;
  /// must outlive every named process still running.
  void set_task_observer(TaskObserver* o) { observer_ = o; }
  TaskObserver* task_observer() const { return observer_; }

  /// Awaitable: resume after `d` simulated nanoseconds.
  auto sleep(Duration d) { return SleepAwaiter{this, now_ + d}; }

  /// Awaitable: resume at absolute time `t` (>= now).
  auto sleep_until(Time t) {
    return SleepAwaiter{this, t < now_ ? now_ : t};
  }

  /// Awaitable: yield to other same-time events, then resume.
  auto yield() { return SleepAwaiter{this, now_}; }

  /// Enqueue a raw coroutine resume at time `t` (>= now). Used by
  /// synchronization primitives; most code awaits instead.
  void schedule_at(Time t, std::coroutine_handle<> h);

  /// Enqueue a raw coroutine resume at the current time, after already
  /// queued same-time events.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Enqueue a cancellable resume at time `t`. Calling cancel() on the
  /// returned token before the event fires discards it without touching the
  /// handle — the building block for timeouts, where the same coroutine may
  /// instead be resumed by the operation completing.
  CancelToken schedule_cancellable_at(Time t, std::coroutine_handle<> h);

  /// Run until the event queue is empty. Returns the final time.
  Time run();

  /// Run until the queue is empty or `deadline` is passed; events after the
  /// deadline stay queued. Returns the current time.
  Time run_until(Time deadline);

  /// Execute one event; false if the queue was empty.
  bool step();

  /// Number of spawned processes that have not yet finished. Nonzero after
  /// run() indicates a deadlock (process blocked forever).
  std::size_t live_processes() const { return live_processes_; }

  /// Total events executed (diagnostics).
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  friend class ProcessHandle;

  struct SleepAwaiter {
    Simulation* sim;
    Time wake;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim->schedule_at(wake, h);
    }
    void await_resume() const noexcept {}
  };

  // Detached, self-destroying wrapper that runs a Task as a root process.
  struct RootCoro {
    struct promise_type {
      RootCoro get_return_object() const noexcept { return {}; }
      std::suspend_never initial_suspend() const noexcept { return {}; }
      std::suspend_never final_suspend() const noexcept { return {}; }
      void return_void() const noexcept {}
      void unhandled_exception() const noexcept { std::terminate(); }

      static void* operator new(std::size_t n) { return slab::allocate(n); }
      static void operator delete(void* p) noexcept { slab::deallocate(p); }
      static void operator delete(void* p, std::size_t) noexcept {
        slab::deallocate(p);
      }
    };
  };
  static RootCoro run_root(Task<void> t, Simulation* sim, std::uint32_t idx);
  static Task<void> observed(TaskObserver* obs, Task<void> inner,
                             const char* name);

  // --- process pool ---
  std::uint32_t alloc_proc();
  void finish_proc(std::uint32_t idx);
  bool proc_done(std::uint32_t idx, std::uint32_t gen) const {
    const ProcessState& st = procs_[idx];
    return st.gen != gen || st.done;
  }
  void proc_add_joiner(std::uint32_t idx, std::coroutine_handle<> h) {
    ProcessState& st = procs_[idx];
    if (!st.joiner0) {
      st.joiner0 = h;
    } else {
      st.extra_joiners.push_back(h);
    }
  }

  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_processes_ = 0;
  std::uint64_t events_executed_ = 0;
  TaskObserver* observer_ = nullptr;
  std::deque<ProcessState> procs_;  // deque: stable refs across growth
  std::vector<std::uint32_t> proc_free_;
};

inline bool ProcessHandle::done() const {
  return sim_ != nullptr && sim_->proc_done(idx_, gen_);
}

inline auto ProcessHandle::join() const {
  struct Awaiter {
    Simulation* sim;
    std::uint32_t idx;
    std::uint32_t gen;
    bool await_ready() const noexcept {
      return sim == nullptr || sim->proc_done(idx, gen);
    }
    void await_suspend(std::coroutine_handle<> h) const {
      sim->proc_add_joiner(idx, h);
    }
    void await_resume() const noexcept {}
  };
  return Awaiter{sim_, idx_, gen_};
}

}  // namespace csar::sim
