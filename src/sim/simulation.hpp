// Simulation: single-threaded discrete-event executor for Task coroutines.
//
// Processes are coroutines spawned on the simulation; they advance simulated
// time only by awaiting (sleep, channels, resources). Events with equal
// timestamps fire in schedule order (FIFO by sequence number), making every
// run deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::sim {

class Simulation;

/// Observer of *named* spawned processes (see Simulation::spawn(t, name)).
/// Implemented by obs::Tracer to render long-lived simulator tasks as trace
/// lanes. on_task_start returns a token handed back at completion. The
/// wrapper that drives these callbacks runs inline on the spawning/finishing
/// resume chain — it never schedules an event — so installing an observer
/// cannot change simulated time or event counts.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;
  virtual std::uint64_t on_task_start(const char* name) = 0;
  virtual void on_task_end(std::uint64_t token) = 0;
};

/// Shared completion state of a spawned process.
struct ProcessState {
  bool done = false;
  Simulation* sim = nullptr;
  std::vector<std::coroutine_handle<>> joiners;
};

/// Handle to a spawned process; lets other coroutines await its completion.
class ProcessHandle {
 public:
  ProcessHandle() = default;
  explicit ProcessHandle(std::shared_ptr<ProcessState> st)
      : state_(std::move(st)) {}

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done; }

  /// Awaitable: suspends until the process finishes (no-op if it already
  /// has). Join order among multiple joiners is FIFO.
  auto join() const {
    struct Awaiter {
      std::shared_ptr<ProcessState> st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) const {
        st->joiners.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<ProcessState> state_;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Start `t` as a process at the current time. The task body runs
  /// immediately (same timestamp) until its first suspension.
  ProcessHandle spawn(Task<void> t);

  /// spawn() with a process name reported to the installed TaskObserver
  /// (`name` must outlive the process — use a string literal). Without an
  /// observer this is exactly spawn(): no wrapper, no extra frame.
  ProcessHandle spawn(Task<void> t, const char* name);

  /// Install (or clear, with nullptr) the named-spawn observer. Not owned;
  /// must outlive every named process still running.
  void set_task_observer(TaskObserver* o) { observer_ = o; }
  TaskObserver* task_observer() const { return observer_; }

  /// Awaitable: resume after `d` simulated nanoseconds.
  auto sleep(Duration d) { return SleepAwaiter{this, now_ + d}; }

  /// Awaitable: resume at absolute time `t` (>= now).
  auto sleep_until(Time t) {
    return SleepAwaiter{this, t < now_ ? now_ : t};
  }

  /// Awaitable: yield to other same-time events, then resume.
  auto yield() { return SleepAwaiter{this, now_}; }

  /// Enqueue a raw coroutine resume at time `t` (>= now). Used by
  /// synchronization primitives; most code awaits instead.
  void schedule_at(Time t, std::coroutine_handle<> h);

  /// Enqueue a raw coroutine resume at the current time, after already
  /// queued same-time events.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Enqueue a cancellable resume at time `t`. Setting the returned flag to
  /// true before the event fires discards it without touching the handle —
  /// the building block for timeouts, where the same coroutine may instead
  /// be resumed by the operation completing.
  std::shared_ptr<bool> schedule_cancellable_at(Time t,
                                                std::coroutine_handle<> h);

  /// Run until the event queue is empty. Returns the final time.
  Time run();

  /// Run until the queue is empty or `deadline` is passed; events after the
  /// deadline stay queued. Returns the current time.
  Time run_until(Time deadline);

  /// Execute one event; false if the queue was empty.
  bool step();

  /// Number of spawned processes that have not yet finished. Nonzero after
  /// run() indicates a deadlock (process blocked forever).
  std::size_t live_processes() const { return live_processes_; }

  /// Total events executed (diagnostics).
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct SleepAwaiter {
    Simulation* sim;
    Time wake;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim->schedule_at(wake, h);
    }
    void await_resume() const noexcept {}
  };

  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    std::shared_ptr<bool> cancelled;  // null for ordinary events
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  // Detached, self-destroying wrapper that runs a Task as a root process.
  struct RootCoro {
    struct promise_type {
      RootCoro get_return_object() const noexcept { return {}; }
      std::suspend_never initial_suspend() const noexcept { return {}; }
      std::suspend_never final_suspend() const noexcept { return {}; }
      void return_void() const noexcept {}
      void unhandled_exception() const noexcept { std::terminate(); }
    };
  };
  static RootCoro run_root(Task<void> t, std::shared_ptr<ProcessState> st);
  static Task<void> observed(TaskObserver* obs, Task<void> inner,
                             const char* name);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_processes_ = 0;
  std::uint64_t events_executed_ = 0;
  TaskObserver* observer_ = nullptr;
};

}  // namespace csar::sim
