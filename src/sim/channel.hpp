// Channel<T>: unbounded FIFO message queue with awaitable receive.
//
// The building block for mailboxes and RPC completion queues. send() never
// blocks (the network fabric provides backpressure by charging link time
// before delivery); recv() suspends until a message is available. Receivers
// are served FIFO.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulation.hpp"

namespace csar::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deliver a message; wakes the longest-waiting receiver, if any.
  void send(T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.slot->emplace(std::move(value));
      sim_->schedule_now(w.h);
      return;
    }
    items_.push_back(std::move(value));
  }

  /// Awaitable receive. Completes immediately when a message is queued.
  auto recv() {
    struct Awaiter {
      Channel* ch;
      std::optional<T> slot;
      bool await_ready() noexcept {
        if (!ch->items_.empty()) {
          slot.emplace(std::move(ch->items_.front()));
          ch->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->waiters_.push_back(Waiter{h, &slot});
      }
      T await_resume() {
        assert(slot.has_value());
        return std::move(*slot);
      }
    };
    return Awaiter{this, std::nullopt};
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting_receivers() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };

  Simulation* sim_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace csar::sim
