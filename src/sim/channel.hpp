// Channel<T>: unbounded FIFO message queue with awaitable receive.
//
// The building block for mailboxes and RPC completion queues. send() never
// blocks (the network fabric provides backpressure by charging link time
// before delivery); recv() suspends until a message is available. Receivers
// are served FIFO.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulation.hpp"

namespace csar::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deliver a message; wakes the longest-waiting receiver, if any.
  void send(T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.timer_cancel.cancel();  // no-op for plain recv() waiters
      w.slot->emplace(std::move(value));
      sim_->schedule_now(w.h);
      return;
    }
    items_.push_back(std::move(value));
  }

  /// Awaitable receive. Completes immediately when a message is queued.
  auto recv() {
    struct Awaiter {
      Channel* ch;
      std::optional<T> slot;
      bool await_ready() noexcept {
        if (!ch->items_.empty()) {
          slot.emplace(std::move(ch->items_.front()));
          ch->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->waiters_.push_back(Waiter{h, &slot, {}});
      }
      T await_resume() {
        assert(slot.has_value());
        return std::move(*slot);
      }
    };
    return Awaiter{this, std::nullopt};
  }

  /// Awaitable receive with a deadline (absolute simulated time). Resolves
  /// to the message, or std::nullopt once `deadline` passes with nothing
  /// delivered. Exactly one of the two wake-ups fires: delivery cancels the
  /// pending timer, and an expiring timer removes this receiver from the
  /// wait queue before returning.
  auto recv_until(Time deadline) {
    struct Awaiter {
      Channel* ch;
      Time deadline;
      std::optional<T> slot;
      CancelToken timer_cancel;
      bool await_ready() noexcept {
        if (!ch->items_.empty()) {
          slot.emplace(std::move(ch->items_.front()));
          ch->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        timer_cancel = ch->sim_->schedule_cancellable_at(deadline, h);
        ch->waiters_.push_back(Waiter{h, &slot, timer_cancel});
      }
      std::optional<T> await_resume() {
        if (slot.has_value()) return std::move(slot);
        if (timer_cancel.armed()) {
          // Timer fired: unregister so a late send() doesn't write through
          // a dangling slot pointer.
          for (auto it = ch->waiters_.begin(); it != ch->waiters_.end();
               ++it) {
            if (it->slot == &slot) {
              ch->waiters_.erase(it);
              break;
            }
          }
        }
        return std::nullopt;
      }
    };
    return Awaiter{this, deadline, std::nullopt, {}};
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting_receivers() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
    CancelToken timer_cancel;  // armed only for recv_until waiters
  };

  Simulation* sim_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace csar::sim
