// Task<T>: the coroutine type for simulation processes.
//
// A Task is lazy: creating one does not run any code. It starts when
// co_awaited by a parent coroutine (symmetric transfer), or when handed to
// Simulation::spawn, which runs it as a detached/joinable process. Exactly
// one of those must happen; a Task that is never awaited or spawned is
// destroyed without running.
//
// Tasks propagate exceptions to their awaiter. Processes at the root are not
// expected to throw (CSAR's data path uses Result<T>); an escape there
// terminates, which is the right behaviour for a deterministic simulator.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/slab.hpp"

namespace csar::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      // Resume whoever awaited us; the frame stays alive (suspended at the
      // final point) until the owning Task is destroyed.
      return h.promise().continuation;
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }

  // Coroutine frames are the simulator's dominant allocation; route them
  // through the recycling slab (sim/slab.hpp). CSAR_SIM_SLAB=OFF falls back
  // to ::operator new for sanitizer runs.
  static void* operator new(std::size_t n) { return slab::allocate(n); }
  static void operator delete(void* p) noexcept { slab::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    slab::deallocate(p);
  }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() const noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  /// Awaiting starts the child and suspends the parent until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) {
          assert(p.value.has_value());
          return std::move(*p.value);
        }
      }
    };
    return Awaiter{h_};
  }

  /// Release ownership of the coroutine handle (used by Simulation::spawn).
  Handle release() { return std::exchange(h_, {}); }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_{};
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>{
      std::coroutine_handle<Promise<T>>::from_promise(*this)};
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>{
      std::coroutine_handle<Promise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace csar::sim
