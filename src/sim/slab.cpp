#include "sim/slab.hpp"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

namespace csar::sim::slab {
namespace {

// Every block is prefixed by a 16-byte header holding its size class, so
// deallocate() needs no size argument and user data stays 16-byte aligned.
constexpr std::size_t kHeader = 16;
constexpr std::size_t kGranule = 64;         // class width
constexpr std::size_t kClasses = 64;         // largest class: 64 * 64 = 4 KiB
constexpr std::size_t kMaxBlock = kGranule * kClasses;
constexpr std::uint32_t kFallback = 0xFFFFFFFFu;
constexpr std::size_t kChunkBytes = 256 * 1024;

struct State {
  void* free_list[kClasses] = {};            // heads of per-class lists
  std::vector<std::unique_ptr<char[]>> chunks;
  char* bump = nullptr;                      // carve pointer into last chunk
  std::size_t bump_left = 0;
  Stats stats;
};

State& state() {
  static State s;
  return s;
}

std::uint32_t class_of(std::size_t total) {
  return static_cast<std::uint32_t>((total - 1) / kGranule);
}

void* carve(std::size_t bytes) {
  State& s = state();
  if (s.bump_left < bytes) {
    s.chunks.push_back(std::make_unique<char[]>(kChunkBytes));
    s.bump = s.chunks.back().get();
    s.bump_left = kChunkBytes;
    s.stats.chunk_bytes += kChunkBytes;
  }
  char* p = s.bump;
  s.bump += bytes;
  s.bump_left -= bytes;
  return p;
}

}  // namespace

bool enabled() {
  static const bool on = [] {
    const char* v = std::getenv("CSAR_SIM_SLAB");
    return v == nullptr || std::strcmp(v, "OFF") != 0;
  }();
  return on;
}

void* allocate(std::size_t n) {
  if (n == 0) n = 1;
  const std::size_t total = n + kHeader;
  State& s = state();
  ++s.stats.allocs;
  if (!enabled() || total > kMaxBlock) {
    if (enabled()) ++s.stats.fallback;
    char* p = static_cast<char*>(::operator new(total));
    *reinterpret_cast<std::uint32_t*>(p) = kFallback;
    return p + kHeader;
  }
  const std::uint32_t cls = class_of(total);
  char* p;
  if (s.free_list[cls] != nullptr) {
    p = static_cast<char*>(s.free_list[cls]);
    s.free_list[cls] = *reinterpret_cast<void**>(p);
    ++s.stats.recycled;
  } else {
    p = static_cast<char*>(carve((cls + 1) * kGranule));
  }
  *reinterpret_cast<std::uint32_t*>(p) = cls;
  return p + kHeader;
}

void deallocate(void* ptr) noexcept {
  if (ptr == nullptr) return;
  char* p = static_cast<char*>(ptr) - kHeader;
  State& s = state();
  ++s.stats.frees;
  const std::uint32_t cls = *reinterpret_cast<std::uint32_t*>(p);
  if (cls == kFallback) {
    ::operator delete(p);
    return;
  }
  *reinterpret_cast<void**>(p) = s.free_list[cls];
  s.free_list[cls] = p;
}

const Stats& stats() { return state().stats; }

}  // namespace csar::sim::slab
