#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace csar::sim {

std::uint32_t EventQueue::Level::next(std::uint32_t from) const {
  if (from >= kSlots) return kSlots;
  std::uint32_t w = from >> 6;
  std::uint64_t word = bitmap[w] & (~0ull << (from & 63));
  for (;;) {
    if (word != 0) {
      return (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
    }
    if (++w == kSlots / 64) return kSlots;
    word = bitmap[w];
  }
}

void EventQueue::ready_push(Event ev) {
  ready_.push_back(ev);
  std::push_heap(ready_.begin(), ready_.end(), later);
}

void EventQueue::wheel_push(Event&& ev) {
  const std::uint64_t tick = ev.t >> kTickBits;
  // Place at the highest-resolution level whose current rotation covers the
  // event's tick (same tick prefix as the clock at that level).
  if ((tick >> kSlotBits) == (cur_tick_ >> kSlotBits)) {
    const auto s = static_cast<std::uint32_t>(tick & kSlotMask);
    levels_[0].slot[s].push_back(ev);
    levels_[0].mark(s);
  } else if ((tick >> (2 * kSlotBits)) == (cur_tick_ >> (2 * kSlotBits))) {
    const auto s = static_cast<std::uint32_t>((tick >> kSlotBits) & kSlotMask);
    levels_[1].slot[s].push_back(ev);
    levels_[1].mark(s);
  } else if ((tick >> (3 * kSlotBits)) == (cur_tick_ >> (3 * kSlotBits))) {
    const auto s =
        static_cast<std::uint32_t>((tick >> (2 * kSlotBits)) & kSlotMask);
    levels_[2].slot[s].push_back(ev);
    levels_[2].mark(s);
  } else {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), later);
  }
}

void EventQueue::push(Event ev) {
  ++size_;
  if ((ev.t >> kTickBits) <= cur_tick_) {
    ready_push(ev);
  } else {
    wheel_push(std::move(ev));
  }
}

void EventQueue::cascade(Level& lv, std::uint32_t s) {
  // After the clock advanced into this slot every event re-files strictly
  // below this level (or into ready), so pushing while iterating is safe.
  for (Event& ev : lv.slot[s]) {
    if ((ev.t >> kTickBits) <= cur_tick_) {
      ready_push(ev);
    } else {
      wheel_push(std::move(ev));
    }
  }
  lv.slot[s].clear();  // keeps capacity: steady state stays allocation-free
  lv.clear(s);
}

void EventQueue::drain_overflow() {
  while (!overflow_.empty() &&
         (overflow_.front().t >> (kTickBits + 3 * kSlotBits)) ==
             (cur_tick_ >> (3 * kSlotBits))) {
    std::pop_heap(overflow_.begin(), overflow_.end(), later);
    Event ev = overflow_.back();
    overflow_.pop_back();
    if ((ev.t >> kTickBits) <= cur_tick_) {
      ready_push(ev);
    } else {
      wheel_push(std::move(ev));
    }
  }
}

bool EventQueue::ensure_ready() {
  if (!ready_.empty()) return true;
  if (size_ == 0) return false;
  for (;;) {
    // Next occupied level-0 slot in the current rotation.
    const std::uint32_t s0 = levels_[0].next(
        static_cast<std::uint32_t>(cur_tick_ & kSlotMask) + 1);
    if (s0 < kSlots) {
      cur_tick_ = (cur_tick_ & ~kSlotMask) | s0;
      for (const Event& ev : levels_[0].slot[s0]) ready_push(ev);
      levels_[0].slot[s0].clear();
      levels_[0].clear(s0);
      return true;
    }
    // Rotation exhausted: advance into the next occupied level-1 slot.
    std::uint64_t t1 = cur_tick_ >> kSlotBits;
    const std::uint32_t s1 =
        levels_[1].next(static_cast<std::uint32_t>(t1 & kSlotMask) + 1);
    if (s1 < kSlots) {
      t1 = (t1 & ~kSlotMask) | s1;
      cur_tick_ = t1 << kSlotBits;
      cascade(levels_[1], s1);
      if (!ready_.empty()) return true;
      continue;
    }
    // Level-1 rotation exhausted too: advance level 2.
    std::uint64_t t2 = cur_tick_ >> (2 * kSlotBits);
    const std::uint32_t s2 =
        levels_[2].next(static_cast<std::uint32_t>(t2 & kSlotMask) + 1);
    if (s2 < kSlots) {
      t2 = (t2 & ~kSlotMask) | s2;
      cur_tick_ = t2 << (2 * kSlotBits);
      cascade(levels_[2], s2);
      if (!ready_.empty()) return true;
      continue;
    }
    // Wheels drained: jump the clock to the earliest overflow event.
    assert(!overflow_.empty());
    cur_tick_ = overflow_.front().t >> kTickBits;
    drain_overflow();
    if (!ready_.empty()) return true;
  }
}

EventQueue::Event EventQueue::pop_ready() {
  assert(!ready_.empty());
  std::pop_heap(ready_.begin(), ready_.end(), later);
  Event ev = ready_.back();
  ready_.pop_back();
  --size_;
  return ev;
}

std::pair<std::uint32_t, std::uint32_t> EventQueue::claim_cancel_slot() {
  if (!cancel_free_.empty()) {
    const std::uint32_t idx = cancel_free_.back();
    cancel_free_.pop_back();
    cancel_slots_[idx].cancelled = false;
    return {idx, cancel_slots_[idx].gen};
  }
  cancel_slots_.push_back(CancelSlot{});
  return {static_cast<std::uint32_t>(cancel_slots_.size() - 1), 0};
}

void EventQueue::release_cancel_slot(std::uint32_t idx) {
  ++cancel_slots_[idx].gen;  // stale tokens can no longer cancel anything
  cancel_slots_[idx].cancelled = false;
  cancel_free_.push_back(idx);
}

}  // namespace csar::sim
