#include "sim/simulation.hpp"

#include <cassert>

namespace csar::sim {

Simulation::RootCoro Simulation::run_root(Task<void> t, Simulation* sim,
                                          std::uint32_t idx) {
  co_await std::move(t);
  sim->finish_proc(idx);
}

std::uint32_t Simulation::alloc_proc() {
  if (!proc_free_.empty()) {
    const std::uint32_t idx = proc_free_.back();
    proc_free_.pop_back();
    procs_[idx].done = false;
    return idx;
  }
  procs_.emplace_back();
  return static_cast<std::uint32_t>(procs_.size() - 1);
}

void Simulation::finish_proc(std::uint32_t idx) {
  ProcessState& st = procs_[idx];
  st.done = true;
  --live_processes_;
  if (st.joiner0) {
    schedule_now(st.joiner0);
    st.joiner0 = {};
    for (auto j : st.extra_joiners) schedule_now(j);
    st.extra_joiners.clear();
  }
  // Recycle immediately: the generation bump makes surviving handles read
  // as done without touching this slot's new occupant.
  ++st.gen;
  proc_free_.push_back(idx);
}

ProcessHandle Simulation::spawn(Task<void> t) {
  const std::uint32_t idx = alloc_proc();
  const std::uint32_t gen = procs_[idx].gen;
  ++live_processes_;
  run_root(std::move(t), this, idx);
  // If the body completed without suspending, the slot has already been
  // recycled; the stale generation in the handle reads as done.
  return ProcessHandle{this, idx, gen};
}

Task<void> Simulation::observed(TaskObserver* obs, Task<void> inner,
                                const char* name) {
  const std::uint64_t token = obs->on_task_start(name);
  co_await std::move(inner);
  obs->on_task_end(token);
}

ProcessHandle Simulation::spawn(Task<void> t, const char* name) {
  if (observer_ == nullptr || name == nullptr) return spawn(std::move(t));
  return spawn(observed(observer_, std::move(t), name));
}

void Simulation::schedule_at(Time t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(EventQueue::Event{t, next_seq_++, h, EventQueue::kNoCancel, 0});
}

CancelToken Simulation::schedule_cancellable_at(Time t,
                                               std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  const auto [idx, gen] = queue_.claim_cancel_slot();
  queue_.push(EventQueue::Event{t, next_seq_++, h, idx, gen});
  return CancelToken{&queue_, idx, gen};
}

bool Simulation::step() {
  while (queue_.ensure_ready()) {
    EventQueue::Event ev = queue_.pop_ready();
    if (ev.cancel_idx != EventQueue::kNoCancel) {
      // A cancelled timer's handle may already be dead (resumed elsewhere);
      // discard the event without touching it, and recycle the slot either
      // way — the event it guarded is gone.
      const bool dead =
          queue_.cancel_slot_cancelled(ev.cancel_idx, ev.cancel_gen);
      queue_.release_cancel_slot(ev.cancel_idx);
      if (dead) continue;
    }
    assert(ev.t >= now_);
    now_ = ev.t;
    ++events_executed_;
    ev.h.resume();
    return true;
  }
  return false;
}

Time Simulation::run() {
  while (step()) {
  }
  return now_;
}

Time Simulation::run_until(Time deadline) {
  while (queue_.ensure_ready() && queue_.ready_top_time() <= deadline) step();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace csar::sim
