#include "sim/simulation.hpp"

#include <cassert>

namespace csar::sim {

Simulation::RootCoro Simulation::run_root(Task<void> t,
                                          std::shared_ptr<ProcessState> st) {
  co_await std::move(t);
  st->done = true;
  --st->sim->live_processes_;
  for (auto j : st->joiners) st->sim->schedule_now(j);
  st->joiners.clear();
}

ProcessHandle Simulation::spawn(Task<void> t) {
  auto st = std::make_shared<ProcessState>();
  st->sim = this;
  ++live_processes_;
  run_root(std::move(t), st);
  return ProcessHandle{st};
}

Task<void> Simulation::observed(TaskObserver* obs, Task<void> inner,
                                const char* name) {
  const std::uint64_t token = obs->on_task_start(name);
  co_await std::move(inner);
  obs->on_task_end(token);
}

ProcessHandle Simulation::spawn(Task<void> t, const char* name) {
  if (observer_ == nullptr || name == nullptr) return spawn(std::move(t));
  return spawn(observed(observer_, std::move(t), name));
}

void Simulation::schedule_at(Time t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, h, nullptr});
}

std::shared_ptr<bool> Simulation::schedule_cancellable_at(
    Time t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, h, flag});
  return flag;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // A cancelled timer's handle may already be dead (resumed elsewhere);
    // discard the event without touching it.
    if (ev.cancelled && *ev.cancelled) continue;
    assert(ev.t >= now_);
    now_ = ev.t;
    ++events_executed_;
    ev.h.resume();
    return true;
  }
  return false;
}

Time Simulation::run() {
  while (step()) {
  }
  return now_;
}

Time Simulation::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) step();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace csar::sim
