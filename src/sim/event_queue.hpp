// EventQueue: hierarchical timer wheel with an exact-order ready heap.
//
// Replaces the old std::priority_queue<Event> with a structure whose insert
// is O(1) for the common case (an event within ~69 simulated seconds) and
// whose extract-min cost is a small slot-local heap instead of a log of the
// total pending-event count. The determinism contract is unchanged: events
// pop in strict (timestamp, sequence) order, so equal-timestamp events stay
// FIFO by schedule order.
//
// Layout. Simulated time is bucketed into ticks of 2^kTickBits ns. Three
// wheel levels of 256 slots each hold events whose tick shares the current
// tick's prefix at that level:
//
//   level 0: 1 tick/slot    (4.1 us)   horizon ~1.05 ms
//   level 1: 256 ticks/slot (1.05 ms)  horizon ~268 ms
//   level 2: 64Ki ticks/slot (268 ms)  horizon ~68.7 s
//
// Events beyond level 2's horizon wait in an overflow min-heap. Advancing
// the clock cascades level-1/2 slots downward (each event cascades at most
// twice) and drains due overflow events into the wheels. All events whose
// tick equals the current tick sit in `ready_`, a binary min-heap ordered
// by (t, seq); pop_ready() extracts the global minimum.
//
// The queue also owns the cancellation pool: a cancellable event carries a
// generation-stamped slot index instead of a heap-allocated shared flag.
// Slots are recycled when the event fires or is discarded; stale tokens
// (generation mismatch) cancel nothing.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

namespace csar::sim {

using Time = std::uint64_t;

class EventQueue {
 public:
  static constexpr std::uint32_t kNoCancel = 0xFFFFFFFFu;

  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    std::uint32_t cancel_idx = kNoCancel;
    std::uint32_t cancel_gen = 0;
  };

  /// Queue an event; `t` may be in the past of the service window only if
  /// it equals the last popped timestamp (the simulator forbids scheduling
  /// in the past at its own layer).
  void push(Event ev);

  /// Make the earliest pending event available in the ready heap, advancing
  /// the wheel clock as needed (simulated `now` is not touched — that is
  /// the Simulation's job when it pops). False iff the queue is empty.
  bool ensure_ready();

  /// Earliest pending (t, seq); call only after ensure_ready() returned
  /// true.
  Time ready_top_time() const { return ready_.front().t; }

  /// Pop the earliest pending event; call only after ensure_ready().
  Event pop_ready();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // --- cancellation pool ---

  /// Claim a cancellation slot; returns {idx, gen}.
  std::pair<std::uint32_t, std::uint32_t> claim_cancel_slot();

  /// True iff the slot still belongs to generation `gen` and was cancelled.
  bool cancel_slot_cancelled(std::uint32_t idx, std::uint32_t gen) const {
    return cancel_slots_[idx].gen == gen && cancel_slots_[idx].cancelled;
  }

  /// Mark cancelled if the token is still current (stale tokens no-op).
  void cancel(std::uint32_t idx, std::uint32_t gen) {
    if (idx != kNoCancel && cancel_slots_[idx].gen == gen) {
      cancel_slots_[idx].cancelled = true;
    }
  }

  /// Recycle a slot once its event has popped (fired or discarded).
  void release_cancel_slot(std::uint32_t idx);

 private:
  static constexpr std::uint32_t kTickBits = 12;  // 4096 ns per tick
  static constexpr std::uint32_t kSlotBits = 8;   // 256 slots per level
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kLevels = 3;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;

  struct Level {
    std::vector<Event> slot[kSlots];
    std::uint64_t bitmap[kSlots / 64] = {};  // non-empty slots
    void mark(std::uint32_t s) { bitmap[s >> 6] |= 1ull << (s & 63); }
    void clear(std::uint32_t s) { bitmap[s >> 6] &= ~(1ull << (s & 63)); }
    /// Smallest non-empty slot index >= from, or kSlots.
    std::uint32_t next(std::uint32_t from) const;
  };

  struct CancelSlot {
    std::uint32_t gen = 0;
    bool cancelled = false;
  };

  static bool later(const Event& a, const Event& b) {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }

  void ready_push(Event ev);
  /// File an event into the wheel/overflow by its tick (tick > cur_tick_).
  void wheel_push(Event&& ev);
  /// Move every overflow event within level 2's current horizon into the
  /// wheels.
  void drain_overflow();
  /// Dump a higher-level slot downward after the clock advanced into it.
  void cascade(Level& lv, std::uint32_t s);

  std::vector<Event> ready_;     // min-heap by (t, seq): ticks <= cur_tick_
  std::vector<Event> overflow_;  // min-heap by (t, seq): beyond level 2
  Level levels_[kLevels];
  std::uint64_t cur_tick_ = 0;
  std::size_t size_ = 0;

  std::vector<CancelSlot> cancel_slots_;
  std::vector<std::uint32_t> cancel_free_;
};

}  // namespace csar::sim
