// Simulated time: 64-bit nanoseconds since simulation start.
//
// Integer nanoseconds keep event ordering exact and runs bit-reproducible;
// helpers convert to/from seconds for workload definitions and reports.
#pragma once

#include <cstdint>

namespace csar::sim {

using Time = std::uint64_t;      ///< absolute simulated time, ns
using Duration = std::uint64_t;  ///< simulated interval, ns

constexpr Duration ns(std::uint64_t v) { return v; }
constexpr Duration us(std::uint64_t v) { return v * 1000ULL; }
constexpr Duration ms(std::uint64_t v) { return v * 1000000ULL; }
constexpr Duration sec(std::uint64_t v) { return v * 1000000000ULL; }

/// Fractional seconds -> duration (rounds to nearest ns).
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9 + 0.5);
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }

/// Duration of moving `bytes` at `bytes_per_sec` (at least 1 ns when
/// bytes > 0 so zero-duration transfers cannot starve the event loop).
constexpr Duration transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0.0) return 0;
  const double s = static_cast<double>(bytes) / bytes_per_sec;
  const Duration d = from_seconds(s);
  return d == 0 ? 1 : d;
}

}  // namespace csar::sim
