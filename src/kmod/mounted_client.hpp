// MountedClient: the PVFS kernel-module access path (§6.6).
//
// Applications like Hartree-Fock mount CSAR as a normal Unix file system
// and issue ordinary read()/write() calls. That path differs from the
// library API in three ways the paper's results hinge on:
//
//  1. every request pays a fixed kernel cost (VFS entry, user/kernel
//     copies, the pvfsd handoff) — large enough to level the redundancy
//     schemes in Figure 8;
//  2. writes are acknowledged once staged and issued to PVFS
//     *write-behind*, a bounded number in flight — so the application's
//     critical path sees only the kernel cost while the PVFS layer still
//     receives the raw small requests (hence Table 2's 2x Hybrid storage
//     for Hartree-Fock);
//  3. reads go through a simple sequential read-ahead window.
#pragma once

#include <cstdint>
#include <deque>

#include "raid/csar_fs.hpp"
#include "raid/rig.hpp"
#include "sim/sync.hpp"

namespace csar::kmod {

struct MountParams {
  /// Fixed kernel cost per request (VFS + copies + pvfsd).
  sim::Duration per_request = sim::ms(1) + sim::us(200);
  /// Maximum write-behind requests in flight.
  std::uint32_t write_behind = 16;
  /// Sequential read-ahead window (bytes); 0 disables.
  std::uint64_t readahead_bytes = 128 * 1024;
};

class MountedClient {
 public:
  MountedClient(raid::Rig& rig, raid::CsarFs& fs, const pvfs::OpenFile& file,
                MountParams params = {})
      : rig_(&rig),
        fs_(&fs),
        file_(file),
        p_(params),
        window_(rig.sim, params.write_behind == 0 ? 1 : params.write_behind),
        inflight_(rig.sim) {}
  MountedClient(const MountedClient&) = delete;
  MountedClient& operator=(const MountedClient&) = delete;

  /// write(2): returns once the data is staged; the PVFS write proceeds
  /// asynchronously (bounded by the write-behind window).
  sim::Task<Result<void>> write(std::uint64_t off, Buffer data);

  /// read(2): satisfied from the read-ahead window when the access is
  /// sequential; otherwise a synchronous PVFS read (plus read-ahead fill).
  sim::Task<Result<Buffer>> read(std::uint64_t off, std::uint64_t len);

  /// Wait for the write-behind queue to drain (no server-side flush) —
  /// what close(2) without O_SYNC amounts to.
  sim::Task<void> drain() { co_await inflight_.wait(); }

  /// fsync(2): drain the write-behind queue and flush the servers.
  sim::Task<Result<void>> fsync();

  /// Whether any write-behind request failed since the last fsync (POSIX
  /// reports async write errors at fsync/close time).
  bool pending_error() const { return pending_error_; }

  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t readahead_hits = 0;
    std::uint64_t readahead_fills = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  raid::Rig* rig_;
  raid::CsarFs* fs_;
  pvfs::OpenFile file_;
  MountParams p_;
  sim::Semaphore window_;
  sim::WaitGroup inflight_;
  bool pending_error_ = false;
  Stats stats_;
  // Read-ahead cache: one window of file content.
  std::uint64_t ra_start_ = 0;
  Buffer ra_data_;  // empty when invalid
};

}  // namespace csar::kmod
