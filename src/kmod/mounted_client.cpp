#include "kmod/mounted_client.hpp"

#include <algorithm>
#include <cassert>

namespace csar::kmod {

sim::Task<Result<void>> MountedClient::write(std::uint64_t off, Buffer data) {
  ++stats_.writes;
  co_await rig_->sim.sleep(p_.per_request);  // VFS + copies + pvfsd
  // A write under the read-ahead window invalidates it.
  if (!ra_data_.empty() && off < ra_start_ + ra_data_.size() &&
      off + data.size() > ra_start_) {
    ra_data_ = Buffer{};
  }
  co_await window_.acquire();
  inflight_.add();
  rig_->sim.spawn([](MountedClient* self, std::uint64_t o,
                     Buffer payload) -> sim::Task<void> {
    auto wr = co_await self->fs_->write(self->file_, o, std::move(payload));
    if (!wr.ok()) self->pending_error_ = true;
    self->window_.release();
    self->inflight_.done();
  }(this, off, std::move(data)));
  co_return Result<void>::success();
}

sim::Task<Result<Buffer>> MountedClient::read(std::uint64_t off,
                                              std::uint64_t len) {
  ++stats_.reads;
  co_await rig_->sim.sleep(p_.per_request);
  // Reads must observe the write-behind queue (POSIX: read-after-write
  // within one process is coherent) — drain it first.
  co_await inflight_.wait();

  if (!ra_data_.empty() && off >= ra_start_ &&
      off + len <= ra_start_ + ra_data_.size()) {
    ++stats_.readahead_hits;
    co_return ra_data_.slice(off - ra_start_, len);
  }
  if (p_.readahead_bytes > std::max<std::uint64_t>(len, 1)) {
    // Fill a window starting at the requested offset.
    ++stats_.readahead_fills;
    auto rd = co_await fs_->read(file_, off,
                                 std::max(p_.readahead_bytes, len));
    if (!rd.ok()) co_return rd.error();
    ra_start_ = off;
    ra_data_ = std::move(rd.value());
    co_return ra_data_.slice(0, len);
  }
  co_return co_await fs_->read(file_, off, len);
}

sim::Task<Result<void>> MountedClient::fsync() {
  co_await inflight_.wait();
  const bool had_error = pending_error_;
  pending_error_ = false;
  auto fl = co_await fs_->flush(file_);
  if (!fl.ok()) co_return fl;
  if (had_error) co_return Error{Errc::io_error, "async write failed"};
  co_return Result<void>::success();
}

}  // namespace csar::kmod
