#include "pvfs/layout.hpp"

#include <algorithm>

namespace csar::pvfs {

std::vector<StripeLayout::Extent> StripeLayout::decompose(
    std::uint64_t off, std::uint64_t len) const {
  std::vector<Extent> out;
  const std::uint64_t end = off + len;
  std::uint64_t pos = off;
  while (pos < end) {
    const std::uint64_t u = unit_of(pos);
    const std::uint64_t unit_end = (u + 1) * stripe_unit;
    const std::uint64_t n = std::min(end, unit_end) - pos;
    out.push_back(Extent{server_of_unit(u), pos, local_off(pos), n});
    pos += n;
  }
  return out;
}

std::vector<StripeLayout::Extent> StripeLayout::decompose_merged(
    std::uint64_t off, std::uint64_t len) const {
  // Per-unit pieces of one server tile a contiguous local range (interior
  // units of a contiguous global range are fully covered), so each server
  // gets exactly one extent. global_off records the first global byte.
  std::vector<Extent> per_server(nservers,
                                 Extent{0, 0, 0, 0});
  std::vector<bool> seen(nservers, false);
  for (const Extent& e : decompose(off, len)) {
    if (!seen[e.server]) {
      per_server[e.server] = e;
      seen[e.server] = true;
    } else {
      per_server[e.server].len += e.len;
    }
  }
  std::vector<Extent> out;
  for (std::uint32_t s = 0; s < nservers; ++s) {
    if (seen[s]) out.push_back(per_server[s]);
  }
  return out;
}

StripeLayout::WriteSplit StripeLayout::split_write(std::uint64_t off,
                                                   std::uint64_t len) const {
  WriteSplit ws;
  const std::uint64_t end = off + len;
  const std::uint64_t w = stripe_width();
  const std::uint64_t gs = align_up(off, w);
  const std::uint64_t ge = align_down(end, w);
  if (gs <= ge) {
    ws.head_start = off;
    ws.head_end = gs;
    ws.full_start = gs;
    ws.full_end = ge;
    ws.tail_start = ge;
    ws.tail_end = end;
  } else {
    // Entirely inside one group: a single partial-stripe segment.
    ws.head_start = off;
    ws.head_end = end;
    ws.full_start = ws.full_end = end;
    ws.tail_start = ws.tail_end = end;
  }
  return ws;
}

}  // namespace csar::pvfs
