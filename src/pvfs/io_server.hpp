// IoServer: one CSAR I/O daemon.
//
// Each server stores, per PVFS file handle, up to three local files (§4):
//   h<handle>.data  — its striped portion of the file, identical to PVFS
//   h<handle>.red   — redundancy: RAID1 mirror blocks or RAID5 parity units
//   h<handle>.ovfl  — Hybrid overflow regions (primary + mirror copies)
// plus, for the Hybrid scheme, tables listing the live overflow regions.
//
// The server also implements the paper's distributed parity-lock protocol
// (§5.1): a read of a parity block sets a lock on that block; later parity
// reads for the same block queue behind it; the write of the parity block
// releases the lock (or hands it to the first queued reader).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/interval_map.hpp"
#include "hw/node.hpp"
#include "localfs/local_fs.hpp"
#include "net/fabric.hpp"
#include "pvfs/messages.hpp"
#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace csar::pvfs {

struct IoServerParams {
  localfs::LocalFsParams fs;
  /// When false, read_red ignores `lock` and write_red ignores `unlock`:
  /// the paper's R5 NO LOCK ablation (Figure 3 / §6.5).
  bool parity_locking = true;
};

class IoServer {
 public:
  IoServer(hw::Cluster& cluster, net::Fabric& fabric, hw::NodeId node,
           std::uint32_t server_index, const IoServerParams& params);
  IoServer(const IoServer&) = delete;
  IoServer& operator=(const IoServer&) = delete;

  /// Spawn the dispatcher process; call once before the simulation runs.
  void start();

  /// Enqueue a shutdown message (clean teardown for tests).
  void stop();

  sim::Channel<Request>& inbox() { return inbox_; }
  hw::NodeId node_id() const { return node_; }
  std::uint32_t index() const { return index_; }

  /// Fail/recover this server (single-disk-failure experiments). While
  /// failed, every request is answered with Errc::server_failed.
  void fail() { failed_ = true; }
  void recover() { failed_ = false; }
  bool failed() const { return failed_; }

  /// Simulate replacing the disk with a blank one: all local files, overflow
  /// tables and locks are lost. Call before raid::Recovery::rebuild_server.
  void wipe() {
    fs_.wipe();
    handles_.clear();
    locks_.clear();
  }

  localfs::LocalFs& fs() { return fs_; }

  struct LockStats {
    std::uint64_t acquisitions = 0;
    std::uint64_t waits = 0;         ///< parity reads that had to queue
    sim::Duration wait_time = 0;     ///< total simulated queueing time
  };
  const LockStats& lock_stats() const { return lock_stats_; }

  /// Aggregate storage across all handles on this server.
  StorageInfo total_storage() const;

  /// Local file naming convention (exposed for tests/white-box inspection).
  static std::string data_name(std::uint64_t h) {
    return "h" + std::to_string(h) + ".data";
  }
  static std::string red_name(std::uint64_t h) {
    return "h" + std::to_string(h) + ".red";
  }
  static std::string ovfl_name(std::uint64_t h) {
    return "h" + std::to_string(h) + ".ovfl";
  }

 private:
  struct ParityLock {
    bool held = false;
    std::deque<std::pair<Request, sim::Time>> waiting;  // + enqueue time
  };

  struct OffsetSlicer {
    std::uint64_t operator()(std::uint64_t base, std::uint64_t off,
                             std::uint64_t /*len*/) const {
      return base + off;
    }
  };
  /// data-file local range -> offset of its content in the overflow file.
  using OverflowTable = IntervalMap<std::uint64_t, OffsetSlicer>;

  struct HandleState {
    OverflowTable own;     ///< primary overflow entries (this server's data)
    OverflowTable mirror;  ///< mirror entries held for the previous server
    std::uint64_t overflow_alloc = 0;  ///< allocation cursor (fragmented)
  };

  sim::Task<void> dispatcher();
  sim::Task<void> handle(Request r);
  sim::Task<void> reply(const Request& r, Response resp);

  sim::Task<Response> do_read_data(const Request& r);
  sim::Task<Response> do_write_data(const Request& r);
  sim::Task<Response> do_read_red(const Request& r);
  sim::Task<Response> do_write_red(const Request& r);
  sim::Task<Response> do_write_overflow(const Request& r);
  sim::Task<Response> do_read_mirror(const Request& r);
  sim::Task<Response> do_read_own_overflow(const Request& r);
  sim::Task<Response> do_compact_overflow(const Request& r);

  /// Per-connection ingest/egress pacing: one iod request stream moves at
  /// most stream_bytes_per_sec, serialized per (client, connection). The
  /// CSAR client uses a separate connection for redundancy traffic
  /// (mirror/parity/overflow), so redundancy requests do not steal data
  /// bandwidth on the same server — this is what lets RAID1 scale per
  /// server like RAID0 until the *client link* saturates (Figure 4a).
  sim::Task<void> pace(const Request& r, std::uint64_t bytes);
  sim::BandwidthServer& stream_for(hw::NodeId client, bool redundancy);

  void apply_invalidation(const Request& r);
  std::uint64_t lock_key(std::uint64_t handle, std::uint64_t red_off,
                         std::uint32_t su) const {
    return handle * 0x40000000ULL + red_off / su;
  }

  hw::Cluster* cluster_;
  net::Fabric* fabric_;
  hw::NodeId node_;
  std::uint32_t index_;
  IoServerParams p_;
  sim::Channel<Request> inbox_;
  localfs::LocalFs fs_;
  /// The single-process iod dispatch loop every request passes through.
  sim::BandwidthServer iod_;
  /// (client node, redundancy?) -> serialized per-connection stream pacing.
  std::map<std::pair<hw::NodeId, bool>,
           std::unique_ptr<sim::BandwidthServer>>
      streams_;
  std::unordered_map<std::uint64_t, HandleState> handles_;
  std::unordered_map<std::uint64_t, ParityLock> locks_;
  LockStats lock_stats_;
  bool failed_ = false;
  bool started_ = false;
};

}  // namespace csar::pvfs
