// IoServer: one CSAR I/O daemon.
//
// Each server stores, per PVFS file handle, up to three local files (§4):
//   h<handle>.data  — its striped portion of the file, identical to PVFS
//   h<handle>.red   — redundancy: RAID1 mirror blocks or RAID5 parity units
//   h<handle>.ovfl  — Hybrid overflow regions (primary + mirror copies)
// plus, for the Hybrid scheme, tables listing the live overflow regions.
//
// The server also implements the paper's distributed parity-lock protocol
// (§5.1): a read of a parity block sets a lock on that block; later parity
// reads for the same block queue behind it; the write of the parity block
// releases the lock (or hands it to the first queued reader).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/interval_map.hpp"
#include "hw/node.hpp"
#include "localfs/local_fs.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pvfs/messages.hpp"
#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace csar::pvfs {

struct IoServerParams {
  localfs::LocalFsParams fs;
  /// When false, read_red ignores `lock` and write_red ignores `unlock`:
  /// the paper's R5 NO LOCK ablation (Figure 3 / §6.5).
  bool parity_locking = true;
  /// Lease on a held parity lock. A client that dies (or times out and
  /// abandons its RMW) between read_red and write_red would otherwise wedge
  /// the parity block forever — every later writer of the group queues
  /// behind a lock whose owner will never release it. When the lease
  /// expires the lock is handed to the first waiter (or dropped). Must be
  /// much longer than any legitimate read-modify-write; 0 disables leases.
  sim::Duration parity_lock_lease = sim::sec(1);
};

class IoServer {
 public:
  IoServer(hw::Cluster& cluster, net::Fabric& fabric, hw::NodeId node,
           std::uint32_t server_index, const IoServerParams& params);
  IoServer(const IoServer&) = delete;
  IoServer& operator=(const IoServer&) = delete;

  /// Spawn the dispatcher process; call once before the simulation runs.
  void start();

  /// Enqueue a shutdown message (clean teardown for tests).
  void stop();

  sim::Channel<Request>& inbox() { return inbox_; }
  hw::NodeId node_id() const { return node_; }
  std::uint32_t index() const { return index_; }

  /// Fail/recover this server (single-disk-failure experiments). While
  /// failed, every request is answered with Errc::server_failed.
  void fail() { failed_ = true; }
  void recover() { failed_ = false; }
  bool failed() const { return failed_; }

  /// Hard crash: unlike fail(), nothing answers at all. In-flight requests
  /// lose their replies (the epoch bump fences them), queued and future
  /// requests are dropped silently, volatile state (parity locks, dirty
  /// page-cache contents) is gone. Clients see only RPC timeouts.
  void crash() {
    failed_ = true;
    crashed_ = true;
    ++epoch_;
    fs_.crash();
    // Parity locks are in-memory daemon state; queued waiters vanish with
    // them (their clients time out and fail over). Parked acquirer
    // coroutines are woken un-granted so their frames unwind — the epoch
    // bump fences any reply they would try to send.
    drop_all_locks();
  }

  /// Bring a crashed server back. With `wipe_disk` the local disk comes back
  /// blank (replacement drive) and the server rejoins *fenced*: reads,
  /// probes and storage queries are refused (Errc::server_failed) until
  /// admit() — otherwise a straggling client retry could read the blank
  /// disk as real zeros. Writes are admitted so Recovery::rebuild_server
  /// can refill it. Without `wipe_disk` the on-disk content survived the
  /// crash and the server serves immediately.
  void restart(bool wipe_disk) {
    if (wipe_disk) {
      wipe();
      fenced_ = true;
    } else if (fence_restarts_) {
      fenced_ = true;
    }
    last_restart_wiped_ = wipe_disk;
    crashed_ = false;
    failed_ = false;
  }

  /// Armed by a RebuildCoordinator: even a non-wipe restart rejoins fenced.
  /// Degraded writes during the outage updated redundancy but not this
  /// server's files, and dirty pages died with the crash — the coordinator
  /// delta-rebuilds the stale regions before admit() lifts the fence.
  void fence_restarts(bool on) { fence_restarts_ = on; }

  /// Whether the most recent restart() wiped the disk (full rebuild needed)
  /// or kept it (delta rebuild of stale regions suffices).
  bool last_restart_wiped() const { return last_restart_wiped_; }

  /// Lift the rejoin fence once the rebuild has made the disk trustworthy.
  void admit() { fenced_ = false; }
  bool fenced() const { return fenced_; }

  bool crashed() const { return crashed_; }

  /// Simulate replacing the disk with a blank one: all local files, overflow
  /// tables and locks are lost. Call before raid::Recovery::rebuild_server.
  void wipe() {
    fs_.wipe();
    handles_.clear();
    drop_all_locks();
  }

  localfs::LocalFs& fs() { return fs_; }

  struct LockStats {
    std::uint64_t acquisitions = 0;
    std::uint64_t waits = 0;         ///< parity reads that had to queue
    sim::Duration wait_time = 0;     ///< total simulated queueing time
    std::uint64_t lease_expirations = 0;  ///< abandoned locks reclaimed
    std::uint64_t explicit_releases = 0;  ///< owner-verified unlock_red ops
    /// Retried locked reads re-granted their own lock (the grant reply was
    /// lost in flight, so the client resent the acquisition).
    std::uint64_t reentries = 0;
  };
  const LockStats& lock_stats() const { return lock_stats_; }

  struct BatchStats {
    std::uint64_t batches = 0;       ///< Op::batch envelopes executed
    std::uint64_t subs = 0;          ///< sub-requests those envelopes carried
    std::uint64_t merged_reads = 0;  ///< adjacent sub-reads coalesced into
                                     ///< one disk/page-cache access
  };
  const BatchStats& batch_stats() const { return batch_stats_; }

  /// Attach (or clear) the tracer / metrics registry; caches the metric
  /// handles so the hot path never looks up by name.
  void set_obs(obs::Tracer* tracer, obs::Registry* metrics);

  /// The iod dispatch-loop resource (utilization sampling).
  const sim::BandwidthServer& iod() const { return iod_; }

  /// Aggregate storage across all handles on this server.
  StorageInfo total_storage() const;

  /// Local file naming convention (exposed for tests/white-box inspection).
  static std::string data_name(std::uint64_t h) {
    return "h" + std::to_string(h) + ".data";
  }
  static std::string red_name(std::uint64_t h) {
    return "h" + std::to_string(h) + ".red";
  }
  /// Generation-qualified redundancy file. Generation 0 keeps the legacy
  /// name; a scheme migration writes the target scheme's redundancy into
  /// generation N+1 and drops the old generation after the flip.
  static std::string red_name(std::uint64_t h, std::uint32_t gen) {
    if (gen == 0) return red_name(h);
    return "h" + std::to_string(h) + ".red.g" + std::to_string(gen);
  }
  static std::string ovfl_name(std::uint64_t h) {
    return "h" + std::to_string(h) + ".ovfl";
  }

 private:
  /// A coroutine parked in lock_parity() waiting for the lock. Lives on the
  /// acquirer's frame; the queue stores pointers, FIFO.
  struct LockWaiter {
    std::coroutine_handle<> h;
    hw::NodeId from = 0;
    std::uint64_t token = 0;  ///< RMW identity carried into a handover
    sim::Time enq = 0;
    /// Set by the waker: true = lock handed over, false = lock vanished
    /// (file removed / crash) and the acquirer must not proceed.
    bool granted = false;
  };

  struct ParityLock {
    bool held = false;
    /// Client node that holds the lock — lets an explicit unlock_red verify
    /// the release comes from the holder (a client whose read_red timed out
    /// cannot know whether its lock was ever granted; the owner check makes
    /// its abandon-release safe to send unconditionally).
    hw::NodeId owner = 0;
    /// RMW transaction the holder tagged its acquisition with (0 =
    /// untagged). A resent read_red carrying the same token is the *same*
    /// in-flight RMW whose grant reply was lost — it re-enters the lock
    /// instead of queueing behind itself, which would wedge the block:
    /// the abandoned queue entries would each inherit the lock for a full
    /// lease period, and every new writer of the group would feed it more.
    std::uint64_t owner_token = 0;
    /// Bumped whenever ownership changes (acquire, handover, release) so a
    /// pending lease watchdog can tell "still the same stuck holder" from
    /// "lock has moved on since I was armed".
    std::uint64_t gen = 0;
    std::uint64_t armed_gen = 0;  ///< holder generation with a watchdog
    sim::Time acquired_at = 0;
    std::deque<LockWaiter*> waiting;
  };

  struct OffsetSlicer {
    std::uint64_t operator()(std::uint64_t base, std::uint64_t off,
                             std::uint64_t /*len*/) const {
      return base + off;
    }
  };
  /// data-file local range -> offset of its content in the overflow file.
  using OverflowTable = IntervalMap<std::uint64_t, OffsetSlicer>;

  struct HandleState {
    OverflowTable own;     ///< primary overflow entries (this server's data)
    OverflowTable mirror;  ///< mirror entries held for the previous server
    std::uint64_t overflow_alloc = 0;  ///< allocation cursor (fragmented)
    /// Highest redundancy generation ever written for this handle, so
    /// remove_file and storage accounting can cover every generation.
    std::uint32_t max_red_gen = 0;
  };

  sim::Task<void> dispatcher();
  sim::Task<void> handle(Request r);
  /// Execute one (non-batch) request and produce its response. `prelocked`
  /// means an enclosing batch already acquired this read_red's parity lock.
  /// `ctx` (tracing only) carries the request span's lane so stage spans
  /// nest under it; default = untraced.
  sim::Task<Response> exec_one(const Request& r, bool prelocked,
                               obs::Ctx ctx = {});
  /// Execute an Op::batch envelope: acquire every sub-lock in ascending
  /// key order, then run the subs in order, merging adjacent reads.
  sim::Task<Response> exec_batch(const Request& r, obs::Ctx ctx = {});
  /// Acquire the parity lock at `key` for client `from`, queueing FIFO
  /// behind the holder. False when the lock vanished while queued (file
  /// removed, crash) — the caller must not proceed.
  sim::Task<bool> lock_parity(std::uint64_t key, hw::NodeId from,
                              std::uint64_t token,
                              obs::Ctx ctx = {});
  /// Hand a released (or expired) lock to the first queued waiter, or mark
  /// it free when nobody is waiting.
  void pass_or_release(std::uint64_t key, ParityLock& lk);
  /// Wake every parked acquirer of `lk` un-granted (lock is going away).
  void fail_waiters(ParityLock& lk);
  /// Clear the whole lock table, waking all parked acquirers un-granted.
  void drop_all_locks();
  /// Spawn a lease watchdog for the current holder generation (idempotent
  /// per generation; no-op when leases are disabled).
  void arm_lease(std::uint64_t key, ParityLock& lk);
  sim::Task<void> lease_reaper(std::uint64_t key, std::uint64_t gen,
                               std::uint64_t epoch, sim::Time deadline);
  /// Send `resp` back to the requester unless the server crashed since the
  /// request was accepted (`epoch` mismatch) or the fabric lost the message.
  sim::Task<void> reply(const Request& r, Response resp, std::uint64_t epoch);

  sim::Task<Response> do_read_data(const Request& r, obs::Ctx ctx = {});
  sim::Task<Response> do_read_data_raw(const Request& r);
  sim::Task<Response> do_write_data(const Request& r, obs::Ctx ctx = {});
  sim::Task<Response> do_read_red(const Request& r, obs::Ctx ctx = {});
  sim::Task<Response> do_write_red(const Request& r, obs::Ctx ctx = {});
  sim::Task<Response> do_write_overflow(const Request& r);
  sim::Task<Response> do_read_mirror(const Request& r);
  sim::Task<Response> do_read_own_overflow(const Request& r);
  sim::Task<Response> do_compact_overflow(const Request& r);

  /// Per-connection ingest/egress pacing: one iod request stream moves at
  /// most stream_bytes_per_sec, serialized per (client, connection). The
  /// CSAR client uses a separate connection for redundancy traffic
  /// (mirror/parity/overflow), so redundancy requests do not steal data
  /// bandwidth on the same server — this is what lets RAID1 scale per
  /// server like RAID0 until the *client link* saturates (Figure 4a).
  sim::Task<void> pace(const Request& r, std::uint64_t bytes);
  sim::BandwidthServer& stream_for(hw::NodeId client, bool redundancy);

  void apply_invalidation(const Request& r);
  std::uint64_t lock_key(std::uint64_t handle, std::uint64_t red_off,
                         std::uint32_t su) const {
    return handle * 0x40000000ULL + red_off / su;
  }

  hw::Cluster* cluster_;
  net::Fabric* fabric_;
  hw::NodeId node_;
  std::uint32_t index_;
  IoServerParams p_;
  sim::Channel<Request> inbox_;
  localfs::LocalFs fs_;
  /// The single-process iod dispatch loop every request passes through.
  sim::BandwidthServer iod_;
  /// (client node, redundancy?) -> serialized per-connection stream pacing.
  std::map<std::pair<hw::NodeId, bool>,
           std::unique_ptr<sim::BandwidthServer>>
      streams_;
  std::unordered_map<std::uint64_t, HandleState> handles_;
  std::unordered_map<std::uint64_t, ParityLock> locks_;
  LockStats lock_stats_;
  BatchStats batch_stats_;
  // Observability (all null/0 when detached; see set_obs).
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  std::uint32_t pid_ = 0;                 ///< this server's trace process
  obs::Histogram* req_hist_ = nullptr;    ///< server.req_ns
  obs::Histogram* lock_hist_ = nullptr;   ///< server.lock_wait_ns
  obs::Histogram* batch_hist_ = nullptr;  ///< server.batch_subs
  bool failed_ = false;
  bool crashed_ = false;
  /// Rejoined on a blank disk and not yet rebuilt: refuse reads/probes.
  bool fenced_ = false;
  /// When set (by a RebuildCoordinator), non-wipe restarts also fence.
  bool fence_restarts_ = false;
  bool last_restart_wiped_ = false;
  /// Bumped on every crash; a reply is only sent if the server has not
  /// crashed since the request began (fences stale in-flight handlers).
  std::uint64_t epoch_ = 0;
  bool started_ = false;
};

}  // namespace csar::pvfs
