// Wire protocol between CSAR clients and I/O servers / the manager.
//
// Messages move as C++ objects through sim::Channel mailboxes; the network
// cost is charged separately through net::Fabric by the sender. Offsets in
// I/O server requests are *server-local* file offsets (PVFS clients resolve
// striping before talking to servers); `owner`-qualified overflow operations
// use the owning server's local offsets.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/buffer.hpp"
#include "common/interval_set.hpp"
#include "common/result.hpp"
#include "hw/node.hpp"
#include "sim/channel.hpp"

namespace csar::pvfs {

enum class Op : std::uint8_t {
  read_data,      ///< read data file, merged with own overflow entries
  write_data,     ///< write data file; may carry overflow invalidations
  read_red,       ///< read redundancy file; `lock` acquires the parity lock
  write_red,      ///< write redundancy file; `unlock` releases the lock
  write_overflow, ///< Hybrid: store a partial-stripe copy (primary/mirror)
  read_data_raw,  ///< recovery: data file without overflow merge
  read_mirror,    ///< recovery: mirror overflow pieces held for `owner`
  read_own_overflow,  ///< recovery: this server's own overflow pieces
  flush,          ///< fsync all local files
  storage_query,  ///< per-handle storage breakdown (Table 2)
  compact_overflow,  ///< §6.7 cleaner: rewrite the overflow file densely,
                     ///< reclaiming space dead entries still occupy
  remove_file,    ///< delete every local file of a handle (unlink)
  unlock_red,     ///< explicit parity-lock release (owner-checked, no write)
  batch,          ///< ordered vector of sub-requests in one fabric transfer
  ping,           ///< liveness probe (health monitoring); replies ok
  drop_red,       ///< delete one redundancy generation (migration GC)
  shutdown,       ///< stop the server dispatcher (teardown only)
};

/// Ops that ride the redundancy connection (CSAR keeps parity/mirror traffic
/// off the bulk-data stream). Requests sharing a batch envelope are grouped
/// by request class (see redundancy_request below); within an envelope the
/// server preserves request order, so a parity release is never stuck behind
/// bulk payload queued ahead of it in the same message.
inline bool redundancy_op(Op op) {
  return op == Op::read_red || op == Op::write_red || op == Op::unlock_red ||
         op == Op::read_mirror || op == Op::read_own_overflow ||
         op == Op::drop_red;
}

const char* op_name(Op op);

/// A piece of overflow content, in the owning server's local data-file
/// coordinates.
struct OverflowPiece {
  std::uint64_t local_off = 0;
  Buffer data;
};

/// Per-handle storage usage on one server.
struct StorageInfo {
  std::uint64_t data_bytes = 0;      ///< logical data file size
  std::uint64_t red_bytes = 0;       ///< logical redundancy file size
  std::uint64_t overflow_bytes = 0;  ///< *allocated* overflow (fragmented)
};

struct Response {
  bool ok = true;
  Errc err = Errc::ok;
  Buffer data;
  std::vector<OverflowPiece> pieces;
  StorageInfo storage;
  /// Op::batch: one response per sub-request, in request order. The
  /// envelope's `ok` reflects whether the batch itself was admitted; each
  /// sub-response carries its own per-op outcome.
  std::vector<Response> subs;
  /// Index of the server this response concerns; filled in client-side by
  /// Client::rpc (including for synthesized timeout responses) so failover
  /// logic knows which server misbehaved.
  int server = -1;

  /// Approximate bytes this response occupies on the wire.
  std::uint64_t wire_bytes() const {
    std::uint64_t b = data.size();
    for (const auto& p : pieces) b += p.data.size() + 16;
    for (const auto& s : subs) b += s.wire_bytes() + 16;
    return b;
  }
};

struct Request {
  Op op{};
  std::uint64_t handle = 0;
  std::uint64_t off = 0;  ///< server-local offset (data or redundancy file)
  std::uint64_t len = 0;  ///< read length
  Buffer payload;         ///< write content
  std::uint32_t su = 0;   ///< stripe unit (lock granularity / overflow alloc)
  bool lock = false;      ///< read_red: acquire the parity-block lock
  bool unlock = false;    ///< write_red: release the parity-block lock
  /// Identity of the RMW transaction a lock/unlock belongs to (client-local
  /// counter; 0 = untagged). A retried read_red whose grant reply was lost
  /// re-enters its own lock instead of queueing behind itself, and a stale
  /// duplicate unlock from an earlier, abandoned RMW cannot release a lock
  /// a newer RMW of the same client now holds.
  std::uint64_t rmw_token = 0;
  bool mirror = false;    ///< write_overflow: store as mirror copy
  std::uint32_t owner = 0;  ///< overflow ops: owning server index
  /// read_red / write_red / drop_red: redundancy-file generation. A scheme
  /// migration builds the target scheme's redundancy into a fresh
  /// generation so mirror rows and parity rows never share a key space;
  /// generation 0 is the legacy `h<handle>.red` name.
  std::uint32_t red_gen = 0;
  /// write_data / write_red: full-stripe invalidation of own overflow
  /// entries (this server's local data range) and of mirror entries held
  /// for the preceding server (that server's local data range).
  Interval inval_own{0, 0};
  Interval inval_mirror{0, 0};

  /// Tracing only: span id of the client-side RPC span this request belongs
  /// to (0 = untraced). Server-side spans parent under it so one request's
  /// client, fabric and server work nest in the trace viewer. Carries no
  /// wire cost (excluded from wire_bytes) and never affects behaviour.
  std::uint64_t tspan = 0;

  /// Op::batch: the sub-requests, executed by the server in this order over
  /// one channel. Sub-requests carry no `from`/`reply` of their own (the
  /// envelope's are used) and must not nest further batches.
  std::vector<Request> subs;

  hw::NodeId from = 0;
  /// Shared so a reply outliving a timed-out RPC attempt lands in a live
  /// channel (the client keeps the channel alive across retries) instead of
  /// writing through a dangling pointer.
  std::shared_ptr<sim::Channel<Response>> reply;

  /// Approximate bytes this request occupies on the wire.
  std::uint64_t wire_bytes() const {
    std::uint64_t b = payload.size();
    for (const auto& s : subs) b += s.wire_bytes() + 16;
    return b;
  }
};

/// Request-level batch class: everything redundancy_op says, plus mirror
/// overflow copies. The mirror copy of a Hybrid partial write targets the
/// neighbour server's *redundancy* role, so it may share that server's
/// parity batch envelope instead of always taking a separate bulk transfer
/// (the primary overflow copy stays on the bulk stream — payload-dominated).
inline bool redundancy_request(const Request& r) {
  return redundancy_op(r.op) || (r.op == Op::write_overflow && r.mirror);
}

}  // namespace csar::pvfs
