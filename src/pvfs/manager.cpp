#include "pvfs/manager.hpp"

#include <algorithm>
#include <utility>

namespace csar::pvfs {

Manager::Manager(hw::Cluster& cluster, net::Fabric& fabric, hw::NodeId node,
                 ManagerParams params)
    : cluster_(&cluster),
      fabric_(&fabric),
      node_(node),
      p_(std::move(params)),
      inbox_(cluster.sim()) {
  // The durability model only makes sense if unsynced pages can be lost.
  p_.fs.volatile_dirty_pages = true;
  if (hw::PageCache* cache = cluster_->node(node_).cache()) {
    fs_ = std::make_unique<localfs::LocalFs>(cluster_->sim(), *cache, p_.fs);
    if (p_.journaling) {
      journal_ = std::make_unique<MetaJournal>(cluster_->sim(), *fs_,
                                               p_.journal);
    }
  }
}

void Manager::set_obs(obs::Tracer* tracer, obs::Registry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  pid_ = tracer_ ? tracer_->node_pid(node_) : 0;
}

void Manager::crash(bool wipe_unsynced) {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  ++stats_.crashes;
  files_.clear();
  dedup_.clear();
  next_handle_ = 1;
  // Without wipe the page cache is treated as having reached the platter
  // (crash-consistent battery-backed cache); with it, dirty journal/ckpt
  // bytes die and only flushed records survive to replay.
  if (fs_ && wipe_unsynced) fs_->crash();
  if (obs::kEnabled && tracer_) {
    tracer_->instant("mgr.crash", "fault",
                     wipe_unsynced ? "\"wipe\":1" : "\"wipe\":0");
  }
}

sim::Task<void> Manager::restart() {
  // Drain a handler suspended mid-serve (it is fenced by the epoch bump and
  // will not apply or reply) so replay never interleaves with its journal
  // append still in flight on the manager disk.
  while (serving_) co_await cluster_->sim().sleep(sim::us(100));

  files_.clear();
  dedup_.clear();
  next_handle_ = 1;
  std::uint64_t replayed = 0;
  std::uint32_t durable_inc = incarnation_;
  if (journal_) {
    MetaJournal::Recovered rec = co_await journal_->recover();
    next_handle_ = rec.snapshot.next_handle;
    durable_inc = std::max(durable_inc, rec.snapshot.incarnation);
    for (const SnapshotFile& f : rec.snapshot.files) {
      files_[f.name] =
          OpenFile{f.handle, f.layout, f.scheme, f.red_gen, f.rgroup};
    }
    for (const SnapshotDedup& d : rec.snapshot.dedup) {
      MetaResponse resp;
      resp.ok = d.ok;
      resp.err = static_cast<Errc>(d.err);
      resp.file = OpenFile{d.handle, d.layout, d.scheme, d.red_gen, d.rgroup};
      dedup_put(d.from, d.req_id, resp);
    }
    for (const JournalRecord& r : rec.records) {
      apply_record(r);
      if (r.req_id != 0) {
        // The record committed, so the retry must see the success reply.
        MetaResponse resp;
        auto it = files_.find(r.name);
        if (it != files_.end()) resp.file = it->second;
        else resp.file.handle = r.handle;
        dedup_put(r.from, r.req_id, resp);
      }
      ++replayed;
    }
  }
  incarnation_ = durable_inc + 1;
  // Persist the new incarnation (and fold the replayed records into a fresh
  // checkpoint) before serving: a second crash must not reuse an epoch.
  if (journal_) co_await journal_->write_checkpoint(snapshot());
  crashed_ = false;
  ++stats_.replays;
  stats_.replayed_records += replayed;
  if (obs::kEnabled && tracer_) {
    tracer_->instant("mgr.replay", "fault",
                     "\"records\":" + std::to_string(replayed) +
                         ",\"files\":" + std::to_string(files_.size()) +
                         ",\"incarnation\":" + std::to_string(incarnation_));
  }
}

sim::Task<void> Manager::dispatcher() {
  for (;;) {
    MetaRequest r = co_await inbox_.recv();
    if (r.op == MetaOp::shutdown) break;
    if (crashed_) {
      ++stats_.dropped_requests;
      continue;
    }
    const std::uint64_t epoch = epoch_;
    serving_ = true;
    MetaResponse resp = co_await serve(r, epoch);
    serving_ = false;
    if (epoch != epoch_) continue;  // crashed mid-serve: no reply escapes
    if (co_await fabric_->transfer(node_, r.from, sizeof(MetaResponse)) !=
        net::Delivery::ok) {
      ++stats_.dropped_replies;
      continue;
    }
    if (epoch != epoch_) continue;  // crashed during the reply transfer
    r.reply->send(std::move(resp));
  }
}

sim::Task<MetaResponse> Manager::serve(const MetaRequest& r,
                                       std::uint64_t epoch) {
  ++stats_.served;
  MetaResponse resp;
  resp.mgr_epoch = incarnation_;

  // A retried mutation we already answered resends the original reply —
  // never re-executes (the fix for retried-create => already_exists).
  if (r.req_id != 0) {
    if (const MetaResponse* hit = dedup_find(r.from, r.req_id)) {
      resp = *hit;
      resp.mgr_epoch = incarnation_;
      ++stats_.dedup_hits;
      co_return resp;
    }
  }

  // Incarnation fence: a mutation prepared against a pre-crash view must
  // not clobber replayed state.
  if (r.fence_epoch != 0 && r.fence_epoch != incarnation_) {
    resp.ok = false;
    resp.err = Errc::stale_epoch;
    ++stats_.stale_epoch_rejects;
    if (r.req_id != 0) dedup_put(r.from, r.req_id, resp);
    co_return resp;
  }

  // Validate against current state and build the journal record for ops
  // that mutate. Failures are never journaled: replay re-derives the same
  // failure deterministically.
  bool mutates = false;
  JournalRecord rec;
  switch (r.op) {
    case MetaOp::create: {
      if (files_.contains(r.name)) {
        resp.ok = false;
        resp.err = Errc::already_exists;
        break;
      }
      rec.kind = JournalRecord::Kind::create;
      rec.name = r.name;
      rec.layout = r.layout;
      rec.scheme = r.scheme;
      rec.handle = next_handle_;
      mutates = true;
      break;
    }
    case MetaOp::open: {
      auto it = files_.find(r.name);
      if (it == files_.end()) {
        resp.ok = false;
        resp.err = Errc::not_found;
        break;
      }
      resp.file = it->second;
      break;
    }
    case MetaOp::remove: {
      if (!files_.contains(r.name)) {
        resp.ok = false;
        resp.err = Errc::not_found;
        break;
      }
      rec.kind = JournalRecord::Kind::remove;
      rec.name = r.name;
      mutates = true;
      break;
    }
    case MetaOp::set_scheme: {
      auto it = files_.find(r.name);
      if (it == files_.end()) {
        resp.ok = false;
        resp.err = Errc::not_found;
        break;
      }
      if (r.red_gen < it->second.red_gen) {
        // A delayed duplicate must not roll the generation backwards.
        resp.ok = false;
        resp.err = Errc::stale_generation;
        ++stats_.stale_gen_rejects;
        break;
      }
      if (r.red_gen == it->second.red_gen && r.scheme == it->second.scheme) {
        // Idempotent re-persist (reconciliation, retried migrator persist):
        // already durable, nothing to journal.
        resp.file = it->second;
        break;
      }
      rec.kind = JournalRecord::Kind::set_scheme;
      rec.name = r.name;
      rec.scheme = r.scheme;
      rec.red_gen = r.red_gen;
      rec.handle = it->second.handle;
      mutates = true;
      break;
    }
    case MetaOp::set_rgroup: {
      auto it = files_.find(r.name);
      if (it == files_.end()) {
        resp.ok = false;
        resp.err = Errc::not_found;
        break;
      }
      if (r.rgroup == it->second.rgroup) {
        // Idempotent re-tag: already durable, nothing to journal.
        resp.file = it->second;
        break;
      }
      rec.kind = JournalRecord::Kind::set_rgroup;
      rec.name = r.name;
      rec.rgroup = r.rgroup;
      rec.handle = it->second.handle;
      mutates = true;
      break;
    }
    case MetaOp::shutdown:
      break;
  }

  if (mutates) {
    rec.from = r.from;
    rec.req_id = r.req_id;
    if (journal_) {
      // Write-ahead: the record is durable before the table changes or the
      // client hears anything.
      co_await journal_->append(rec);
      if (epoch != epoch_) {
        // Crashed while the append was in flight. If the record made it to
        // disk, replay applied (or will apply) it — committed but
        // unacknowledged, exactly what the client retry path handles.
        resp.ok = false;
        resp.err = Errc::unavailable;
        co_return resp;
      }
    }
    apply_record(rec);
    auto it = files_.find(r.name);
    if (it != files_.end()) resp.file = it->second;
  }

  if (r.req_id != 0) dedup_put(r.from, r.req_id, resp);

  if (mutates && journal_ && journal_->checkpoint_due()) {
    // snapshot() is taken synchronously (no await since apply_record), so
    // it reflects every journaled record including this one.
    co_await journal_->write_checkpoint(snapshot());
  }
  co_return resp;
}

void Manager::apply_record(const JournalRecord& rec) {
  switch (rec.kind) {
    case JournalRecord::Kind::create: {
      files_[rec.name] = OpenFile{rec.handle, rec.layout, rec.scheme, 0};
      next_handle_ = std::max(next_handle_, rec.handle + 1);
      break;
    }
    case JournalRecord::Kind::remove: {
      files_.erase(rec.name);
      break;
    }
    case JournalRecord::Kind::set_scheme: {
      auto it = files_.find(rec.name);
      if (it != files_.end()) {
        it->second.scheme = rec.scheme;
        it->second.red_gen = rec.red_gen;
      }
      break;
    }
    case JournalRecord::Kind::set_rgroup: {
      auto it = files_.find(rec.name);
      if (it != files_.end()) it->second.rgroup = rec.rgroup;
      break;
    }
  }
}

MetaSnapshot Manager::snapshot() const {
  MetaSnapshot s;
  s.next_handle = next_handle_;
  s.incarnation = incarnation_;
  for (const auto& [name, f] : files_) {
    s.files.push_back(
        {name, f.handle, f.layout, f.scheme, f.red_gen, f.rgroup});
  }
  for (const auto& [from, cd] : dedup_) {
    for (std::uint64_t id : cd.order) {
      const MetaResponse& resp = cd.by_id.at(id);
      s.dedup.push_back({from, id, resp.ok, static_cast<std::uint8_t>(
                                                resp.err),
                         resp.file.handle, resp.file.layout, resp.file.scheme,
                         resp.file.red_gen, resp.file.rgroup});
    }
  }
  return s;
}

const MetaResponse* Manager::dedup_find(hw::NodeId from,
                                        std::uint64_t req_id) const {
  auto cit = dedup_.find(from);
  if (cit == dedup_.end()) return nullptr;
  auto it = cit->second.by_id.find(req_id);
  return it == cit->second.by_id.end() ? nullptr : &it->second;
}

void Manager::dedup_put(hw::NodeId from, std::uint64_t req_id,
                        const MetaResponse& resp) {
  ClientDedup& cd = dedup_[from];
  auto [it, inserted] = cd.by_id.emplace(req_id, resp);
  if (!inserted) {
    it->second = resp;
    return;
  }
  cd.order.push_back(req_id);
  while (cd.order.size() > p_.dedup_window) {
    cd.by_id.erase(cd.order.front());
    cd.order.pop_front();
  }
}

}  // namespace csar::pvfs
