// Manager: the PVFS metadata daemon.
//
// Maintains the file table (name -> handle + stripe layout + redundancy
// scheme tag/generation) and serves create/open/remove/set_scheme over RPC.
// PVFS clients contact the manager once per open and then talk to the I/O
// servers directly — the manager is off the data path, which is what gives
// striped file systems their scalability.
//
// Crash tolerance (the piece plain PVFS never had): every committed mutation
// is written ahead to a checksummed journal on the manager node's own disk
// (MetaJournal), with periodic checkpoints bounding replay. A crash drops
// all in-memory state and fences in-flight handlers via an epoch bump (the
// same pattern as IoServer); restart() replays checkpoint + journal and
// bumps the durable *incarnation* number that fences stale cross-crash
// requests (see MetaRequest::fence_epoch). Mutating meta-RPCs carry a
// per-client request id so a retry of an op whose reply was lost resends
// the original reply instead of re-executing (a retried create no longer
// comes back `already_exists`).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "hw/node.hpp"
#include "localfs/local_fs.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pvfs/layout.hpp"
#include "pvfs/meta_journal.hpp"
#include "sim/channel.hpp"
#include "sim/task.hpp"

namespace csar::pvfs {

/// Sentinel scheme tag: the file carries no per-file scheme and inherits the
/// deployment default (files created through the raw pvfs::Client path).
inline constexpr std::uint8_t kSchemeUnset = 0xFF;

/// Sentinel rgroup id: the file belongs to no redundancy class (fleet layer
/// never tagged it).
inline constexpr std::uint8_t kRgroupUnset = 0xFF;

struct OpenFile {
  std::uint64_t handle = 0;
  StripeLayout layout;
  /// Redundancy scheme tag (raid::Scheme value; the manager stores it as an
  /// opaque byte — pvfs knows nothing about RAID). kSchemeUnset = inherit.
  std::uint8_t scheme = kSchemeUnset;
  /// Current redundancy-file generation (bumped by scheme migrations).
  std::uint32_t red_gen = 0;
  /// Redundancy-class (rgroup) id the fleet layer filed this file under —
  /// another opaque byte; transitions are planned per class, and the tag
  /// must survive manager crashes so the fleet can rebuild its view.
  std::uint8_t rgroup = kRgroupUnset;
};

enum class MetaOp : std::uint8_t { create, open, remove, set_scheme,
                                   set_rgroup, shutdown };

struct MetaRequest {
  MetaOp op{};
  std::string name;
  StripeLayout layout;
  std::uint8_t scheme = kSchemeUnset;  ///< create / set_scheme
  std::uint32_t red_gen = 0;           ///< set_scheme
  std::uint8_t rgroup = kRgroupUnset;  ///< set_rgroup
  hw::NodeId from = 0;
  /// Per-client id of the *logical* operation, identical across retries of
  /// the same call (0 = unguarded). The manager dedups on (from, req_id).
  std::uint64_t req_id = 0;
  /// Epoch fence: when nonzero, the op executes only if the manager's
  /// incarnation still equals this value — a mutation prepared against
  /// pre-crash state cannot clobber post-replay state (Errc::stale_epoch).
  std::uint32_t fence_epoch = 0;
  std::shared_ptr<sim::Channel<struct MetaResponse>> reply;
};

struct MetaResponse {
  bool ok = true;
  Errc err = Errc::ok;
  OpenFile file;
  /// Manager incarnation that produced this reply; clients remember the
  /// latest value and use it to fence migration persists.
  std::uint32_t mgr_epoch = 0;
};

struct ManagerParams {
  /// Journal every mutation through the manager node's disk. Off = the
  /// legacy in-memory manager (the A12 ablation baseline): a crash loses
  /// the whole file table.
  bool journaling = true;
  MetaJournalParams journal;
  /// Retained replies per client for meta-RPC dedup. Bounds manager memory;
  /// must exceed the deepest per-client retry pipelining (clients retry one
  /// meta op at a time, so a handful suffices).
  std::uint32_t dedup_window = 32;
  localfs::LocalFsParams fs;  ///< manager-disk tuning (volatility is forced)
};

struct ManagerStats {
  std::uint64_t served = 0;            ///< requests that reached serve()
  std::uint64_t dropped_requests = 0;  ///< arrived while crashed
  std::uint64_t dropped_replies = 0;   ///< reply lost on the fabric
  std::uint64_t dedup_hits = 0;        ///< retries answered from the table
  std::uint64_t stale_gen_rejects = 0;    ///< Errc::stale_generation
  std::uint64_t stale_epoch_rejects = 0;  ///< Errc::stale_epoch
  std::uint64_t crashes = 0;
  std::uint64_t replays = 0;           ///< completed restart()s
  std::uint64_t replayed_records = 0;  ///< journal records re-applied
};

class Manager {
 public:
  Manager(hw::Cluster& cluster, net::Fabric& fabric, hw::NodeId node,
          ManagerParams params = {});
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  void start() {
    if (started_) return;
    started_ = true;
    cluster_->sim().spawn(dispatcher());
  }

  void stop() {
    MetaRequest r;
    r.op = MetaOp::shutdown;
    inbox_.send(std::move(r));
  }

  /// Hard crash: all in-memory metadata and the dedup table vanish; queued
  /// and future requests are dropped silently; in-flight handlers are fenced
  /// by the epoch bump (no reply escapes). With `wipe_unsynced` the unsynced
  /// journal tail (dirty page-cache content) dies too — only flushed records
  /// survive to replay.
  void crash(bool wipe_unsynced);

  /// Bring a crashed manager back: replay checkpoint + journal into a fresh
  /// file table, bump the durable incarnation, and resume serving. Clients
  /// were never quiesced — their retries simply start succeeding again.
  sim::Task<void> restart();

  sim::Channel<MetaRequest>& inbox() { return inbox_; }
  hw::NodeId node_id() const { return node_; }
  std::size_t file_count() const { return files_.size(); }
  bool crashed() const { return crashed_; }

  /// Current incarnation (starts at 1, bumped by every restart; durable).
  std::uint32_t incarnation() const { return incarnation_; }

  const ManagerStats& stats() const { return stats_; }

  /// Journal counters; zeros when journaling is off.
  JournalStats journal_stats() const {
    return journal_ ? journal_->stats() : JournalStats{};
  }

  /// The manager node's local file system (tests corrupt the journal tail
  /// through it). Null when the node has no disk/cache.
  localfs::LocalFs* meta_fs() { return fs_.get(); }

  void set_obs(obs::Tracer* tracer, obs::Registry* metrics);

 private:
  struct ClientDedup {
    std::map<std::uint64_t, MetaResponse> by_id;
    std::deque<std::uint64_t> order;  ///< insertion order, for eviction
  };

  sim::Task<void> dispatcher();
  sim::Task<MetaResponse> serve(const MetaRequest& r, std::uint64_t epoch);
  /// Apply one committed mutation to the in-memory table. Shared by the
  /// serve path and journal replay so both produce identical state.
  void apply_record(const JournalRecord& rec);
  MetaSnapshot snapshot() const;
  const MetaResponse* dedup_find(hw::NodeId from, std::uint64_t req_id) const;
  void dedup_put(hw::NodeId from, std::uint64_t req_id,
                 const MetaResponse& resp);

  hw::Cluster* cluster_;
  net::Fabric* fabric_;
  hw::NodeId node_;
  ManagerParams p_;
  sim::Channel<MetaRequest> inbox_;
  std::map<std::string, OpenFile> files_;
  std::map<hw::NodeId, ClientDedup> dedup_;
  std::unique_ptr<localfs::LocalFs> fs_;    ///< null if node has no disk
  std::unique_ptr<MetaJournal> journal_;    ///< null if journaling off
  ManagerStats stats_;
  std::uint64_t next_handle_ = 1;
  /// Durable incarnation: fences cross-crash staleness (MetaRequest::
  /// fence_epoch). Persisted in checkpoints; monotonic across restarts.
  std::uint32_t incarnation_ = 1;
  /// In-flight fencing epoch, bumped per crash (same role as IoServer's):
  /// a handler suspended across a crash must neither apply nor reply.
  std::uint64_t epoch_ = 0;
  /// True while a handler is between dequeue and reply; restart() drains it
  /// before replaying so replay never interleaves with a suspended append.
  bool serving_ = false;
  bool crashed_ = false;
  bool started_ = false;
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  std::uint32_t pid_ = 0;
};

}  // namespace csar::pvfs
