// Manager: the PVFS metadata daemon.
//
// Maintains the file table (name -> handle + stripe layout) and serves
// create/open/remove over RPC. PVFS clients contact the manager once per
// open and then talk to the I/O servers directly — the manager is off the
// data path, which is what gives striped file systems their scalability.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "hw/node.hpp"
#include "net/fabric.hpp"
#include "pvfs/layout.hpp"
#include "sim/channel.hpp"
#include "sim/task.hpp"

namespace csar::pvfs {

/// Sentinel scheme tag: the file carries no per-file scheme and inherits the
/// deployment default (files created through the raw pvfs::Client path).
inline constexpr std::uint8_t kSchemeUnset = 0xFF;

struct OpenFile {
  std::uint64_t handle = 0;
  StripeLayout layout;
  /// Redundancy scheme tag (raid::Scheme value; the manager stores it as an
  /// opaque byte — pvfs knows nothing about RAID). kSchemeUnset = inherit.
  std::uint8_t scheme = kSchemeUnset;
  /// Current redundancy-file generation (bumped by scheme migrations).
  std::uint32_t red_gen = 0;
};

enum class MetaOp : std::uint8_t { create, open, remove, set_scheme,
                                   shutdown };

struct MetaRequest {
  MetaOp op{};
  std::string name;
  StripeLayout layout;
  std::uint8_t scheme = kSchemeUnset;  ///< create / set_scheme
  std::uint32_t red_gen = 0;           ///< set_scheme
  hw::NodeId from = 0;
  std::shared_ptr<sim::Channel<struct MetaResponse>> reply;
};

struct MetaResponse {
  bool ok = true;
  Errc err = Errc::ok;
  OpenFile file;
};

class Manager {
 public:
  Manager(hw::Cluster& cluster, net::Fabric& fabric, hw::NodeId node)
      : cluster_(&cluster), fabric_(&fabric), node_(node),
        inbox_(cluster.sim()) {}
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  void start() {
    if (started_) return;
    started_ = true;
    cluster_->sim().spawn(dispatcher());
  }

  void stop() {
    MetaRequest r;
    r.op = MetaOp::shutdown;
    inbox_.send(std::move(r));
  }

  sim::Channel<MetaRequest>& inbox() { return inbox_; }
  hw::NodeId node_id() const { return node_; }
  std::size_t file_count() const { return files_.size(); }

 private:
  sim::Task<void> dispatcher() {
    for (;;) {
      MetaRequest r = co_await inbox_.recv();
      if (r.op == MetaOp::shutdown) break;
      MetaResponse resp = serve(r);
      if (co_await fabric_->transfer(node_, r.from, sizeof(MetaResponse)) ==
          net::Delivery::ok) {
        r.reply->send(std::move(resp));
      }
    }
  }

  MetaResponse serve(const MetaRequest& r) {
    MetaResponse resp;
    switch (r.op) {
      case MetaOp::create: {
        if (files_.contains(r.name)) {
          resp.ok = false;
          resp.err = Errc::already_exists;
          break;
        }
        OpenFile f{next_handle_++, r.layout, r.scheme, 0};
        files_.emplace(r.name, f);
        resp.file = f;
        break;
      }
      case MetaOp::open: {
        auto it = files_.find(r.name);
        if (it == files_.end()) {
          resp.ok = false;
          resp.err = Errc::not_found;
          break;
        }
        resp.file = it->second;
        break;
      }
      case MetaOp::remove: {
        if (files_.erase(r.name) == 0) {
          resp.ok = false;
          resp.err = Errc::not_found;
        }
        break;
      }
      case MetaOp::set_scheme: {
        auto it = files_.find(r.name);
        if (it == files_.end()) {
          resp.ok = false;
          resp.err = Errc::not_found;
          break;
        }
        it->second.scheme = r.scheme;
        it->second.red_gen = r.red_gen;
        resp.file = it->second;
        break;
      }
      case MetaOp::shutdown:
        break;
    }
    return resp;
  }

  hw::Cluster* cluster_;
  net::Fabric* fabric_;
  hw::NodeId node_;
  sim::Channel<MetaRequest> inbox_;
  std::map<std::string, OpenFile> files_;
  std::uint64_t next_handle_ = 1;
  bool started_ = false;
};

}  // namespace csar::pvfs
