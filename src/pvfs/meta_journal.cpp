#include "pvfs/meta_journal.hpp"

#include <cstring>
#include <span>

namespace csar::pvfs {
namespace {

constexpr std::uint64_t kHeaderBytes = 12;  // u32 len + u64 checksum

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(b));
    h *= 1099511628211ull;
  }
  return h;
}

// Little-endian scalar codec over std::vector<std::byte>. Explicit widths —
// the journal is a durable format and must not depend on host layout.
void put_u8(std::vector<std::byte>& v, std::uint8_t x) {
  v.push_back(static_cast<std::byte>(x));
}
void put_u32(std::vector<std::byte>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) put_u8(v, static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_u64(std::vector<std::byte>& v, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) put_u8(v, static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_string(std::vector<std::byte>& v, const std::string& s) {
  put_u32(v, static_cast<std::uint32_t>(s.size()));
  for (char c : s) v.push_back(static_cast<std::byte>(c));
}
void put_layout(std::vector<std::byte>& v, const StripeLayout& l) {
  put_u32(v, l.stripe_unit);
  put_u32(v, l.nservers);
  put_u8(v, static_cast<std::uint8_t>(l.placement));
  put_u32(v, l.base);
}

struct Reader {
  std::span<const std::byte> bytes;
  std::size_t off = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (off + 1 > bytes.size()) {
      ok = false;
      return 0;
    }
    return std::to_integer<std::uint8_t>(bytes[off++]);
  }
  std::uint32_t u32() {
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return x;
  }
  std::uint64_t u64() {
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return x;
  }
  std::string string() {
    const std::uint32_t n = u32();
    if (!ok || off + n > bytes.size()) {
      ok = false;
      return {};
    }
    std::string s(n, '\0');
    std::memcpy(s.data(), bytes.data() + off, n);
    off += n;
    return s;
  }
  StripeLayout layout() {
    StripeLayout l;
    l.stripe_unit = u32();
    l.nservers = u32();
    l.placement = static_cast<ParityPlacement>(u8());
    l.base = u32();
    return l;
  }
};

std::vector<std::byte> encode_record(const JournalRecord& r) {
  std::vector<std::byte> p;
  put_u8(p, static_cast<std::uint8_t>(r.kind));
  put_u8(p, r.scheme);
  put_u8(p, r.rgroup);
  put_layout(p, r.layout);
  put_u32(p, r.red_gen);
  put_u32(p, r.from);
  put_u64(p, r.handle);
  put_u64(p, r.req_id);
  put_string(p, r.name);
  return p;
}

bool decode_record(std::span<const std::byte> payload, JournalRecord* out) {
  Reader rd{payload};
  out->kind = static_cast<JournalRecord::Kind>(rd.u8());
  out->scheme = rd.u8();
  out->rgroup = rd.u8();
  out->layout = rd.layout();
  out->red_gen = rd.u32();
  out->from = rd.u32();
  out->handle = rd.u64();
  out->req_id = rd.u64();
  out->name = rd.string();
  return rd.ok && rd.off == payload.size();
}

std::vector<std::byte> encode_snapshot(std::uint64_t seq,
                                       const MetaSnapshot& s) {
  std::vector<std::byte> p;
  put_u64(p, seq);
  put_u64(p, s.next_handle);
  put_u32(p, s.incarnation);
  put_u32(p, static_cast<std::uint32_t>(s.files.size()));
  for (const SnapshotFile& f : s.files) {
    put_string(p, f.name);
    put_u64(p, f.handle);
    put_layout(p, f.layout);
    put_u8(p, f.scheme);
    put_u32(p, f.red_gen);
    put_u8(p, f.rgroup);
  }
  put_u32(p, static_cast<std::uint32_t>(s.dedup.size()));
  for (const SnapshotDedup& d : s.dedup) {
    put_u32(p, d.from);
    put_u64(p, d.req_id);
    put_u8(p, d.ok ? 1 : 0);
    put_u8(p, d.err);
    put_u64(p, d.handle);
    put_layout(p, d.layout);
    put_u8(p, d.scheme);
    put_u32(p, d.red_gen);
    put_u8(p, d.rgroup);
  }
  return p;
}

bool decode_snapshot(std::span<const std::byte> payload, std::uint64_t* seq,
                     MetaSnapshot* out) {
  Reader rd{payload};
  *seq = rd.u64();
  out->next_handle = rd.u64();
  out->incarnation = rd.u32();
  const std::uint32_t nfiles = rd.u32();
  for (std::uint32_t i = 0; rd.ok && i < nfiles; ++i) {
    SnapshotFile f;
    f.name = rd.string();
    f.handle = rd.u64();
    f.layout = rd.layout();
    f.scheme = rd.u8();
    f.red_gen = rd.u32();
    f.rgroup = rd.u8();
    out->files.push_back(std::move(f));
  }
  const std::uint32_t ndedup = rd.u32();
  for (std::uint32_t i = 0; rd.ok && i < ndedup; ++i) {
    SnapshotDedup d;
    d.from = rd.u32();
    d.req_id = rd.u64();
    d.ok = rd.u8() != 0;
    d.err = rd.u8();
    d.handle = rd.u64();
    d.layout = rd.layout();
    d.scheme = rd.u8();
    d.red_gen = rd.u32();
    d.rgroup = rd.u8();
    out->dedup.push_back(d);
  }
  return rd.ok && rd.off == payload.size();
}

/// Frame a payload as [u32 len][u64 fnv1a(payload)][payload].
Buffer frame(const std::vector<std::byte>& payload) {
  std::vector<std::byte> all;
  all.reserve(kHeaderBytes + payload.size());
  put_u32(all, static_cast<std::uint32_t>(payload.size()));
  put_u64(all, fnv1a(payload));
  all.insert(all.end(), payload.begin(), payload.end());
  return Buffer::from_bytes(std::move(all));
}

}  // namespace

sim::Task<void> MetaJournal::append(const JournalRecord& rec) {
  Buffer buf = frame(encode_record(rec));
  const std::uint64_t len = buf.size();
  co_await fs_->write(kJournalFile, tail_, std::move(buf));
  if (p_.sync_appends) {
    co_await fs_->flush();
    ++stats_.flushes;
  }
  tail_ += len;
  ++since_ckpt_;
  ++stats_.records_appended;
  stats_.bytes_appended += len;
}

sim::Task<void> MetaJournal::write_checkpoint(const MetaSnapshot& snap) {
  const unsigned slot = next_slot_;
  Buffer buf = frame(encode_snapshot(++ckpt_seq_, snap));
  fs_->remove(ckpt_file(slot));
  co_await fs_->write(ckpt_file(slot), 0, std::move(buf));
  co_await fs_->flush();
  ++stats_.flushes;
  // Checkpoint is durable; truncate the journal. remove+create with no await
  // in between — atomic under the cooperative scheduler.
  fs_->remove(kJournalFile);
  fs_->create(kJournalFile);
  tail_ = 0;
  since_ckpt_ = 0;
  next_slot_ = slot ^ 1u;
  ++stats_.checkpoints;
}

sim::Task<MetaJournal::Recovered> MetaJournal::recover() {
  Recovered out;

  // Newest valid checkpoint wins; the loser slot takes the next checkpoint.
  std::uint64_t best_seq = 0;
  int best_slot = -1;
  for (unsigned slot = 0; slot < 2; ++slot) {
    const char* name = ckpt_file(slot);
    const std::uint64_t sz = fs_->size(name);
    if (!fs_->exists(name) || sz < kHeaderBytes) continue;
    Buffer hdr = co_await fs_->read(name, 0, kHeaderBytes);
    Reader hr{hdr.bytes()};
    const std::uint32_t len = hr.u32();
    const std::uint64_t sum = hr.u64();
    if (len == 0 || kHeaderBytes + len > sz) continue;
    Buffer payload = co_await fs_->read(name, kHeaderBytes, len);
    if (fnv1a(payload.bytes()) != sum) continue;
    std::uint64_t seq = 0;
    MetaSnapshot snap;
    if (!decode_snapshot(payload.bytes(), &seq, &snap)) continue;
    if (best_slot < 0 || seq > best_seq) {
      best_seq = seq;
      best_slot = static_cast<int>(slot);
      out.snapshot = std::move(snap);
      out.had_checkpoint = true;
    }
  }
  ckpt_seq_ = best_seq;
  next_slot_ = best_slot < 0 ? 0u : static_cast<unsigned>(best_slot) ^ 1u;

  // Scan the journal for the valid record prefix.
  const std::uint64_t size = fs_->size(kJournalFile);
  std::uint64_t off = 0;
  bool torn = false;
  while (off + kHeaderBytes <= size) {
    Buffer hdr = co_await fs_->read(kJournalFile, off, kHeaderBytes);
    Reader hr{hdr.bytes()};
    const std::uint32_t len = hr.u32();
    const std::uint64_t sum = hr.u64();
    if (len == 0) break;  // clean end (zero-filled / never-written space)
    if (off + kHeaderBytes + len > size) {
      torn = true;
      break;
    }
    Buffer payload = co_await fs_->read(kJournalFile, off + kHeaderBytes, len);
    JournalRecord rec;
    if (fnv1a(payload.bytes()) != sum ||
        !decode_record(payload.bytes(), &rec)) {
      torn = true;
      break;
    }
    out.records.push_back(std::move(rec));
    off += kHeaderBytes + len;
  }
  if (torn || off < size) {
    // Zero-fill the discarded tail so stale bytes beyond the new append
    // cursor can never alias as a valid record after later, shorter appends.
    co_await fs_->write(kJournalFile, off, Buffer::real(size - off));
    co_await fs_->flush();
    ++stats_.flushes;
    if (torn) {
      out.torn_tail = true;
      ++stats_.truncated_records;
    }
  }
  tail_ = off;
  since_ckpt_ = static_cast<std::uint32_t>(out.records.size());
  co_return out;
}

}  // namespace csar::pvfs
