// Client: the PVFS client library.
//
// Resolves striping and talks directly to the I/O servers. This class is
// scheme-agnostic: it provides metadata ops, the plain striped (RAID0) data
// path, and the per-server RPC building blocks the redundancy schemes in
// csar::raid compose (parity reads with locking, overflow writes, etc.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "hw/node.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pvfs/io_server.hpp"
#include "pvfs/layout.hpp"
#include "pvfs/manager.hpp"
#include "sim/task.hpp"

namespace csar::pvfs {

/// Per-RPC robustness policy. The default (timeout 0, one attempt) is the
/// legacy behaviour: wait forever, never retry — heavy-load experiments
/// legitimately queue RPCs for many simulated seconds, so deadlines are
/// strictly opt-in. Fault-aware setups (Rig rpc policy, HealthMonitor
/// probes, the fault-storm harness) configure real deadlines.
struct RpcPolicy {
  /// Per-attempt deadline on the simulated clock; 0 = wait forever.
  sim::Duration timeout = 0;
  /// Total send attempts (1 = no retry).
  std::uint32_t max_attempts = 1;
  /// Backoff before retry k (1-based) is `backoff << (k-1)` plus jitter.
  sim::Duration backoff = sim::ms(5);
  /// Uniform jitter fraction of the backoff, drawn from the client's
  /// deterministic Rng: pause += U[0, jitter) * pause.
  double jitter = 0.5;
};

/// Counters for the client's RPC engine (retry/timeout observability).
struct RpcStats {
  std::uint64_t sent = 0;      ///< attempts that reached the fabric
  std::uint64_t retries = 0;   ///< attempts after the first
  std::uint64_t timeouts = 0;  ///< attempts that hit their deadline
  std::uint64_t resets = 0;    ///< attempts refused by the fabric (reset)
};

class Client {
 public:
  Client(hw::Cluster& cluster, net::Fabric& fabric, Manager& manager,
         std::vector<IoServer*> servers, hw::NodeId node)
      : cluster_(&cluster),
        fabric_(&fabric),
        manager_(&manager),
        servers_(std::move(servers)),
        node_(node) {}
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  hw::NodeId node_id() const { return node_; }
  std::uint32_t nservers() const {
    return static_cast<std::uint32_t>(servers_.size());
  }
  hw::Cluster& cluster() { return *cluster_; }
  net::Fabric& fabric() { return *fabric_; }
  IoServer& server(std::uint32_t s) { return *servers_[s]; }

  // --- metadata ---
  /// `scheme` is an opaque per-file tag the manager stores alongside the
  /// layout (raid::RedundancyPolicy assigns it at create; kSchemeUnset =
  /// the file inherits the deployment default).
  sim::Task<Result<OpenFile>> create(std::string name, StripeLayout layout,
                                     std::uint8_t scheme = kSchemeUnset);
  sim::Task<Result<OpenFile>> open(std::string name);
  sim::Task<Result<void>> remove(std::string name);
  /// Record a scheme transition (and its redundancy generation) at the
  /// manager, so later opens see the migrated file's metadata. A nonzero
  /// `fence_epoch` executes only against that manager incarnation
  /// (Errc::stale_epoch otherwise) — the migrator fences its persist so a
  /// pre-crash flip cannot clobber replayed state.
  sim::Task<Result<OpenFile>> set_scheme(std::string name, std::uint8_t scheme,
                                         std::uint32_t red_gen,
                                         std::uint32_t fence_epoch = 0);

  /// Durably tag the file with a redundancy-class (rgroup) id at the
  /// manager. Idempotent; the tag survives manager crashes like scheme tags.
  sim::Task<Result<OpenFile>> set_rgroup(std::string name,
                                         std::uint8_t rgroup);

  /// Latest manager incarnation observed in any meta reply (0 = none yet).
  std::uint32_t manager_epoch() const { return mgr_epoch_seen_; }

  /// Default policy for every rpc()/meta_rpc() issued by this client.
  void set_rpc_policy(const RpcPolicy& p) { policy_ = p; }
  const RpcPolicy& rpc_policy() const { return policy_; }

  /// Reseed the deterministic backoff-jitter stream (Rig seeds one stream
  /// per client so concurrent retries stay decorrelated but reproducible).
  void seed_retry_rng(std::uint64_t seed) { rng_.reseed(seed); }

  const RpcStats& rpc_stats() const { return rpc_stats_; }

  /// Fresh identity for one parity read-modify-write: tags its locked
  /// read_red, the paired unlocking write_red, and any abandon-time
  /// unlock_red, so server-side lock ownership survives lost grant replies
  /// (retries re-enter instead of queueing behind themselves).
  std::uint64_t next_rmw_token() { return ++rmw_seq_; }

  // --- observability ---
  /// Attach (or clear) the tracer / metrics registry. Caches the metric
  /// handles so the hot path never does a name lookup.
  void set_obs(obs::Tracer* tracer, obs::Registry* metrics);
  obs::Tracer* tracer() { return tracer_; }
  std::uint32_t obs_pid() const { return pid_; }

  /// Ambient parent span for RPC spans issued while it is set — the
  /// filesystem layer (raid::CsarFs) brackets each op with one span and
  /// publishes it here so per-server RPCs nest under the op.
  void set_ambient_span(obs::SpanId s) { ambient_ = s; }
  obs::SpanId ambient_span() const { return ambient_; }

  // --- RPC building block ---
  /// Send `r` to server `s`, charging the network both ways; returns the
  /// server's response (under the client's default policy).
  sim::Task<Response> rpc(std::uint32_t s, Request r);

  /// Like rpc() but with an explicit policy (health probes use short
  /// deadlines regardless of the client-wide default). On timeout after the
  /// last attempt the response is synthesized with Errc::timeout; a fabric
  /// reset after the last attempt yields Errc::conn_dropped. Late replies
  /// from earlier attempts of the same call are accepted (all I/O server
  /// ops are idempotent).
  sim::Task<Response> rpc(std::uint32_t s, Request r, RpcPolicy policy);

  /// Wire-level batching switch (RigParams::rpc_batching). When on,
  /// rpc_batch() really coalesces and rpc_all() auto-batches same-server
  /// same-connection requests; when off both degrade to one RPC per request
  /// (the ablation baseline — identical wire traffic to the legacy path).
  void set_rpc_batching(bool on) { batching_ = on; }
  bool rpc_batching() const { return batching_; }

  /// Send `subs` to server `s` as one Op::batch envelope (a single fabric
  /// transfer each way); the server executes them in order over one channel.
  /// Returns one response per sub, in order, each with `server` filled. A
  /// failure of the envelope itself (timeout, reset, refused server) is
  /// replicated onto every sub-response. With batching disabled — or a
  /// single sub — this degrades to plain rpc() per request, sequentially.
  sim::Task<std::vector<Response>> rpc_batch(std::uint32_t s,
                                             std::vector<Request> subs);
  sim::Task<std::vector<Response>> rpc_batch(std::uint32_t s,
                                             std::vector<Request> subs,
                                             RpcPolicy policy);

  /// Issue all requests concurrently; responses returned in request order.
  /// With batching enabled, redundancy-class requests (parity/mirror ops —
  /// small, header-dominated) to the same server are coalesced into one
  /// Op::batch envelope; bulk payload requests always travel as their own
  /// message so their responses pipeline.
  sim::Task<std::vector<Response>> rpc_all(
      std::vector<std::pair<std::uint32_t, Request>> requests);

  // --- plain striped data path (PVFS semantics; RAID0) ---
  /// Write `data` at `off`, striped across the I/O servers, no redundancy.
  sim::Task<Result<void>> write_striped(const OpenFile& f, std::uint64_t off,
                                        const Buffer& data);

  /// Read `len` bytes at `off`; unwritten regions read as zeros. Servers
  /// return their newest copy (overflow regions included), so this is the
  /// read path for every redundancy scheme in normal (non-degraded) mode.
  sim::Task<Result<Buffer>> read(const OpenFile& f, std::uint64_t off,
                                 std::uint64_t len);

  /// fsync all servers (the paper reports post-flush bandwidths).
  sim::Task<Result<void>> flush(const OpenFile& f);

  /// Per-server storage breakdown for a handle, summed (Table 2).
  sim::Task<StorageInfo> storage(const OpenFile& f);

  /// Gather the bytes of `data` (placed at file offset `off`) that land on
  /// server `s`, in server-local order — the payload of one merged write.
  static Buffer gather_for_server(const StripeLayout& layout,
                                  std::uint64_t off, const Buffer& data,
                                  std::uint32_t s);

 private:
  sim::Task<MetaResponse> meta_rpc(MetaRequest r);
  /// Backoff before send attempt `attempt` (2-based), jittered from rng_.
  sim::Duration backoff_pause(const RpcPolicy& policy, std::uint32_t attempt);

  /// All attempts of one rpc() call, against the given reply channel. Split
  /// out so rpc() can recycle the channel after this frame (and with it the
  /// request's reply reference) is gone.
  sim::Task<Response> rpc_attempts(std::uint32_t s, Request r,
                                   RpcPolicy policy,
                                   std::shared_ptr<sim::Channel<Response>> ch);

  /// Reply-channel pool. Every data RPC needs a fresh-looking channel, but
  /// a heap Channel per call is the hottest allocation in the stack; a
  /// channel is recycled once it is uniquely owned (no server holds the
  /// request any more, so no late reply can ever reach it) and drained.
  std::shared_ptr<sim::Channel<Response>> acquire_reply_channel();
  void recycle_reply_channel(std::shared_ptr<sim::Channel<Response>> ch);

  hw::Cluster* cluster_;
  net::Fabric* fabric_;
  Manager* manager_;
  std::vector<IoServer*> servers_;
  hw::NodeId node_;
  RpcPolicy policy_{};
  RpcStats rpc_stats_{};
  bool batching_ = true;
  /// Per-client id for mutating meta ops; identical across retries of one
  /// logical call so the manager can dedup (see MetaRequest::req_id).
  std::uint64_t meta_req_seq_ = 0;
  std::uint64_t rmw_seq_ = 0;  ///< see next_rmw_token()
  std::uint32_t mgr_epoch_seen_ = 0;
  /// Recycled reply channels (each entry uniquely owned and empty).
  std::vector<std::shared_ptr<sim::Channel<Response>>> reply_pool_;
  Rng rng_{0xC5A2F001ULL};  ///< backoff jitter; reseed via seed_retry_rng

  // Observability (all null/0 when detached; see set_obs).
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  std::uint32_t pid_ = 0;          ///< this client's trace process
  obs::SpanId ambient_ = 0;        ///< see set_ambient_span
  obs::Histogram* rpc_hist_ = nullptr;    ///< client.rpc_ns
  obs::Histogram* batch_hist_ = nullptr;  ///< client.batch_subs
  obs::Counter* timeout_ctr_ = nullptr;   ///< client.rpc_timeouts
  obs::Counter* retry_ctr_ = nullptr;     ///< client.rpc_retries
};

}  // namespace csar::pvfs
