// Client: the PVFS client library.
//
// Resolves striping and talks directly to the I/O servers. This class is
// scheme-agnostic: it provides metadata ops, the plain striped (RAID0) data
// path, and the per-server RPC building blocks the redundancy schemes in
// csar::raid compose (parity reads with locking, overflow writes, etc.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/result.hpp"
#include "hw/node.hpp"
#include "net/fabric.hpp"
#include "pvfs/io_server.hpp"
#include "pvfs/layout.hpp"
#include "pvfs/manager.hpp"
#include "sim/task.hpp"

namespace csar::pvfs {

class Client {
 public:
  Client(hw::Cluster& cluster, net::Fabric& fabric, Manager& manager,
         std::vector<IoServer*> servers, hw::NodeId node)
      : cluster_(&cluster),
        fabric_(&fabric),
        manager_(&manager),
        servers_(std::move(servers)),
        node_(node) {}
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  hw::NodeId node_id() const { return node_; }
  std::uint32_t nservers() const {
    return static_cast<std::uint32_t>(servers_.size());
  }
  hw::Cluster& cluster() { return *cluster_; }
  net::Fabric& fabric() { return *fabric_; }
  IoServer& server(std::uint32_t s) { return *servers_[s]; }

  // --- metadata ---
  sim::Task<Result<OpenFile>> create(std::string name, StripeLayout layout);
  sim::Task<Result<OpenFile>> open(std::string name);
  sim::Task<Result<void>> remove(std::string name);

  // --- RPC building block ---
  /// Send `r` to server `s`, charging the network both ways; returns the
  /// server's response.
  sim::Task<Response> rpc(std::uint32_t s, Request r);

  /// Issue all requests concurrently; responses returned in request order.
  sim::Task<std::vector<Response>> rpc_all(
      std::vector<std::pair<std::uint32_t, Request>> requests);

  // --- plain striped data path (PVFS semantics; RAID0) ---
  /// Write `data` at `off`, striped across the I/O servers, no redundancy.
  sim::Task<Result<void>> write_striped(const OpenFile& f, std::uint64_t off,
                                        const Buffer& data);

  /// Read `len` bytes at `off`; unwritten regions read as zeros. Servers
  /// return their newest copy (overflow regions included), so this is the
  /// read path for every redundancy scheme in normal (non-degraded) mode.
  sim::Task<Result<Buffer>> read(const OpenFile& f, std::uint64_t off,
                                 std::uint64_t len);

  /// fsync all servers (the paper reports post-flush bandwidths).
  sim::Task<Result<void>> flush(const OpenFile& f);

  /// Per-server storage breakdown for a handle, summed (Table 2).
  sim::Task<StorageInfo> storage(const OpenFile& f);

  /// Gather the bytes of `data` (placed at file offset `off`) that land on
  /// server `s`, in server-local order — the payload of one merged write.
  static Buffer gather_for_server(const StripeLayout& layout,
                                  std::uint64_t off, const Buffer& data,
                                  std::uint32_t s);

 private:
  sim::Task<MetaResponse> meta_rpc(MetaRequest r);

  hw::Cluster* cluster_;
  net::Fabric* fabric_;
  Manager* manager_;
  std::vector<IoServer*> servers_;
  hw::NodeId node_;
};

}  // namespace csar::pvfs
