#include "pvfs/client.hpp"

#include <cassert>
#include <utility>

#include "sim/sync.hpp"

namespace csar::pvfs {

sim::Task<MetaResponse> Client::meta_rpc(MetaRequest r) {
  sim::Channel<MetaResponse> ch(cluster_->sim());
  r.from = node_;
  r.reply = &ch;
  co_await fabric_->transfer(node_, manager_->node_id(),
                             r.name.size() + sizeof(MetaRequest));
  manager_->inbox().send(std::move(r));
  co_return co_await ch.recv();
}

sim::Task<Result<OpenFile>> Client::create(std::string name,
                                           StripeLayout layout) {
  assert(layout.nservers == nservers() &&
         "layout server count must match the cluster");
  MetaRequest r;
  r.op = MetaOp::create;
  r.name = std::move(name);
  r.layout = layout;
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "create"};
  co_return resp.file;
}

sim::Task<Result<OpenFile>> Client::open(std::string name) {
  MetaRequest r;
  r.op = MetaOp::open;
  r.name = std::move(name);
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "open"};
  co_return resp.file;
}

sim::Task<Result<void>> Client::remove(std::string name) {
  // Resolve the handle first so the servers' local files can be purged,
  // then drop the metadata entry.
  MetaRequest lookup;
  lookup.op = MetaOp::open;
  lookup.name = name;
  MetaResponse meta = co_await meta_rpc(std::move(lookup));
  if (!meta.ok) co_return Error{meta.err, "remove"};

  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (std::uint32_t s = 0; s < nservers(); ++s) {
    Request r;
    r.op = Op::remove_file;
    r.handle = meta.file.handle;
    reqs.emplace_back(s, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "remove (server purge)"};
  }

  MetaRequest r;
  r.op = MetaOp::remove;
  r.name = std::move(name);
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "remove"};
  co_return Result<void>::success();
}

sim::Task<Response> Client::rpc(std::uint32_t s, Request r) {
  assert(s < servers_.size());
  sim::Channel<Response> ch(cluster_->sim());
  r.from = node_;
  r.reply = &ch;
  const std::uint64_t wire = r.wire_bytes();
  IoServer* srv = servers_[s];
  co_await fabric_->transfer(node_, srv->node_id(), wire);
  srv->inbox().send(std::move(r));
  co_return co_await ch.recv();
}

sim::Task<std::vector<Response>> Client::rpc_all(
    std::vector<std::pair<std::uint32_t, Request>> requests) {
  std::vector<Response> out(requests.size());
  std::vector<sim::Task<void>> tasks;
  tasks.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    tasks.push_back(
        [](Client* self, std::uint32_t s, Request r,
           Response* slot) -> sim::Task<void> {
          *slot = co_await self->rpc(s, std::move(r));
        }(this, requests[i].first, std::move(requests[i].second), &out[i]));
  }
  co_await sim::when_all(cluster_->sim(), std::move(tasks));
  co_return out;
}

Buffer Client::gather_for_server(const StripeLayout& layout,
                                 std::uint64_t off, const Buffer& data,
                                 std::uint32_t s) {
  // Per-unit pieces of one server appear in increasing local (and global)
  // order and tile the server's merged extent exactly.
  std::uint64_t total = 0;
  for (const auto& e : layout.decompose(off, data.size())) {
    if (e.server == s) total += e.len;
  }
  if (!data.materialized()) return Buffer::phantom(total);
  Buffer out = Buffer::real(total);
  std::uint64_t pos = 0;
  for (const auto& e : layout.decompose(off, data.size())) {
    if (e.server != s) continue;
    out.write_at(pos, data.slice(e.global_off - off, e.len));
    pos += e.len;
  }
  return out;
}

sim::Task<Result<void>> Client::write_striped(const OpenFile& f,
                                              std::uint64_t off,
                                              const Buffer& data) {
  if (data.empty()) co_return Result<void>::success();
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (const auto& e : f.layout.decompose_merged(off, data.size())) {
    Request r;
    r.op = Op::write_data;
    r.handle = f.handle;
    r.off = e.local_off;
    r.payload = gather_for_server(f.layout, off, data, e.server);
    r.su = f.layout.stripe_unit;
    reqs.emplace_back(e.server, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "write_striped"};
  }
  co_return Result<void>::success();
}

sim::Task<Result<Buffer>> Client::read(const OpenFile& f, std::uint64_t off,
                                       std::uint64_t len) {
  if (len == 0) co_return Buffer::real(0);
  const auto merged = f.layout.decompose_merged(off, len);
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (const auto& e : merged) {
    Request r;
    r.op = Op::read_data;
    r.handle = f.handle;
    r.off = e.local_off;
    r.len = e.len;
    r.su = f.layout.stripe_unit;
    reqs.emplace_back(e.server, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  bool phantom = false;
  for (std::size_t i = 0; i < resps.size(); ++i) {
    if (!resps[i].ok) co_return Error{resps[i].err, "read"};
    if (!resps[i].data.materialized()) phantom = true;
  }
  if (phantom) co_return Buffer::phantom(len);
  // Scatter each server's locally-contiguous reply back into file order.
  Buffer out = Buffer::real(len);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const std::uint32_t s = merged[i].server;
    std::uint64_t pos = 0;
    for (const auto& e : f.layout.decompose(off, len)) {
      if (e.server != s) continue;
      out.write_at(e.global_off - off, resps[i].data.slice(pos, e.len));
      pos += e.len;
    }
  }
  co_return out;
}

sim::Task<Result<void>> Client::flush(const OpenFile& f) {
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (std::uint32_t s = 0; s < nservers(); ++s) {
    Request r;
    r.op = Op::flush;
    r.handle = f.handle;
    reqs.emplace_back(s, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "flush"};
  }
  co_return Result<void>::success();
}

sim::Task<StorageInfo> Client::storage(const OpenFile& f) {
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (std::uint32_t s = 0; s < nservers(); ++s) {
    Request r;
    r.op = Op::storage_query;
    r.handle = f.handle;
    reqs.emplace_back(s, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  StorageInfo total;
  for (const auto& resp : resps) {
    total.data_bytes += resp.storage.data_bytes;
    total.red_bytes += resp.storage.red_bytes;
    total.overflow_bytes += resp.storage.overflow_bytes;
  }
  co_return total;
}

}  // namespace csar::pvfs
