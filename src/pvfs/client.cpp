#include "pvfs/client.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/sync.hpp"

namespace csar::pvfs {

void Client::set_obs(obs::Tracer* tracer, obs::Registry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  pid_ = tracer != nullptr ? tracer->node_pid(node_) : 0;
  if (metrics != nullptr) {
    rpc_hist_ = &metrics->histogram("client.rpc_ns");
    batch_hist_ =
        &metrics->histogram("client.batch_subs", obs::Histogram::size_bounds());
    timeout_ctr_ = &metrics->counter("client.rpc_timeouts");
    retry_ctr_ = &metrics->counter("client.rpc_retries");
  } else {
    rpc_hist_ = nullptr;
    batch_hist_ = nullptr;
    timeout_ctr_ = nullptr;
    retry_ctr_ = nullptr;
  }
}

sim::Task<MetaResponse> Client::meta_rpc(MetaRequest r) {
  auto& sim = cluster_->sim();
  auto ch = std::make_shared<sim::Channel<MetaResponse>>(sim);
  r.from = node_;
  r.reply = ch;
  obs::Span span;
  if (obs::kEnabled && tracer_ != nullptr) {
    span = tracer_->task_span(pid_, "rpc", "meta", "rpc", ambient_);
  }
  const std::uint32_t attempts = std::max<std::uint32_t>(1, policy_.max_attempts);
  for (std::uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      ++rpc_stats_.retries;
      if (obs::kEnabled && retry_ctr_ != nullptr) retry_ctr_->add(1);
      co_await sim.sleep(backoff_pause(policy_, attempt));
    }
    MetaRequest req = r;
    ++rpc_stats_.sent;
    const auto d = co_await fabric_->transfer(
        node_, manager_->node_id(), req.name.size() + sizeof(MetaRequest),
        span.id());
    if (d == net::Delivery::reset) {
      ++rpc_stats_.resets;
      if (attempt == attempts) break;
      continue;
    }
    if (d == net::Delivery::ok) manager_->inbox().send(std::move(req));
    if (policy_.timeout == 0) {
      MetaResponse resp = co_await ch->recv();
      if (resp.mgr_epoch != 0) mgr_epoch_seen_ = resp.mgr_epoch;
      co_return resp;
    }
    auto got = co_await ch->recv_until(sim.now() + policy_.timeout);
    if (got) {
      if (got->mgr_epoch != 0) mgr_epoch_seen_ = got->mgr_epoch;
      co_return std::move(*got);
    }
    ++rpc_stats_.timeouts;
    if (obs::kEnabled && timeout_ctr_ != nullptr) timeout_ctr_->add(1);
  }
  MetaResponse failed;
  failed.ok = false;
  failed.err = Errc::timeout;
  co_return failed;
}

sim::Duration Client::backoff_pause(const RpcPolicy& policy,
                                    std::uint32_t attempt) {
  // Exponential backoff with deterministic jitter: attempt k (2-based here)
  // waits backoff << (k-2), scaled by up to `jitter` extra drawn from the
  // client's seeded stream.
  const std::uint32_t shift = std::min<std::uint32_t>(attempt - 2, 20);
  sim::Duration pause = policy.backoff << shift;
  if (policy.jitter > 0.0) {
    pause += static_cast<sim::Duration>(static_cast<double>(pause) *
                                        policy.jitter * rng_.uniform());
  }
  return pause;
}

sim::Task<Result<OpenFile>> Client::create(std::string name,
                                           StripeLayout layout,
                                           std::uint8_t scheme) {
  assert(layout.nservers == nservers() &&
         "layout server count must match the cluster");
  MetaRequest r;
  r.op = MetaOp::create;
  r.name = std::move(name);
  r.layout = layout;
  r.scheme = scheme;
  r.req_id = ++meta_req_seq_;  // one id per logical create, across retries
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "create"};
  co_return resp.file;
}

sim::Task<Result<OpenFile>> Client::set_scheme(std::string name,
                                               std::uint8_t scheme,
                                               std::uint32_t red_gen,
                                               std::uint32_t fence_epoch) {
  MetaRequest r;
  r.op = MetaOp::set_scheme;
  r.name = std::move(name);
  r.scheme = scheme;
  r.red_gen = red_gen;
  r.fence_epoch = fence_epoch;
  r.req_id = ++meta_req_seq_;
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "set_scheme"};
  co_return resp.file;
}

sim::Task<Result<OpenFile>> Client::set_rgroup(std::string name,
                                               std::uint8_t rgroup) {
  MetaRequest r;
  r.op = MetaOp::set_rgroup;
  r.name = std::move(name);
  r.rgroup = rgroup;
  r.req_id = ++meta_req_seq_;
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "set_rgroup"};
  co_return resp.file;
}

sim::Task<Result<OpenFile>> Client::open(std::string name) {
  MetaRequest r;
  r.op = MetaOp::open;
  r.name = std::move(name);
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "open"};
  co_return resp.file;
}

sim::Task<Result<void>> Client::remove(std::string name) {
  // Resolve the handle first so the servers' local files can be purged,
  // then drop the metadata entry.
  MetaRequest lookup;
  lookup.op = MetaOp::open;
  lookup.name = name;
  MetaResponse meta = co_await meta_rpc(std::move(lookup));
  if (!meta.ok) co_return Error{meta.err, "remove"};

  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (std::uint32_t s = 0; s < nservers(); ++s) {
    Request r;
    r.op = Op::remove_file;
    r.handle = meta.file.handle;
    reqs.emplace_back(s, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "remove (server purge)"};
  }

  MetaRequest r;
  r.op = MetaOp::remove;
  r.name = std::move(name);
  r.req_id = ++meta_req_seq_;
  MetaResponse resp = co_await meta_rpc(std::move(r));
  if (!resp.ok) co_return Error{resp.err, "remove"};
  co_return Result<void>::success();
}

sim::Task<Response> Client::rpc(std::uint32_t s, Request r) {
  co_return co_await rpc(s, std::move(r), policy_);
}

sim::Task<Response> Client::rpc(std::uint32_t s, Request r, RpcPolicy policy) {
  auto ch = acquire_reply_channel();
  Response resp = co_await rpc_attempts(s, std::move(r), policy, ch);
  // The rpc_attempts frame (and the request copies holding ch) is gone by
  // now; if no straggler server kept a reference, the channel goes back to
  // the pool.
  recycle_reply_channel(std::move(ch));
  co_return resp;
}

std::shared_ptr<sim::Channel<Response>> Client::acquire_reply_channel() {
  if (!reply_pool_.empty()) {
    auto ch = std::move(reply_pool_.back());
    reply_pool_.pop_back();
    return ch;
  }
  return std::make_shared<sim::Channel<Response>>(cluster_->sim());
}

void Client::recycle_reply_channel(
    std::shared_ptr<sim::Channel<Response>> ch) {
  if (ch.use_count() != 1) return;  // a timed-out attempt is still in flight
  while (ch->try_recv()) {
    // Discard late replies to this call; they would have died with the
    // channel in the unpooled scheme too.
  }
  constexpr std::size_t kReplyPoolMax = 64;
  if (reply_pool_.size() < kReplyPoolMax) reply_pool_.push_back(std::move(ch));
}

sim::Task<Response> Client::rpc_attempts(
    std::uint32_t s, Request r, RpcPolicy policy,
    std::shared_ptr<sim::Channel<Response>> ch) {
  assert(s < servers_.size());
  auto& sim = cluster_->sim();
  // The rpc span covers the full call (all attempts); the request carries
  // its id so the server's handling span nests under it. A request that
  // already has a span (batch sub) keeps that parent.
  obs::Span span;
  if (obs::kEnabled && tracer_ != nullptr) {
    span = tracer_->task_span(pid_, "rpc", op_name(r.op), "rpc",
                              r.tspan != 0 ? r.tspan : ambient_,
                              "\"server\":" + std::to_string(s) +
                                  ",\"bytes\":" +
                                  std::to_string(r.wire_bytes()));
    r.tspan = span.id();
  }
  const sim::Time t0 = sim.now();
  // The channel is shared with the server and kept alive across attempts:
  // a late reply to a timed-out attempt lands here harmlessly, and because
  // every I/O server op is idempotent it may even satisfy a later attempt.
  r.from = node_;
  r.reply = ch;
  IoServer* srv = servers_[s];
  const std::uint32_t attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  Errc last_err = Errc::timeout;
  for (std::uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      ++rpc_stats_.retries;
      if (obs::kEnabled && retry_ctr_ != nullptr) retry_ctr_->add(1);
      co_await sim.sleep(backoff_pause(policy, attempt));
    }
    Request req = r;  // each attempt resends a fresh copy
    ++rpc_stats_.sent;
    const auto d = co_await fabric_->transfer(node_, srv->node_id(),
                                              req.wire_bytes(), span.id());
    if (d == net::Delivery::reset) {
      ++rpc_stats_.resets;
      last_err = Errc::conn_dropped;
      continue;
    }
    if (d == net::Delivery::ok) srv->inbox().send(std::move(req));
    // Delivery::dropped: the request is gone; only the deadline saves us.
    if (policy.timeout == 0) {
      Response resp = co_await ch->recv();
      resp.server = static_cast<int>(s);
      if (obs::kEnabled && rpc_hist_ != nullptr) rpc_hist_->add(sim.now() - t0);
      co_return resp;
    }
    auto got = co_await ch->recv_until(sim.now() + policy.timeout);
    if (got) {
      got->server = static_cast<int>(s);
      if (obs::kEnabled && rpc_hist_ != nullptr) rpc_hist_->add(sim.now() - t0);
      co_return std::move(*got);
    }
    ++rpc_stats_.timeouts;
    if (obs::kEnabled && timeout_ctr_ != nullptr) timeout_ctr_->add(1);
    last_err = Errc::timeout;
  }
  Response failed;
  failed.ok = false;
  failed.err = last_err;
  failed.server = static_cast<int>(s);
  if (obs::kEnabled && rpc_hist_ != nullptr) rpc_hist_->add(sim.now() - t0);
  co_return failed;
}

sim::Task<std::vector<Response>> Client::rpc_batch(std::uint32_t s,
                                                   std::vector<Request> subs) {
  co_return co_await rpc_batch(s, std::move(subs), policy_);
}

sim::Task<std::vector<Response>> Client::rpc_batch(std::uint32_t s,
                                                   std::vector<Request> subs,
                                                   RpcPolicy policy) {
  const std::size_t n = subs.size();
  if (n == 0) co_return std::vector<Response>{};
  if (n == 1 || !batching_) {
    // Nothing to amortize (or the ablation baseline): one RPC per request,
    // in order — exactly the legacy wire traffic.
    std::vector<Response> out;
    out.reserve(n);
    for (auto& sub : subs) {
      out.push_back(co_await rpc(s, std::move(sub), policy));
    }
    co_return out;
  }
  if (obs::kEnabled && batch_hist_ != nullptr) {
    batch_hist_->add(static_cast<std::uint64_t>(n));
  }
  Request env;
  env.op = Op::batch;
  env.subs = std::move(subs);
  Response resp = co_await rpc(s, std::move(env), policy);
  if (resp.ok && resp.subs.size() == n) {
    for (auto& sub : resp.subs) sub.server = static_cast<int>(s);
    co_return std::move(resp.subs);
  }
  // The envelope itself failed (deadline, reset, refused server): every sub
  // shares that fate.
  std::vector<Response> failed(n);
  for (auto& f : failed) {
    f.ok = false;
    f.err = resp.ok ? Errc::invalid_argument : resp.err;
    f.server = static_cast<int>(s);
  }
  co_return failed;
}

sim::Task<std::vector<Response>> Client::rpc_all(
    std::vector<std::pair<std::uint32_t, Request>> requests) {
  std::vector<Response> out(requests.size());
  std::vector<sim::Task<void>> tasks;
  if (batching_ && requests.size() > 1) {
    // Coalesce same-destination *redundancy-class* requests into one
    // envelope per server: parity/mirror ops are small and per-message
    // header dominated, so sharing one transfer is pure win. The class is
    // decided per request (redundancy_request), not per op: a Hybrid
    // partial write's mirror overflow copy targets the neighbour server's
    // redundancy role, so it shares that server's parity envelope instead
    // of taking a separate bulk transfer. Bulk payload requests (data
    // reads/writes, primary overflow) are payload-dominated and pipeline
    // better as independent messages — inside one envelope the server would
    // execute them strictly in order and the combined response could not
    // start streaming until the last sub finished. Request order within an
    // envelope is preserved, and write_hybrid appends its parity writes
    // before its overflow copies, so a lock-releasing parity write is never
    // queued behind mirror payload in the same message.
    struct Group {
      std::uint32_t server;
      std::vector<Request> subs;
      std::vector<std::size_t> slots;
    };
    std::map<std::uint32_t, std::size_t> index;
    std::vector<Group> groups;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      std::size_t gi;
      if (redundancy_request(requests[i].second)) {
        auto [it, fresh] = index.try_emplace(requests[i].first, groups.size());
        if (fresh) groups.push_back({requests[i].first, {}, {}});
        gi = it->second;
      } else {
        gi = groups.size();  // bulk: always its own message
        groups.push_back({requests[i].first, {}, {}});
      }
      groups[gi].subs.push_back(std::move(requests[i].second));
      groups[gi].slots.push_back(i);
    }
    tasks.reserve(groups.size());
    for (auto& g : groups) {
      tasks.push_back(
          [](Client* self, Group grp, std::vector<Response>* all)
              -> sim::Task<void> {
            auto resps =
                co_await self->rpc_batch(grp.server, std::move(grp.subs));
            for (std::size_t k = 0; k < grp.slots.size(); ++k) {
              (*all)[grp.slots[k]] = std::move(resps[k]);
            }
          }(this, std::move(g), &out));
    }
    co_await sim::when_all(cluster_->sim(), std::move(tasks));
    co_return out;
  }
  tasks.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    tasks.push_back(
        [](Client* self, std::uint32_t s, Request r,
           Response* slot) -> sim::Task<void> {
          *slot = co_await self->rpc(s, std::move(r));
        }(this, requests[i].first, std::move(requests[i].second), &out[i]));
  }
  co_await sim::when_all(cluster_->sim(), std::move(tasks));
  co_return out;
}

Buffer Client::gather_for_server(const StripeLayout& layout,
                                 std::uint64_t off, const Buffer& data,
                                 std::uint32_t s) {
  // Per-unit pieces of one server appear in increasing local (and global)
  // order and tile the server's merged extent exactly.
  std::uint64_t total = 0;
  for (const auto& e : layout.decompose(off, data.size())) {
    if (e.server == s) total += e.len;
  }
  if (!data.materialized()) return Buffer::phantom(total);
  Buffer out = Buffer::real(total);
  std::uint64_t pos = 0;
  for (const auto& e : layout.decompose(off, data.size())) {
    if (e.server != s) continue;
    out.write_at(pos, data.slice(e.global_off - off, e.len));
    pos += e.len;
  }
  return out;
}

sim::Task<Result<void>> Client::write_striped(const OpenFile& f,
                                              std::uint64_t off,
                                              const Buffer& data) {
  if (data.empty()) co_return Result<void>::success();
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (const auto& e : f.layout.decompose_merged(off, data.size())) {
    Request r;
    r.op = Op::write_data;
    r.handle = f.handle;
    r.off = e.local_off;
    r.payload = gather_for_server(f.layout, off, data, e.server);
    r.su = f.layout.stripe_unit;
    reqs.emplace_back(e.server, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "write_striped", resp.server};
  }
  co_return Result<void>::success();
}

sim::Task<Result<Buffer>> Client::read(const OpenFile& f, std::uint64_t off,
                                       std::uint64_t len) {
  if (len == 0) co_return Buffer::real(0);
  const auto merged = f.layout.decompose_merged(off, len);
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (const auto& e : merged) {
    Request r;
    r.op = Op::read_data;
    r.handle = f.handle;
    r.off = e.local_off;
    r.len = e.len;
    r.su = f.layout.stripe_unit;
    reqs.emplace_back(e.server, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  bool phantom = false;
  for (std::size_t i = 0; i < resps.size(); ++i) {
    if (!resps[i].ok) co_return Error{resps[i].err, "read", resps[i].server};
    if (!resps[i].data.materialized()) phantom = true;
  }
  if (phantom) co_return Buffer::phantom(len);
  if (merged.size() == 1 && resps[0].data.size() == len) {
    // Single-server read: the reply already is the file-order bytes.
    co_return std::move(resps[0].data);
  }
  // Scatter each server's locally-contiguous reply back into file order.
  Buffer out = Buffer::real(len);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const std::uint32_t s = merged[i].server;
    std::uint64_t pos = 0;
    for (const auto& e : f.layout.decompose(off, len)) {
      if (e.server != s) continue;
      out.write_at(e.global_off - off, resps[i].data.slice(pos, e.len));
      pos += e.len;
    }
  }
  co_return out;
}

sim::Task<Result<void>> Client::flush(const OpenFile& f) {
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (std::uint32_t s = 0; s < nservers(); ++s) {
    Request r;
    r.op = Op::flush;
    r.handle = f.handle;
    reqs.emplace_back(s, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "flush", resp.server};
  }
  co_return Result<void>::success();
}

sim::Task<StorageInfo> Client::storage(const OpenFile& f) {
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (std::uint32_t s = 0; s < nservers(); ++s) {
    Request r;
    r.op = Op::storage_query;
    r.handle = f.handle;
    reqs.emplace_back(s, std::move(r));
  }
  auto resps = co_await rpc_all(std::move(reqs));
  StorageInfo total;
  for (const auto& resp : resps) {
    total.data_bytes += resp.storage.data_bytes;
    total.red_bytes += resp.storage.red_bytes;
    total.overflow_bytes += resp.storage.overflow_bytes;
  }
  co_return total;
}

}  // namespace csar::pvfs
