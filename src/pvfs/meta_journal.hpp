// MetaJournal: write-ahead journal + checkpoint store for the PVFS metadata
// manager, written through the manager node's simulated local file system so
// every durability byte is charged to its disk.
//
// Layout on the manager's LocalFs:
//
//   meta.journal   append-only records, one per committed mutation
//   meta.ckpt0/1   alternating full-state checkpoints (highest seq wins)
//
// Every record and checkpoint carries a [u32 length][u64 FNV-1a checksum]
// header over its payload. Recovery picks the newest valid checkpoint, then
// scans the journal: a zero length marks the clean end, and any header or
// checksum mismatch marks a torn tail — everything from the first bad record
// on is discarded (zero-filled so stale bytes can never alias as a record
// later) and counted in `truncated_records`.
//
// A checkpoint is written *after* the newest record's effect is applied, and
// truncates the journal only once the checkpoint itself is flushed; there is
// no await between the checkpoint flush and the truncation, so the pair is
// atomic under the cooperative scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "localfs/local_fs.hpp"
#include "pvfs/layout.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace csar::pvfs {

struct MetaJournalParams {
  /// Flush the journal file after every append (write-ahead semantics: the
  /// record is durable before the client sees a reply). Off = appends ride
  /// the page cache and a crash may lose the unsynced tail.
  bool sync_appends = true;
  /// Write a checkpoint (and truncate the journal) every N records.
  std::uint32_t checkpoint_every = 64;
};

/// One durable metadata mutation. Only committed state changes are journaled
/// — failed ops re-derive the same failure deterministically at replay.
struct JournalRecord {
  enum class Kind : std::uint8_t { create, remove, set_scheme, set_rgroup };
  Kind kind = Kind::create;
  std::string name;
  StripeLayout layout;          ///< create
  std::uint8_t scheme = 0xFF;   ///< create / set_scheme
  std::uint32_t red_gen = 0;    ///< set_scheme
  std::uint8_t rgroup = 0xFF;   ///< set_rgroup (redundancy-class id)
  std::uint64_t handle = 0;     ///< create: the handle that was assigned
  std::uint32_t from = 0;       ///< requesting client node (dedup rebuild)
  std::uint64_t req_id = 0;     ///< client request id (0 = none)
};

/// Per-file entry in a checkpoint.
struct SnapshotFile {
  std::string name;
  std::uint64_t handle = 0;
  StripeLayout layout;
  std::uint8_t scheme = 0xFF;
  std::uint32_t red_gen = 0;
  std::uint8_t rgroup = 0xFF;
};

/// Per-request dedup entry in a checkpoint: the reply the manager would
/// resend for a retried request id (covers records already truncated out of
/// the journal).
struct SnapshotDedup {
  std::uint32_t from = 0;
  std::uint64_t req_id = 0;
  bool ok = true;
  std::uint8_t err = 0;  ///< Errc as a byte
  std::uint64_t handle = 0;
  StripeLayout layout;
  std::uint8_t scheme = 0xFF;
  std::uint32_t red_gen = 0;
  std::uint8_t rgroup = 0xFF;
};

struct MetaSnapshot {
  std::uint64_t next_handle = 1;
  std::uint32_t incarnation = 1;
  std::vector<SnapshotFile> files;
  std::vector<SnapshotDedup> dedup;
};

struct JournalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t flushes = 0;
  std::uint64_t checkpoints = 0;
  /// Torn-tail truncation events detected by recover().
  std::uint64_t truncated_records = 0;
};

class MetaJournal {
 public:
  static constexpr const char* kJournalFile = "meta.journal";

  MetaJournal(sim::Simulation& sim, localfs::LocalFs& fs,
              const MetaJournalParams& params)
      : sim_(&sim), fs_(&fs), p_(params) {}
  MetaJournal(const MetaJournal&) = delete;
  MetaJournal& operator=(const MetaJournal&) = delete;

  /// Append one record (and flush, under sync_appends). Must complete before
  /// the mutation is applied or acknowledged.
  sim::Task<void> append(const JournalRecord& rec);

  /// True once checkpoint_every records accumulated since the last one.
  bool checkpoint_due() const { return since_ckpt_ >= p_.checkpoint_every; }

  /// Durably persist `snap` into the next checkpoint slot, then truncate the
  /// journal. Call only when every journaled record is reflected in `snap`.
  sim::Task<void> write_checkpoint(const MetaSnapshot& snap);

  struct Recovered {
    MetaSnapshot snapshot;               ///< newest valid checkpoint
    std::vector<JournalRecord> records;  ///< valid journal suffix, in order
    bool had_checkpoint = false;
    bool torn_tail = false;
  };

  /// Read back durable state after a crash. Also repositions the append
  /// cursor so the journal keeps growing from the last valid record.
  sim::Task<Recovered> recover();

  /// Current journal append offset (size of the valid journal).
  std::uint64_t tail() const { return tail_; }
  const JournalStats& stats() const { return stats_; }

 private:
  static const char* ckpt_file(unsigned slot) {
    return slot == 0 ? "meta.ckpt0" : "meta.ckpt1";
  }

  sim::Simulation* sim_;
  localfs::LocalFs* fs_;
  MetaJournalParams p_;
  JournalStats stats_;
  std::uint64_t tail_ = 0;        ///< append offset in meta.journal
  std::uint32_t since_ckpt_ = 0;  ///< records since the last checkpoint
  std::uint64_t ckpt_seq_ = 0;    ///< seq of the newest written checkpoint
  unsigned next_slot_ = 0;        ///< slot the next checkpoint goes to
};

}  // namespace csar::pvfs
