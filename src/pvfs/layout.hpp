// StripeLayout: PVFS round-robin striping math plus CSAR's parity geometry.
//
// Data layout (identical to PVFS, §4 of the paper): the file is split into
// stripe units of `su` bytes; unit u lives on server (u % n) at local unit
// index (u / n) of that server's data file.
//
// Parity geometry (Figure 2): a parity group is N-1 *consecutive* stripe
// units. Because N-1 consecutive units occupy N-1 distinct servers, exactly
// one server holds none of the group's data; that server stores the group's
// parity unit in its redundancy file, and it rotates group by group
// (for group g the parity server is ((g+1)*(N-1)) mod N). Every parity
// group is therefore recoverable from a single server failure, while the
// data layout stays byte-identical to plain PVFS.
//
// A "full stripe" is W = (N-1)*su consecutive bytes aligned on a multiple of
// W. The Hybrid write rule decomposes every write into a leading partial
// stripe, an integral run of full stripes and a trailing partial stripe.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace csar::pvfs {

/// Where parity units live.
enum class ParityPlacement : std::uint8_t {
  /// CSAR (Figure 2): data striped over all N servers; a group's parity
  /// goes to the one server holding none of its data, rotating per group.
  rotating,
  /// RAID4 (the Swift comparison in §3): data striped over servers
  /// 0..N-2, server N-1 is a dedicated parity server.
  fixed,
};

struct StripeLayout {
  std::uint32_t stripe_unit = 64 * 1024;  ///< su: bytes per unit
  std::uint32_t nservers = 6;             ///< N: number of I/O servers
  ParityPlacement placement = ParityPlacement::rotating;
  /// PVFS's `base` attribute: the server holding the file's first stripe
  /// unit. Spreads the "first server" hot spot when many files coexist.
  std::uint32_t base = 0;

  std::uint64_t su() const { return stripe_unit; }
  std::uint32_t n() const { return nservers; }

  /// Servers holding data units: all N (rotating) or N-1 (fixed parity).
  std::uint32_t data_servers() const {
    return placement == ParityPlacement::rotating ? nservers : nservers - 1;
  }

  /// Width of a full stripe (parity group) in bytes: (N-1) * su in both
  /// placements (a group is one unit per data server under `fixed`, and
  /// N-1 consecutive units under `rotating`). Parity schemes need N >= 2.
  std::uint64_t stripe_width() const {
    assert(nservers >= 2);
    return static_cast<std::uint64_t>(nservers - 1) * stripe_unit;
  }

  // --- unit math ---
  std::uint64_t unit_of(std::uint64_t off) const { return off / stripe_unit; }
  std::uint32_t server_of_unit(std::uint64_t u) const {
    return static_cast<std::uint32_t>((base + u) % data_servers());
  }
  std::uint64_t local_unit(std::uint64_t u) const {
    return u / data_servers();
  }

  /// Server-local byte offset of global file offset `off`.
  std::uint64_t local_off(std::uint64_t off) const {
    return local_unit(unit_of(off)) * stripe_unit + off % stripe_unit;
  }

  /// Inverse of local_off for a fixed server: the global file offset of
  /// byte `local` within `server`'s data file.
  std::uint64_t global_off(std::uint32_t server, std::uint64_t local) const {
    const std::uint64_t dn = data_servers();
    const std::uint64_t k = local / stripe_unit;
    const std::uint64_t r = (server + dn - base % dn) % dn;
    return (k * dn + r) * stripe_unit + local % stripe_unit;
  }

  // --- parity group math ---
  std::uint64_t group_of_unit(std::uint64_t u) const {
    return u / (nservers - 1);
  }
  std::uint64_t group_of_off(std::uint64_t off) const {
    return group_of_unit(unit_of(off));
  }
  /// Global byte range [start, end) covered by group g.
  std::uint64_t group_start(std::uint64_t g) const {
    return g * stripe_width();
  }
  std::uint64_t group_end(std::uint64_t g) const {
    return (g + 1) * stripe_width();
  }
  /// The server holding group g's parity unit — the one server with none of
  /// the group's data (rotating), or the dedicated server N-1 (fixed).
  std::uint32_t parity_server(std::uint64_t g) const {
    if (placement == ParityPlacement::fixed) return nservers - 1;
    // The one server holding none of group g's data, shifted by `base`
    // exactly like the data placement.
    return static_cast<std::uint32_t>(
        (base + (g + 1) * (nservers - 1)) % nservers);
  }
  /// Local unit index of group g's parity inside the parity server's
  /// redundancy file: every N-th group per server when rotating, every
  /// group when fixed.
  std::uint64_t parity_local_unit(std::uint64_t g) const {
    return placement == ParityPlacement::fixed ? g : g / nservers;
  }
  /// Server-local byte offset of group g's parity unit.
  std::uint64_t parity_local_off(std::uint64_t g) const {
    return parity_local_unit(g) * stripe_unit;
  }

  // --- rs (k+m) group math ---
  // Reed-Solomon generalizes the parity geometry: an rs group is k
  // *consecutive* stripe units (occupying k distinct servers under the
  // rotating data layout, which rs always uses — data placement stays
  // byte-identical to plain PVFS), and the group's m coding fragments go to
  // the next m servers after the group's data in rotation order, so the
  // k+m fragments of a group sit on k+m distinct servers (requires
  // k+m <= N). With k = N-1 and m = 1 this reduces exactly to the rotating
  // parity placement above. Coding fragment j of group g lives in server
  // rs_coding_server(g,k,j)'s redundancy file at a slot-per-group offset
  // (one unit-sized slot per group index, like RAID4's fixed placement) —
  // sparse per server, but collision-free without closed-form density math.
  std::uint64_t rs_group_of_unit(std::uint64_t u, std::uint32_t k) const {
    return u / k;
  }
  std::uint64_t rs_group_of_off(std::uint64_t off, std::uint32_t k) const {
    return rs_group_of_unit(unit_of(off), k);
  }
  std::uint64_t rs_group_width(std::uint32_t k) const {
    return static_cast<std::uint64_t>(k) * stripe_unit;
  }
  /// Global byte range [start, end) covered by rs group g.
  std::uint64_t rs_group_start(std::uint64_t g, std::uint32_t k) const {
    return g * rs_group_width(k);
  }
  std::uint64_t rs_group_end(std::uint64_t g, std::uint32_t k) const {
    return (g + 1) * rs_group_width(k);
  }
  /// Server holding coding fragment j of rs group g.
  std::uint32_t rs_coding_server(std::uint64_t g, std::uint32_t k,
                                 std::uint32_t j) const {
    assert(placement == ParityPlacement::rotating);
    return static_cast<std::uint32_t>((base + g * k + k + j) % nservers);
  }
  /// Server-local byte offset of group g's coding fragment inside the
  /// holder's redundancy file (at most one fragment per (server, group), so
  /// the group index is the slot).
  std::uint64_t rs_coding_local_off(std::uint64_t g) const {
    return g * stripe_unit;
  }
  /// Server holding data fragment i (unit g*k + i) of rs group g.
  std::uint32_t rs_data_server(std::uint64_t g, std::uint32_t k,
                               std::uint32_t i) const {
    return server_of_unit(g * k + i);
  }

  // --- request decomposition ---
  struct Extent {
    std::uint32_t server;      ///< I/O server holding this piece
    std::uint64_t global_off;  ///< offset within the PVFS file
    std::uint64_t local_off;   ///< offset within the server's data file
    std::uint64_t len;
  };

  /// Split [off, off+len) into per-unit extents in global-offset order.
  std::vector<Extent> decompose(std::uint64_t off, std::uint64_t len) const;

  /// Split [off, off+len) into per-server extents, merging unit runs that
  /// are contiguous in a server's local file (which happens exactly when the
  /// global range covers consecutive rows). Order: by server id.
  std::vector<Extent> decompose_merged(std::uint64_t off,
                                       std::uint64_t len) const;

  /// The Hybrid/RAID5 write split (§4): leading partial stripe, integral
  /// full stripes, trailing partial stripe. Any part may be empty.
  struct WriteSplit {
    std::uint64_t head_start = 0, head_end = 0;  ///< partial group at start
    std::uint64_t full_start = 0, full_end = 0;  ///< whole groups
    std::uint64_t tail_start = 0, tail_end = 0;  ///< partial group at end
  };
  WriteSplit split_write(std::uint64_t off, std::uint64_t len) const;

  /// split_write generalized to an arbitrary group width `w` — the rs(k,m)
  /// paths pass w = rs_group_width(k); split_write(off, len) is exactly
  /// split_write_w(off, len, stripe_width()).
  WriteSplit split_write_w(std::uint64_t off, std::uint64_t len,
                           std::uint64_t w) const {
    WriteSplit ws;
    const std::uint64_t end = off + len;
    const std::uint64_t gs = align_up(off, w);
    const std::uint64_t ge = align_down(end, w);
    if (gs <= ge) {
      ws.head_start = off;
      ws.head_end = gs;
      ws.full_start = gs;
      ws.full_end = ge;
      ws.tail_start = ge;
      ws.tail_end = end;
    } else {
      ws.head_start = off;
      ws.head_end = end;
      ws.full_start = ws.full_end = end;
      ws.tail_start = ws.tail_end = end;
    }
    return ws;
  }
};

}  // namespace csar::pvfs
