#include "pvfs/io_server.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/units.hpp"
#include "sim/time.hpp"

namespace csar::pvfs {

const char* op_name(Op op) {
  switch (op) {
    case Op::read_data:
      return "read_data";
    case Op::write_data:
      return "write_data";
    case Op::read_red:
      return "read_red";
    case Op::write_red:
      return "write_red";
    case Op::write_overflow:
      return "write_overflow";
    case Op::read_data_raw:
      return "read_data_raw";
    case Op::read_mirror:
      return "read_mirror";
    case Op::read_own_overflow:
      return "read_own_overflow";
    case Op::flush:
      return "flush";
    case Op::storage_query:
      return "storage_query";
    case Op::compact_overflow:
      return "compact_overflow";
    case Op::remove_file:
      return "remove_file";
    case Op::unlock_red:
      return "unlock_red";
    case Op::batch:
      return "batch";
    case Op::ping:
      return "ping";
    case Op::drop_red:
      return "drop_red";
    case Op::shutdown:
      return "shutdown";
  }
  return "?";
}

IoServer::IoServer(hw::Cluster& cluster, net::Fabric& fabric, hw::NodeId node,
                   std::uint32_t server_index, const IoServerParams& params)
    : cluster_(&cluster),
      fabric_(&fabric),
      node_(node),
      index_(server_index),
      p_(params),
      inbox_(cluster.sim()),
      fs_(cluster.sim(), *cluster.node(node).cache(), params.fs),
      iod_(cluster.sim(), cluster.node(node).params().iod_bytes_per_sec,
           cluster.node(node).params().iod_per_op) {
  assert(cluster.node(node).cache() != nullptr &&
         "I/O servers need a disk+cache node");
}

void IoServer::set_obs(obs::Tracer* tracer, obs::Registry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  pid_ = tracer != nullptr ? tracer->node_pid(node_) : 0;
  if (metrics != nullptr) {
    req_hist_ = &metrics->histogram("server.req_ns");
    lock_hist_ = &metrics->histogram("server.lock_wait_ns");
    batch_hist_ =
        &metrics->histogram("server.batch_subs", obs::Histogram::size_bounds());
  } else {
    req_hist_ = nullptr;
    lock_hist_ = nullptr;
    batch_hist_ = nullptr;
  }
}

void IoServer::start() {
  if (started_) return;
  started_ = true;
  cluster_->sim().spawn(dispatcher());
}

void IoServer::stop() {
  Request r;
  r.op = Op::shutdown;
  inbox_.send(std::move(r));
}

sim::Task<void> IoServer::dispatcher() {
  for (;;) {
    Request r = co_await inbox_.recv();
    if (r.op == Op::shutdown) break;
    // A crashed daemon consumes nothing: requests vanish without an answer
    // and the sender's RPC deadline is the only way to notice.
    if (crashed_) continue;
    cluster_->sim().spawn(handle(std::move(r)));
  }
}

sim::BandwidthServer& IoServer::stream_for(hw::NodeId client,
                                           bool redundancy) {
  auto key = std::make_pair(client, redundancy);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    const auto& params = cluster_->node(node_).params();
    const double rate = redundancy ? params.red_stream_bytes_per_sec
                                   : params.stream_bytes_per_sec;
    it = streams_
             .emplace(key,
                      std::make_unique<sim::BandwidthServer>(
                          cluster_->sim(), rate))
             .first;
  }
  return *it->second;
}

sim::Task<void> IoServer::pace(const Request& r, std::uint64_t bytes) {
  // Redundancy-*block* operations take CSAR's fast path (cache-resident
  // parity/mirror blocks, outside the iod streaming loop). Bulk payloads —
  // data files and overflow regions — go through the per-connection stream.
  co_await stream_for(r.from, redundancy_op(r.op)).transfer(bytes);
}

sim::Task<void> IoServer::reply(const Request& r, Response resp,
                                std::uint64_t epoch) {
  if (epoch != epoch_) co_return;  // crashed since the request was accepted
  const auto d = co_await fabric_->transfer(node_, r.from, resp.wire_bytes());
  if (epoch != epoch_) co_return;  // crashed while the reply was in flight
  if (d == net::Delivery::ok) r.reply->send(std::move(resp));
}

void IoServer::apply_invalidation(const Request& r) {
  if (r.inval_own.empty() && r.inval_mirror.empty()) return;
  auto& hs = handles_[r.handle];
  if (!r.inval_own.empty()) hs.own.erase(r.inval_own.start, r.inval_own.end);
  if (!r.inval_mirror.empty()) {
    hs.mirror.erase(r.inval_mirror.start, r.inval_mirror.end);
  }
}

sim::Task<bool> IoServer::lock_parity(std::uint64_t key, hw::NodeId from,
                                      std::uint64_t token, obs::Ctx ctx) {
  auto& lk = locks_[key];
  if (!lk.held) {
    lk.held = true;
    lk.owner = from;
    lk.owner_token = token;
    ++lk.gen;
    lk.acquired_at = cluster_->sim().now();
    ++lock_stats_.acquisitions;
    if (obs::kEnabled && lock_hist_ != nullptr) lock_hist_->add(0);
    co_return true;
  }
  if (lk.owner == from && token != 0 && lk.owner_token == token) {
    // Same RMW re-requesting its own lock: the grant reply to an earlier
    // attempt was lost in flight and the client retried. Re-enter rather
    // than queue — a waiter entry for an op that already owns the lock can
    // only be satisfied by abandonment, and once granted it would hold the
    // block as a zombie for a full lease. Fresh acquisition time (and a gen
    // bump to invalidate any armed watchdog): the RMW is demonstrably live.
    ++lk.gen;
    lk.acquired_at = cluster_->sim().now();
    ++lock_stats_.reentries;
    if (obs::kEnabled && lock_hist_ != nullptr) lock_hist_->add(0);
    co_return true;
  }
  // §5.1: queue behind the in-flight read-modify-write. Arm the lease
  // watchdog: if the holder abandoned its RMW (client death, RPC timeout),
  // the queue would otherwise never drain.
  ++lock_stats_.waits;
  LockWaiter w;
  w.from = from;
  w.token = token;
  w.enq = cluster_->sim().now();
  lk.waiting.push_back(&w);
  arm_lease(key, lk);
  obs::Span span;
  if (obs::kEnabled && ctx.t != nullptr) {
    span = ctx.t->span(ctx.pid, ctx.tid, "lock_wait", "lock", ctx.parent,
                       "\"key\":" + std::to_string(key));
  }
  struct Park {
    LockWaiter* w;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const noexcept { w->h = h; }
    bool await_resume() const noexcept { return w->granted; }
  };
  const bool granted = co_await Park{&w};
  if (obs::kEnabled && lock_hist_ != nullptr) {
    lock_hist_->add(
        static_cast<std::uint64_t>(cluster_->sim().now() - w.enq));
  }
  co_return granted;
}

void IoServer::pass_or_release(std::uint64_t key, ParityLock& lk) {
  ++lk.gen;  // ownership changes either way; invalidates a pending watchdog
  if (lk.waiting.empty()) {
    lk.held = false;
    lk.owner = 0;
    lk.owner_token = 0;
    return;
  }
  // Hand the lock to the first queued waiter and resume its acquirer.
  LockWaiter* w = lk.waiting.front();
  lk.waiting.pop_front();
  lock_stats_.wait_time += cluster_->sim().now() - w->enq;
  ++lock_stats_.acquisitions;
  lk.owner = w->from;
  lk.owner_token = w->token;
  lk.acquired_at = cluster_->sim().now();
  if (!lk.waiting.empty()) arm_lease(key, lk);  // new holder, fresh lease
  w->granted = true;
  cluster_->sim().schedule_now(w->h);
}

void IoServer::fail_waiters(ParityLock& lk) {
  for (LockWaiter* w : lk.waiting) {
    w->granted = false;
    cluster_->sim().schedule_now(w->h);
  }
  lk.waiting.clear();
}

void IoServer::drop_all_locks() {
  for (auto& [key, lk] : locks_) fail_waiters(lk);
  locks_.clear();
}

void IoServer::arm_lease(std::uint64_t key, ParityLock& lk) {
  if (p_.parity_lock_lease == 0 || lk.armed_gen == lk.gen) return;
  lk.armed_gen = lk.gen;
  cluster_->sim().spawn(lease_reaper(key, lk.gen, epoch_,
                                     lk.acquired_at + p_.parity_lock_lease));
}

sim::Task<void> IoServer::lease_reaper(std::uint64_t key, std::uint64_t gen,
                                       std::uint64_t epoch,
                                       sim::Time deadline) {
  co_await cluster_->sim().sleep_until(deadline);
  // A crash cleared the lock table (and a post-crash lock at the same key
  // restarts its generations), so the epoch guards against misfiring on an
  // unrelated successor lock.
  if (epoch != epoch_) co_return;
  auto it = locks_.find(key);
  if (it == locks_.end() || !it->second.held || it->second.gen != gen) {
    co_return;
  }
  ++lock_stats_.lease_expirations;
  pass_or_release(key, it->second);
}

namespace {

/// Ops a fenced (blank-disk, not yet rebuilt) server must refuse: anything
/// that observes content or answers probes.
bool fence_refused(Op op) {
  switch (op) {
    case Op::read_data:
    case Op::read_red:
    case Op::read_data_raw:
    case Op::read_mirror:
    case Op::read_own_overflow:
    case Op::storage_query:
    case Op::ping:
      return true;
    default:
      return false;
  }
}

/// iod dispatch-loop cost of one request (bytes moved through the daemon).
std::uint64_t iod_cost(const Request& r) {
  if (r.op != Op::batch) return std::max(r.wire_bytes(), r.len);
  std::uint64_t total = 0;
  for (const auto& s : r.subs) total += std::max(s.wire_bytes(), s.len);
  return total;
}

}  // namespace

sim::Task<void> IoServer::handle(Request r) {
  const std::uint64_t epoch = epoch_;
  if (failed_) {
    Response resp;
    resp.ok = false;
    resp.err = Errc::server_failed;
    co_await reply(r, std::move(resp), epoch);
    co_return;
  }
  if (fenced_) {
    // Rejoined on a blank replacement disk, not yet rebuilt: serving a read
    // would return zeros as if they were data. Refuse everything that
    // observes content (clients fail over to the redundancy) but admit
    // writes, so the rebuild — and any concurrent client write, which is
    // then simply newer than the rebuild copy — can land. A batch is
    // refused whole if any of its subs observes content: a partial batch
    // would complicate the client's retry story for no benefit.
    bool refuse = fence_refused(r.op);
    if (r.op == Op::batch) {
      for (const auto& s : r.subs) refuse = refuse || fence_refused(s.op);
    }
    if (refuse) {
      Response resp;
      resp.ok = false;
      resp.err = Errc::server_failed;
      co_await reply(r, std::move(resp), epoch);
      co_return;
    }
  }
  // The handling span parents under the client's rpc span (r.tspan rode the
  // request over); every stage span below shares its lane via `ctx`.
  obs::Span span;
  obs::Ctx ctx;
  if (obs::kEnabled && tracer_ != nullptr) {
    span = tracer_->task_span(pid_, "req", op_name(r.op), "server", r.tspan,
                              "\"handle\":" + std::to_string(r.handle));
    ctx = obs::Ctx{tracer_, span.pid(), span.tid(), span.id()};
  }
  const sim::Time t0 = cluster_->sim().now();
  // Every request passes through the single-process iod dispatch loop;
  // under bursts, small parity operations queue behind bulk data here. A
  // batch is charged the sum of its subs' bytes but only one dispatch pass —
  // the per-message overhead batching exists to amortize.
  {
    obs::Span q;
    if (obs::kEnabled && ctx.t != nullptr) {
      q = ctx.t->span(ctx.pid, ctx.tid, "iod_queue", "server", ctx.parent);
    }
    co_await iod_.transfer(iod_cost(r));
  }
  if (r.op == Op::shutdown) co_return;  // handled by the dispatcher
  Response resp;
  if (r.op == Op::batch) {
    resp = co_await exec_batch(r, ctx);
  } else {
    resp = co_await exec_one(r, /*prelocked=*/false, ctx);
  }
  if (obs::kEnabled && req_hist_ != nullptr) {
    req_hist_->add(static_cast<std::uint64_t>(cluster_->sim().now() - t0));
  }
  co_await reply(r, std::move(resp), epoch);
}

sim::Task<Response> IoServer::exec_one(const Request& r, bool prelocked,
                                       obs::Ctx ctx) {
  switch (r.op) {
    case Op::read_data:
      co_return co_await do_read_data(r, ctx);
    case Op::write_data:
      co_return co_await do_write_data(r, ctx);
    case Op::read_red: {
      if (p_.parity_locking && r.lock && !prelocked) {
        const std::uint64_t key = lock_key(r.handle, r.off, r.su);
        const bool got = co_await lock_parity(key, r.from, r.rmw_token, ctx);
        if (!got) {
          // The lock vanished while we were queued (file removed, crash):
          // answer not_found so the client does not hang.
          Response resp;
          resp.ok = false;
          resp.err = Errc::not_found;
          co_return resp;
        }
      }
      co_return co_await do_read_red(r, ctx);
    }
    case Op::write_red: {
      Response resp = co_await do_write_red(r, ctx);
      // Release as soon as the parity write is applied; the ack to the
      // writer is asynchronous and need not extend the critical section.
      if (p_.parity_locking && r.unlock) {
        const std::uint64_t key = lock_key(r.handle, r.off, r.su);
        auto it = locks_.find(key);
        // A crash wipes the lock table: a writer that acquired the lock
        // before the crash legitimately unlocks a lock we no longer hold.
        // Forgetting a lock is safe (the RMW it protected was fenced by the
        // epoch check), so treat the orphan unlock as a no-op. A tagged
        // unlock whose token no longer matches is a duplicate retry of an
        // already-released RMW — it must not release the lock a newer RMW
        // now holds.
        if (it != locks_.end() && it->second.held &&
            (r.rmw_token == 0 || it->second.owner_token == r.rmw_token)) {
          pass_or_release(key, it->second);
        }
      }
      co_return resp;
    }
    case Op::unlock_red: {
      // Explicit release without a parity write: sent by a client abandoning
      // its RMW (its locked read_red timed out). The client cannot know
      // whether that read ever granted the lock, so the release is only
      // honoured when this client is the recorded owner — releasing some
      // other writer's lock would break the critical section.
      if (p_.parity_locking) {
        const std::uint64_t key = lock_key(r.handle, r.off, r.su);
        auto it = locks_.find(key);
        if (it != locks_.end() && it->second.held &&
            it->second.owner == r.from &&
            (r.rmw_token == 0 || it->second.owner_token == r.rmw_token)) {
          ++lock_stats_.explicit_releases;
          pass_or_release(key, it->second);
        }
      }
      co_return Response{};
    }
    case Op::write_overflow:
      co_return co_await do_write_overflow(r);
    case Op::read_data_raw:
      co_return co_await do_read_data_raw(r);
    case Op::read_mirror:
      co_return co_await do_read_mirror(r);
    case Op::read_own_overflow:
      co_return co_await do_read_own_overflow(r);
    case Op::flush: {
      co_await fs_.flush();
      co_return Response{};
    }
    case Op::compact_overflow:
      co_return co_await do_compact_overflow(r);
    case Op::remove_file: {
      fs_.remove(data_name(r.handle));
      fs_.remove(ovfl_name(r.handle));
      if (auto it = handles_.find(r.handle); it != handles_.end()) {
        for (std::uint32_t g = 0; g <= it->second.max_red_gen; ++g) {
          fs_.remove(red_name(r.handle, g));
        }
      } else {
        fs_.remove(red_name(r.handle));
      }
      handles_.erase(r.handle);
      // Drop any parity locks of the dead handle; parked acquirers are
      // woken un-granted and answer not_found so their clients do not hang.
      for (auto it = locks_.begin(); it != locks_.end();) {
        if (it->first / 0x40000000ULL == r.handle) {
          fail_waiters(it->second);
          it = locks_.erase(it);
        } else {
          ++it;
        }
      }
      co_return Response{};
    }
    case Op::storage_query: {
      Response resp;
      resp.storage.data_bytes = fs_.size(data_name(r.handle));
      auto it = handles_.find(r.handle);
      const std::uint32_t max_gen =
          it == handles_.end() ? 0 : it->second.max_red_gen;
      for (std::uint32_t g = 0; g <= max_gen; ++g) {
        resp.storage.red_bytes += fs_.size(red_name(r.handle, g));
      }
      resp.storage.overflow_bytes =
          it == handles_.end() ? 0 : it->second.overflow_alloc;
      co_return resp;
    }
    case Op::ping:
      co_return Response{};
    case Op::drop_red: {
      // Migration GC: the old generation's redundancy is garbage once the
      // file's scheme flipped; dropping it is idempotent.
      fs_.remove(red_name(r.handle, r.red_gen));
      co_return Response{};
    }
    case Op::batch:
    case Op::shutdown:
      break;  // batches never nest; shutdown is the dispatcher's
  }
  Response bad;
  bad.ok = false;
  bad.err = Errc::invalid_argument;
  co_return bad;
}

sim::Task<Response> IoServer::exec_batch(const Request& r, obs::Ctx ctx) {
  ++batch_stats_.batches;
  batch_stats_.subs += r.subs.size();
  if (obs::kEnabled && batch_hist_ != nullptr) {
    batch_hist_->add(static_cast<std::uint64_t>(r.subs.size()));
  }
  // Sub-requests inherit the envelope's sender: owner tagging, stream
  // pacing and lock bookkeeping all go by `from`.
  std::vector<Request> subs = r.subs;
  for (auto& s : subs) s.from = r.from;

  // Acquire every parity lock the batch needs up front, in ascending key
  // (== ascending group) order — not lazily in execution order. Two batches
  // contending on this server therefore cannot interleave their
  // acquisitions out of order, and since clients visit parity servers in
  // ascending min-group order, the global acquisition order stays
  // consistent with §5.1's deadlock-avoidance rule.
  std::vector<std::pair<std::uint64_t, std::size_t>> lock_plan;
  if (p_.parity_locking) {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (subs[i].op == Op::read_red && subs[i].lock) {
        lock_plan.emplace_back(
            lock_key(subs[i].handle, subs[i].off, subs[i].su), i);
      }
    }
    std::sort(lock_plan.begin(), lock_plan.end());
  }
  std::vector<char> prelocked(subs.size(), 0);
  std::vector<char> lock_dead(subs.size(), 0);
  for (const auto& [key, i] : lock_plan) {
    const bool got =
        co_await lock_parity(key, subs[i].from, subs[i].rmw_token, ctx);
    if (got) {
      prelocked[i] = 1;
    } else {
      lock_dead[i] = 1;
    }
  }

  Response env;
  env.subs.resize(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    if (lock_dead[i]) {
      env.subs[i].ok = false;
      env.subs[i].err = Errc::not_found;
      continue;
    }
    // Merge a run of adjacent same-op reads of one file into a single
    // page-cache access: one covering read (one miss run on the disk for
    // cold pages) sliced back into per-sub responses.
    if (subs[i].op == Op::read_red || subs[i].op == Op::read_data_raw) {
      std::size_t j = i + 1;
      std::uint64_t end = subs[i].off + subs[i].len;
      while (j < subs.size() && subs[j].op == subs[i].op &&
             subs[j].handle == subs[i].handle && subs[j].off == end &&
             subs[j].red_gen == subs[i].red_gen && !lock_dead[j]) {
        end += subs[j].len;
        ++j;
      }
      if (j > i + 1) {
        Request merged = subs[i];
        merged.len = end - merged.off;
        Response big;
        if (merged.op == Op::read_red) {
          big = co_await do_read_red(merged, ctx);
        } else {
          big = co_await do_read_data_raw(merged);
        }
        batch_stats_.merged_reads += (j - i) - 1;
        std::uint64_t pos = 0;
        for (std::size_t k = i; k < j; ++k) {
          env.subs[k].ok = big.ok;
          env.subs[k].err = big.err;
          if (big.ok || big.data.size() == merged.len) {
            env.subs[k].data = big.data.slice(pos, subs[k].len);
          }
          pos += subs[k].len;
        }
        i = j - 1;
        continue;
      }
    }
    env.subs[i] = co_await exec_one(subs[i], prelocked[i] != 0, ctx);
  }
  co_return env;
}

sim::Task<Response> IoServer::do_read_data(const Request& r, obs::Ctx ctx) {
  obs::Span span;
  if (obs::kEnabled && ctx.t != nullptr) {
    span = ctx.t->span(ctx.pid, ctx.tid, "read_data", "disk", ctx.parent,
                       "\"off\":" + std::to_string(r.off) +
                           ",\"len\":" + std::to_string(r.len));
  }
  Response resp;
  auto base_out = co_await fs_.read_checked(data_name(r.handle), r.off, r.len);
  bool media_error = base_out.media_error;
  Buffer base = std::move(base_out.data);
  // Overlay live overflow entries: the overflow region holds the newest copy
  // of partially-written stripes (§4, Hybrid reads). The plan is copied out
  // of the table *before* any await — a concurrent full-stripe write may
  // invalidate entries while the overflow file is being read.
  auto it = handles_.find(r.handle);
  if (it != handles_.end() && !it->second.own.empty()) {
    struct MergePiece {
      std::uint64_t start;
      std::uint64_t end;
      std::uint64_t src;
    };
    std::vector<MergePiece> plan;
    for (const auto& chunk : it->second.own.query(r.off, r.off + r.len)) {
      plan.push_back({chunk.start, chunk.end,
                      *chunk.value + (chunk.start - chunk.entry_start)});
    }
    for (const auto& mp : plan) {
      auto piece_out =
          co_await fs_.read_checked(ovfl_name(r.handle), mp.src,
                                    mp.end - mp.start, base.materialized());
      media_error = media_error || piece_out.media_error;
      Buffer piece = std::move(piece_out.data);
      if (base.materialized() && piece.materialized()) {
        base.write_at(mp.start - r.off, piece);
      } else if (base.materialized()) {
        base = Buffer::phantom(r.len);
      }
    }
  }
  co_await pace(r, r.len);
  resp.data = std::move(base);
  if (media_error) {
    // A latent sector error is a per-range failure, not a dead server: the
    // client can reconstruct this range from redundancy and the scrubber
    // can repair it in place.
    resp.ok = false;
    resp.err = Errc::media_error;
  }
  co_return resp;
}

sim::Task<Response> IoServer::do_write_data(const Request& r, obs::Ctx ctx) {
  obs::Span span;
  if (obs::kEnabled && ctx.t != nullptr) {
    span = ctx.t->span(ctx.pid, ctx.tid, "write_data", "disk", ctx.parent,
                       "\"off\":" + std::to_string(r.off) +
                           ",\"len\":" + std::to_string(r.payload.size()));
  }
  handles_.try_emplace(r.handle);  // note the handle for storage accounting
  co_await pace(r, r.payload.size());
  const std::uint64_t off = r.off;
  const std::uint64_t len = r.payload.size();
  Buffer payload = r.payload.slice(0, len);
  co_await fs_.write_stream(data_name(r.handle), off, std::move(payload),
                            cluster_->profile().net_recv_chunk);
  apply_invalidation(r);
  co_return Response{};
}

sim::Task<Response> IoServer::do_read_data_raw(const Request& r) {
  Response resp;
  auto out = co_await fs_.read_checked(data_name(r.handle), r.off, r.len);
  resp.data = std::move(out.data);
  if (out.media_error) {
    resp.ok = false;
    resp.err = Errc::media_error;
  }
  co_await pace(r, r.len);
  co_return resp;
}

sim::Task<Response> IoServer::do_read_red(const Request& r, obs::Ctx ctx) {
  obs::Span span;
  if (obs::kEnabled && ctx.t != nullptr) {
    span = ctx.t->span(ctx.pid, ctx.tid, "read_red", "disk", ctx.parent,
                       "\"off\":" + std::to_string(r.off) +
                           ",\"len\":" + std::to_string(r.len));
  }
  Response resp;
  auto out =
      co_await fs_.read_checked(red_name(r.handle, r.red_gen), r.off, r.len);
  resp.data = std::move(out.data);
  if (out.media_error) {
    resp.ok = false;
    resp.err = Errc::media_error;
  }
  co_await pace(r, r.len);
  co_return resp;
}

sim::Task<Response> IoServer::do_write_red(const Request& r, obs::Ctx ctx) {
  obs::Span span;
  if (obs::kEnabled && ctx.t != nullptr) {
    span = ctx.t->span(ctx.pid, ctx.tid, "write_red", "disk", ctx.parent,
                       "\"off\":" + std::to_string(r.off) +
                           ",\"len\":" + std::to_string(r.payload.size()));
  }
  auto& hs = handles_[r.handle];
  hs.max_red_gen = std::max(hs.max_red_gen, r.red_gen);
  co_await pace(r, r.payload.size());
  Buffer payload = r.payload.slice(0, r.payload.size());
  co_await fs_.write_stream(red_name(r.handle, r.red_gen), r.off,
                            std::move(payload),
                            cluster_->profile().net_recv_chunk);
  apply_invalidation(r);
  co_return Response{};
}

sim::Task<Response> IoServer::do_write_overflow(const Request& r) {
  assert(r.su > 0);
  co_await pace(r, r.payload.size());
  auto& hs = handles_[r.handle];
  // Overflow space is allocated in whole stripe units and never reclaimed
  // in place (old blocks must survive for stripe reconstruction; see §4 and
  // the fragmentation discussion in §6.7).
  const std::uint64_t alloc = hs.overflow_alloc;
  const std::uint64_t len = r.payload.size();
  hs.overflow_alloc += align_up(len, r.su);
  Buffer payload = r.payload.slice(0, len);
  co_await fs_.write_stream(ovfl_name(r.handle), alloc, std::move(payload),
                            cluster_->profile().net_recv_chunk);
  OverflowTable& table = r.mirror ? hs.mirror : hs.own;
  table.insert(r.off, r.off + len, alloc);
  co_return Response{};
}

sim::Task<Response> IoServer::do_read_mirror(const Request& r) {
  Response resp;
  auto it = handles_.find(r.handle);
  if (it != handles_.end()) {
    struct PlanPiece {
      std::uint64_t start;
      std::uint64_t end;
      std::uint64_t src;
    };
    std::vector<PlanPiece> plan;  // copied before awaiting (see read_data)
    for (const auto& chunk : it->second.mirror.query(r.off, r.off + r.len)) {
      plan.push_back({chunk.start, chunk.end,
                      *chunk.value + (chunk.start - chunk.entry_start)});
    }
    for (const auto& pp : plan) {
      OverflowPiece piece;
      piece.local_off = pp.start;
      auto out = co_await fs_.read_checked(ovfl_name(r.handle), pp.src,
                                           pp.end - pp.start);
      piece.data = std::move(out.data);
      if (out.media_error) {
        resp.ok = false;
        resp.err = Errc::media_error;
      }
      resp.pieces.push_back(std::move(piece));
    }
  }
  co_await pace(r, resp.wire_bytes());
  co_return resp;
}

sim::Task<Response> IoServer::do_read_own_overflow(const Request& r) {
  Response resp;
  auto it = handles_.find(r.handle);
  if (it != handles_.end()) {
    struct PlanPiece {
      std::uint64_t start;
      std::uint64_t end;
      std::uint64_t src;
    };
    std::vector<PlanPiece> plan;  // copied before awaiting (see read_data)
    for (const auto& chunk : it->second.own.query(r.off, r.off + r.len)) {
      plan.push_back({chunk.start, chunk.end,
                      *chunk.value + (chunk.start - chunk.entry_start)});
    }
    for (const auto& pp : plan) {
      OverflowPiece piece;
      piece.local_off = pp.start;
      auto out = co_await fs_.read_checked(ovfl_name(r.handle), pp.src,
                                           pp.end - pp.start);
      piece.data = std::move(out.data);
      if (out.media_error) {
        resp.ok = false;
        resp.err = Errc::media_error;
      }
      resp.pieces.push_back(std::move(piece));
    }
  }
  co_await pace(r, resp.wire_bytes());
  co_return resp;
}

sim::Task<Response> IoServer::do_compact_overflow(const Request& r) {
  // The paper's proposed cleaner (§6.7): overflow space is append-only
  // during normal operation, so dead entries (superseded or invalidated)
  // keep their allocation until this pass rewrites the live ones densely.
  Response resp;
  auto it = handles_.find(r.handle);
  if (it == handles_.end()) co_return resp;
  auto& hs = it->second;
  assert(r.su > 0);

  struct Live {
    bool mirror;
    std::uint64_t start;
    std::uint64_t end;
    std::uint64_t old_src;
  };
  std::vector<Live> live;
  hs.own.for_each([&](std::uint64_t s, std::uint64_t e, std::uint64_t src) {
    live.push_back({false, s, e, src});
  });
  hs.mirror.for_each([&](std::uint64_t s, std::uint64_t e, std::uint64_t src) {
    live.push_back({true, s, e, src});
  });

  // Read every live piece, drop the old file, and rewrite densely.
  std::vector<Buffer> contents;
  contents.reserve(live.size());
  for (const auto& piece : live) {
    contents.push_back(co_await fs_.read(ovfl_name(r.handle), piece.old_src,
                                         piece.end - piece.start));
  }
  fs_.remove(ovfl_name(r.handle));
  hs.own.clear();
  hs.mirror.clear();
  hs.overflow_alloc = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const std::uint64_t alloc = hs.overflow_alloc;
    const std::uint64_t len = live[i].end - live[i].start;
    hs.overflow_alloc += align_up(len, r.su);
    co_await fs_.write(ovfl_name(r.handle), alloc, std::move(contents[i]));
    OverflowTable& table = live[i].mirror ? hs.mirror : hs.own;
    table.insert(live[i].start, live[i].end, alloc);
  }
  resp.storage.overflow_bytes = hs.overflow_alloc;
  co_return resp;
}

StorageInfo IoServer::total_storage() const {
  StorageInfo total;
  for (const auto& [h, hs] : handles_) {
    total.data_bytes += fs_.size(data_name(h));
    for (std::uint32_t g = 0; g <= hs.max_red_gen; ++g) {
      total.red_bytes += fs_.size(red_name(h, g));
    }
    total.overflow_bytes += hs.overflow_alloc;
  }
  return total;
}

}  // namespace csar::pvfs
