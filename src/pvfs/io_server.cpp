#include "pvfs/io_server.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/log.hpp"
#include "common/units.hpp"
#include "sim/time.hpp"

namespace csar::pvfs {

const char* op_name(Op op) {
  switch (op) {
    case Op::read_data:
      return "read_data";
    case Op::write_data:
      return "write_data";
    case Op::read_red:
      return "read_red";
    case Op::write_red:
      return "write_red";
    case Op::write_overflow:
      return "write_overflow";
    case Op::read_data_raw:
      return "read_data_raw";
    case Op::read_mirror:
      return "read_mirror";
    case Op::read_own_overflow:
      return "read_own_overflow";
    case Op::flush:
      return "flush";
    case Op::storage_query:
      return "storage_query";
    case Op::compact_overflow:
      return "compact_overflow";
    case Op::remove_file:
      return "remove_file";
    case Op::ping:
      return "ping";
    case Op::shutdown:
      return "shutdown";
  }
  return "?";
}

IoServer::IoServer(hw::Cluster& cluster, net::Fabric& fabric, hw::NodeId node,
                   std::uint32_t server_index, const IoServerParams& params)
    : cluster_(&cluster),
      fabric_(&fabric),
      node_(node),
      index_(server_index),
      p_(params),
      inbox_(cluster.sim()),
      fs_(cluster.sim(), *cluster.node(node).cache(), params.fs),
      iod_(cluster.sim(), cluster.node(node).params().iod_bytes_per_sec,
           cluster.node(node).params().iod_per_op) {
  assert(cluster.node(node).cache() != nullptr &&
         "I/O servers need a disk+cache node");
}

void IoServer::start() {
  if (started_) return;
  started_ = true;
  cluster_->sim().spawn(dispatcher());
}

void IoServer::stop() {
  Request r;
  r.op = Op::shutdown;
  inbox_.send(std::move(r));
}

sim::Task<void> IoServer::dispatcher() {
  for (;;) {
    Request r = co_await inbox_.recv();
    if (r.op == Op::shutdown) break;
    cluster_->sim().spawn(handle(std::move(r)));
  }
}

sim::BandwidthServer& IoServer::stream_for(hw::NodeId client,
                                           bool redundancy) {
  auto key = std::make_pair(client, redundancy);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    const auto& params = cluster_->node(node_).params();
    const double rate = redundancy ? params.red_stream_bytes_per_sec
                                   : params.stream_bytes_per_sec;
    it = streams_
             .emplace(key,
                      std::make_unique<sim::BandwidthServer>(
                          cluster_->sim(), rate))
             .first;
  }
  return *it->second;
}

sim::Task<void> IoServer::pace(const Request& r, std::uint64_t bytes) {
  // Redundancy-*block* operations take CSAR's fast path (cache-resident
  // parity/mirror blocks, outside the iod streaming loop). Bulk payloads —
  // data files and overflow regions — go through the per-connection stream.
  const bool redundancy =
      r.op == Op::read_red || r.op == Op::write_red ||
      r.op == Op::read_mirror || r.op == Op::read_own_overflow;
  co_await stream_for(r.from, redundancy).transfer(bytes);
}

sim::Task<void> IoServer::reply(const Request& r, Response resp) {
  co_await fabric_->transfer(node_, r.from, resp.wire_bytes());
  r.reply->send(std::move(resp));
}

void IoServer::apply_invalidation(const Request& r) {
  if (r.inval_own.empty() && r.inval_mirror.empty()) return;
  auto& hs = handles_[r.handle];
  if (!r.inval_own.empty()) hs.own.erase(r.inval_own.start, r.inval_own.end);
  if (!r.inval_mirror.empty()) {
    hs.mirror.erase(r.inval_mirror.start, r.inval_mirror.end);
  }
}

sim::Task<void> IoServer::handle(Request r) {
  if (failed_) {
    Response resp;
    resp.ok = false;
    resp.err = Errc::server_failed;
    co_await reply(r, std::move(resp));
    co_return;
  }
  // Every request passes through the single-process iod dispatch loop;
  // under bursts, small parity operations queue behind bulk data here.
  co_await iod_.transfer(std::max(r.wire_bytes(), r.len));
  switch (r.op) {
    case Op::read_data: {
      Response resp = co_await do_read_data(r);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::write_data: {
      Response resp = co_await do_write_data(r);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::read_red: {
      if (p_.parity_locking && r.lock) {
        auto& lk = locks_[lock_key(r.handle, r.off, r.su)];
        if (lk.held) {
          // §5.1: queue behind the in-flight read-modify-write.
          ++lock_stats_.waits;
          lk.waiting.emplace_back(std::move(r), cluster_->sim().now());
          co_return;
        }
        lk.held = true;
        ++lock_stats_.acquisitions;
      }
      Response resp = co_await do_read_red(r);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::write_red: {
      Response resp = co_await do_write_red(r);
      const std::uint64_t key = lock_key(r.handle, r.off, r.su);
      const bool release = p_.parity_locking && r.unlock;
      // Release as soon as the parity write is applied; the ack to the
      // writer is asynchronous and need not extend the critical section.
      if (release) {
        auto it = locks_.find(key);
        assert(it != locks_.end() && it->second.held);
        if (!it->second.waiting.empty()) {
          // Hand the lock to the first queued parity read.
          auto [queued, enq_time] = std::move(it->second.waiting.front());
          it->second.waiting.pop_front();
          lock_stats_.wait_time += cluster_->sim().now() - enq_time;
          ++lock_stats_.acquisitions;
          cluster_->sim().spawn(
              [](IoServer* self, Request q) -> sim::Task<void> {
                Response qresp = co_await self->do_read_red(q);
                co_await self->reply(q, std::move(qresp));
              }(this, std::move(queued)));
        } else {
          it->second.held = false;
        }
      }
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::write_overflow: {
      Response resp = co_await do_write_overflow(r);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::read_data_raw: {
      Response resp;
      resp.data = co_await fs_.read(data_name(r.handle), r.off, r.len);
      co_await pace(r, r.len);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::read_mirror: {
      Response resp = co_await do_read_mirror(r);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::read_own_overflow: {
      Response resp = co_await do_read_own_overflow(r);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::flush: {
      co_await fs_.flush();
      co_await reply(r, Response{});
      break;
    }
    case Op::compact_overflow: {
      Response resp = co_await do_compact_overflow(r);
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::remove_file: {
      fs_.remove(data_name(r.handle));
      fs_.remove(red_name(r.handle));
      fs_.remove(ovfl_name(r.handle));
      handles_.erase(r.handle);
      // Drop any parity locks of the dead handle; queued readers are
      // answered with not_found so their clients do not hang.
      for (auto it = locks_.begin(); it != locks_.end();) {
        if (it->first / 0x40000000ULL == r.handle) {
          for (auto& [queued, enq] : it->second.waiting) {
            Response gone;
            gone.ok = false;
            gone.err = Errc::not_found;
            cluster_->sim().spawn(
                [](IoServer* self, Request q, Response g) -> sim::Task<void> {
                  co_await self->reply(q, std::move(g));
                }(this, std::move(queued), std::move(gone)));
          }
          it = locks_.erase(it);
        } else {
          ++it;
        }
      }
      co_await reply(r, Response{});
      break;
    }
    case Op::storage_query: {
      Response resp;
      resp.storage.data_bytes = fs_.size(data_name(r.handle));
      resp.storage.red_bytes = fs_.size(red_name(r.handle));
      auto it = handles_.find(r.handle);
      resp.storage.overflow_bytes =
          it == handles_.end() ? 0 : it->second.overflow_alloc;
      co_await reply(r, std::move(resp));
      break;
    }
    case Op::ping: {
      co_await reply(r, Response{});
      break;
    }
    case Op::shutdown:
      break;  // handled by the dispatcher
  }
}

sim::Task<Response> IoServer::do_read_data(const Request& r) {
  Response resp;
  Buffer base = co_await fs_.read(data_name(r.handle), r.off, r.len);
  // Overlay live overflow entries: the overflow region holds the newest copy
  // of partially-written stripes (§4, Hybrid reads). The plan is copied out
  // of the table *before* any await — a concurrent full-stripe write may
  // invalidate entries while the overflow file is being read.
  auto it = handles_.find(r.handle);
  if (it != handles_.end() && !it->second.own.empty()) {
    struct MergePiece {
      std::uint64_t start;
      std::uint64_t end;
      std::uint64_t src;
    };
    std::vector<MergePiece> plan;
    for (const auto& chunk : it->second.own.query(r.off, r.off + r.len)) {
      plan.push_back({chunk.start, chunk.end,
                      *chunk.value + (chunk.start - chunk.entry_start)});
    }
    for (const auto& mp : plan) {
      Buffer piece = co_await fs_.read(ovfl_name(r.handle), mp.src,
                                       mp.end - mp.start,
                                       base.materialized());
      if (base.materialized() && piece.materialized()) {
        base.write_at(mp.start - r.off, piece);
      } else if (base.materialized()) {
        base = Buffer::phantom(r.len);
      }
    }
  }
  co_await pace(r, r.len);
  resp.data = std::move(base);
  co_return resp;
}

sim::Task<Response> IoServer::do_write_data(const Request& r) {
  handles_.try_emplace(r.handle);  // note the handle for storage accounting
  co_await pace(r, r.payload.size());
  const std::uint64_t off = r.off;
  const std::uint64_t len = r.payload.size();
  Buffer payload = r.payload.slice(0, len);
  co_await fs_.write_stream(data_name(r.handle), off, std::move(payload),
                            cluster_->profile().net_recv_chunk);
  apply_invalidation(r);
  co_return Response{};
}

sim::Task<Response> IoServer::do_read_red(const Request& r) {
  Response resp;
  resp.data = co_await fs_.read(red_name(r.handle), r.off, r.len);
  co_await pace(r, r.len);
  co_return resp;
}

sim::Task<Response> IoServer::do_write_red(const Request& r) {
  handles_.try_emplace(r.handle);
  co_await pace(r, r.payload.size());
  Buffer payload = r.payload.slice(0, r.payload.size());
  co_await fs_.write_stream(red_name(r.handle), r.off, std::move(payload),
                            cluster_->profile().net_recv_chunk);
  apply_invalidation(r);
  co_return Response{};
}

sim::Task<Response> IoServer::do_write_overflow(const Request& r) {
  assert(r.su > 0);
  co_await pace(r, r.payload.size());
  auto& hs = handles_[r.handle];
  // Overflow space is allocated in whole stripe units and never reclaimed
  // in place (old blocks must survive for stripe reconstruction; see §4 and
  // the fragmentation discussion in §6.7).
  const std::uint64_t alloc = hs.overflow_alloc;
  const std::uint64_t len = r.payload.size();
  hs.overflow_alloc += align_up(len, r.su);
  Buffer payload = r.payload.slice(0, len);
  co_await fs_.write_stream(ovfl_name(r.handle), alloc, std::move(payload),
                            cluster_->profile().net_recv_chunk);
  OverflowTable& table = r.mirror ? hs.mirror : hs.own;
  table.insert(r.off, r.off + len, alloc);
  co_return Response{};
}

sim::Task<Response> IoServer::do_read_mirror(const Request& r) {
  Response resp;
  auto it = handles_.find(r.handle);
  if (it != handles_.end()) {
    struct PlanPiece {
      std::uint64_t start;
      std::uint64_t end;
      std::uint64_t src;
    };
    std::vector<PlanPiece> plan;  // copied before awaiting (see read_data)
    for (const auto& chunk : it->second.mirror.query(r.off, r.off + r.len)) {
      plan.push_back({chunk.start, chunk.end,
                      *chunk.value + (chunk.start - chunk.entry_start)});
    }
    for (const auto& pp : plan) {
      OverflowPiece piece;
      piece.local_off = pp.start;
      piece.data = co_await fs_.read(ovfl_name(r.handle), pp.src,
                                     pp.end - pp.start);
      resp.pieces.push_back(std::move(piece));
    }
  }
  co_await pace(r, resp.wire_bytes());
  co_return resp;
}

sim::Task<Response> IoServer::do_read_own_overflow(const Request& r) {
  Response resp;
  auto it = handles_.find(r.handle);
  if (it != handles_.end()) {
    struct PlanPiece {
      std::uint64_t start;
      std::uint64_t end;
      std::uint64_t src;
    };
    std::vector<PlanPiece> plan;  // copied before awaiting (see read_data)
    for (const auto& chunk : it->second.own.query(r.off, r.off + r.len)) {
      plan.push_back({chunk.start, chunk.end,
                      *chunk.value + (chunk.start - chunk.entry_start)});
    }
    for (const auto& pp : plan) {
      OverflowPiece piece;
      piece.local_off = pp.start;
      piece.data = co_await fs_.read(ovfl_name(r.handle), pp.src,
                                     pp.end - pp.start);
      resp.pieces.push_back(std::move(piece));
    }
  }
  co_await pace(r, resp.wire_bytes());
  co_return resp;
}

sim::Task<Response> IoServer::do_compact_overflow(const Request& r) {
  // The paper's proposed cleaner (§6.7): overflow space is append-only
  // during normal operation, so dead entries (superseded or invalidated)
  // keep their allocation until this pass rewrites the live ones densely.
  Response resp;
  auto it = handles_.find(r.handle);
  if (it == handles_.end()) co_return resp;
  auto& hs = it->second;
  assert(r.su > 0);

  struct Live {
    bool mirror;
    std::uint64_t start;
    std::uint64_t end;
    std::uint64_t old_src;
  };
  std::vector<Live> live;
  hs.own.for_each([&](std::uint64_t s, std::uint64_t e, std::uint64_t src) {
    live.push_back({false, s, e, src});
  });
  hs.mirror.for_each([&](std::uint64_t s, std::uint64_t e, std::uint64_t src) {
    live.push_back({true, s, e, src});
  });

  // Read every live piece, drop the old file, and rewrite densely.
  std::vector<Buffer> contents;
  contents.reserve(live.size());
  for (const auto& piece : live) {
    contents.push_back(co_await fs_.read(ovfl_name(r.handle), piece.old_src,
                                         piece.end - piece.start));
  }
  fs_.remove(ovfl_name(r.handle));
  hs.own.clear();
  hs.mirror.clear();
  hs.overflow_alloc = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const std::uint64_t alloc = hs.overflow_alloc;
    const std::uint64_t len = live[i].end - live[i].start;
    hs.overflow_alloc += align_up(len, r.su);
    co_await fs_.write(ovfl_name(r.handle), alloc, std::move(contents[i]));
    OverflowTable& table = live[i].mirror ? hs.mirror : hs.own;
    table.insert(live[i].start, live[i].end, alloc);
  }
  resp.storage.overflow_bytes = hs.overflow_alloc;
  co_return resp;
}

StorageInfo IoServer::total_storage() const {
  StorageInfo total;
  for (const auto& [h, hs] : handles_) {
    total.data_bytes += fs_.size(data_name(h));
    total.red_bytes += fs_.size(red_name(h));
    total.overflow_bytes += hs.overflow_alloc;
  }
  return total;
}

}  // namespace csar::pvfs
