// Fleet layer: disk-adaptive redundancy with budgeted transitions.
//
// PACEMAKER's observation (Kadekodi et al., FAST '20) is that a fleet's
// disks do not fail at one flat rate: annualized failure rates follow a
// bathtub curve, and the right redundancy for a disk group depends on where
// on that curve the group currently sits. Reacting to AFR-class changes
// naively ("HeART-attack") fires every required transition at once and the
// resulting copy storm destroys foreground tail latency; the fix is to plan
// transitions proactively and meter them through an explicit transition-IO
// budget.
//
// This subsystem reproduces that control loop on the CSAR stack:
//
//   FleetModel       per-disk bathtub aging (hw::aging_profile) arranged
//                    into failure-domain disk groups (contiguous server
//                    ranges — racks sharing power, cf. SCR's NODE groups),
//                    with a years-per-sim-second compressed timeline and an
//                    AFR-derived fault plan (crashes, latent sector errors,
//                    whole-domain outages) for fault::FaultInjector.
//   rgroups          files are filed into redundancy classes keyed by the
//                    AFR class of the disk group holding their placement
//                    base; the class id is persisted at the metadata
//                    manager (pvfs::Client::set_rgroup) like a scheme tag,
//                    so transitions are planned per class, not per file.
//   FleetController  observes AFR-class changes ahead of time (lead_years),
//                    plans per-class scheme transitions — rs(6,3) for the
//                    bathtub edges, rs(4,2) for the flat bottom — and
//                    executes them through raid::SchemeMigrator under one
//                    fleet-wide sim::TokenBucket shared across concurrent
//                    migrations. Urgent transitions (durability upgrades,
//                    earliest class-change deadline first) preempt elective
//                    downgrades; max_concurrent bounds parallel copies.
//
// Everything is bit-deterministic: aging profiles and the fault plan derive
// from (seed, disk index), and the controller's decision tick iterates its
// file table in handle order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fault/fault.hpp"
#include "hw/disk.hpp"
#include "obs/metrics.hpp"
#include "raid/migrate.hpp"
#include "raid/rig.hpp"
#include "raid/scheme.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::fleet {

struct FleetParams {
  std::uint64_t seed = 0xF1EE7C5AULL;  ///< aging + fault-plan determinism
  /// Servers per failure domain (disk group): a group shares a rack/power
  /// unit and — because groups are age cohorts — a purchase batch.
  std::uint32_t group_size = 3;
  /// Timeline compression: one simulated second advances every disk's age
  /// by this many years. A 4 s run at 0.5 y/s covers two fleet-years.
  double years_per_sim_sec = 0.5;
  /// Purchase-batch age of group g at sim time 0 is
  ///   group0_age_years - g * group_age_step_years   (clamped at 0),
  /// so group 0 is the oldest cohort (first to hit wearout) and later
  /// groups are progressively younger.
  double group0_age_years = 3.8;
  double group_age_step_years = 1.6;
  /// Scheme map: the flat bottom of the bathtub runs the cheap code; the
  /// elevated-AFR edges (infancy, wearout) run the durable one.
  raid::Scheme scheme_useful = raid::Scheme::rs(4, 2);
  raid::Scheme scheme_edge = raid::Scheme::rs(6, 3);
  /// Proactive lookahead: transitions are planned against the AFR class the
  /// group will be in `lead_years` from now, so the copy work lands before
  /// the class actually changes (the PACEMAKER deadline).
  double lead_years = 0.1;
  /// Assumed repair window (years) for the closed-form loss-rate estimate.
  double repair_window_years = 2e-3;  ///< ~17 h
  /// Fleet-wide transition-IO budget in bytes/sec shared by every
  /// concurrent migration's initial copy pass. 0 = unbudgeted (the
  /// reactive-storm baseline).
  double transition_budget_bps = 8e6;
  std::uint64_t budget_burst = 1 << 20;
  /// Concurrent migrations the controller will keep in flight.
  std::uint32_t max_concurrent = 2;
  sim::Duration decision_interval = sim::ms(100);

  // --- fault-plan derivation knobs ---
  /// Multiplier on AFR-derived per-step crash probabilities (a compressed
  /// run needs enough events to matter; 1.0 = literal rates).
  double fault_boost = 1.0;
  /// Fraction of derived disk events that plant a latent sector error in a
  /// tenant file instead of crashing the server.
  double media_fraction = 0.4;
  /// Transient-outage length for derived crashes (server comes back with
  /// its disk intact; no wipe).
  sim::Duration crash_outage = sim::ms(250);
  /// Whole-domain outage rate per group-year (shared rack/power failures);
  /// 0 disables GroupCrash derivation.
  double group_outage_per_year = 0.0;
  sim::Duration group_outage_duration = sim::ms(150);
};

/// Failures a scheme tolerates per redundancy group (its `m`).
inline std::uint32_t failures_tolerated(raid::Scheme s) {
  switch (s.kind) {
    case raid::SchemeKind::raid0:
      return 0;
    case raid::SchemeKind::raid1:
    case raid::SchemeKind::raid4:
    case raid::SchemeKind::raid5:
    case raid::SchemeKind::raid5_nolock:
    case raid::SchemeKind::raid5_npc:
    case raid::SchemeKind::hybrid:
      return 1;
    case raid::SchemeKind::rs:
      return s.m;
  }
  return 0;
}

/// Closed-form expected data-loss-event rate (events per year) for one
/// redundancy group under scheme `s` with per-disk AFR `afr` and repair
/// window `repair_years`: the first failure arrives at rate g·λ, and each
/// of the m further failures must land among the remaining disks within the
/// repair window — rate ≈ g·λ · Π_{i=1..m} (g−i)·λ·R. `nservers` resolves
/// the group width of the classic schemes (parity: g = nservers).
double loss_event_rate(raid::Scheme s, std::uint32_t nservers, double afr,
                       double repair_years);

/// One stretch of a disk group's scheme schedule, in fleet years since the
/// start of the run.
struct SchemePeriod {
  double begin_years = 0.0;
  double end_years = 0.0;
  raid::Scheme scheme;
};

class FleetModel {
 public:
  /// Assigns a seeded bathtub aging profile to every server disk of the rig
  /// (hw::Disk::set_aging) and records the group structure. Call once,
  /// before deriving a fault plan or starting a controller.
  FleetModel(raid::Rig& rig, const FleetParams& params);

  std::uint32_t ngroups() const { return ngroups_; }
  std::uint32_t nservers() const {
    return static_cast<std::uint32_t>(disks_.size());
  }
  std::uint32_t group_of_server(std::uint32_t s) const {
    return s / p_.group_size;
  }
  /// The group a file belongs to, keyed by its layout's placement base:
  /// base picks the file's first data/coding server, so files rotated over
  /// different bases spread their primary placement across domains.
  std::uint32_t group_of_base(std::uint32_t base) const {
    return group_of_server(base % nservers());
  }
  const std::vector<std::uint32_t>& servers_of_group(std::uint32_t g) const {
    return groups_[g];
  }

  /// Fleet years elapsed at simulated time `now` (timeline compression).
  double added_years(sim::Time now) const {
    return sim::to_seconds(now) * p_.years_per_sim_sec;
  }

  /// A group's AFR class `added_years` fleet-years into the run: the class
  /// of its worst (highest-AFR) member disk — conservative when age jitter
  /// straddles a bathtub boundary.
  hw::AfrClass class_of_group(std::uint32_t g, double added_years) const;
  /// Mean member AFR.
  double afr_of_group(std::uint32_t g, double added_years) const;
  /// Years until any member's class next changes (min over members).
  double years_to_class_change(std::uint32_t g, double added_years) const;

  const hw::AgingParams& disk(std::uint32_t server) const {
    return disks_[server];
  }

  /// Derive a deterministic fault plan for `horizon` of simulated time from
  /// the per-disk AFR curves: each `step`, every disk draws a failure with
  /// probability afr(t)·Δyears·fault_boost — a share becoming latent sector
  /// errors in one of `ntenant_files` open-loop tenant files (handles are
  /// assigned 1..n in creation order), the rest transient server crashes —
  /// and every group draws a whole-domain outage at group_outage_per_year.
  fault::FaultPlan derive_fault_plan(sim::Duration horizon, sim::Duration step,
                                     std::uint32_t ntenant_files) const;

  const FleetParams& params() const { return p_; }

 private:
  raid::Rig* rig_;
  FleetParams p_;
  std::uint32_t ngroups_ = 0;
  std::vector<hw::AgingParams> disks_;            ///< per server
  std::vector<std::vector<std::uint32_t>> groups_;  ///< member servers
};

struct FleetStats {
  std::uint64_t decision_ticks = 0;
  std::uint64_t transitions_requested = 0;  ///< migrations actually spawned
  std::uint64_t urgent_requested = 0;    ///< durability upgrades
  std::uint64_t elective_requested = 0;  ///< cost downgrades
  /// Pending transitions left waiting because max_concurrent migrations
  /// were already in flight (the budget's queueing effect, summed per tick).
  std::uint64_t deferred_concurrency = 0;
  std::uint64_t rgroup_persists = 0;  ///< set_rgroup acks from the manager
  std::uint64_t backlog_peak = 0;     ///< max files-awaiting-transition seen
};

class FleetController {
 public:
  FleetController(raid::Rig& rig, raid::SchemeMigrator& migrator,
                  FleetModel& model, FleetParams params);
  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;
  ~FleetController() { stop(); }

  /// Register a tenant file: assign its rgroup (= the disk group holding
  /// its placement base), track it with the migrator, and spawn the durable
  /// set_rgroup persist. Synchronous — safe to call from a workload's
  /// on_file_created hook.
  void register_file(std::uint32_t tenant, const std::string& name,
                     const pvfs::OpenFile& f, std::uint64_t size);

  /// Install the shared transition budget on the migrator (when budgeted)
  /// and spawn the decision loop.
  void start();
  /// Detach the budget and let the loop exit at its next tick.
  void stop();

  /// Scheme the controller targets for a class.
  raid::Scheme scheme_for(hw::AfrClass c) const {
    return c == hw::AfrClass::useful_life ? p_.scheme_useful : p_.scheme_edge;
  }

  /// Files whose current scheme differs from their class target as of the
  /// last decision tick (includes in-flight migrations).
  std::uint64_t backlog() const { return backlog_; }

  /// Bytes drawn from the shared transition budget so far (0 when
  /// unbudgeted).
  std::uint64_t budget_bytes_taken() const {
    return bucket_ ? bucket_->taken() : 0;
  }

  const FleetStats& stats() const { return stats_; }

  /// The group's scheme schedule over [0, total_years], rebuilt from the
  /// controller's transition log (initial scheme = the rig default). Feed
  /// to expected_loss_events.
  std::vector<SchemePeriod> scheme_periods(std::uint32_t group,
                                           double total_years) const;

  /// Fleet gauges: per-class disk counts at sim-now, transition backlog,
  /// budget utilization, transition counters.
  void export_metrics(obs::Registry& reg) const;

 private:
  struct TrackedFile {
    std::string name;
    pvfs::OpenFile f;
    std::uint64_t size = 0;
    std::uint32_t tenant = 0;
    std::uint32_t group = 0;
  };
  struct Transition {
    double at_years = 0.0;
    std::uint32_t group = 0;
    raid::Scheme to;
  };

  sim::Task<void> decision_loop(std::uint64_t my_gen);
  void tick();
  sim::Task<void> persist_rgroup(std::string name, std::uint8_t rgroup);

  raid::Rig* rig_;
  raid::SchemeMigrator* migrator_;
  FleetModel* model_;
  FleetParams p_;
  std::map<std::uint64_t, TrackedFile> files_;  ///< handle order = determinism
  std::vector<Transition> log_;
  FleetStats stats_;
  std::unique_ptr<sim::TokenBucket> bucket_;
  raid::Scheme initial_scheme_;
  std::uint64_t backlog_ = 0;
  std::uint64_t gen_ = 0;
  bool running_ = false;
};

/// Expected data-loss events for one group over the run: numerically
/// integrate the closed-form loss rate along the group's actual AFR curve
/// under the given scheme schedule. Bit-deterministic (fixed step walk).
double expected_loss_events(const FleetModel& model, std::uint32_t group,
                            const std::vector<SchemePeriod>& periods,
                            double repair_years, double step_years = 0.005);

/// One row per disk group: members, start/end age, class trajectory, AFR.
TextTable fleet_groups_table(const FleetModel& model, double added_years);

/// Controller counters as a table (fault_storm --fleet, bench diagnostics).
TextTable fleet_stats_table(const FleetController& ctl);

}  // namespace csar::fleet
