#include "fleet/fleet.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/rng.hpp"
#include "pvfs/io_server.hpp"

namespace csar::fleet {

double loss_event_rate(raid::Scheme s, std::uint32_t nservers, double afr,
                       double repair_years) {
  std::uint32_t g = nservers;
  std::uint32_t m = 0;
  switch (s.kind) {
    case raid::SchemeKind::raid0:
      g = nservers;
      m = 0;
      break;
    case raid::SchemeKind::raid1:
      g = 2;
      m = 1;
      break;
    case raid::SchemeKind::raid4:
    case raid::SchemeKind::raid5:
    case raid::SchemeKind::raid5_nolock:
    case raid::SchemeKind::raid5_npc:
    case raid::SchemeKind::hybrid:
      g = nservers;
      m = 1;
      break;
    case raid::SchemeKind::rs:
      g = s.k + s.m;
      m = s.m;
      break;
  }
  // First failure at rate g·λ; each of the m further failures must land on
  // one of the remaining disks inside the repair window.
  double rate = static_cast<double>(g) * afr;
  for (std::uint32_t i = 1; i <= m; ++i) {
    rate *= static_cast<double>(g - i) * afr * repair_years;
  }
  return rate;
}

FleetModel::FleetModel(raid::Rig& rig, const FleetParams& params)
    : rig_(&rig), p_(params) {
  assert(p_.group_size > 0);
  const std::uint32_t n = rig.p.nservers;
  ngroups_ = (n + p_.group_size - 1) / p_.group_size;
  groups_.resize(ngroups_);
  disks_.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t g = group_of_server(s);
    const double batch_age = std::max(
        0.0, p_.group0_age_years - static_cast<double>(g) *
                                       p_.group_age_step_years);
    disks_.push_back(hw::aging_profile(p_.seed, s, batch_age));
    groups_[g].push_back(s);
    if (hw::Disk* d = rig.cluster.node(rig.server(s).node_id()).disk()) {
      d->set_aging(disks_.back());
    }
  }
}

hw::AfrClass FleetModel::class_of_group(std::uint32_t g,
                                        double added_years) const {
  // The class of the worst (highest-AFR) member: conservative when the
  // cohort's age jitter straddles a bathtub boundary.
  hw::AfrClass cls = hw::AfrClass::useful_life;
  double worst = -1.0;
  for (std::uint32_t s : groups_[g]) {
    const double a = disks_[s].afr(added_years);
    if (a > worst) {
      worst = a;
      cls = disks_[s].afr_class(added_years);
    }
  }
  return cls;
}

double FleetModel::afr_of_group(std::uint32_t g, double added_years) const {
  double sum = 0.0;
  for (std::uint32_t s : groups_[g]) sum += disks_[s].afr(added_years);
  return groups_[g].empty() ? 0.0 : sum / static_cast<double>(groups_[g].size());
}

double FleetModel::years_to_class_change(std::uint32_t g,
                                         double added_years) const {
  double best = 1e9;
  for (std::uint32_t s : groups_[g]) {
    best = std::min(best, disks_[s].years_to_next_class(added_years));
  }
  return best;
}

fault::FaultPlan FleetModel::derive_fault_plan(
    sim::Duration horizon, sim::Duration step,
    std::uint32_t ntenant_files) const {
  fault::FaultPlan plan;
  plan.seed = p_.seed ^ 0xFA177B00F5ULL;
  Rng rng(plan.seed);
  const double step_years = sim::to_seconds(step) * p_.years_per_sim_sec;
  for (sim::Time at = step; at <= horizon; at += step) {
    const double added =
        sim::to_seconds(at) * p_.years_per_sim_sec;  // run starts at t=0
    for (std::uint32_t s = 0; s < nservers(); ++s) {
      const double p_evt =
          std::min(0.5, disks_[s].afr(added) * step_years * p_.fault_boost);
      if (!rng.chance(p_evt)) continue;
      if (ntenant_files > 0 && rng.chance(p_.media_fraction)) {
        // Latent sector error under a tenant file's data extent. Open-loop
        // tenants create their files first, so handles run 1..n.
        fault::MediaFault mf;
        mf.at = at;
        mf.server = s;
        mf.file = pvfs::IoServer::data_name(1 + rng.below(ntenant_files));
        mf.off = rng.below(64) * 4096ull;
        mf.len = 4096;
        plan.media.push_back(std::move(mf));
      } else {
        plan.crashes.push_back(
            fault::ServerCrash{at, s, at + p_.crash_outage, false});
      }
    }
    if (p_.group_outage_per_year > 0.0) {
      const double p_grp =
          std::min(0.5, p_.group_outage_per_year * step_years);
      for (std::uint32_t g = 0; g < ngroups_; ++g) {
        if (!rng.chance(p_grp)) continue;
        plan.group_crashes.push_back(fault::GroupCrash{
            at, groups_[g], at + p_.group_outage_duration, false});
      }
    }
  }
  return plan;
}

FleetController::FleetController(raid::Rig& rig,
                                 raid::SchemeMigrator& migrator,
                                 FleetModel& model, FleetParams params)
    : rig_(&rig),
      migrator_(&migrator),
      model_(&model),
      p_(std::move(params)),
      initial_scheme_(rig.p.scheme) {}

void FleetController::register_file(std::uint32_t tenant,
                                    const std::string& name,
                                    const pvfs::OpenFile& f,
                                    std::uint64_t size) {
  TrackedFile t;
  t.name = name;
  t.f = f;
  t.size = size;
  t.tenant = tenant;
  t.group = model_->group_of_base(f.layout.base);
  files_[f.handle] = t;
  migrator_->track(name, f, size);
  rig_->sim.spawn(persist_rgroup(name, static_cast<std::uint8_t>(t.group)),
                  "fleet_rgroup_persist");
}

sim::Task<void> FleetController::persist_rgroup(std::string name,
                                                std::uint8_t rgroup) {
  auto r = co_await rig_->repair_client().set_rgroup(std::move(name), rgroup);
  if (r.ok()) ++stats_.rgroup_persists;
}

void FleetController::start() {
  if (running_) return;
  running_ = true;
  ++gen_;
  if (p_.transition_budget_bps > 0.0) {
    if (!bucket_) {
      bucket_ = std::make_unique<sim::TokenBucket>(
          rig_->sim, p_.transition_budget_bps, p_.budget_burst);
    }
    migrator_->set_shared_bucket(bucket_.get());
  }
  rig_->sim.spawn(decision_loop(gen_), "fleet_decisions");
}

void FleetController::stop() {
  if (!running_) return;
  running_ = false;
  ++gen_;
  // Detach the budget for future migrations; bucket_ itself stays alive
  // (in-flight copy passes still hold the pointer) until destruction.
  migrator_->set_shared_bucket(nullptr);
}

sim::Task<void> FleetController::decision_loop(std::uint64_t my_gen) {
  while (running_ && gen_ == my_gen) {
    tick();
    co_await rig_->sim.sleep(p_.decision_interval);
  }
}

void FleetController::tick() {
  ++stats_.decision_ticks;
  const double added = model_->added_years(rig_->sim.now());
  struct Pending {
    std::uint64_t handle;
    std::uint32_t group;
    raid::Scheme to;
    bool urgent;
    double deadline;
  };
  std::vector<Pending> pending;
  for (const auto& [h, t] : files_) {
    // Plan against the class the group will be in lead_years from now —
    // proactive, so the copy work lands before the AFR shift does.
    const hw::AfrClass cls =
        model_->class_of_group(t.group, added + p_.lead_years);
    const raid::Scheme desired = scheme_for(cls);
    const raid::Scheme cur = rig_->policy().scheme_of(t.f);
    if (desired == cur) continue;
    const bool urgent =
        failures_tolerated(desired) > failures_tolerated(cur);
    pending.push_back({h, t.group, desired, urgent,
                       model_->years_to_class_change(t.group, added)});
  }
  backlog_ = pending.size();
  stats_.backlog_peak = std::max(stats_.backlog_peak, backlog_);
  // Urgency order: durability upgrades before elective downgrades; among
  // upgrades, the class nearest its change (tightest deadline) first.
  // Handle order breaks ties, keeping the schedule bit-deterministic.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.urgent != b.urgent) return a.urgent;
                     if (a.urgent && a.deadline != b.deadline) {
                       return a.deadline < b.deadline;
                     }
                     return a.handle < b.handle;
                   });
  for (const Pending& pd : pending) {
    if (migrator_->active() >= p_.max_concurrent) {
      ++stats_.deferred_concurrency;
      continue;
    }
    if (migrator_->request(pd.handle, pd.to)) {
      ++stats_.transitions_requested;
      if (pd.urgent) {
        ++stats_.urgent_requested;
      } else {
        ++stats_.elective_requested;
      }
      log_.push_back({added, pd.group, pd.to});
    }
  }
}

std::vector<SchemePeriod> FleetController::scheme_periods(
    std::uint32_t group, double total_years) const {
  std::vector<SchemePeriod> out;
  raid::Scheme cur = initial_scheme_;
  double begin = 0.0;
  // log_ is appended in decision order, so per-group entries are already
  // time-sorted; identical repeats (one per file of the class) collapse.
  for (const Transition& tr : log_) {
    if (tr.group != group || tr.to == cur) continue;
    if (tr.at_years > begin) out.push_back({begin, tr.at_years, cur});
    cur = tr.to;
    begin = tr.at_years;
  }
  if (total_years > begin) out.push_back({begin, total_years, cur});
  return out;
}

void FleetController::export_metrics(obs::Registry& reg) const {
  const double added = model_->added_years(rig_->sim.now());
  std::uint64_t by_class[3] = {0, 0, 0};
  for (std::uint32_t s = 0; s < model_->nservers(); ++s) {
    ++by_class[static_cast<std::size_t>(model_->disk(s).afr_class(added))];
  }
  reg.gauge("fleet.disks_infancy")
      .set(static_cast<double>(by_class[0]));
  reg.gauge("fleet.disks_useful").set(static_cast<double>(by_class[1]));
  reg.gauge("fleet.disks_wearout").set(static_cast<double>(by_class[2]));
  reg.gauge("fleet.backlog").set(static_cast<double>(backlog_));
  reg.counter("fleet.transitions").set(stats_.transitions_requested);
  reg.counter("fleet.transitions_urgent").set(stats_.urgent_requested);
  reg.counter("fleet.transitions_elective").set(stats_.elective_requested);
  reg.counter("fleet.deferred_concurrency").set(stats_.deferred_concurrency);
  reg.counter("fleet.rgroup_persists").set(stats_.rgroup_persists);
  reg.gauge("fleet.budget_bytes").set(
      static_cast<double>(budget_bytes_taken()));
  const double elapsed = sim::to_seconds(rig_->sim.now());
  if (p_.transition_budget_bps > 0.0 && elapsed > 0.0) {
    reg.gauge("fleet.budget_utilization")
        .set(static_cast<double>(budget_bytes_taken()) /
             (p_.transition_budget_bps * elapsed));
  }
}

double expected_loss_events(const FleetModel& model, std::uint32_t group,
                            const std::vector<SchemePeriod>& periods,
                            double repair_years, double step_years) {
  double total = 0.0;
  for (const SchemePeriod& pd : periods) {
    double t = pd.begin_years;
    while (t < pd.end_years) {
      const double dt = std::min(step_years, pd.end_years - t);
      total += loss_event_rate(pd.scheme, model.nservers(),
                               model.afr_of_group(group, t), repair_years) *
               dt;
      t += dt;
    }
  }
  return total;
}

TextTable fleet_groups_table(const FleetModel& model, double added_years) {
  TextTable t({"group", "servers", "age (y)", "class", "afr %/y",
               "next change (y)"});
  for (std::uint32_t g = 0; g < model.ngroups(); ++g) {
    const auto& members = model.servers_of_group(g);
    double age = 0.0;
    for (std::uint32_t s : members) {
      age += model.disk(s).age_years + added_years;
    }
    if (!members.empty()) age /= static_cast<double>(members.size());
    const double next = model.years_to_class_change(g, added_years);
    t.add_row({"g" + std::to_string(g),
               "s" + std::to_string(members.front()) + "-s" +
                   std::to_string(members.back()),
               TextTable::num(age, 2),
               hw::afr_class_name(model.class_of_group(g, added_years)),
               TextTable::num(100.0 * model.afr_of_group(g, added_years), 2),
               TextTable::num(next, 2)});
  }
  return t;
}

TextTable fleet_stats_table(const FleetController& ctl) {
  const FleetStats& s = ctl.stats();
  TextTable t({"ticks", "transitions", "urgent", "elective", "deferred",
               "backlog", "peak backlog", "rgroup persists", "budget MB"});
  t.add_row({TextTable::num(s.decision_ticks),
             TextTable::num(s.transitions_requested),
             TextTable::num(s.urgent_requested),
             TextTable::num(s.elective_requested),
             TextTable::num(s.deferred_concurrency),
             TextTable::num(ctl.backlog()),
             TextTable::num(s.backlog_peak),
             TextTable::num(s.rgroup_persists),
             TextTable::num(static_cast<double>(ctl.budget_bytes_taken()) /
                                1e6,
                            2)});
  return t;
}

}  // namespace csar::fleet
