#include "localfs/local_fs.hpp"

#include <algorithm>
#include <cassert>

#include "common/units.hpp"

namespace csar::localfs {

void LocalFs::create(const std::string& name) { get_or_create(name); }

void LocalFs::remove(const std::string& name) { files_.erase(name); }

void LocalFs::wipe() {
  files_.clear();
  cache_->drop_all();
}

std::uint64_t LocalFs::size(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.content.upper_bound();
}

LocalFs::File& LocalFs::get_or_create(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    it = files_.emplace(name, File{next_fid_++, {}}).first;
  }
  return it->second;
}

sim::Task<void> LocalFs::apply(File& f, std::uint64_t off, Buffer payload) {
  // Old content exists only where the (sparse) content map has entries;
  // holes cost no pre-read, exactly like unallocated ext2 blocks.
  auto has_content = [&content = f.content](std::uint64_t s, std::uint64_t e) {
    return content.intersects(s, e);
  };
  co_await cache_->write(f.fid, off, payload.size(), has_content,
                         p_.pad_partial_blocks);
  const std::uint64_t end = off + payload.size();
  f.content.insert(off, end, std::move(payload));
}

sim::Task<void> LocalFs::write(const std::string& name, std::uint64_t off,
                               Buffer payload) {
  if (payload.empty()) co_return;
  File& f = get_or_create(name);
  co_await apply(f, off, std::move(payload));
}

sim::Task<void> LocalFs::write_stream(const std::string& name,
                                      std::uint64_t off, Buffer payload,
                                      std::uint32_t net_chunk) {
  if (payload.empty()) co_return;
  File& f = get_or_create(name);
  const std::uint64_t len = payload.size();
  auto has_content = [&content = f.content](std::uint64_t s, std::uint64_t e) {
    return content.intersects(s, e);
  };
  const std::uint32_t page = cache_->params().page_size;

  if (!p_.write_buffering) {
    // The iod writes whatever each non-blocking receive returned; chunk
    // boundaries are unrelated to file blocks, so interior blocks are
    // usually written in two partial pieces (§5.2).
    assert(net_chunk > 0);
    for (std::uint64_t pos = 0; pos < len; pos += net_chunk) {
      const std::uint64_t n = std::min<std::uint64_t>(net_chunk, len - pos);
      co_await cache_->write(f.fid, off + pos, n, has_content,
                             p_.pad_partial_blocks);
    }
  } else {
    // Write buffering (§5.2 fix): chunks accumulate in a buffer that is a
    // multiple of the block size, so the file sees block-aligned writes in
    // write_buffer_bytes bursts; only the request edges stay partial.
    const std::uint64_t burst = std::max<std::uint64_t>(
        p_.write_buffer_bytes - p_.write_buffer_bytes % page, page);
    const std::uint64_t head_end = std::min(align_up(off, page), off + len);
    const std::uint64_t tail_start =
        std::max(align_down(off + len, page), head_end);
    if (head_end > off) {
      co_await cache_->write(f.fid, off, head_end - off, has_content,
                             p_.pad_partial_blocks);
    }
    for (std::uint64_t pos = head_end; pos < tail_start; pos += burst) {
      const std::uint64_t n = std::min(burst, tail_start - pos);
      co_await cache_->write(f.fid, pos, n, has_content, p_.pad_partial_blocks);
    }
    if (off + len > tail_start) {
      co_await cache_->write(f.fid, tail_start, off + len - tail_start,
                             has_content, p_.pad_partial_blocks);
    }
  }
  f.content.insert(off, off + len, std::move(payload));
}

sim::Task<Buffer> LocalFs::read(const std::string& name, std::uint64_t off,
                                std::uint64_t len, bool materialized_hint) {
  auto out = co_await read_checked(name, off, len, materialized_hint);
  co_return std::move(out.data);
}

sim::Task<LocalFs::ReadOutcome> LocalFs::read_checked(const std::string& name,
                                                      std::uint64_t off,
                                                      std::uint64_t len,
                                                      bool materialized_hint) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    // Absent file: reads see zeros and cost only the copy-out.
    co_return ReadOutcome{
        materialized_hint ? Buffer::real(len) : Buffer::phantom(len), false};
  }
  File& f = it->second;
  auto has_content = [&content = f.content](std::uint64_t s, std::uint64_t e) {
    return content.intersects(s, e);
  };
  const bool media_error =
      co_await cache_->read(f.fid, off, len, has_content) ==
      hw::IoStatus::media_error;

  // Assemble content; if any stored chunk is phantom, the result is phantom.
  const auto chunks = f.content.query(off, off + len);
  bool phantom = !materialized_hint;
  for (const auto& c : chunks) {
    if (!c.value->materialized()) phantom = true;
  }
  if (phantom) co_return ReadOutcome{Buffer::phantom(len), media_error};
  if (chunks.size() == 1 && chunks[0].start == off &&
      chunks[0].end == off + len) {
    // One stored run covers the whole request: hand out a zero-copy view
    // (the common case for block-aligned rereads of buffered writes).
    co_return ReadOutcome{
        chunks[0].value->slice(off - chunks[0].entry_start, len),
        media_error};
  }
  Buffer out = Buffer::real(len);
  for (const auto& c : chunks) {
    out.write_at(c.start - off,
                 c.value->slice(c.start - c.entry_start, c.end - c.start));
  }
  co_return ReadOutcome{std::move(out), media_error};
}

sim::Task<void> LocalFs::flush() { co_await cache_->flush_all(); }

void LocalFs::drop_caches() { cache_->drop_all(); }

std::uint64_t LocalFs::total_content_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [name, f] : files_) sum += f.content.upper_bound();
  return sum;
}

}  // namespace csar::localfs
