// LocalFs: the local file system on each I/O server.
//
// PVFS I/O daemons store their portion of every PVFS file as a plain file in
// the server's local file system (ext2 on the paper's testbed). This module
// models that layer: sparse files addressed by name, with content held in an
// interval map and all timing charged through the node's PageCache/Disk.
//
// Two behaviours from §5.2 of the paper live here:
//
//  - write_stream() applies a payload the way the iod's non-blocking network
//    receive loop does: in receive-chunk-sized pieces whose boundaries are
//    unrelated to file-system blocks. Without write buffering, nearly every
//    block of a preexisting uncached file is therefore written partially and
//    must be pre-read from disk.
//  - With write buffering enabled (the paper's fix), arriving chunks are
//    accumulated in a per-request buffer that is a multiple of the block
//    size, so the file sees block-aligned writes except at the request
//    edges.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/buffer.hpp"
#include "common/interval_map.hpp"
#include "common/interval_set.hpp"
#include "hw/page_cache.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace csar::localfs {

struct LocalFsParams {
  /// §5.2 fix: accumulate network chunks into block-aligned writes.
  bool write_buffering = true;
  /// Write-buffer size; a multiple of the cache page size.
  std::uint32_t write_buffer_bytes = 64 * 1024;
  /// §6.5 padding experiment: pad partial block writes to full blocks,
  /// suppressing pre-reads at the cost of writing garbage padding.
  bool pad_partial_blocks = false;
  /// Model dirty-page volatility: on crash(), content covered only by dirty
  /// (never written back) pages is destroyed with the cache — the ranges
  /// read as holes afterwards and are recorded for delta-rebuild (see
  /// take_crash_losses). Off by default: the legacy model treats every
  /// applied write as durable.
  bool volatile_dirty_pages = false;
};

class LocalFs {
 public:
  LocalFs(sim::Simulation& sim, hw::PageCache& cache,
          const LocalFsParams& params)
      : sim_(&sim), cache_(&cache), p_(params) {}
  LocalFs(const LocalFs&) = delete;
  LocalFs& operator=(const LocalFs&) = delete;

  bool exists(const std::string& name) const { return files_.contains(name); }
  void create(const std::string& name);
  void remove(const std::string& name);

  /// Delete every file (a fresh blank disk; used when simulating disk
  /// replacement before a rebuild). The page cache is dropped too.
  void wipe();

  /// Logical size (largest written offset) of a file; 0 if absent.
  std::uint64_t size(const std::string& name) const;

  /// Apply `payload` at `off` as a single aligned write (used for
  /// server-internal writes such as recovery).
  sim::Task<void> write(const std::string& name, std::uint64_t off,
                        Buffer payload);

  /// Apply `payload` at `off` as it would arrive from the network, in
  /// `net_chunk`-byte pieces (see file comment). Creates the file if needed.
  sim::Task<void> write_stream(const std::string& name, std::uint64_t off,
                               Buffer payload, std::uint32_t net_chunk);

  /// Read `len` bytes at `off`; holes read as zeros. The returned buffer is
  /// materialized iff the stored content at that range is (phantom files
  /// yield phantom reads).
  sim::Task<Buffer> read(const std::string& name, std::uint64_t off,
                         std::uint64_t len, bool materialized_hint = true);

  /// Result of a checked read: the data plus whether the underlying disk
  /// reported a latent sector error anywhere in the range.
  struct ReadOutcome {
    Buffer data;
    bool media_error = false;
  };

  /// Like read(), but surfaces media errors instead of swallowing them.
  /// The data buffer is still populated (the content layer is logical);
  /// callers that care about fault semantics must honour the flag.
  sim::Task<ReadOutcome> read_checked(const std::string& name,
                                      std::uint64_t off, std::uint64_t len,
                                      bool materialized_hint = true);

  /// Simulate a server crash: all page-cache state (including dirty pages)
  /// vanishes. By default content is kept — the model treats applied writes
  /// as durable and charges the timing cost of re-reading everything cold.
  /// With volatile_dirty_pages, byte ranges whose only copy was a dirty page
  /// are erased from content and recorded as crash losses.
  void crash() {
    if (p_.volatile_dirty_pages) {
      for (auto& [name, f] : files_) {
        for (auto [lo, hi] : cache_->dirty_ranges(f.fid)) {
          const std::uint64_t end =
              hi < f.content.upper_bound() ? hi : f.content.upper_bound();
          if (lo >= end) continue;
          f.content.erase(lo, end);
          crash_losses_[name].insert(lo, end);
        }
      }
    }
    cache_->drop_all();
  }

  /// Local byte ranges destroyed by crashes since the last call (per file
  /// name, ordered). A rebuild coordinator folds these into its delta set:
  /// the lost bytes must be re-reconstructed from redundancy even though the
  /// restart kept the disk.
  std::map<std::string, IntervalSet> take_crash_losses() {
    return std::exchange(crash_losses_, {});
  }

  /// Page-cache file id of `name`, or 0 if the file does not exist. The
  /// disk address of byte `off` is then fid * 2^40 + off (see
  /// PageCache::page_addr); fault injectors use this to plant latent
  /// sector errors under real file extents.
  std::uint64_t fid_of(const std::string& name) const {
    auto it = files_.find(name);
    return it == files_.end() ? 0 : it->second.fid;
  }

  /// fsync every file: push all dirty pages to disk.
  sim::Task<void> flush();

  /// Drop the page cache (used between experiment phases); flush first.
  void drop_caches();

  /// Sum of logical file sizes — the paper's Table 2 metric ("sum of the
  /// file sizes at the I/O servers").
  std::uint64_t total_content_bytes() const;

  /// Content equality helper for tests: materialized bytes at a range.
  sim::Task<Buffer> peek(const std::string& name, std::uint64_t off,
                         std::uint64_t len) {
    return read(name, off, len);
  }

  const hw::PageCache& cache() const { return *cache_; }
  const LocalFsParams& params() const { return p_; }

 private:
  struct BufferSlicer {
    Buffer operator()(const Buffer& b, std::uint64_t off,
                      std::uint64_t len) const {
      return b.slice(off, len);
    }
  };
  struct File {
    std::uint64_t fid;  ///< page-cache file id
    IntervalMap<Buffer, BufferSlicer> content;
  };

  File& get_or_create(const std::string& name);

  /// One block-semantics write: timing through the cache (pre-reads for
  /// partial uncached preexisting blocks), then content update.
  sim::Task<void> apply(File& f, std::uint64_t off, Buffer payload);

  sim::Simulation* sim_;
  hw::PageCache* cache_;
  LocalFsParams p_;
  std::unordered_map<std::string, File> files_;
  std::map<std::string, IntervalSet> crash_losses_;
  std::uint64_t next_fid_ = 1;
};

}  // namespace csar::localfs
