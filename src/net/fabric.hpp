// Fabric: message transport over the cluster's NICs.
//
// A transfer occupies the sender's TX link, crosses the wire, then occupies
// the receiver's RX link (store-and-forward). Concurrent transfers from one
// node serialize on its TX link — this is precisely the effect that caps
// RAID1 write bandwidth in the paper (the client pushes 2x the bytes through
// its own link, so it plateaus at half the I/O-server count of RAID0).
//
// Message payloads themselves move as C++ objects through sim::Channel
// mailboxes; the fabric only charges the time.
#pragma once

#include <cstdint>

#include "hw/node.hpp"
#include "sim/task.hpp"

namespace csar::net {

class Fabric {
 public:
  /// Fixed protocol bytes charged per message on top of the payload.
  static constexpr std::uint64_t kHeaderBytes = 128;

  explicit Fabric(hw::Cluster& cluster) : cluster_(&cluster) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Move `payload_bytes` (+ header) from `src` to `dst`; completes when the
  /// last byte has been received.
  sim::Task<void> transfer(hw::NodeId src, hw::NodeId dst,
                           std::uint64_t payload_bytes) {
    const std::uint64_t bytes = payload_bytes + kHeaderBytes;
    co_await cluster_->node(src).tx().transfer(bytes);
    co_await cluster_->sim().sleep(cluster_->profile().wire_latency);
    co_await cluster_->node(dst).rx().transfer(bytes);
  }

  hw::Cluster& cluster() { return *cluster_; }

 private:
  hw::Cluster* cluster_;
};

}  // namespace csar::net
