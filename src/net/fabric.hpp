// Fabric: message transport over the cluster's NICs.
//
// A transfer occupies the sender's TX link, crosses the wire, then occupies
// the receiver's RX link (store-and-forward). Concurrent transfers from one
// node serialize on its TX link — this is precisely the effect that caps
// RAID1 write bandwidth in the paper (the client pushes 2x the bytes through
// its own link, so it plateaus at half the I/O-server count of RAID0).
//
// Message payloads themselves move as C++ objects through sim::Channel
// mailboxes; the fabric only charges the time.
#pragma once

#include <cstdint>

#include "hw/node.hpp"
#include "obs/trace.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::net {

/// How a transfer ended. Callers that ignore the value (fire-and-forget
/// senders) behave exactly as before faults existed; fault-aware callers
/// use it to decide whether the message actually arrived.
enum class Delivery {
  ok,       ///< last byte received
  dropped,  ///< silently lost in flight (receiver sees nothing)
  reset,    ///< connection refused/reset — sender notices immediately
};

/// Fault-injection hook consulted once per transfer. Implemented by
/// fault::FaultInjector; the fabric itself stays policy-free.
class FabricHook {
 public:
  virtual ~FabricHook() = default;

  struct Verdict {
    bool drop = false;             ///< lose the message after the wire
    bool reset = false;            ///< refuse before the wire (sender sees it)
    sim::Duration extra_delay = 0; ///< added wire latency
  };

  virtual Verdict on_transfer(hw::NodeId src, hw::NodeId dst,
                              std::uint64_t payload_bytes) = 0;
};

class Fabric {
 public:
  /// Fixed protocol bytes charged per message on top of the payload.
  static constexpr std::uint64_t kHeaderBytes = 128;

  explicit Fabric(hw::Cluster& cluster) : cluster_(&cluster) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Move `payload_bytes` (+ header) from `src` to `dst`; resolves when the
  /// last byte has been received (Delivery::ok), the message is lost
  /// (dropped — full send cost paid, nothing received), or the connection
  /// is reset (sender notices before occupying the wire).
  sim::Task<Delivery> transfer(hw::NodeId src, hw::NodeId dst,
                               std::uint64_t payload_bytes,
                               obs::SpanId parent = 0) {
    FabricHook::Verdict v{};
    if (hook_) v = hook_->on_transfer(src, dst, payload_bytes);
    if (v.reset) co_return Delivery::reset;
    obs::Span span;
    if (obs::kEnabled && tracer_ != nullptr) {
      span = tracer_->task_span(tracer_->node_pid(src), "net", "xfer", "net",
                                parent,
                                "\"dst\":" + std::to_string(dst) +
                                    ",\"bytes\":" +
                                    std::to_string(payload_bytes));
    }
    const std::uint64_t bytes = payload_bytes + kHeaderBytes;
    co_await cluster_->node(src).tx().transfer(bytes);
    co_await cluster_->sim().sleep(cluster_->profile().wire_latency +
                                   v.extra_delay);
    if (v.drop) co_return Delivery::dropped;
    co_await cluster_->node(dst).rx().transfer(bytes);
    co_return Delivery::ok;
  }

  /// Install (or clear, with nullptr) the fault hook. Not owned.
  void set_fault_hook(FabricHook* hook) { hook_ = hook; }

  /// Attach (or clear) the span tracer. Not owned.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }

  hw::Cluster& cluster() { return *cluster_; }

 private:
  hw::Cluster* cluster_;
  FabricHook* hook_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace csar::net
