// FaultInjector: seeded, deterministic execution of a declarative FaultPlan.
//
// Robustness experiments need faults that arrive on a schedule, not from
// hand-written test choreography: a plan lists *what* goes wrong and *when*
// (server crashes/restarts, lossy or slow links, latent sector errors,
// fail-slow disks), and the injector executes it against a live deployment.
// All randomness (per-message drop/reset draws) comes from one Rng seeded by
// the plan, so the same plan + seed yields a bit-identical simulation — the
// property the determinism tests pin down.
//
// The injector acts through three hooks in the stack:
//   net::Fabric::set_fault_hook    per-message drop / reset / extra delay
//   pvfs::IoServer::crash/restart  whole-server loss incl. volatile state
//   hw::Disk::plant_media_error /  latent sector errors and fail-slow
//          set_service_factor      media under real file extents
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hw/node.hpp"
#include "net/fabric.hpp"
#include "obs/trace.hpp"
#include "pvfs/io_server.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace csar::pvfs {
class Manager;
}

namespace csar::fault {

/// Hard-crash server `server` at time `at`; optionally bring it back.
struct ServerCrash {
  sim::Time at = 0;
  std::uint32_t server = 0;
  /// Absent: the server stays down for the rest of the run.
  std::optional<sim::Time> restart_at;
  /// Restart onto a blank replacement disk (run Recovery::rebuild_server
  /// before trusting its contents) instead of the surviving on-disk state.
  bool wipe = false;
};

/// Correlated failure domain: every server in `servers` crashes at `at` in
/// one step — a shared rack or power unit dying (cf. SCR's NODE groups).
/// All of them restart together at `restart_at` (power restored). Distinct
/// from N independent ServerCrash entries only in that the plan declares
/// the correlation: the whole domain is down for one contiguous window, so
/// a scheme must tolerate |servers| concurrent failures to stay readable.
struct GroupCrash {
  sim::Time at = 0;
  std::vector<std::uint32_t> servers;
  /// Absent: the domain stays down for the rest of the run.
  std::optional<sim::Time> restart_at;
  /// Restart every member onto a blank replacement disk.
  bool wipe = false;
};

/// Hard-crash the metadata manager at `at`; optionally restart (journal
/// replay) later. The crash drops all in-memory metadata; replay rebuilds it
/// from the manager-disk checkpoint + journal.
struct ManagerCrash {
  sim::Time at = 0;
  /// Absent: the manager stays down for the rest of the run.
  std::optional<sim::Time> restart_at;
  /// Lose the unsynced journal tail (dirty page-cache bytes) with the crash.
  bool wipe_unsynced = false;
};

/// Transient message faults on the (a, b) link during [start, end).
struct LinkFault {
  hw::NodeId a = 0;
  hw::NodeId b = 0;
  bool bidirectional = true;  ///< also match (b, a) traffic
  sim::Time start = 0;
  sim::Time end = 0;
  double drop_p = 0.0;   ///< lost after the wire: sender learns nothing
  double reset_p = 0.0;  ///< refused before the wire: sender sees a reset
  sim::Duration extra_delay = 0;  ///< added wire latency while active
};

/// Plant a latent sector error under `len` bytes of a server-local file at
/// time `at`. `file` is the server's local name (e.g.
/// pvfs::IoServer::data_name(handle)); the byte range is translated to disk
/// addresses through localfs::LocalFs::fid_of at injection time, so the
/// fault lands under whatever extent the file actually occupies.
struct MediaFault {
  sim::Time at = 0;
  std::uint32_t server = 0;
  std::string file;
  std::uint64_t off = 0;
  std::uint64_t len = 0;
};

/// Fail-slow disk: media transfers on `server` take `factor`x as long
/// during [start, end).
struct SlowDisk {
  sim::Time start = 0;
  sim::Time end = 0;
  std::uint32_t server = 0;
  double factor = 4.0;
};

struct FaultPlan {
  std::uint64_t seed = 1;  ///< drives every probabilistic draw
  std::vector<ServerCrash> crashes;
  std::vector<GroupCrash> group_crashes;
  std::vector<ManagerCrash> mgr_crashes;
  std::vector<LinkFault> links;
  std::vector<MediaFault> media;
  std::vector<SlowDisk> slow_disks;
};

struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t group_crashes = 0;  ///< whole-domain outages executed
  std::uint64_t mgr_crashes = 0;
  std::uint64_t mgr_restarts = 0;
  std::uint64_t msgs_dropped = 0;
  std::uint64_t msgs_reset = 0;
  std::uint64_t msgs_delayed = 0;
  std::uint64_t media_planted = 0;
  std::uint64_t slow_periods = 0;
};

class FaultInjector final : public net::FabricHook {
 public:
  FaultInjector(hw::Cluster& cluster, net::Fabric& fabric,
                std::vector<pvfs::IoServer*> servers, FaultPlan plan)
      : cluster_(&cluster),
        fabric_(&fabric),
        servers_(std::move(servers)),
        plan_(std::move(plan)),
        rng_(plan_.seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector() override;

  /// Install the fabric hook and spawn the timeline process. Call once,
  /// before (or while) the simulation runs; the plan's absolute times are
  /// honoured even if start() happens after time 0.
  void start();

  /// Per-message verdict for the fabric (drop / reset / extra delay),
  /// drawn deterministically from the plan's seed.
  Verdict on_transfer(hw::NodeId src, hw::NodeId dst,
                      std::uint64_t payload_bytes) override;

  const FaultStats& stats() const { return stats_; }

  /// Human-readable record of every fault executed, in order — equal
  /// traces across runs are the cheap determinism check.
  const std::vector<std::string>& trace() const { return trace_; }

  /// Time of the plan's earliest server crash (detection-latency / MTTR
  /// baselines); nullopt when the plan crashes nothing.
  std::optional<sim::Time> first_crash_time() const;

  const FaultPlan& plan() const { return plan_; }

  /// Attach (or clear) a tracer: every executed fault step also lands as an
  /// instant event on the sim timeline. Not owned.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }

  /// Attach the metadata manager so plan.mgr_crashes can be executed
  /// (required iff the plan crashes the manager). Not owned. A manager
  /// restart step awaits the full journal replay inline, so steps scheduled
  /// during the replay window fire right after it completes.
  void set_manager(pvfs::Manager* m) { manager_ = m; }

 private:
  sim::Task<void> timeline();
  void note(const char* what, std::uint32_t server, const char* extra = "");
  void note_manager(const char* what, const char* extra = "");

  hw::Cluster* cluster_;
  net::Fabric* fabric_;
  std::vector<pvfs::IoServer*> servers_;
  pvfs::Manager* manager_ = nullptr;  ///< see set_manager
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_{};
  std::vector<std::string> trace_;
  obs::Tracer* tracer_ = nullptr;
  bool started_ = false;
};

}  // namespace csar::fault
