#include "fault/storm.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "raid/migrate.hpp"
#include "raid/rebuild.hpp"
#include "raid/scrub.hpp"

namespace csar::fault {

namespace {

/// Reference copy of a file, updated on every acknowledged write.
///
/// Bytes covered by a *failed* write are tainted — indeterminate until an
/// acknowledged write covers them again. A torn write may have landed on
/// some servers and not others, and under a parity scheme it can leave the
/// whole group's parity unsynchronized (the RAID5 write hole), so the
/// workload taints the full group span. Verification skips tainted bytes:
/// the contract is about acknowledged data only.
class Shadow {
 public:
  explicit Shadow(std::uint64_t size) : bytes_(size, std::byte{0}) {}

  void write(std::uint64_t off, const Buffer& data) {
    auto src = data.bytes();
    std::memcpy(bytes_.data() + off, src.data(), src.size());
    if (taint_count_ != 0) {
      const std::uint64_t end = off + data.size();
      for (std::uint64_t i = off; i < end; ++i) {
        taint_count_ -= tainted_[i];
        tainted_[i] = 0;
      }
    }
  }

  void taint(std::uint64_t off, std::uint64_t len) {
    if (tainted_.empty()) tainted_.assign(bytes_.size(), 0);
    const std::uint64_t end = std::min<std::uint64_t>(off + len,
                                                      tainted_.size());
    for (std::uint64_t i = off; i < end; ++i) {
      taint_count_ += 1u - tainted_[i];
      tainted_[i] = 1;
    }
  }

  std::uint64_t tainted_bytes() const { return taint_count_; }

  bool matches(std::uint64_t off, const Buffer& got) const {
    auto b = got.bytes();
    // Fast path: no tainted bytes anywhere (the common case outside fault
    // windows) — one memcmp instead of a per-byte masked walk.
    if (taint_count_ == 0) {
      return std::memcmp(bytes_.data() + off, b.data(), b.size()) == 0;
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (tainted_[off + i]) continue;
      if (bytes_[off + i] != b[i]) return false;
    }
    return true;
  }

 private:
  std::vector<std::byte> bytes_;
  /// 0/1 per byte; allocated lazily on the first taint so clean runs pay
  /// nothing. taint_count_ is the number of 1s (kept exact so the fast
  /// memcmp path in matches() is safe whenever it is zero).
  std::vector<std::uint8_t> tainted_;
  std::uint64_t taint_count_ = 0;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fingerprint(const StormMetrics& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& line : m.trace) {
    for (char c : line) h = fnv1a(h, static_cast<unsigned char>(c));
  }
  for (std::uint64_t v :
       {m.ops_attempted, m.ops_ok, m.ops_failed, m.reads, m.writes,
        m.verify_mismatches, m.tainted_bytes, m.rpc_sent, m.rpc_retries,
        m.rpc_timeouts,
        m.rpc_resets, m.degraded_reads, m.degraded_writes,
        m.reactive_failovers, m.scrub_media_errors, m.scrub_repaired,
        m.rebuilds_completed, m.delta_rebuilds, m.rebuild_passes,
        m.recopy_passes, m.rebuild_bytes, m.dirty_bytes_tracked,
        m.migrations_started, m.migrations_completed, m.migrations_failed,
        m.migrate_recopy_passes, m.migrate_dirty_bytes,
        m.mgr_crashes, m.mgr_replays, m.mgr_replayed_records,
        m.mgr_dedup_hits, m.mgr_dropped_replies, m.meta_mismatches,
        static_cast<std::uint64_t>(m.detection_latency),
        static_cast<std::uint64_t>(m.mttr), m.events_executed,
        static_cast<std::uint64_t>(m.finished_at), m.faults.crashes,
        m.faults.restarts, m.faults.mgr_crashes, m.faults.mgr_restarts,
        m.faults.msgs_dropped, m.faults.msgs_reset,
        m.faults.msgs_delayed, m.faults.media_planted,
        m.faults.slow_periods}) {
    h = fnv1a(h, v);
  }
  return h;
}

/// Fire a scheduled manual migration once `at` arrives.
sim::Task<void> trigger_migration(sim::Simulation& sim,
                                  raid::SchemeMigrator& mig,
                                  std::uint64_t handle, raid::Scheme to,
                                  sim::Time at) {
  if (at > sim.now()) co_await sim.sleep_until(at);
  mig.request(handle, to);
}

/// The workload: preload every file, run the op mix *straight through* any
/// crash, detection, rebuild, migration or admit (no quiescing — write-
/// safety is the RebuildCoordinator's / SchemeMigrator's job), then wait
/// for both to settle, scrub, and sweep-verify every byte against the
/// shadows.
sim::Task<void> driver(const StormParams& p, raid::Rig& rig,
                       raid::HealthMonitor& mon, FaultInjector& inj,
                       raid::RebuildCoordinator* coord,
                       raid::SchemeMigrator* mig, obs::Sampler* sampler,
                       std::vector<Shadow>& shadows, StormMetrics& m) {
  auto& sim = rig.sim;
  auto& fs = rig.client_fs();
  Rng wl(p.workload_seed);
  const std::uint32_t nfiles =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(shadows.size()));

  // Preload: populate every file (and its redundancy) before the storm.
  std::vector<pvfs::OpenFile> files;
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    const std::string name = "storm" + std::to_string(i);
    auto f = co_await fs.create(name, rig.layout(p.stripe_unit));
    if (!f.ok()) co_return;
    files.push_back(*f);
    if (coord) coord->track(*f, p.file_size);
    if (mig) mig->track(name, *f, p.file_size);
  }
  const std::uint64_t chunk = files[0].layout.stripe_width();
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    for (std::uint64_t off = 0; off < p.file_size; off += chunk) {
      const std::uint64_t len =
          std::min<std::uint64_t>(chunk, p.file_size - off);
      Buffer data = Buffer::pattern(len, wl.next());
      auto wr = co_await fs.write(files[i], off, data.slice(0, len));
      if (wr.ok()) shadows[i].write(off, data);
    }
  }

  // Unleash the storm.
  mon.start();
  if (coord) coord->start();
  if (mig) {
    if (p.adaptive) mig->enable_adaptive();
    mig->start();
    if (p.migrate_file >= 0 &&
        static_cast<std::uint32_t>(p.migrate_file) < nfiles) {
      sim.spawn(trigger_migration(
          sim, *mig, files[static_cast<std::uint32_t>(p.migrate_file)].handle,
          p.migrate_to, p.migrate_at));
    }
  }
  inj.start();

  const std::uint64_t span = p.file_size > p.io_size
                                 ? p.file_size - p.io_size
                                 : 0;
  for (std::uint64_t op = 0; op < p.ops; ++op) {
    const std::uint32_t fi = nfiles == 1 ? 0 : wl.below(nfiles);
    const std::uint64_t off = span == 0 ? 0 : wl.below(span + 1);
    const bool is_write = wl.below(2) == 0;
    ++m.ops_attempted;
    if (is_write) {
      ++m.writes;
      Buffer data = Buffer::pattern(p.io_size, wl.next());
      auto wr = co_await fs.write(files[fi], off, data.slice(0, p.io_size));
      if (wr.ok()) {
        ++m.ops_ok;
        shadows[fi].write(off, data);
      } else {
        ++m.ops_failed;
        // Torn write: parts may have landed, and under a parity scheme the
        // groups it touched may be left with stale parity (write hole) —
        // a later degraded read anywhere in those groups is suspect.
        std::uint64_t lo = off;
        std::uint64_t hi = off + p.io_size;
        // The write-hole span depends on the file's *current* scheme (a
        // migration may have landed mid-storm); mirror/striped-only writes
        // tear at most their own range.
        const raid::Scheme sch = rig.policy().scheme_of(files[fi]);
        if (sch != raid::Scheme::raid0 && sch != raid::Scheme::raid1) {
          // rs groups are k units wide; every parity scheme's group is the
          // full stripe. A torn write can desynchronize the whole group.
          const std::uint64_t w =
              sch.kind == raid::SchemeKind::rs
                  ? files[fi].layout.rs_group_width(sch.k)
                  : files[fi].layout.stripe_width();
          lo = lo / w * w;
          hi = std::min<std::uint64_t>(p.file_size, (hi + w - 1) / w * w);
        }
        shadows[fi].taint(lo, hi - lo);
      }
    } else {
      ++m.reads;
      auto rd = co_await fs.read(files[fi], off, p.io_size);
      if (rd.ok()) {
        ++m.ops_ok;
        if (!shadows[fi].matches(off, *rd)) ++m.verify_mismatches;
      } else {
        ++m.ops_failed;
      }
    }
    co_await sim.sleep(p.op_gap);
  }

  // Let every scheduled restart happen, then wait (bounded) for the
  // coordinator to converge and admit whoever it can. A mis-sized plan
  // degrades the metrics, not the run.
  sim::Time last_restart = 0;
  for (const auto& c : p.plan.crashes) {
    if (c.restart_at && *c.restart_at > last_restart) {
      last_restart = *c.restart_at;
    }
  }
  for (const auto& c : p.plan.mgr_crashes) {
    if (c.restart_at && *c.restart_at > last_restart) {
      last_restart = *c.restart_at;
    }
  }
  if (last_restart > sim.now()) co_await sim.sleep_until(last_restart);
  if (coord) {
    const sim::Time give_up = sim.now() + sim::sec(120);
    while (!coord->idle() && sim.now() < give_up) {
      co_await sim.sleep(sim::ms(5));
    }
  }
  if (mig) {
    const sim::Time give_up = sim.now() + sim::sec(120);
    while (!mig->idle() && sim.now() < give_up) {
      co_await sim.sleep(sim::ms(5));
    }
    // After a manager replay, cross-check every tracked file's durable
    // scheme tag against the live state and repair whichever side is
    // behind (resume a flip the crash stranded, adopt a persisted one).
    if (!p.plan.mgr_crashes.empty()) co_await mig->reconcile();
  }

  // With every server healthy again, clear latent sector errors the plan
  // planted; the scrubber rebuilds unreadable units from the redundancy
  // (routing each file through its own — possibly migrated — scheme).
  if (p.scrub_after && !mon.first_failed()) {
    raid::Scrubber scrub(rig.client(), &rig.policy());
    for (const auto& f : files) {
      auto rep = co_await scrub.repair(f, p.file_size);
      if (rep.ok()) {
        m.scrub_media_errors += rep->media_errors;
        m.scrub_repaired += rep->repaired;
      }
    }
  }

  // Full-file sweep: every byte must match its shadow. Reads go through
  // the failover path, so a permanently-down server is not an excuse.
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    for (std::uint64_t off = 0; off < p.file_size; off += chunk) {
      const std::uint64_t len =
          std::min<std::uint64_t>(chunk, p.file_size - off);
      auto rd = co_await fs.read(files[i], off, len);
      if (!rd.ok() || !shadows[i].matches(off, *rd)) ++m.verify_mismatches;
    }
  }

  // Metadata audit: after every replay and reconciliation, the manager's
  // durable view of each file (handle, scheme tag, redundancy generation)
  // must agree with the live state the clients are acting on. Skipped only
  // when the plan leaves the manager down for good.
  if (!rig.manager->crashed()) {
    for (std::uint32_t i = 0; i < nfiles; ++i) {
      auto f2 = co_await rig.client().open("storm" + std::to_string(i));
      if (!f2.ok() || f2->handle != files[i].handle) {
        ++m.meta_mismatches;
        continue;
      }
      if (f2->red_gen != rig.policy().red_gen_of(files[i])) {
        ++m.meta_mismatches;
      }
      // An unset tag means "layout default", which the policy may have
      // overridden locally — only a *set* tag can contradict the live scheme.
      if (f2->scheme != pvfs::kSchemeUnset &&
          raid::scheme_from_tag(f2->scheme) !=
              rig.policy().scheme_of(files[i])) {
        ++m.meta_mismatches;
      }
    }
  }

  // Stop every poller from inside the simulation or sim.run() never drains.
  mon.stop();
  if (coord) coord->stop();
  if (mig) mig->stop();
  if (sampler) sampler->stop();
  for (const auto& s : shadows) m.tainted_bytes += s.tainted_bytes();
  m.finished_at = sim.now();
}

}  // namespace

StormMetrics run_storm(const StormParams& params) {
  raid::RigParams rp = params.rig;
  // Per-file scheme mix rides the policy's path rules: file i is named
  // "storm<i>", so a rule per index pins its scheme. Rules are installed in
  // descending index order because matching is first-prefix-wins and
  // "storm1" is a prefix of "storm10".
  if (!params.file_schemes.empty()) {
    const std::uint32_t nfiles = std::max<std::uint32_t>(1, params.nfiles);
    for (std::uint32_t i = nfiles; i-- > 0;) {
      rp.policy.rules.push_back(
          {"storm" + std::to_string(i),
           params.file_schemes[i % params.file_schemes.size()]});
    }
  }
  raid::Rig rig(rp);
  rig.set_obs(params.tracer, params.metrics);
  raid::HealthMonitor mon(rig.client(), params.health);
  // Down transitions are one of the adaptive engine's fault-pressure feeds.
  mon.add_listener([&rig](std::uint32_t s, bool alive, sim::Time at) {
    rig.policy().note_health_transition(s, alive, at);
  });
  std::vector<pvfs::IoServer*> server_ptrs;
  for (auto& s : rig.servers) server_ptrs.push_back(s.get());
  FaultInjector inj(rig.cluster, rig.fabric, std::move(server_ptrs),
                    params.plan);
  inj.set_tracer(rig.tracer());
  inj.set_manager(rig.manager.get());
  for (auto& fs : rig.fs) fs->enable_failover(&mon);
  std::optional<raid::RebuildCoordinator> coord;
  if (params.rebuild_after) coord.emplace(rig, mon, params.rebuild);
  std::optional<raid::SchemeMigrator> mig;
  if (params.adaptive || params.migrate_file >= 0) {
    mig.emplace(rig, params.migrate);
  }

  std::vector<Shadow> shadows;
  const std::uint32_t nfiles = std::max<std::uint32_t>(1, params.nfiles);
  shadows.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    shadows.emplace_back(params.file_size);
  }
  // Optional windowed utilization sampler. Busy-time probes report the
  // fraction of each window the resource spent transferring, as a delta of
  // its cumulative busy_time (captured mutable in the closure).
  std::optional<obs::Sampler> sampler;
  if (params.sample_window > 0) {
    sampler.emplace(rig.sim, params.sample_window);
    const double win_s = sim::to_seconds(params.sample_window);
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(rig.servers.size()); ++s) {
      pvfs::IoServer& srv = *rig.servers[s];
      sampler->probe("iod" + std::to_string(s) + "_util",
                     [&srv, win_s, prev = sim::Duration{0}]() mutable {
                       const sim::Duration busy = srv.iod().busy_time();
                       const double u = sim::to_seconds(busy - prev) / win_s;
                       prev = busy;
                       return u;
                     });
      hw::Node& n = rig.cluster.node(srv.node_id());
      if (n.disk() != nullptr) {
        hw::Disk& d = *n.disk();
        sampler->probe("disk" + std::to_string(s) + "_util",
                       [&d, win_s, prev = sim::Duration{0}]() mutable {
                         const sim::Duration busy = d.stats().busy_time;
                         const double u =
                             sim::to_seconds(busy - prev) / win_s;
                         prev = busy;
                         return u;
                       });
      }
    }
    hw::Node& c0 = rig.cluster.node(rig.client().node_id());
    sampler->probe("client0_tx_util",
                   [&c0, win_s, prev = sim::Duration{0}]() mutable {
                     const sim::Duration busy = c0.tx().busy_time();
                     const double u = sim::to_seconds(busy - prev) / win_s;
                     prev = busy;
                     return u;
                   });
    sampler->start();
  }

  StormMetrics m;
  rig.sim.spawn(driver(params, rig, mon, inj, coord ? &*coord : nullptr,
                       mig ? &*mig : nullptr,
                       sampler ? &*sampler : nullptr, shadows, m),
                "storm_driver");
  rig.sim.run();
  if (sampler) m.samples_csv = sampler->to_csv();
  if (params.metrics != nullptr) rig.export_metrics(*params.metrics);

  const auto& rpc = rig.client().rpc_stats();
  m.rpc_sent = rpc.sent;
  m.rpc_retries = rpc.retries;
  m.rpc_timeouts = rpc.timeouts;
  m.rpc_resets = rpc.resets;
  const auto& fo = rig.client_fs().failover_stats();
  m.degraded_reads = fo.degraded_reads;
  m.degraded_writes = fo.degraded_writes;
  m.reactive_failovers = fo.reactive;
  m.availability = m.ops_attempted == 0
                       ? 1.0
                       : static_cast<double>(m.ops_ok) /
                             static_cast<double>(m.ops_attempted);

  std::optional<sim::Time> first_crash;
  for (const auto& c : params.plan.crashes) {
    if (!first_crash || c.at < *first_crash) first_crash = c.at;
  }
  if (coord) {
    const auto& rs = coord->stats();
    m.rebuilds_completed = rs.rebuilds_completed;
    m.delta_rebuilds = rs.delta_rebuilds;
    m.rebuild_passes = rs.passes;
    m.recopy_passes = rs.recopy_passes;
    m.rebuild_bytes = rs.bytes_rebuilt;
    m.dirty_bytes_tracked = rs.dirty_bytes;
    m.rebuild_ok = rs.rebuilds_failed == 0;
    // A restarted server still behind the fence means its rebuild never
    // completed — whatever the per-attempt counters say.
    for (const auto& c : params.plan.crashes) {
      if (c.restart_at && rig.server(c.server).fenced()) m.rebuild_ok = false;
    }
    if (first_crash && rs.first_down_at > *first_crash) {
      m.detection_latency = rs.first_down_at - *first_crash;
    }
    if (first_crash && rs.first_admit_at > *first_crash) {
      m.mttr = rs.first_admit_at - *first_crash;
    }
  } else if (first_crash) {
    // No coordinator: the monitor's transition record still dates the
    // detection, as long as the victim stayed down.
    for (const auto& c : params.plan.crashes) {
      if (c.at != *first_crash) continue;
      if (!mon.is_alive(c.server) && mon.status_since(c.server) > c.at) {
        m.detection_latency = mon.status_since(c.server) - c.at;
      }
      break;
    }
  }

  if (mig) {
    const auto& ms = mig->stats();
    m.migrations_started = ms.migrations_started;
    m.migrations_completed = ms.migrations_completed;
    m.migrations_failed = ms.migrations_failed;
    m.migrate_recopy_passes = ms.recopy_passes;
    m.migrate_dirty_bytes = ms.dirty_bytes;
  }

  {
    const pvfs::ManagerStats& mg = rig.manager->stats();
    m.mgr_crashes = mg.crashes;
    m.mgr_replays = mg.replays;
    m.mgr_replayed_records = mg.replayed_records;
    m.mgr_dedup_hits = mg.dedup_hits;
    m.mgr_dropped_replies = mg.dropped_replies;
  }

  m.faults = inj.stats();
  m.trace = inj.trace();
  m.events_executed = rig.sim.events_executed();
  m.fingerprint = fingerprint(m);
  return m;
}

}  // namespace csar::fault
