#include "fault/storm.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "raid/recovery.hpp"
#include "raid/scrub.hpp"

namespace csar::fault {

namespace {

/// Reference copy of the file, updated on every acknowledged write.
///
/// Bytes covered by a *failed* write are tainted — indeterminate until an
/// acknowledged write covers them again. A torn write may have landed on
/// some servers and not others, and under a parity scheme it can leave the
/// whole group's parity unsynchronized (the RAID5 write hole), so the
/// workload taints the full group span. Verification skips tainted bytes:
/// the contract is about acknowledged data only.
class Shadow {
 public:
  explicit Shadow(std::uint64_t size)
      : bytes_(size, std::byte{0}), tainted_(size, false) {}

  void write(std::uint64_t off, const Buffer& data) {
    auto src = data.bytes();
    std::copy(src.begin(), src.end(),
              bytes_.begin() + static_cast<std::ptrdiff_t>(off));
    std::fill(tainted_.begin() + static_cast<std::ptrdiff_t>(off),
              tainted_.begin() + static_cast<std::ptrdiff_t>(off) +
                  static_cast<std::ptrdiff_t>(data.size()),
              false);
  }

  void taint(std::uint64_t off, std::uint64_t len) {
    const std::uint64_t end = std::min<std::uint64_t>(off + len,
                                                      tainted_.size());
    for (std::uint64_t i = off; i < end; ++i) tainted_[i] = true;
  }

  std::uint64_t tainted_bytes() const {
    std::uint64_t n = 0;
    for (bool t : tainted_) n += t ? 1 : 0;
    return n;
  }

  bool matches(std::uint64_t off, const Buffer& got) const {
    auto b = got.bytes();
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (tainted_[off + i]) continue;
      if (bytes_[off + i] != b[i]) return false;
    }
    return true;
  }

 private:
  std::vector<std::byte> bytes_;
  std::vector<bool> tainted_;
};

/// State shared between the workload driver and the crash watcher. The
/// simulation is cooperatively single-threaded, so plain flags suffice.
struct Scoreboard {
  std::optional<pvfs::OpenFile> file;
  bool rebuilding = false;    ///< watcher holds the workload off
  bool op_in_flight = false;  ///< driver is mid-operation
  bool watch_done = false;
  bool driver_done = false;
  StormMetrics m;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fingerprint(const StormMetrics& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& line : m.trace) {
    for (char c : line) h = fnv1a(h, static_cast<unsigned char>(c));
  }
  for (std::uint64_t v :
       {m.ops_attempted, m.ops_ok, m.ops_failed, m.reads, m.writes,
        m.verify_mismatches, m.tainted_bytes, m.rpc_sent, m.rpc_retries,
        m.rpc_timeouts,
        m.rpc_resets, m.degraded_reads, m.degraded_writes,
        m.reactive_failovers, m.scrub_media_errors, m.scrub_repaired,
        static_cast<std::uint64_t>(m.detection_latency),
        static_cast<std::uint64_t>(m.mttr), m.events_executed,
        static_cast<std::uint64_t>(m.finished_at), m.faults.crashes,
        m.faults.restarts, m.faults.msgs_dropped, m.faults.msgs_reset,
        m.faults.msgs_delayed, m.faults.media_planted,
        m.faults.slow_periods}) {
    h = fnv1a(h, v);
  }
  return h;
}

/// Watch the plan's crashes: record detection latency for the first one,
/// and when a crashed server rejoins, pause the monitor (so clients keep
/// taking the safe degraded path), rebuild it, and resume probing. Every
/// wait is bounded so a mis-sized plan degrades the metrics, not the run.
sim::Task<void> watcher(const StormParams& p, raid::Rig& rig,
                        raid::HealthMonitor& mon, Scoreboard& sb) {
  auto& sim = rig.sim;
  std::vector<ServerCrash> crashes = p.plan.crashes;
  std::sort(crashes.begin(), crashes.end(),
            [](const ServerCrash& a, const ServerCrash& b) {
              return a.at < b.at;
            });
  bool first = true;
  for (const auto& c : crashes) {
    if (c.at > sim.now()) co_await sim.sleep_until(c.at);
    sim::Time give_up = sim.now() + sim::sec(30);
    while (mon.is_alive(c.server) && sim.now() < give_up) {
      co_await sim.sleep(sim::ms(1));
    }
    if (first && !mon.is_alive(c.server)) {
      sb.m.detection_latency = sim.now() - c.at;
    }
    if (!c.restart_at) {
      first = false;
      continue;
    }
    if (*c.restart_at > sim.now()) co_await sim.sleep_until(*c.restart_at);
    if (p.rebuild_after && sb.file) {
      // Quiesce: let the in-flight op drain, then keep the workload parked
      // while the blank disk is refilled. The monitor stays stopped (still
      // reporting the server down) so any straggler keeps using the
      // degraded path instead of reading a half-rebuilt disk.
      sb.rebuilding = true;
      give_up = sim.now() + sim::sec(30);
      while (sb.op_in_flight && sim.now() < give_up) {
        co_await sim.sleep(sim::ms(1));
      }
      mon.stop();
      raid::Recovery rec(rig.client(), p.rig.scheme);
      auto rb = co_await rec.rebuild_server(*sb.file, c.server, p.file_size);
      if (!rb.ok()) sb.m.rebuild_ok = false;
      // Only now is the blank disk trustworthy: lift the rejoin fence so
      // reads and probes are served again. A failed rebuild leaves the
      // fence up — clients keep using the degraded path, which is correct.
      if (rb.ok()) rig.server(c.server).admit();
      mon.start();
      give_up = sim.now() + sim::sec(30);
      while (!mon.is_alive(c.server) && sim.now() < give_up) {
        co_await sim.sleep(sim::ms(1));
      }
      sb.rebuilding = false;
      if (first && mon.is_alive(c.server) && sb.m.rebuild_ok) {
        sb.m.mttr = sim.now() - c.at;
      }
    }
    first = false;
  }
  sb.watch_done = true;
  // If the driver already wrapped up (mis-sized plan with a very late
  // restart), make sure no poller outlives us — sim.run() must terminate.
  if (sb.driver_done) mon.stop();
}

sim::Task<void> driver(const StormParams& p, raid::Rig& rig,
                       raid::HealthMonitor& mon, FaultInjector& inj,
                       Shadow& shadow, Scoreboard& sb) {
  auto& sim = rig.sim;
  auto& fs = rig.client_fs();
  Rng wl(p.workload_seed);

  // Preload: populate the whole file (and its redundancy) before the storm.
  auto f = co_await fs.create("storm", rig.layout(p.stripe_unit));
  if (!f.ok()) co_return;
  sb.file = *f;
  const std::uint64_t chunk = f->layout.stripe_width();
  for (std::uint64_t off = 0; off < p.file_size; off += chunk) {
    const std::uint64_t len = std::min<std::uint64_t>(chunk, p.file_size - off);
    Buffer data = Buffer::pattern(len, wl.next());
    auto wr = co_await fs.write(*f, off, data.slice(0, len));
    if (wr.ok()) shadow.write(off, data);
  }

  // Unleash the storm.
  mon.start();
  inj.start();

  const std::uint64_t span = p.file_size > p.io_size
                                 ? p.file_size - p.io_size
                                 : 0;
  for (std::uint64_t op = 0; op < p.ops; ++op) {
    // Park while a rebuild is refilling a blank disk (bounded wait).
    const sim::Time give_up = sim.now() + sim::sec(60);
    while (sb.rebuilding && sim.now() < give_up) {
      co_await sim.sleep(sim::ms(1));
    }
    sb.op_in_flight = true;
    const std::uint64_t off = span == 0 ? 0 : wl.below(span + 1);
    const bool is_write = wl.below(2) == 0;
    ++sb.m.ops_attempted;
    if (is_write) {
      ++sb.m.writes;
      Buffer data = Buffer::pattern(p.io_size, wl.next());
      auto wr = co_await fs.write(*f, off, data.slice(0, p.io_size));
      if (wr.ok()) {
        ++sb.m.ops_ok;
        shadow.write(off, data);
      } else {
        ++sb.m.ops_failed;
        // Torn write: parts may have landed, and under a parity scheme the
        // groups it touched may be left with stale parity (write hole) —
        // a later degraded read anywhere in those groups is suspect.
        std::uint64_t lo = off;
        std::uint64_t hi = off + p.io_size;
        if (p.rig.scheme != raid::Scheme::raid0 &&
            p.rig.scheme != raid::Scheme::raid1) {
          const std::uint64_t w = f->layout.stripe_width();
          lo = lo / w * w;
          hi = std::min<std::uint64_t>(p.file_size, (hi + w - 1) / w * w);
        }
        shadow.taint(lo, hi - lo);
      }
    } else {
      ++sb.m.reads;
      auto rd = co_await fs.read(*f, off, p.io_size);
      if (rd.ok()) {
        ++sb.m.ops_ok;
        if (!shadow.matches(off, *rd)) ++sb.m.verify_mismatches;
      } else {
        ++sb.m.ops_failed;
      }
    }
    sb.op_in_flight = false;
    co_await sim.sleep(p.op_gap);
  }

  // Let the watcher finish any pending restart + rebuild (bounded wait).
  const sim::Time give_up = sim.now() + sim::sec(120);
  while (!sb.watch_done && sim.now() < give_up) {
    co_await sim.sleep(sim::ms(5));
  }

  // With every server healthy again, clear latent sector errors the plan
  // planted; the scrubber rebuilds unreadable units from the redundancy.
  if (p.scrub_after && !mon.first_failed()) {
    raid::Scrubber scrub(rig.client(), p.rig.scheme);
    auto rep = co_await scrub.repair(*f, p.file_size);
    if (rep.ok()) {
      sb.m.scrub_media_errors = rep->media_errors;
      sb.m.scrub_repaired = rep->repaired;
    }
  }

  // Full-file sweep: every byte must match the shadow. Reads go through
  // the failover path, so a permanently-down server is not an excuse.
  for (std::uint64_t off = 0; off < p.file_size; off += chunk) {
    const std::uint64_t len = std::min<std::uint64_t>(chunk, p.file_size - off);
    auto rd = co_await fs.read(*f, off, len);
    if (!rd.ok() || !shadow.matches(off, *rd)) ++sb.m.verify_mismatches;
  }

  sb.driver_done = true;
  mon.stop();
  sb.m.tainted_bytes = shadow.tainted_bytes();
  sb.m.finished_at = sim.now();
}

}  // namespace

StormMetrics run_storm(const StormParams& params) {
  raid::Rig rig(params.rig);
  raid::HealthMonitor mon(rig.client(), params.health);
  std::vector<pvfs::IoServer*> server_ptrs;
  for (auto& s : rig.servers) server_ptrs.push_back(s.get());
  FaultInjector inj(rig.cluster, rig.fabric, std::move(server_ptrs),
                    params.plan);
  rig.client_fs().enable_failover(&mon);

  Shadow shadow(params.file_size);
  Scoreboard sb;
  rig.sim.spawn(driver(params, rig, mon, inj, shadow, sb));
  rig.sim.spawn(watcher(params, rig, mon, sb));
  rig.sim.run();

  StormMetrics m = sb.m;
  const auto& rpc = rig.client().rpc_stats();
  m.rpc_sent = rpc.sent;
  m.rpc_retries = rpc.retries;
  m.rpc_timeouts = rpc.timeouts;
  m.rpc_resets = rpc.resets;
  const auto& fo = rig.client_fs().failover_stats();
  m.degraded_reads = fo.degraded_reads;
  m.degraded_writes = fo.degraded_writes;
  m.reactive_failovers = fo.reactive;
  m.availability = m.ops_attempted == 0
                       ? 1.0
                       : static_cast<double>(m.ops_ok) /
                             static_cast<double>(m.ops_attempted);
  m.faults = inj.stats();
  m.trace = inj.trace();
  m.events_executed = rig.sim.events_executed();
  m.fingerprint = fingerprint(m);
  return m;
}

}  // namespace csar::fault
