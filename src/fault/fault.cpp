#include "fault/fault.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "hw/page_cache.hpp"
#include "pvfs/manager.hpp"

namespace csar::fault {

namespace {

/// One executable step of the plan, in firing order.
struct Step {
  sim::Time at;
  enum Kind {
    crash,
    group_crash,
    restart,
    group_restart,
    plant,
    slow_on,
    slow_off,
    mgr_crash,
    mgr_restart
  } kind;
  std::size_t idx;  ///< index into the plan vector the kind refers to
};

}  // namespace

FaultInjector::~FaultInjector() {
  // Leave the fabric clean if the injector dies first (rigs tear down in
  // member order, so this is the common case in tests).
  if (started_) fabric_->set_fault_hook(nullptr);
}

void FaultInjector::start() {
  assert(!started_ && "start() is one-shot");
  started_ = true;
  fabric_->set_fault_hook(this);
  cluster_->sim().spawn(timeline(), "fault_timeline");
}

std::optional<sim::Time> FaultInjector::first_crash_time() const {
  std::optional<sim::Time> t;
  for (const auto& c : plan_.crashes) {
    if (!t || c.at < *t) t = c.at;
  }
  for (const auto& g : plan_.group_crashes) {
    if (!g.servers.empty() && (!t || g.at < *t)) t = g.at;
  }
  return t;
}

void FaultInjector::note(const char* what, std::uint32_t server,
                         const char* extra) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "t=%.3fms %s server %u%s",
                sim::to_seconds(cluster_->sim().now()) * 1e3, what, server,
                extra);
  trace_.emplace_back(buf);
  // `what` is a string literal at every call site, so the tracer may keep
  // the pointer.
  if (obs::kEnabled && tracer_ != nullptr) {
    tracer_->instant(what, "fault", "\"server\":" + std::to_string(server));
  }
}

void FaultInjector::note_manager(const char* what, const char* extra) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "t=%.3fms %s manager%s",
                sim::to_seconds(cluster_->sim().now()) * 1e3, what, extra);
  trace_.emplace_back(buf);
  if (obs::kEnabled && tracer_ != nullptr) {
    tracer_->instant(what, "fault", "\"manager\":1");
  }
}

net::FabricHook::Verdict FaultInjector::on_transfer(
    hw::NodeId src, hw::NodeId dst, std::uint64_t /*payload_bytes*/) {
  Verdict v{};
  const sim::Time now = cluster_->sim().now();
  for (const auto& lf : plan_.links) {
    if (now < lf.start || now >= lf.end) continue;
    const bool forward = src == lf.a && dst == lf.b;
    const bool backward = lf.bidirectional && src == lf.b && dst == lf.a;
    if (!forward && !backward) continue;
    // Reset is checked first: a refused connection never reaches the wire,
    // so it cannot also be dropped or delayed.
    if (lf.reset_p > 0.0 && rng_.chance(lf.reset_p)) {
      ++stats_.msgs_reset;
      v.reset = true;
      return v;
    }
    if (lf.drop_p > 0.0 && rng_.chance(lf.drop_p)) {
      ++stats_.msgs_dropped;
      v.drop = true;
    }
    if (lf.extra_delay > 0) {
      ++stats_.msgs_delayed;
      v.extra_delay += lf.extra_delay;
    }
  }
  return v;
}

sim::Task<void> FaultInjector::timeline() {
  auto& sim = cluster_->sim();
  std::vector<Step> steps;
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    steps.push_back({plan_.crashes[i].at, Step::crash, i});
    if (plan_.crashes[i].restart_at) {
      steps.push_back({*plan_.crashes[i].restart_at, Step::restart, i});
    }
  }
  for (std::size_t i = 0; i < plan_.group_crashes.size(); ++i) {
    steps.push_back({plan_.group_crashes[i].at, Step::group_crash, i});
    if (plan_.group_crashes[i].restart_at) {
      steps.push_back({*plan_.group_crashes[i].restart_at,
                       Step::group_restart, i});
    }
  }
  for (std::size_t i = 0; i < plan_.mgr_crashes.size(); ++i) {
    steps.push_back({plan_.mgr_crashes[i].at, Step::mgr_crash, i});
    if (plan_.mgr_crashes[i].restart_at) {
      steps.push_back({*plan_.mgr_crashes[i].restart_at, Step::mgr_restart,
                       i});
    }
  }
  for (std::size_t i = 0; i < plan_.media.size(); ++i) {
    steps.push_back({plan_.media[i].at, Step::plant, i});
  }
  for (std::size_t i = 0; i < plan_.slow_disks.size(); ++i) {
    steps.push_back({plan_.slow_disks[i].start, Step::slow_on, i});
    steps.push_back({plan_.slow_disks[i].end, Step::slow_off, i});
  }
  std::sort(steps.begin(), steps.end(), [](const Step& x, const Step& y) {
    if (x.at != y.at) return x.at < y.at;
    if (x.kind != y.kind) return x.kind < y.kind;
    return x.idx < y.idx;
  });

  for (const Step& s : steps) {
    if (s.at > sim.now()) co_await sim.sleep_until(s.at);
    switch (s.kind) {
      case Step::crash: {
        const auto& c = plan_.crashes[s.idx];
        servers_[c.server]->crash();
        ++stats_.crashes;
        note("crash", c.server);
        break;
      }
      case Step::restart: {
        const auto& c = plan_.crashes[s.idx];
        servers_[c.server]->restart(c.wipe);
        ++stats_.restarts;
        note("restart", c.server, c.wipe ? " (blank disk)" : "");
        break;
      }
      case Step::group_crash: {
        // The whole failure domain dies in one step, no await between
        // members: every scheme sees the outage as simultaneous.
        const auto& g = plan_.group_crashes[s.idx];
        for (std::uint32_t sv : g.servers) {
          servers_[sv]->crash();
          ++stats_.crashes;
          note("group crash", sv, " (failure domain)");
        }
        ++stats_.group_crashes;
        break;
      }
      case Step::group_restart: {
        const auto& g = plan_.group_crashes[s.idx];
        for (std::uint32_t sv : g.servers) {
          servers_[sv]->restart(g.wipe);
          ++stats_.restarts;
          note("group restart", sv, g.wipe ? " (blank disk)" : "");
        }
        break;
      }
      case Step::plant: {
        const auto& mf = plan_.media[s.idx];
        auto& server = *servers_[mf.server];
        const std::uint64_t fid = server.fs().fid_of(mf.file);
        hw::Disk* disk = cluster_->node(server.node_id()).disk();
        if (fid == 0 || disk == nullptr) {
          note("media fault skipped (no such file)", mf.server);
          break;
        }
        const std::uint64_t addr =
            hw::PageCache::page_addr(fid, 0, 1) + mf.off;
        disk->plant_media_error(addr, mf.len);
        ++stats_.media_planted;
        note("latent sector error", mf.server,
             (" in " + mf.file).c_str());
        break;
      }
      case Step::slow_on: {
        const auto& sd = plan_.slow_disks[s.idx];
        hw::Disk* disk =
            cluster_->node(servers_[sd.server]->node_id()).disk();
        if (disk != nullptr) {
          disk->set_service_factor(sd.factor);
          ++stats_.slow_periods;
          note("disk fail-slow begins", sd.server);
        }
        break;
      }
      case Step::slow_off: {
        const auto& sd = plan_.slow_disks[s.idx];
        hw::Disk* disk =
            cluster_->node(servers_[sd.server]->node_id()).disk();
        if (disk != nullptr) {
          disk->set_service_factor(1.0);
          note("disk fail-slow ends", sd.server);
        }
        break;
      }
      case Step::mgr_crash: {
        assert(manager_ != nullptr && "set_manager() before mgr_crashes");
        const auto& c = plan_.mgr_crashes[s.idx];
        manager_->crash(c.wipe_unsynced);
        ++stats_.mgr_crashes;
        note_manager("crash", c.wipe_unsynced ? " (unsynced tail lost)" : "");
        break;
      }
      case Step::mgr_restart: {
        assert(manager_ != nullptr && "set_manager() before mgr_crashes");
        // Replay runs inline on the timeline: any later step scheduled
        // inside the replay window fires right after it completes, which
        // keeps the step order (and the storm fingerprint) deterministic.
        co_await manager_->restart();
        ++stats_.mgr_restarts;
        note_manager("restart (journal replayed)");
        break;
      }
    }
  }
}

}  // namespace csar::fault
