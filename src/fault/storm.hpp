// Fault-storm harness: a seeded client workload driven through a FaultPlan.
//
// This is the capstone scenario for the robustness work: a deployment runs a
// deterministic read/write mix while the injector crashes servers, drops and
// resets messages, plants latent sector errors and slows disks — and the
// client stack (RPC deadlines + retry, HealthMonitor, CsarFs failover,
// Recovery rebuild, Scrubber media repair) is expected to keep every
// completed operation correct. A shadow copy of the file is maintained
// alongside the workload; every successful read is verified against it, and
// a full-file sweep at the end catches anything the sampled reads missed.
//
// Everything is derived from seeds (workload offsets, fault draws, retry
// jitter), so one StormParams value denotes exactly one simulation: the
// metrics, the fault trace and the event count are bit-stable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "raid/health.hpp"
#include "raid/migrate.hpp"
#include "raid/rebuild.hpp"
#include "raid/rig.hpp"
#include "sim/time.hpp"

namespace csar::fault {

struct StormParams {
  raid::RigParams rig;        ///< deployment (set rig.rpc to real deadlines!)
  raid::HealthParams health;  ///< failure-detection cadence
  FaultPlan plan;             ///< what goes wrong, and when
  /// Rebuild-coordinator knobs (rate cap, convergence budgets). The storm
  /// maps its lifecycle onto the coordinator: detection, delta/full rebuild
  /// and admit all happen there while the workload keeps running.
  raid::RebuildParams rebuild;
  /// Per-file scheme mix: file i is created under file_schemes[i % size()]
  /// (installed as policy path rules before the rig is built). Empty → every
  /// file uses rig.scheme, reproducing the single-scheme storm exactly.
  std::vector<raid::Scheme> file_schemes;
  /// Scheme-migrator knobs; a migrator runs whenever `adaptive` is set or a
  /// manual migration is scheduled below.
  raid::MigrateParams migrate;
  /// Let the adaptive engine (policy recommend()) trigger migrations
  /// mid-storm from the telemetry the storm itself produces.
  bool adaptive = false;
  /// Manual migration: at `migrate_at`, move file index `migrate_file` to
  /// `migrate_to` (migrate_file < 0 disables).
  std::int32_t migrate_file = -1;
  raid::Scheme migrate_to = raid::Scheme::raid1;
  sim::Time migrate_at = 0;
  std::uint64_t file_size = 8 * 1024 * 1024;  ///< per file
  std::uint32_t stripe_unit = 64 * 1024;
  std::uint32_t nfiles = 1;           ///< files driven concurrently
  std::uint64_t io_size = 64 * 1024;  ///< per-op transfer size
  std::uint64_t ops = 200;            ///< read/write ops after the preload
  sim::Duration op_gap = sim::ms(5);  ///< pause between ops
  std::uint64_t workload_seed = 42;   ///< offsets, op mix, payload patterns
  /// Run a RebuildCoordinator: crashed-then-restarted servers are rebuilt
  /// online (clients keep reading and writing through the rebuild; dirtied
  /// regions are re-copied) and admitted once trustworthy. When false,
  /// wiped rejoiners stay fenced and clients stay degraded.
  bool rebuild_after = true;
  /// Run a Scrubber::repair pass before the final sweep, clearing any
  /// latent sector errors the plan planted.
  bool scrub_after = true;
  /// Observability (both optional, not owned). A tracer records the full
  /// request path as spans plus fault/rebuild/migration instants; a registry
  /// collects counters/histograms. Attaching either adds ZERO simulation
  /// events, so events_executed and the fingerprint are unchanged.
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
  /// When nonzero, poll utilization probes (iod/disk/NIC busy fractions)
  /// every `sample_window` of sim time into StormMetrics::samples_csv. The
  /// sampler is itself a sim process, so it DOES shift events_executed —
  /// leave at 0 for fingerprint comparisons.
  sim::Duration sample_window = 0;
};

struct StormMetrics {
  // Workload outcome.
  std::uint64_t ops_attempted = 0;
  std::uint64_t ops_ok = 0;
  std::uint64_t ops_failed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t verify_mismatches = 0;  ///< successful reads with wrong data
  /// Bytes left indeterminate by failed (possibly torn) writes and never
  /// re-acknowledged; they are excluded from verification.
  std::uint64_t tainted_bytes = 0;

  // Client robustness machinery.
  std::uint64_t rpc_sent = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t rpc_resets = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t degraded_writes = 0;
  std::uint64_t reactive_failovers = 0;

  // Repair outcome.
  std::uint64_t scrub_media_errors = 0;
  std::uint64_t scrub_repaired = 0;
  bool rebuild_ok = true;  ///< false when a scheduled rebuild failed

  // Scheme-migration outcome (all zero without a migrator).
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_failed = 0;
  std::uint64_t migrate_recopy_passes = 0;  ///< convergence re-copy passes
  std::uint64_t migrate_dirty_bytes = 0;    ///< concurrent-write bytes seen

  // Rebuild-coordinator outcome (all zero when rebuild_after is false).
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t delta_rebuilds = 0;   ///< non-wipe rejoins / live resyncs
  std::uint64_t rebuild_passes = 0;   ///< copier passes run
  std::uint64_t recopy_passes = 0;    ///< passes re-copying dirtied regions
  std::uint64_t rebuild_bytes = 0;    ///< reconstruction traffic
  std::uint64_t dirty_bytes_tracked = 0;  ///< degraded-write bytes observed

  // Metadata-manager outcome (all zero when the plan spares the manager).
  std::uint64_t mgr_crashes = 0;
  std::uint64_t mgr_replays = 0;
  std::uint64_t mgr_replayed_records = 0;  ///< journal records re-applied
  std::uint64_t mgr_dedup_hits = 0;        ///< retried meta-RPCs deduplicated
  std::uint64_t mgr_dropped_replies = 0;   ///< meta replies lost on the wire
  /// Final metadata audit: files whose manager-durable handle/scheme tag/
  /// generation disagrees with the clients' live view after all replays and
  /// reconciliation. Must be zero for a converged storm.
  std::uint64_t meta_mismatches = 0;

  // Fault-tolerance figures of merit.
  sim::Duration detection_latency = 0;  ///< first crash -> monitor notices
  sim::Duration mttr = 0;  ///< first crash -> rebuilt & trusted again
  double availability = 1.0;  ///< ops_ok / ops_attempted

  // Determinism fingerprints.
  std::uint64_t events_executed = 0;
  sim::Time finished_at = 0;
  std::uint64_t fingerprint = 0;  ///< FNV-1a over trace + all counters

  FaultStats faults;
  std::vector<std::string> trace;  ///< the injector's executed-fault log
  /// Utilization samples (CSV) when StormParams::sample_window was set.
  std::string samples_csv;
};

/// Build a deployment, run the storm, return the metrics. Blocking (drives
/// the simulation to completion).
StormMetrics run_storm(const StormParams& params);

}  // namespace csar::fault
