// Disk: a seek + streaming-transfer model of a commodity disk (or a small
// RAID0 pair behind a 3Ware controller, as on the paper's testbed).
//
// The model keeps a head position in a linear address space; an access that
// starts exactly where the previous one ended streams at the sustained rate,
// anything else pays the average positioning cost (seek + rotational
// latency). Requests are served strictly FIFO through an internal mutex,
// which doubles as the device queue.
//
// What this deliberately reproduces from the paper's evaluation:
//  - RAID5's overwrite collapse (partial-stripe pre-reads become seek-bound
//    random disk reads when the server cache is cold),
//  - RAID1's Class C collapse (dirty evictions push twice the bytes through
//    the disk once the page cache overflows).
#pragma once

#include <cstdint>

#include "common/interval_set.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::hw {

/// Outcome of a single device I/O. A media_error read still pays full
/// service time (the drive retries internally before giving up).
enum class IoStatus { ok, media_error };

struct DiskParams {
  double bytes_per_sec = 70e6;       ///< sustained media rate
  sim::Duration seek = sim::ms(8);   ///< avg seek + rotational positioning
  sim::Duration per_op = sim::us(50);///< command/controller overhead per I/O
};

class Disk {
 public:
  Disk(sim::Simulation& sim, const DiskParams& params)
      : sim_(&sim), p_(params), mu_(sim) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  sim::Task<IoStatus> read(std::uint64_t addr, std::uint64_t len) {
    co_await io(addr, len);
    ++reads_;
    bytes_read_ += len;
    if (len > 0 && bad_.intersects(addr, addr + len)) {
      ++media_errors_;
      co_return IoStatus::media_error;
    }
    co_return IoStatus::ok;
  }

  sim::Task<IoStatus> write(std::uint64_t addr, std::uint64_t len) {
    co_await io(addr, len);
    ++writes_;
    bytes_written_ += len;
    // Writing remaps bad sectors: the latent error is gone afterwards.
    if (len > 0) bad_.erase(addr, addr + len);
    co_return IoStatus::ok;
  }

  /// Plant a latent sector error over [addr, addr+len): subsequent reads
  /// overlapping the range fail with media_error until the range is
  /// overwritten.
  void plant_media_error(std::uint64_t addr, std::uint64_t len) {
    if (len > 0) bad_.insert(addr, addr + len);
  }

  /// Fail-slow knob: service times are multiplied by `f` (>= 1.0 slows the
  /// device down; 1.0 restores nominal speed).
  void set_service_factor(double f) { service_factor_ = f < 0.0 ? 0.0 : f; }
  double service_factor() const { return service_factor_; }

  /// Bytes currently covered by planted-but-unrepaired sector errors.
  std::uint64_t bad_bytes() const { return bad_.total(); }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t seeks = 0;
    sim::Duration busy_time = 0;
    std::uint64_t media_errors = 0;
  };
  Stats stats() const {
    return {reads_,        writes_, bytes_read_, bytes_written_,
            seeks_,        busy_,   media_errors_};
  }

  const DiskParams& params() const { return p_; }

 private:
  sim::Task<void> io(std::uint64_t addr, std::uint64_t len) {
    auto guard = co_await mu_.scoped();
    sim::Duration dur = p_.per_op + sim::transfer_time(len, p_.bytes_per_sec);
    if (addr != head_) {
      dur += p_.seek;
      ++seeks_;
    }
    if (service_factor_ != 1.0) {
      dur = static_cast<sim::Duration>(static_cast<double>(dur) *
                                       service_factor_);
    }
    head_ = addr + len;
    busy_ += dur;
    co_await sim_->sleep(dur);
  }

  sim::Simulation* sim_;
  DiskParams p_;
  sim::Mutex mu_;
  std::uint64_t head_ = ~0ULL;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t seeks_ = 0;
  sim::Duration busy_ = 0;
  std::uint64_t media_errors_ = 0;
  double service_factor_ = 1.0;
  IntervalSet bad_;
};

}  // namespace csar::hw
