// Disk: a seek + streaming-transfer model of a commodity disk (or a small
// RAID0 pair behind a 3Ware controller, as on the paper's testbed).
//
// The model keeps a head position in a linear address space; an access that
// starts exactly where the previous one ended streams at the sustained rate,
// anything else pays the average positioning cost (seek + rotational
// latency). Requests are served strictly FIFO through an internal mutex,
// which doubles as the device queue.
//
// What this deliberately reproduces from the paper's evaluation:
//  - RAID5's overwrite collapse (partial-stripe pre-reads become seek-bound
//    random disk reads when the server cache is cold),
//  - RAID1's Class C collapse (dirty evictions push twice the bytes through
//    the disk once the page cache overflows).
#pragma once

#include <cstdint>

#include "common/interval_set.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::hw {

/// Outcome of a single device I/O. A media_error read still pays full
/// service time (the drive retries internally before giving up).
enum class IoStatus { ok, media_error };

struct DiskParams {
  double bytes_per_sec = 70e6;       ///< sustained media rate
  sim::Duration seek = sim::ms(8);   ///< avg seek + rotational positioning
  sim::Duration per_op = sim::us(50);///< command/controller overhead per I/O
};

/// Bathtub segment a disk is in at a given age. Fleet-scale redundancy
/// planning (PACEMAKER) keys transitions off this class, not off individual
/// failures: infancy and wearout disks run elevated annualized failure
/// rates, useful-life disks run the flat bottom of the curve.
enum class AfrClass : std::uint8_t { infancy, useful_life, wearout };

inline const char* afr_class_name(AfrClass c) {
  switch (c) {
    case AfrClass::infancy:
      return "infancy";
    case AfrClass::useful_life:
      return "useful";
    case AfrClass::wearout:
      return "wearout";
  }
  return "?";
}

/// Per-disk bathtub parameters: the disk's age when the simulation starts
/// and the piecewise-constant AFR curve (annualized failure rate per
/// segment). Real fleets are heterogeneous — see hw::aging_profile for the
/// seeded per-disk jitter that models make/batch variation.
struct AgingParams {
  double age_years = 0.0;       ///< age at sim time 0
  double infancy_years = 0.5;   ///< infancy ends at this age
  double wearout_years = 4.0;   ///< wearout begins at this age
  double afr_infancy = 0.045;   ///< AFR while age < infancy_years
  double afr_useful = 0.012;    ///< AFR on the flat bottom
  double afr_wearout = 0.080;   ///< AFR past wearout_years

  /// Class at `age_years + added_years`.
  AfrClass afr_class(double added_years = 0.0) const {
    const double a = age_years + added_years;
    if (a < infancy_years) return AfrClass::infancy;
    if (a < wearout_years) return AfrClass::useful_life;
    return AfrClass::wearout;
  }

  /// Annualized failure rate at `age_years + added_years`.
  double afr(double added_years = 0.0) const {
    switch (afr_class(added_years)) {
      case AfrClass::infancy:
        return afr_infancy;
      case AfrClass::useful_life:
        return afr_useful;
      case AfrClass::wearout:
        return afr_wearout;
    }
    return afr_useful;
  }

  /// Years until the class next changes (from `added_years`), or a large
  /// sentinel once in wearout (the terminal segment).
  double years_to_next_class(double added_years = 0.0) const {
    const double a = age_years + added_years;
    if (a < infancy_years) return infancy_years - a;
    if (a < wearout_years) return wearout_years - a;
    return 1e9;
  }
};

/// Deterministic per-disk heterogeneity: jitter the bathtub boundaries and
/// per-segment AFRs around their defaults from (seed, disk_index), with
/// `base_age_years` as the disk's purchase-batch age. Same inputs, same
/// params — the fleet layer's whole timeline derives from this.
AgingParams aging_profile(std::uint64_t seed, std::uint32_t disk_index,
                          double base_age_years);

class Disk {
 public:
  Disk(sim::Simulation& sim, const DiskParams& params)
      : sim_(&sim), p_(params), mu_(sim) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  sim::Task<IoStatus> read(std::uint64_t addr, std::uint64_t len) {
    co_await io(addr, len);
    ++reads_;
    bytes_read_ += len;
    if (len > 0 && bad_.intersects(addr, addr + len)) {
      ++media_errors_;
      co_return IoStatus::media_error;
    }
    co_return IoStatus::ok;
  }

  sim::Task<IoStatus> write(std::uint64_t addr, std::uint64_t len) {
    co_await io(addr, len);
    ++writes_;
    bytes_written_ += len;
    // Writing remaps bad sectors: the latent error is gone afterwards.
    if (len > 0) bad_.erase(addr, addr + len);
    co_return IoStatus::ok;
  }

  /// Plant a latent sector error over [addr, addr+len): subsequent reads
  /// overlapping the range fail with media_error until the range is
  /// overwritten.
  void plant_media_error(std::uint64_t addr, std::uint64_t len) {
    if (len > 0) bad_.insert(addr, addr + len);
  }

  /// Fail-slow knob: service times are multiplied by `f` (>= 1.0 slows the
  /// device down; 1.0 restores nominal speed).
  void set_service_factor(double f) { service_factor_ = f < 0.0 ? 0.0 : f; }
  double service_factor() const { return service_factor_; }

  /// Bytes currently covered by planted-but-unrepaired sector errors.
  std::uint64_t bad_bytes() const { return bad_.total(); }

  /// Aging state (bathtub position): pure bookkeeping the fleet layer reads;
  /// the device model itself never consults it.
  void set_aging(const AgingParams& a) { aging_ = a; }
  const AgingParams& aging() const { return aging_; }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t seeks = 0;
    sim::Duration busy_time = 0;
    std::uint64_t media_errors = 0;
    /// Share of busy_time attributable to fail-slow inflation alone (the
    /// actual-minus-nominal service time while service_factor > 1). Lets a
    /// controller tell fail-slow drag apart from plain load: a loaded
    /// healthy disk has high busy_time and zero slow_busy_time.
    sim::Duration slow_busy_time = 0;
  };
  Stats stats() const {
    return {reads_,        writes_, bytes_read_, bytes_written_,
            seeks_,        busy_,   media_errors_, slow_busy_};
  }

  const DiskParams& params() const { return p_; }

 private:
  sim::Task<void> io(std::uint64_t addr, std::uint64_t len) {
    auto guard = co_await mu_.scoped();
    sim::Duration dur = p_.per_op + sim::transfer_time(len, p_.bytes_per_sec);
    if (addr != head_) {
      dur += p_.seek;
      ++seeks_;
    }
    if (service_factor_ != 1.0) {
      const sim::Duration nominal = dur;
      dur = static_cast<sim::Duration>(static_cast<double>(dur) *
                                       service_factor_);
      if (dur > nominal) slow_busy_ += dur - nominal;
    }
    head_ = addr + len;
    busy_ += dur;
    co_await sim_->sleep(dur);
  }

  sim::Simulation* sim_;
  DiskParams p_;
  sim::Mutex mu_;
  std::uint64_t head_ = ~0ULL;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t seeks_ = 0;
  sim::Duration busy_ = 0;
  std::uint64_t media_errors_ = 0;
  sim::Duration slow_busy_ = 0;
  double service_factor_ = 1.0;
  AgingParams aging_;
  IntervalSet bad_;
};

}  // namespace csar::hw
