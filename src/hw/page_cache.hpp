// PageCache: a Linux-buffer-cache-like model of per-server file caching.
//
// The cache is timing/metadata only: it decides which accesses hit memory,
// which go to the Disk, and when dirty write-back stalls the writer. File
// *contents* live in the LocalFs layer; the cache tracks (file, page)
// residency and dirtiness with LRU replacement.
//
// Behaviours reproduced from the paper:
//  - §5.2: a write covering only part of a page whose old content exists and
//    is not cached forces a pre-read of the page from disk (the
//    "partial writes to preexisting files" problem; the write-buffering fix
//    lives in the I/O server, which then issues block-aligned writes).
//  - §6.5 (Class C): once dirty data exceeds capacity, each new page write
//    stalls on evicting an old dirty page to disk, collapsing to disk rate.
//  - §6.5 (overwrite runs): drop_all() models "contents removed from the
//    cache" between the initial-write and overwrite phases.
//
// Hot-path layout: pages live in a slot pool (std::vector<Page>) threaded
// into an intrusive doubly-linked LRU by 32-bit slot indices, with an
// unordered_map from page key to slot. Insert/touch/evict move no memory and
// allocate nothing in steady state (slots recycle through a free list; the
// map's bucket array is pre-reserved and only rehashes on real growth).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hw/disk.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace csar::hw {

struct CacheParams {
  std::uint64_t capacity_bytes = 768ULL << 20;
  std::uint32_t page_size = 4096;
  /// Pages reclaimed per write-back burst once the cache is full. Batching
  /// models write-back clustering; large bursts keep eviction sequential.
  std::uint32_t evict_batch = 64;
};

class PageCache {
 public:
  /// `mem` is the node's copy engine: every cached read/write charges it for
  /// the moved bytes.
  PageCache(sim::Simulation& sim, Disk& disk, sim::BandwidthServer& mem,
            const CacheParams& params)
      : sim_(&sim), disk_(&disk), mem_(&mem), p_(params) {
    pages_.reserve(kInitialReserve);
    pool_.reserve(kInitialReserve);
  }
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Predicate telling whether a file has any on-disk content in a byte
  /// range. Sparse holes (never-written ranges) must return false — on ext2
  /// they have no allocated blocks and reading them costs no disk I/O.
  using ContentPred =
      std::function<bool(std::uint64_t start, std::uint64_t end)>;

  /// A predicate for a dense file of the given size (tests, simple callers).
  static ContentPred dense(std::uint64_t content_size) {
    return [content_size](std::uint64_t start, std::uint64_t) {
      return start < content_size;
    };
  }

  /// Read `len` bytes at `off` of file `fid`. Pages that are holes under
  /// `has_content` cost no disk I/O. Returns media_error if any miss run hit
  /// a latent sector error (cached pages never error).
  sim::Task<IoStatus> read(std::uint64_t fid, std::uint64_t off,
                           std::uint64_t len, const ContentPred& has_content);

  /// Write `len` bytes at `off`. A page only partially covered by the write,
  /// whose old content exists under `has_content` and is not cached, is
  /// pre-read from disk first. `pad_partial` disables the pre-read by
  /// treating every touched page as fully written (the paper's padding
  /// experiment in §6.5).
  sim::Task<void> write(std::uint64_t fid, std::uint64_t off,
                        std::uint64_t len, const ContentPred& has_content,
                        bool pad_partial = false);

  /// Write every dirty page to disk (fsync of the whole cache). Pages stay
  /// resident and become clean.
  sim::Task<void> flush_all();

  /// Drop every page. Dirty pages are discarded, so callers flush first;
  /// models `echo 3 > drop_caches` between experiment phases.
  void drop_all();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t miss_runs = 0;         ///< contiguous disk reads issued for
                                         ///< misses (batched adjacent server
                                         ///< reads show up as fewer runs)
    std::uint64_t prereads = 0;          ///< partial-write pre-reads (§5.2)
    std::uint64_t dirty_evictions = 0;
    std::uint64_t clean_evictions = 0;
  };
  const Stats& stats() const { return stats_; }

  std::uint64_t resident_bytes() const {
    return static_cast<std::uint64_t>(pages_.size()) * p_.page_size;
  }
  std::uint64_t dirty_pages() const { return dirty_count_; }
  const CacheParams& params() const { return p_; }

  /// Coalesced byte ranges of file `fid` currently covered only by dirty
  /// (never written back) pages — the data a crash destroys when the host
  /// models volatile page caches. Sorted by offset, deterministic.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> dirty_ranges(
      std::uint64_t fid) const {
    std::vector<std::uint64_t> idx;
    for (const Page& page : pool_) {
      if (page.live && page.fid == fid && page.dirty) {
        idx.push_back(page.idx);
      }
    }
    std::sort(idx.begin(), idx.end());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (std::uint64_t i : idx) {
      const std::uint64_t lo = i * p_.page_size;
      const std::uint64_t hi = lo + p_.page_size;
      if (!out.empty() && out.back().second == lo) {
        out.back().second = hi;
      } else {
        out.emplace_back(lo, hi);
      }
    }
    return out;
  }

  /// Disk address of a page: files are spaced 1 TiB apart in the linear
  /// address space, so within-file sequential access is sequential on disk
  /// and cross-file access seeks — a reasonable stand-in for ext2 layout.
  static std::uint64_t page_addr(std::uint64_t fid, std::uint64_t page,
                                 std::uint32_t page_size) {
    return fid * (1ULL << 40) + page * page_size;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialReserve = 1024;

  struct Page {
    std::uint64_t fid;
    std::uint64_t idx;
    bool dirty;
    bool live;
    std::uint32_t prev;  // toward LRU end
    std::uint32_t next;  // toward MRU end
  };

  static std::uint64_t key_of(std::uint64_t fid, std::uint64_t page) {
    return fid * 0x100000000ULL ^ page;
  }

  bool resident(std::uint64_t key) const { return pages_.contains(key); }
  // --- intrusive LRU plumbing (head_ = LRU victim, tail_ = most recent) ---
  void lru_unlink(std::uint32_t s);
  void lru_push_back(std::uint32_t s);
  void touch(std::uint64_t key);
  void insert(std::uint64_t fid, std::uint64_t page, bool dirty);
  /// Evict LRU pages until under capacity; dirty victims are written to disk
  /// in address-sorted, coalesced runs.
  sim::Task<void> ensure_room();

  sim::Simulation* sim_;
  Disk* disk_;
  sim::BandwidthServer* mem_;
  CacheParams p_;
  std::unordered_map<std::uint64_t, std::uint32_t> pages_;  // key -> slot
  std::vector<Page> pool_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;  // least recently used
  std::uint32_t tail_ = kNil;  // most recently used
  std::uint64_t dirty_count_ = 0;
  Stats stats_;
};

}  // namespace csar::hw
