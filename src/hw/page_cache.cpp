#include "hw/page_cache.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/units.hpp"

namespace csar::hw {

void PageCache::lru_unlink(std::uint32_t s) {
  Page& pg = pool_[s];
  if (pg.prev != kNil) {
    pool_[pg.prev].next = pg.next;
  } else {
    head_ = pg.next;
  }
  if (pg.next != kNil) {
    pool_[pg.next].prev = pg.prev;
  } else {
    tail_ = pg.prev;
  }
  pg.prev = pg.next = kNil;
}

void PageCache::lru_push_back(std::uint32_t s) {
  Page& pg = pool_[s];
  pg.prev = tail_;
  pg.next = kNil;
  if (tail_ != kNil) {
    pool_[tail_].next = s;
  } else {
    head_ = s;
  }
  tail_ = s;
}

void PageCache::touch(std::uint64_t key) {
  auto it = pages_.find(key);
  assert(it != pages_.end());
  lru_unlink(it->second);
  lru_push_back(it->second);
}

void PageCache::insert(std::uint64_t fid, std::uint64_t page, bool dirty) {
  const std::uint64_t key = key_of(fid, page);
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    Page& pg = pool_[it->second];
    if (dirty && !pg.dirty) {
      pg.dirty = true;
      ++dirty_count_;
    }
    lru_unlink(it->second);
    lru_push_back(it->second);
    return;
  }
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    pool_[slot] = Page{fid, page, dirty, true, kNil, kNil};
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(Page{fid, page, dirty, true, kNil, kNil});
  }
  lru_push_back(slot);
  pages_.emplace(key, slot);
  if (dirty) ++dirty_count_;
}

sim::Task<void> PageCache::ensure_room() {
  if (resident_bytes() <= p_.capacity_bytes) co_return;
  // Reclaim down to a hysteresis point one batch below capacity: victims are
  // collected synchronously (so the LRU stays consistent), then dirty ones
  // are written out in address order.
  const std::uint64_t batch_bytes =
      static_cast<std::uint64_t>(p_.evict_batch) * p_.page_size;
  const std::uint64_t target =
      p_.capacity_bytes > batch_bytes ? p_.capacity_bytes - batch_bytes : 0;
  std::vector<std::uint64_t> dirty_addrs;
  while (resident_bytes() > target && head_ != kNil) {
    const std::uint32_t slot = head_;
    Page& pg = pool_[slot];
    if (pg.dirty) {
      dirty_addrs.push_back(page_addr(pg.fid, pg.idx, p_.page_size));
      --dirty_count_;
      ++stats_.dirty_evictions;
    } else {
      ++stats_.clean_evictions;
    }
    lru_unlink(slot);
    pages_.erase(key_of(pg.fid, pg.idx));
    pg.live = false;
    free_.push_back(slot);
  }
  std::sort(dirty_addrs.begin(), dirty_addrs.end());
  // Coalesce address-contiguous victims into single disk writes.
  std::size_t i = 0;
  while (i < dirty_addrs.size()) {
    std::size_t j = i + 1;
    while (j < dirty_addrs.size() &&
           dirty_addrs[j] == dirty_addrs[j - 1] + p_.page_size) {
      ++j;
    }
    co_await disk_->write(dirty_addrs[i],
                          static_cast<std::uint64_t>(j - i) * p_.page_size);
    i = j;
  }
}

sim::Task<IoStatus> PageCache::read(std::uint64_t fid, std::uint64_t off,
                                    std::uint64_t len,
                                    const ContentPred& has_content) {
  if (len == 0) co_return IoStatus::ok;
  IoStatus status = IoStatus::ok;
  const std::uint64_t first = off / p_.page_size;
  const std::uint64_t last = (off + len - 1) / p_.page_size;
  std::uint64_t run_start = 0;  // first page of a pending miss run
  std::uint64_t run_len = 0;    // pages in the pending miss run
  auto flush_run = [&]() -> sim::Task<void> {
    if (run_len == 0) co_return;
    ++stats_.miss_runs;
    if (co_await disk_->read(page_addr(fid, run_start, p_.page_size),
                             run_len * p_.page_size) ==
        IoStatus::media_error) {
      // Failed runs are not cached: retries keep hitting the bad sectors
      // until something rewrites them.
      status = IoStatus::media_error;
      run_len = 0;
      co_return;
    }
    for (std::uint64_t k = 0; k < run_len; ++k) {
      insert(fid, run_start + k, /*dirty=*/false);
    }
    run_len = 0;
    co_await ensure_room();
  };
  for (std::uint64_t pg = first; pg <= last; ++pg) {
    const bool is_hole =
        !has_content(pg * p_.page_size, (pg + 1) * p_.page_size);
    if (is_hole || resident(key_of(fid, pg))) {
      if (!is_hole) {
        ++stats_.hits;
        touch(key_of(fid, pg));
      }
      co_await flush_run();
      continue;
    }
    ++stats_.misses;
    if (run_len == 0) run_start = pg;
    ++run_len;
  }
  co_await flush_run();
  co_await mem_->transfer(len);
  co_return status;
}

sim::Task<void> PageCache::write(std::uint64_t fid, std::uint64_t off,
                                 std::uint64_t len,
                                 const ContentPred& has_content,
                                 bool pad_partial) {
  if (len == 0) co_return;
  const std::uint64_t first = off / p_.page_size;
  const std::uint64_t last = (off + len - 1) / p_.page_size;
  for (std::uint64_t pg = first; pg <= last; ++pg) {
    const std::uint64_t pg_start = pg * p_.page_size;
    const std::uint64_t pg_end = pg_start + p_.page_size;
    const bool full =
        pad_partial || (off <= pg_start && off + len >= pg_end);
    const std::uint64_t key = key_of(fid, pg);
    if (resident(key)) {
      ++stats_.hits;
      insert(fid, pg, /*dirty=*/true);  // marks dirty + LRU touch
      continue;
    }
    if (!full && has_content(pg_start, pg_end)) {
      // §5.2: a sub-page write to uncached, preexisting content forces the
      // page to be read from disk before the write can be applied.
      ++stats_.prereads;
      // A media error on the pre-read is absorbed: the overwrite that
      // follows remaps the bad sectors anyway.
      (void)co_await disk_->read(page_addr(fid, pg, p_.page_size),
                                 p_.page_size);
    } else {
      ++stats_.misses;
    }
    insert(fid, pg, /*dirty=*/true);
    co_await ensure_room();
  }
  co_await mem_->transfer(len);
}

sim::Task<void> PageCache::flush_all() {
  std::vector<std::uint64_t> dirty_addrs;
  dirty_addrs.reserve(dirty_count_);
  for (Page& page : pool_) {
    if (page.live && page.dirty) {
      dirty_addrs.push_back(page_addr(page.fid, page.idx, p_.page_size));
      page.dirty = false;
    }
  }
  dirty_count_ = 0;
  std::sort(dirty_addrs.begin(), dirty_addrs.end());
  std::size_t i = 0;
  while (i < dirty_addrs.size()) {
    std::size_t j = i + 1;
    while (j < dirty_addrs.size() &&
           dirty_addrs[j] == dirty_addrs[j - 1] + p_.page_size) {
      ++j;
    }
    co_await disk_->write(dirty_addrs[i],
                          static_cast<std::uint64_t>(j - i) * p_.page_size);
    i = j;
  }
}

void PageCache::drop_all() {
  pages_.clear();
  pool_.clear();   // capacity retained: steady state stays allocation-free
  free_.clear();
  head_ = tail_ = kNil;
  dirty_count_ = 0;
}

}  // namespace csar::hw
