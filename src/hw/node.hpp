// Node and Cluster: hardware composition for the simulated testbeds.
//
// A node has a full-duplex NIC (tx/rx bandwidth servers), a memory copy
// engine, an XOR rate for parity computation, and — on I/O server nodes — a
// disk with a page cache in front of it. A Cluster owns the nodes plus the
// wire parameters, mirroring the paper's two testbeds (an 8-node
// PIII/Myrinet cluster and the larger OSC Itanium cluster).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hw/disk.hpp"
#include "hw/page_cache.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace csar::hw {

using NodeId = std::uint32_t;

struct NodeParams {
  double link_bytes_per_sec = 160e6;     ///< NIC rate per direction
  sim::Duration link_per_op = sim::us(30);  ///< per-message protocol cost
  double mem_bytes_per_sec = 300e6;      ///< copy-engine rate
  double xor_bytes_per_sec = 1.6e9;      ///< word-wise parity rate (§3)
  /// Per-connection ingest pacing at an I/O server: TCP + iod processing
  /// limits what one client stream can push through one server. This is what
  /// makes single-client bandwidth scale with the number of I/O servers
  /// (Figure 4) instead of saturating the client link immediately.
  double stream_bytes_per_sec = 20e6;
  /// Per-connection rate for redundancy-*block* operations (parity and
  /// mirror reads/writes). CSAR adds these as new routines outside the iod's
  /// bulk streaming path; they act on cache-resident blocks and move at
  /// link speed. Keeping them off the slow path is what bounds the parity
  /// lock hold time (§5.1's ~20%-not-5x locking overhead).
  double red_stream_bytes_per_sec = 1e9;
  /// The iod is a single-process service loop: every request — bulk data
  /// and parity blocks alike — passes through one dispatch pipeline with
  /// this total capacity and per-request cost. Under heavy load (25 BTIO
  /// writers) parity operations queue behind bulk bursts *while the parity
  /// lock is held*, which is the mechanism behind the paper's dramatic
  /// RAID5 collapse in Figure 6(a).
  double iod_bytes_per_sec = 150e6;
  sim::Duration iod_per_op = sim::us(100);
  std::optional<DiskParams> disk;        ///< present on I/O servers
  std::optional<CacheParams> cache;      ///< present on I/O servers
};

class Node {
 public:
  Node(sim::Simulation& sim, NodeId id, const NodeParams& params)
      : id_(id),
        p_(params),
        tx_(sim, params.link_bytes_per_sec, params.link_per_op),
        rx_(sim, params.link_bytes_per_sec, params.link_per_op),
        mem_(sim, params.mem_bytes_per_sec) {
    if (params.disk) {
      disk_ = std::make_unique<Disk>(sim, *params.disk);
      if (params.cache) {
        cache_ = std::make_unique<PageCache>(sim, *disk_, mem_, *params.cache);
      }
    }
  }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const NodeParams& params() const { return p_; }

  sim::BandwidthServer& tx() { return tx_; }
  sim::BandwidthServer& rx() { return rx_; }
  sim::BandwidthServer& mem() { return mem_; }
  Disk* disk() { return disk_.get(); }
  PageCache* cache() { return cache_.get(); }

 private:
  NodeId id_;
  NodeParams p_;
  sim::BandwidthServer tx_;
  sim::BandwidthServer rx_;
  sim::BandwidthServer mem_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<PageCache> cache_;
};

/// Cluster-wide hardware parameters: node templates plus wire properties.
struct HwProfile {
  NodeParams server;
  NodeParams client;
  sim::Duration wire_latency = sim::us(10);
  /// Size of the network receive chunks an I/O server consumes while a write
  /// streams in (§5.2). Deliberately not a multiple of the page size, like
  /// real socket reads.
  std::uint32_t net_recv_chunk = 8800;
};

/// The 8-node experimental cluster: dual PIII 1 GHz, 1 GB RAM, Myrinet
/// 1.3 Gb/s, two IBM 75GXP disks behind a 3Ware controller in RAID0 (§6.1).
HwProfile profile_experimental2003();

/// The OSC production cluster: Itanium II, 4 GB RAM, one 80 GB SCSI disk,
/// Myrinet (§6.1). Used for experiments needing more than 8 nodes.
HwProfile profile_osc2003();

class Cluster {
 public:
  Cluster(sim::Simulation& sim, HwProfile profile)
      : sim_(&sim), profile_(std::move(profile)) {}
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  NodeId add_server() { return add_node(profile_.server); }
  NodeId add_client() { return add_node(profile_.client); }
  /// Manager node: client-class NIC/CPU (it is off the data path) but with a
  /// server-class disk + page cache so metadata journaling cost is charged.
  NodeId add_manager() {
    NodeParams p = profile_.client;
    p.disk = profile_.server.disk;
    p.cache = profile_.server.cache;
    return add_node(p);
  }

  Node& node(NodeId id) { return *nodes_[id]; }
  std::size_t node_count() const { return nodes_.size(); }
  sim::Simulation& sim() { return *sim_; }
  const HwProfile& profile() const { return profile_; }

 private:
  NodeId add_node(const NodeParams& params) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>(*sim_, id, params));
    return id;
  }

  sim::Simulation* sim_;
  HwProfile profile_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace csar::hw
