#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/node.hpp"

namespace csar::hw {

AgingParams aging_profile(std::uint64_t seed, std::uint32_t disk_index,
                          double base_age_years) {
  // One derived stream per disk, independent of draw order elsewhere. The
  // jitters model make/firmware/batch variation: boundaries move ±20%, the
  // segment AFRs ±30%, and the disk's own age spreads ±10% of a year around
  // the batch age (drives from one purchase order ship weeks apart).
  Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (disk_index + 1)));
  auto jitter = [&rng](double v, double frac) {
    return v * (1.0 + frac * (2.0 * rng.uniform() - 1.0));
  };
  AgingParams a;
  a.age_years = base_age_years + 0.1 * (2.0 * rng.uniform() - 1.0);
  if (a.age_years < 0.0) a.age_years = 0.0;
  a.infancy_years = jitter(a.infancy_years, 0.2);
  a.wearout_years = jitter(a.wearout_years, 0.2);
  a.afr_infancy = jitter(a.afr_infancy, 0.3);
  a.afr_useful = jitter(a.afr_useful, 0.3);
  a.afr_wearout = jitter(a.afr_wearout, 0.3);
  return a;
}

HwProfile profile_experimental2003() {
  HwProfile p;
  // Myrinet 1.3 Gb/s ~ 162 MB/s; GM/TCP keeps ~160 MB/s on large messages.
  p.server.link_bytes_per_sec = 160e6;
  p.server.link_per_op = sim::us(30);
  p.server.mem_bytes_per_sec = 300e6;   // PIII-era copy bandwidth
  p.server.xor_bytes_per_sec = 1.6e9;   // word-wise XOR, cache resident
  p.server.stream_bytes_per_sec = 20e6; // single TCP stream through iod
  DiskParams d;
  d.bytes_per_sec = 70e6;  // two 75GXP disks in 3Ware RAID0
  d.seek = sim::ms(9);
  d.per_op = sim::us(50);
  p.server.disk = d;
  CacheParams c;
  c.capacity_bytes = 768 * MiB;  // 1 GB RAM minus kernel + iod
  c.page_size = 4096;
  c.evict_batch = 128;
  p.server.cache = c;

  p.client = p.server;
  p.client.disk.reset();
  p.client.cache.reset();

  p.wire_latency = sim::us(10);
  p.net_recv_chunk = 8800;
  return p;
}

HwProfile profile_osc2003() {
  HwProfile p = profile_experimental2003();
  // Itanium II nodes: faster memory, one 80 GB SCSI disk, 4 GB RAM.
  p.server.mem_bytes_per_sec = 600e6;
  p.server.stream_bytes_per_sec = 22e6;
  // The production iod on the OSC nodes saturates earlier than the raw
  // links: with ~25 concurrent writers per server its dispatch loop is the
  // contended resource (early IA-64 system-call/copy path).
  p.server.iod_bytes_per_sec = 100e6;
  DiskParams d;
  d.bytes_per_sec = 40e6;
  d.seek = sim::ms(8);
  d.per_op = sim::us(50);
  p.server.disk = d;
  CacheParams c;
  // 4 GB RAM, but the write-absorbing capacity of a 2003 Linux page cache is
  // bounded by the dirty-page limits (~40-50% of RAM) before writeback
  // throttles the writer; 2 GiB is the effective absorption capacity.
  c.capacity_bytes = 2 * GiB;
  c.page_size = 4096;
  c.evict_batch = 128;
  p.server.cache = c;
  p.client = p.server;
  p.client.disk.reset();
  p.client.cache.reset();
  return p;
}

}  // namespace csar::hw
