// Metrics registry: named counters, gauges and fixed-bucket histograms with
// deterministic percentile extraction, plus a sim-time windowed sampler for
// resource probes (queue depths, link/disk utilization).
//
// Determinism rules match the tracer's: all values derive from simulation
// state and all extraction is integer bucket arithmetic, so the same seeded
// run dumps byte-identical CSV/JSON. Percentiles are bucketed — p(q) is the
// upper bound of the bucket containing rank ceil(q*count) (the recorded
// maximum for the overflow bucket) — which trades fidelity for determinism
// and O(1) memory, exactly like sim::LatencyHistogram but with caller-fixed
// bounds so the obs_test can pin the semantics against a brute-force sort.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::obs {

class Counter {
 public:
  void add(std::uint64_t d = 1) { v_ += d; }
  void set(std::uint64_t v) { v_ = v; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Fixed-bucket histogram over uint64 samples. `bounds` are ascending
/// *inclusive* upper bounds; samples above the last bound land in an
/// implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      assert(bounds_[i] > bounds_[i - 1] && "bounds must ascend");
    }
  }

  void add(std::uint64_t v) {
    std::size_t lo = 0, hi = bounds_.size();
    while (lo < hi) {  // first bucket whose bound >= v
      const std::size_t mid = (lo + hi) / 2;
      if (bounds_[mid] >= v) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    ++counts_[lo];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Deterministic bucketed quantile: the upper bound of the bucket holding
  /// rank ceil(q*count) (1-based); the recorded max for the overflow bucket;
  /// 0 when empty.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_) + 0.9999999999);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      seen += counts_[i];
      if (seen >= rank) return bounds_[i];
    }
    return max_;
  }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// 1-2-5 log-spaced latency bounds in ns, 1 us .. 100 s — the default for
  /// every duration-valued histogram.
  static std::vector<std::uint64_t> latency_bounds();
  /// Power-of-two bounds 1 .. 64 Ki — for size/count-valued histograms
  /// (batch sizes, queue depths).
  static std::vector<std::uint64_t> size_bounds();

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size()+1 (overflow last)
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Named instrument registry with stable (registration-order) iteration, so
/// dumps are deterministic. Lookup by name returns the existing instrument;
/// a name is bound to one kind for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds = {});

  /// name,kind,count,sum,min,max,p50,p95,p99 (value in `sum` for
  /// counters/gauges).
  std::string to_csv() const;
  std::string to_json() const;
  bool write_file(const std::string& path, bool json = false) const;

 private:
  enum class Kind : std::uint8_t { counter, gauge, histogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  Entry& find_or_add(const std::string& name, Kind kind,
                     std::vector<std::uint64_t> bounds = {});

  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;
};

/// Windowed sampler: a simulation process that evaluates registered probe
/// closures every `window` of sim time and records the series. Utilization
/// probes compute deltas of sim::BandwidthServer::busy_time() over the
/// window. start() spawns the loop; stop() must be called from inside the
/// simulation before expecting run() to drain (one trailing wakeup fires).
class Sampler {
 public:
  Sampler(sim::Simulation& sim, sim::Duration window)
      : sim_(&sim), window_(window) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void probe(std::string name, std::function<double()> fn) {
    names_.push_back(std::move(name));
    fns_.push_back(std::move(fn));
  }

  void start();
  void stop() { running_ = false; }

  std::size_t rows() const { return times_.size(); }

  /// time_ms,<probe>,... one row per elapsed window.
  std::string to_csv() const;

 private:
  sim::Task<void> loop();

  sim::Simulation* sim_;
  sim::Duration window_;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> fns_;
  std::vector<sim::Time> times_;
  std::vector<std::vector<double>> samples_;
  bool running_ = false;
};

}  // namespace csar::obs
