#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace csar::obs {

std::vector<std::uint64_t> Histogram::latency_bounds() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t decade = 1000; decade <= 100000000000ULL; decade *= 10) {
    b.push_back(decade);      // 1 us, 10 us, ... (ns)
    b.push_back(2 * decade);  // 2 us, 20 us, ...
    b.push_back(5 * decade);  // 5 us, 50 us, ...
  }
  return b;
}

std::vector<std::uint64_t> Histogram::size_bounds() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 1; v <= (1ULL << 16); v <<= 1) b.push_back(v);
  return b;
}

Registry::Entry& Registry::find_or_add(const std::string& name, Kind kind,
                                       std::vector<std::uint64_t> bounds) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    assert(e.kind == kind && "metric name reused with a different kind");
    return e;
  }
  index_[name] = entries_.size();
  Entry e;
  e.name = name;
  e.kind = kind;
  switch (kind) {
    case Kind::counter:
      e.c = std::make_unique<Counter>();
      break;
    case Kind::gauge:
      e.g = std::make_unique<Gauge>();
      break;
    case Kind::histogram:
      if (bounds.empty()) bounds = Histogram::latency_bounds();
      e.h = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  return *find_or_add(name, Kind::counter).c;
}

Gauge& Registry::gauge(const std::string& name) {
  return *find_or_add(name, Kind::gauge).g;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::uint64_t> bounds) {
  return *find_or_add(name, Kind::histogram, std::move(bounds)).h;
}

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string Registry::to_csv() const {
  std::string out = "name,kind,count,sum,min,max,p50,p95,p99\n";
  for (const Entry& e : entries_) {
    out += e.name;
    switch (e.kind) {
      case Kind::counter:
        out += ",counter,1," + std::to_string(e.c->value()) + ",,,,,\n";
        break;
      case Kind::gauge:
        out += ",gauge,1," + fmt_double(e.g->value()) + ",,,,,\n";
        break;
      case Kind::histogram:
        out += ",histogram," + std::to_string(e.h->count()) + ',' +
               std::to_string(e.h->sum()) + ',' +
               std::to_string(e.h->min()) + ',' +
               std::to_string(e.h->max()) + ',' +
               std::to_string(e.h->percentile(0.50)) + ',' +
               std::to_string(e.h->percentile(0.95)) + ',' +
               std::to_string(e.h->percentile(0.99)) + '\n';
        break;
    }
  }
  return out;
}

std::string Registry::to_json() const {
  std::string out = "{\"metrics\":[\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (i) out += ",\n";
    out += "{\"name\":\"" + e.name + "\",";
    switch (e.kind) {
      case Kind::counter:
        out += "\"kind\":\"counter\",\"value\":" +
               std::to_string(e.c->value()) + '}';
        break;
      case Kind::gauge:
        out += "\"kind\":\"gauge\",\"value\":" + fmt_double(e.g->value()) +
               '}';
        break;
      case Kind::histogram:
        out += "\"kind\":\"histogram\",\"count\":" +
               std::to_string(e.h->count()) +
               ",\"sum\":" + std::to_string(e.h->sum()) +
               ",\"min\":" + std::to_string(e.h->min()) +
               ",\"max\":" + std::to_string(e.h->max()) +
               ",\"p50\":" + std::to_string(e.h->percentile(0.50)) +
               ",\"p95\":" + std::to_string(e.h->percentile(0.95)) +
               ",\"p99\":" + std::to_string(e.h->percentile(0.99)) + '}';
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

bool Registry::write_file(const std::string& path, bool json) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string s = json ? to_json() : to_csv();
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  return std::fclose(f) == 0 && ok;
}

void Sampler::start() {
  if (running_) return;
  running_ = true;
  sim_->spawn(loop(), "metrics_sampler");
}

sim::Task<void> Sampler::loop() {
  while (running_) {
    co_await sim_->sleep(window_);
    if (!running_) break;
    times_.push_back(sim_->now());
    std::vector<double> row;
    row.reserve(fns_.size());
    for (const auto& fn : fns_) row.push_back(fn());
    samples_.push_back(std::move(row));
  }
}

std::string Sampler::to_csv() const {
  std::string out = "time_ms";
  for (const auto& n : names_) out += ',' + n;
  out += '\n';
  for (std::size_t i = 0; i < times_.size(); ++i) {
    char t[48];
    std::snprintf(t, sizeof(t), "%.3f", sim::to_seconds(times_[i]) * 1e3);
    out += t;
    for (double v : samples_[i]) out += ',' + fmt_double(v);
    out += '\n';
  }
  return out;
}

}  // namespace csar::obs
