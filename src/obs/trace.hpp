// Tracer: sim-time span tracing for the CSAR stack, exported as Chrome
// trace_event JSON (open chrome://tracing or https://ui.perfetto.dev).
//
// A span is an interval of *simulated* time with a name, a category and an
// optional parent span; instant events mark point-in-time occurrences
// (faults, rebuild phases, migrations). The mapping onto the trace viewer:
//
//   pid  — one per node (registered by raid::Rig::set_obs: manager, each
//          server, each client) plus pid 1, the "sim" process, which hosts
//          named simulator tasks and the fault/rebuild timeline.
//   tid  — one lane per concurrent coroutine task. Lanes are pooled per
//          (pid, kind): task_span() acquires the lowest free lane of its
//          kind and end() releases it, so the lane count equals the peak
//          task concurrency, not the task count.
//
// Determinism rules: every timestamp comes from sim::Simulation::now() —
// never the wall clock — and every id from a per-tracer counter, so the
// same seeded run produces a byte-identical trace. Recording a span never
// awaits and never schedules a simulation event: attaching a tracer must
// not change what the simulation does, only what it remembers (the
// obs_test pins this by comparing storm fingerprints traced vs untraced).
//
// Disabled path: call sites guard every record with
//   if (obs::kEnabled && tracer_) { ... }
// `kEnabled` is a compile-time constant (CSAR_OBS macro, default on), so a
// -DCSAR_OBS=0 build compiles the guards out entirely; with the default
// build a null tracer costs one pointer test per site.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

#ifndef CSAR_OBS
#define CSAR_OBS 1
#endif

namespace csar::obs {

/// Compile-time master switch for the hot-path span guards.
inline constexpr bool kEnabled = CSAR_OBS != 0;

/// Span identity; 0 means "no span" (absent parent).
using SpanId = std::uint64_t;

class Tracer;

/// RAII guard for an open span: ends the span (at the sim time of
/// destruction) and releases its pooled lane, if it owns one. Move-only;
/// a default-constructed Span is inert, which is what the disabled path
/// leaves behind.
class Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      end();
      t_ = o.t_;
      id_ = o.id_;
      idx_ = o.idx_;
      pid_ = o.pid_;
      tid_ = o.tid_;
      kind_ = o.kind_;
      o.t_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Close the span now (idempotent).
  void end();

  SpanId id() const { return t_ ? id_ : 0; }
  std::uint32_t pid() const { return pid_; }
  std::uint32_t tid() const { return tid_; }
  explicit operator bool() const { return t_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* t, SpanId id, std::size_t idx, std::uint32_t pid,
       std::uint32_t tid)
      : t_(t), id_(id), idx_(idx), pid_(pid), tid_(tid) {}

  Tracer* t_ = nullptr;
  SpanId id_ = 0;
  std::size_t idx_ = 0;  ///< index into Tracer::events_ (append-only)
  std::uint32_t pid_ = 0;
  std::uint32_t tid_ = 0;
  /// Pool key of the lane this span owns (nullptr: lane not owned). The
  /// span hands it back at end() so the tracer needs no tid->kind map.
  const char* kind_ = nullptr;
};

/// Call-site context for threading a parent span (and its lane) through
/// plain function arguments — used by IoServer's exec stages, where the
/// request span outlives several helper coroutines.
struct Ctx {
  Tracer* t = nullptr;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  SpanId parent = 0;
};

class Tracer final : public sim::TaskObserver {
 public:
  /// A tracer is constructed detached; raid::Rig::set_obs (or a test)
  /// attaches it to the simulation whose clock stamps the events.
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void attach(sim::Simulation& sim) { sim_ = &sim; }
  bool attached() const { return sim_ != nullptr; }

  /// Register a trace process (one per node); returns its pid. pid 1, the
  /// "sim" process, always exists.
  std::uint32_t process(std::string name);

  /// Register a permanently named thread lane under `pid`; returns its tid.
  std::uint32_t thread(std::uint32_t pid, std::string name);

  /// Node-id -> pid registry, so components keep using hw::NodeId values
  /// (obs depends only on sim). Unmapped nodes return 0 = "don't trace".
  void map_node(std::uint32_t node, std::uint32_t pid);
  std::uint32_t node_pid(std::uint32_t node) const;

  /// Open a span on an explicit lane. `name` and `cat` must be string
  /// literals (the tracer stores the pointers). `args` is an optional JSON
  /// object *body* fragment, e.g. "\"bytes\":4096".
  Span span(std::uint32_t pid, std::uint32_t tid, const char* name,
            const char* cat, SpanId parent = 0, std::string args = {});

  /// Open a span on a pooled lane of `kind` under `pid`; the lane is
  /// released when the span ends. Use for one span per coroutine task.
  /// `kind` must be a string literal too (the span keeps the pointer to
  /// return the lane; pools match kinds by content).
  Span task_span(std::uint32_t pid, const char* kind, const char* name,
                 const char* cat, SpanId parent = 0, std::string args = {});

  /// Record an instant event. Defaults to the "sim" process timeline lane.
  void instant(const char* name, const char* cat, std::string args = {},
               std::uint32_t pid = kSimPid, std::uint32_t tid = 1);

  // sim::TaskObserver — named Simulation::spawn()s become spans on pooled
  // "sim" process lanes.
  std::uint64_t on_task_start(const char* name) override;
  void on_task_end(std::uint64_t token) override;

  struct Event {
    char ph = 'X';  ///< 'X' complete span, 'i' instant
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    sim::Time start = 0;
    sim::Duration dur = 0;
    bool open = false;  ///< span not yet ended (closed at export time)
    SpanId id = 0;
    SpanId parent = 0;
    const char* name = "";
    const char* cat = "";
    std::string args;
  };

  const std::vector<Event>& events() const { return events_; }
  std::size_t span_count() const { return span_count_; }
  std::size_t instant_count() const { return instant_count_; }

  /// Serialize as Chrome trace_event JSON ({"traceEvents":[...]}). Spans
  /// still open are closed at the current sim time. Byte-deterministic for
  /// a deterministic run.
  std::string to_json() const;

  /// to_json() to a file; false on I/O failure.
  bool write_file(const std::string& path) const;

  /// pid of the built-in "sim" process.
  static constexpr std::uint32_t kSimPid = 1;

 private:
  friend class Span;

  sim::Time now() const { return sim_ ? sim_->now() : 0; }
  void end_span(std::size_t idx);
  std::uint32_t acquire_lane(std::uint32_t pid, const char* kind);
  void release_lane(std::uint32_t pid, std::uint32_t tid, const char* kind);

  struct Process {
    std::string name;
    std::uint32_t next_tid = 1;
    std::vector<std::pair<std::uint32_t, std::string>> threads;
  };

  /// Free pooled lanes for one (pid, kind), reused in LIFO order. A flat
  /// vector, not a map: a rig has a handful of (pid, kind) pairs and this
  /// sits on the per-span hot path — strcmp over short literals beats
  /// tree lookups with string keys by a wide margin.
  struct LanePool {
    std::uint32_t pid;
    const char* kind;
    std::vector<std::uint32_t> free;
  };

  sim::Simulation* sim_ = nullptr;
  std::vector<Process> processes_{{"sim", 2, {{1, "timeline"}}}};
  std::map<std::uint32_t, std::uint32_t> node_pid_;
  std::vector<LanePool> lane_pool_;
  std::vector<Event> events_;
  /// Span guards parked in on_task_start, keyed by their token (= span id).
  std::map<std::uint64_t, Span> open_tasks_;
  SpanId next_id_ = 1;
  std::size_t span_count_ = 0;
  std::size_t instant_count_ = 0;
};

}  // namespace csar::obs
