#include "obs/trace.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace csar::obs {

void Span::end() {
  if (t_ == nullptr) return;
  Tracer* t = t_;
  t_ = nullptr;
  t->end_span(idx_);
  if (kind_ != nullptr) t->release_lane(pid_, tid_, kind_);
}

std::uint32_t Tracer::process(std::string name) {
  processes_.push_back({std::move(name), 1, {}});
  return static_cast<std::uint32_t>(processes_.size());
}

std::uint32_t Tracer::thread(std::uint32_t pid, std::string name) {
  assert(pid >= 1 && pid <= processes_.size());
  Process& p = processes_[pid - 1];
  const std::uint32_t tid = p.next_tid++;
  p.threads.emplace_back(tid, std::move(name));
  return tid;
}

void Tracer::map_node(std::uint32_t node, std::uint32_t pid) {
  node_pid_[node] = pid;
}

std::uint32_t Tracer::node_pid(std::uint32_t node) const {
  auto it = node_pid_.find(node);
  return it == node_pid_.end() ? 0 : it->second;
}

std::uint32_t Tracer::acquire_lane(std::uint32_t pid, const char* kind) {
  for (LanePool& p : lane_pool_) {
    if (p.pid == pid && std::strcmp(p.kind, kind) == 0) {
      if (p.free.empty()) return thread(pid, kind);
      const std::uint32_t tid = p.free.back();
      p.free.pop_back();
      return tid;
    }
  }
  // First concurrent task of this kind at this depth: a fresh lane, named
  // after the kind (reuse keeps the name accurate).
  lane_pool_.push_back({pid, kind, {}});
  return thread(pid, kind);
}

void Tracer::release_lane(std::uint32_t pid, std::uint32_t tid,
                          const char* kind) {
  for (LanePool& p : lane_pool_) {
    if (p.pid == pid && std::strcmp(p.kind, kind) == 0) {
      p.free.push_back(tid);
      return;
    }
  }
}

Span Tracer::span(std::uint32_t pid, std::uint32_t tid, const char* name,
                  const char* cat, SpanId parent, std::string args) {
  const SpanId id = next_id_++;
  Event e;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.start = now();
  e.open = true;
  e.id = id;
  e.parent = parent;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  const std::size_t idx = events_.size();
  events_.push_back(std::move(e));
  ++span_count_;
  return Span(this, id, idx, pid, tid);
}

Span Tracer::task_span(std::uint32_t pid, const char* kind, const char* name,
                       const char* cat, SpanId parent, std::string args) {
  const std::uint32_t tid = acquire_lane(pid, kind);
  Span s = span(pid, tid, name, cat, parent, std::move(args));
  s.kind_ = kind;
  return s;
}

void Tracer::end_span(std::size_t idx) {
  Event& e = events_[idx];
  e.dur = now() - e.start;
  e.open = false;
}

void Tracer::instant(const char* name, const char* cat, std::string args,
                     std::uint32_t pid, std::uint32_t tid) {
  Event e;
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.start = now();
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  events_.push_back(std::move(e));
  ++instant_count_;
}

std::uint64_t Tracer::on_task_start(const char* name) {
  Span s = task_span(kSimPid, name, name, "task");
  const std::uint64_t token = s.id();
  open_tasks_.emplace(token, std::move(s));
  return token;
}

void Tracer::on_task_end(std::uint64_t token) {
  open_tasks_.erase(token);  // ~Span ends the span and releases the lane
}

namespace {

/// Integer-only microsecond rendering of an integer-ns time: "12.345".
/// Avoids floating-point formatting so traces are byte-stable everywhere.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string Tracer::to_json() const {
  std::string out;
  out.reserve(256 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    const Process& p = processes_[i];
    const std::uint32_t pid = static_cast<std::uint32_t>(i + 1);
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, p.name);
    out += "\"}}";
    for (const auto& [tid, tname] : p.threads) {
      sep();
      out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":";
      out += std::to_string(tid);
      out += ",\"args\":{\"name\":\"";
      append_escaped(out, tname);
      out += "\"}}";
    }
  }
  const sim::Time close_at = now();
  for (const Event& e : events_) {
    sep();
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_us(out, e.start);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, e.open ? close_at - e.start : e.dur);
    } else {
      out += ",\"s\":\"g\"";
    }
    out += ",\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.cat;
    out += "\",\"args\":{";
    if (e.ph == 'X') {
      out += "\"span\":";
      out += std::to_string(e.id);
      if (e.parent != 0) {
        out += ",\"parent\":";
        out += std::to_string(e.parent);
      }
      if (!e.args.empty()) out += ',';
    }
    out += e.args;
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace csar::obs
