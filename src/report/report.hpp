// Bench-harness output helpers: every figure/table reproduction prints a
// uniform banner (what is being reproduced, on which simulated testbed),
// the result table, and the qualitative EXPECT lines from the paper that
// the numbers should exhibit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace csar::report {

/// Print the experiment banner.
void banner(const std::string& experiment_id, const std::string& title,
            const std::string& setup);

/// Print the qualitative shapes the paper reports for this artifact.
void expectations(const std::vector<std::string>& lines);

/// Print a named result table (and its CSV form when CSAR_CSV is set).
void table(const std::string& caption, const TextTable& t);

/// Simple pass/fail line for a self-check on the reproduced shape.
void check(const std::string& what, bool ok);

/// Megabytes-per-second cell, one decimal.
std::string mbps(double bytes_per_sec);

}  // namespace csar::report
