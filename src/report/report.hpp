// Bench-harness output helpers: every figure/table reproduction prints a
// uniform banner (what is being reproduced, on which simulated testbed),
// the result table, and the qualitative EXPECT lines from the paper that
// the numbers should exhibit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace csar::report {

/// Print the experiment banner.
void banner(const std::string& experiment_id, const std::string& title,
            const std::string& setup);

/// Print the qualitative shapes the paper reports for this artifact.
void expectations(const std::vector<std::string>& lines);

/// Print a named result table (and its CSV form when CSAR_CSV is set).
void table(const std::string& caption, const TextTable& t);

/// Simple pass/fail line for a self-check on the reproduced shape. A failed
/// check also latches the process-wide failure flag below.
void check(const std::string& what, bool ok);

/// True once any check() in this process has failed.
bool any_check_failed();

/// Process exit status honouring the checks: 0 when every check passed,
/// 1 otherwise. Bench mains `return report::exit_code();` so CI catches a
/// reproduced shape drifting, not just a crash.
int exit_code();

/// Megabytes-per-second cell, one decimal.
std::string mbps(double bytes_per_sec);

}  // namespace csar::report
