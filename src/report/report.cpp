#include "report/report.hpp"

#include <cstdio>
#include <cstdlib>

namespace csar::report {

void banner(const std::string& experiment_id, const std::string& title,
            const std::string& setup) {
  std::printf("\n================================================================\n");
  std::printf("[%s] %s\n", experiment_id.c_str(), title.c_str());
  std::printf("setup: %s\n", setup.c_str());
  std::printf("================================================================\n");
}

void expectations(const std::vector<std::string>& lines) {
  for (const auto& l : lines) std::printf("EXPECT: %s\n", l.c_str());
}

void table(const std::string& caption, const TextTable& t) {
  std::printf("\n-- %s --\n", caption.c_str());
  t.print();
  if (std::getenv("CSAR_CSV") != nullptr) {
    std::printf("\ncsv:\n%s", t.to_csv().c_str());
  }
}

namespace {
bool g_check_failed = false;
}  // namespace

void check(const std::string& what, bool ok) {
  std::printf("CHECK %-60s %s\n", what.c_str(), ok ? "[ok]" : "[MISMATCH]");
  if (!ok) g_check_failed = true;
}

bool any_check_failed() { return g_check_failed; }

int exit_code() { return g_check_failed ? 1 : 0; }

std::string mbps(double bytes_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bytes_per_sec / 1e6);
  return buf;
}

}  // namespace csar::report
