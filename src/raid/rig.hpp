// Rig: a fully assembled CSAR deployment — simulation, cluster nodes,
// fabric, metadata manager, I/O servers and per-client CsarFs instances.
// Every test, benchmark and example builds one of these.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "hw/node.hpp"
#include "localfs/local_fs.hpp"
#include "net/fabric.hpp"
#include "pvfs/client.hpp"
#include "pvfs/io_server.hpp"
#include "pvfs/manager.hpp"
#include "raid/csar_fs.hpp"
#include "raid/policy.hpp"
#include "raid/recovery.hpp"
#include "raid/scheme.hpp"
#include "sim/simulation.hpp"

namespace csar::raid {

struct RigParams {
  hw::HwProfile profile = hw::profile_experimental2003();
  std::uint32_t nservers = 6;
  std::uint32_t nclients = 1;
  Scheme scheme = Scheme::hybrid;
  localfs::LocalFsParams fs;
  /// Server-side lock protocol switch (R5 NO LOCK also works client-side by
  /// not requesting locks; this hard-disables the server machinery).
  bool parity_locking = true;
  /// Parity-lock lease (see IoServerParams); 0 disables lease watchdogs.
  sim::Duration parity_lock_lease = sim::sec(1);
  /// Wire-level RPC batching (Op::batch coalescing of same-server requests
  /// and the per-parity-server batched lock+read phase). On by default;
  /// figure benches flip it off for the ablation baseline.
  bool rpc_batching = true;
  /// Default RPC policy installed on every client. The default is the
  /// legacy behaviour (wait forever, no retries); fault experiments set
  /// real deadlines + retry budgets here.
  pvfs::RpcPolicy rpc;
  /// Master seed for the clients' deterministic retry-jitter streams (each
  /// client gets its own derived stream so concurrent backoffs decorrelate
  /// but stay reproducible).
  std::uint64_t seed = 0x5EEDC5A2ULL;
  /// Per-file redundancy policy for the deployment: static path-prefix
  /// rules and the adaptive engine's knobs. The policy's default scheme is
  /// always overwritten with `scheme` above, so single-scheme setups keep
  /// configuring just that one field.
  PolicyParams policy;
};

class Rig {
 public:
  explicit Rig(const RigParams& params)
      : p(params), cluster(sim, params.profile), fabric(cluster) {
    PolicyParams pol = params.policy;
    pol.default_scheme = params.scheme;
    policy_ = std::make_unique<RedundancyPolicy>(std::move(pol));
    const hw::NodeId manager_node = cluster.add_client();
    manager = std::make_unique<pvfs::Manager>(cluster, fabric, manager_node);
    manager->start();

    pvfs::IoServerParams sp;
    sp.fs = params.fs;
    sp.parity_locking = params.parity_locking;
    sp.parity_lock_lease = params.parity_lock_lease;
    for (std::uint32_t s = 0; s < params.nservers; ++s) {
      const hw::NodeId node = cluster.add_server();
      servers.push_back(
          std::make_unique<pvfs::IoServer>(cluster, fabric, node, s, sp));
      servers.back()->start();
    }
    std::vector<pvfs::IoServer*> server_ptrs;
    for (auto& s : servers) server_ptrs.push_back(s.get());

    Rng seeder(params.seed);
    for (std::uint32_t c = 0; c < params.nclients; ++c) {
      const hw::NodeId node = cluster.add_client();
      clients.push_back(std::make_unique<pvfs::Client>(
          cluster, fabric, *manager, server_ptrs, node));
      clients.back()->set_rpc_policy(params.rpc);
      clients.back()->set_rpc_batching(params.rpc_batching);
      clients.back()->seed_retry_rng(seeder.next());
      fs.push_back(std::make_unique<CsarFs>(
          *clients.back(), CsarParams{params.scheme, policy_.get()}));
    }
  }

  ~Rig() {
    // Drain dispatcher processes so their coroutine frames are destroyed
    // before the channels they await on.
    stop_all();
    sim.run();
  }

  /// A layout matching this rig's server count and scheme (RAID4 uses the
  /// fixed parity placement, everything else the rotating one).
  pvfs::StripeLayout layout(std::uint32_t stripe_unit) const {
    return pvfs::StripeLayout{stripe_unit, p.nservers,
                              placement_for(p.scheme)};
  }

  CsarFs& client_fs(std::uint32_t c = 0) { return *fs[c]; }
  pvfs::Client& client(std::uint32_t c = 0) { return *clients[c]; }
  pvfs::IoServer& server(std::uint32_t s) { return *servers[s]; }

  /// The deployment-wide per-file policy every CsarFs, Recovery and
  /// coordinator built from this rig routes through.
  RedundancyPolicy& policy() { return *policy_; }
  const RedundancyPolicy& policy() const { return *policy_; }

  Recovery recovery() { return Recovery(*clients[0], policy_.get()); }

  /// A dedicated repair client on its own node, created on first use.
  /// Rebuild/scrub traffic issued through it gets its own NIC and RPC
  /// policy instead of competing for client 0's deadlines mid-workload.
  pvfs::Client& repair_client() {
    if (!repair_client_) {
      std::vector<pvfs::IoServer*> server_ptrs;
      for (auto& s : servers) server_ptrs.push_back(s.get());
      const hw::NodeId node = cluster.add_client();
      repair_client_ = std::make_unique<pvfs::Client>(
          cluster, fabric, *manager, server_ptrs, node);
      repair_client_->set_rpc_batching(p.rpc_batching);
      repair_client_->seed_retry_rng(Rng(p.seed).next() ^ 0x9E8A17ULL);
    }
    return *repair_client_;
  }

  Recovery repair_recovery() {
    return Recovery(repair_client(), policy_.get());
  }

  /// Drop every server's page cache (the paper's "contents removed from the
  /// cache" overwrite setup). Flush first for a realistic state.
  void drop_all_caches() {
    for (auto& s : servers) s->fs().drop_caches();
  }

  void stop_all() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& s : servers) s->stop();
    manager->stop();
  }

  RigParams p;
  sim::Simulation sim;
  hw::Cluster cluster;
  net::Fabric fabric;
  std::unique_ptr<pvfs::Manager> manager;
  std::vector<std::unique_ptr<pvfs::IoServer>> servers;
  std::vector<std::unique_ptr<pvfs::Client>> clients;
  std::vector<std::unique_ptr<CsarFs>> fs;

 private:
  std::unique_ptr<RedundancyPolicy> policy_;
  std::unique_ptr<pvfs::Client> repair_client_;
  bool stopped_ = false;
};

}  // namespace csar::raid
