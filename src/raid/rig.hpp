// Rig: a fully assembled CSAR deployment — simulation, cluster nodes,
// fabric, metadata manager, I/O servers and per-client CsarFs instances.
// Every test, benchmark and example builds one of these.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "hw/node.hpp"
#include "localfs/local_fs.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pvfs/client.hpp"
#include "pvfs/io_server.hpp"
#include "pvfs/manager.hpp"
#include "raid/csar_fs.hpp"
#include "raid/policy.hpp"
#include "raid/recovery.hpp"
#include "raid/scheme.hpp"
#include "sim/simulation.hpp"

namespace csar::raid {

struct RigParams {
  hw::HwProfile profile = hw::profile_experimental2003();
  std::uint32_t nservers = 6;
  std::uint32_t nclients = 1;
  Scheme scheme = Scheme::hybrid;
  localfs::LocalFsParams fs;
  /// Server-side lock protocol switch (R5 NO LOCK also works client-side by
  /// not requesting locks; this hard-disables the server machinery).
  bool parity_locking = true;
  /// Parity-lock lease (see IoServerParams); 0 disables lease watchdogs.
  sim::Duration parity_lock_lease = sim::sec(1);
  /// Wire-level RPC batching (Op::batch coalescing of same-server requests
  /// and the per-parity-server batched lock+read phase). On by default;
  /// figure benches flip it off for the ablation baseline.
  bool rpc_batching = true;
  /// Default RPC policy installed on every client. The default is the
  /// legacy behaviour (wait forever, no retries); fault experiments set
  /// real deadlines + retry budgets here.
  pvfs::RpcPolicy rpc;
  /// Master seed for the clients' deterministic retry-jitter streams (each
  /// client gets its own derived stream so concurrent backoffs decorrelate
  /// but stay reproducible).
  std::uint64_t seed = 0x5EEDC5A2ULL;
  /// Per-file redundancy policy for the deployment: static path-prefix
  /// rules and the adaptive engine's knobs. The policy's default scheme is
  /// always overwritten with `scheme` above, so single-scheme setups keep
  /// configuring just that one field.
  PolicyParams policy;
  /// Metadata-manager durability knobs (journaling on by default; the A12
  /// ablation flips it off for the legacy in-memory baseline).
  pvfs::ManagerParams manager;
};

class Rig {
 public:
  explicit Rig(const RigParams& params)
      : p(params), cluster(sim, params.profile), fabric(cluster) {
    PolicyParams pol = params.policy;
    pol.default_scheme = params.scheme;
    policy_ = std::make_unique<RedundancyPolicy>(std::move(pol));
    const hw::NodeId manager_node = cluster.add_manager();
    manager = std::make_unique<pvfs::Manager>(cluster, fabric, manager_node,
                                              params.manager);
    manager->start();

    pvfs::IoServerParams sp;
    sp.fs = params.fs;
    sp.parity_locking = params.parity_locking;
    sp.parity_lock_lease = params.parity_lock_lease;
    for (std::uint32_t s = 0; s < params.nservers; ++s) {
      const hw::NodeId node = cluster.add_server();
      servers.push_back(
          std::make_unique<pvfs::IoServer>(cluster, fabric, node, s, sp));
      servers.back()->start();
    }
    std::vector<pvfs::IoServer*> server_ptrs;
    for (auto& s : servers) server_ptrs.push_back(s.get());

    Rng seeder(params.seed);
    for (std::uint32_t c = 0; c < params.nclients; ++c) {
      const hw::NodeId node = cluster.add_client();
      clients.push_back(std::make_unique<pvfs::Client>(
          cluster, fabric, *manager, server_ptrs, node));
      clients.back()->set_rpc_policy(params.rpc);
      clients.back()->set_rpc_batching(params.rpc_batching);
      clients.back()->seed_retry_rng(seeder.next());
      fs.push_back(std::make_unique<CsarFs>(
          *clients.back(), CsarParams{params.scheme, policy_.get()}));
    }
  }

  ~Rig() {
    // Drain dispatcher processes so their coroutine frames are destroyed
    // before the channels they await on.
    stop_all();
    sim.run();
  }

  /// A layout matching this rig's server count and scheme (RAID4 uses the
  /// fixed parity placement, everything else the rotating one).
  pvfs::StripeLayout layout(std::uint32_t stripe_unit) const {
    return pvfs::StripeLayout{stripe_unit, p.nservers,
                              placement_for(p.scheme)};
  }

  CsarFs& client_fs(std::uint32_t c = 0) { return *fs[c]; }
  pvfs::Client& client(std::uint32_t c = 0) { return *clients[c]; }
  pvfs::IoServer& server(std::uint32_t s) { return *servers[s]; }

  /// The deployment-wide per-file policy every CsarFs, Recovery and
  /// coordinator built from this rig routes through.
  RedundancyPolicy& policy() { return *policy_; }
  const RedundancyPolicy& policy() const { return *policy_; }

  Recovery recovery() { return Recovery(*clients[0], policy_.get()); }

  /// A dedicated repair client on its own node, created on first use.
  /// Rebuild/scrub traffic issued through it gets its own NIC and RPC
  /// policy instead of competing for client 0's deadlines mid-workload.
  pvfs::Client& repair_client() {
    if (!repair_client_) {
      std::vector<pvfs::IoServer*> server_ptrs;
      for (auto& s : servers) server_ptrs.push_back(s.get());
      const hw::NodeId node = cluster.add_client();
      repair_client_ = std::make_unique<pvfs::Client>(
          cluster, fabric, *manager, server_ptrs, node);
      repair_client_->set_rpc_batching(p.rpc_batching);
      repair_client_->seed_retry_rng(Rng(p.seed).next() ^ 0x9E8A17ULL);
      if (obs::kEnabled && tracer_ != nullptr) {
        tracer_->map_node(node, tracer_->process("repair"));
      }
      if (obs::kEnabled && (tracer_ != nullptr || metrics_ != nullptr)) {
        repair_client_->set_obs(tracer_, metrics_);
      }
    }
    return *repair_client_;
  }

  // --- observability ---
  /// Attach a tracer and/or metrics registry to the whole deployment: the
  /// tracer is attached to the simulation clock, gets one trace process per
  /// node (manager, server N, client N), observes named simulator tasks,
  /// and is installed on the fabric, every client and every server. Either
  /// argument may be nullptr; call with both null to detach.
  void set_obs(obs::Tracer* tracer, obs::Registry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
    if (obs::kEnabled && tracer != nullptr) {
      tracer->attach(sim);
      tracer->map_node(manager->node_id(), tracer->process("manager"));
      for (std::uint32_t s = 0; s < servers.size(); ++s) {
        tracer->map_node(servers[s]->node_id(),
                         tracer->process("server " + std::to_string(s)));
      }
      for (std::uint32_t c = 0; c < clients.size(); ++c) {
        tracer->map_node(clients[c]->node_id(),
                         tracer->process("client " + std::to_string(c)));
      }
      sim.set_task_observer(tracer);
    } else {
      sim.set_task_observer(nullptr);
    }
    fabric.set_tracer(obs::kEnabled ? tracer : nullptr);
    manager->set_obs(tracer, metrics);
    for (auto& s : servers) s->set_obs(tracer, metrics);
    for (auto& c : clients) c->set_obs(tracer, metrics);
    if (repair_client_) repair_client_->set_obs(tracer, metrics);
  }
  obs::Tracer* tracer() { return obs::kEnabled ? tracer_ : nullptr; }
  obs::Registry* metrics() { return obs::kEnabled ? metrics_ : nullptr; }

  /// Dump end-of-run aggregates (lock/batch/rpc/cache/disk totals) into
  /// `reg`. Complements the histograms/counters recorded live on the hot
  /// path; call after the workload finishes.
  void export_metrics(obs::Registry& reg) {
    pvfs::IoServer::LockStats lk;
    pvfs::IoServer::BatchStats bt;
    std::uint64_t cache_hits = 0, cache_misses = 0;
    std::uint64_t disk_reads = 0, disk_writes = 0;
    double disk_busy = 0;
    for (auto& s : servers) {
      lk.acquisitions += s->lock_stats().acquisitions;
      lk.waits += s->lock_stats().waits;
      lk.wait_time += s->lock_stats().wait_time;
      lk.lease_expirations += s->lock_stats().lease_expirations;
      bt.batches += s->batch_stats().batches;
      bt.subs += s->batch_stats().subs;
      bt.merged_reads += s->batch_stats().merged_reads;
      hw::Node& n = cluster.node(s->node_id());
      if (n.cache() != nullptr) {
        cache_hits += n.cache()->stats().hits;
        cache_misses += n.cache()->stats().misses;
      }
      if (n.disk() != nullptr) {
        const auto d = n.disk()->stats();
        disk_reads += d.reads;
        disk_writes += d.writes;
        disk_busy += sim::to_seconds(d.busy_time);
      }
    }
    pvfs::RpcStats rpc;
    for (auto& c : clients) {
      rpc.sent += c->rpc_stats().sent;
      rpc.retries += c->rpc_stats().retries;
      rpc.timeouts += c->rpc_stats().timeouts;
      rpc.resets += c->rpc_stats().resets;
    }
    reg.counter("rig.lock_acquisitions").set(lk.acquisitions);
    reg.counter("rig.lock_waits").set(lk.waits);
    reg.counter("rig.lock_lease_expirations").set(lk.lease_expirations);
    reg.gauge("rig.lock_wait_seconds").set(sim::to_seconds(lk.wait_time));
    reg.counter("rig.batches").set(bt.batches);
    reg.counter("rig.batch_subs").set(bt.subs);
    reg.counter("rig.merged_reads").set(bt.merged_reads);
    reg.counter("rig.rpc_sent").set(rpc.sent);
    reg.counter("rig.rpc_retries").set(rpc.retries);
    reg.counter("rig.rpc_timeouts").set(rpc.timeouts);
    reg.counter("rig.rpc_resets").set(rpc.resets);
    reg.counter("rig.cache_hits").set(cache_hits);
    reg.counter("rig.cache_misses").set(cache_misses);
    reg.counter("rig.disk_reads").set(disk_reads);
    reg.counter("rig.disk_writes").set(disk_writes);
    reg.gauge("rig.disk_busy_seconds").set(disk_busy);
    const pvfs::ManagerStats& mg = manager->stats();
    const pvfs::JournalStats jn = manager->journal_stats();
    reg.counter("rig.mgr_served").set(mg.served);
    reg.counter("rig.mgr_dropped_replies").set(mg.dropped_replies);
    reg.counter("rig.mgr_dedup_hits").set(mg.dedup_hits);
    reg.counter("rig.mgr_crashes").set(mg.crashes);
    reg.counter("rig.mgr_replays").set(mg.replays);
    reg.counter("rig.mgr_replayed_records").set(mg.replayed_records);
    reg.counter("rig.mgr_journal_records").set(jn.records_appended);
    reg.counter("rig.mgr_journal_bytes").set(jn.bytes_appended);
    reg.counter("rig.mgr_checkpoints").set(jn.checkpoints);
    const EcStats& ec = policy().ec_stats();
    reg.counter("rig.ec_degraded_reads").set(ec.degraded_reads);
    reg.counter("rig.ec_fragments_fetched").set(ec.fragments_fetched);
    reg.counter("rig.ec_decode_bytes").set(ec.decode_bytes);
    reg.counter("rig.ec_encode_bytes").set(ec.encode_bytes);
    reg.counter("rig.ec_rebuild_decodes").set(ec.rebuild_decodes);
  }

  Recovery repair_recovery() {
    return Recovery(repair_client(), policy_.get());
  }

  /// Drop every server's page cache (the paper's "contents removed from the
  /// cache" overwrite setup). Flush first for a realistic state.
  void drop_all_caches() {
    for (auto& s : servers) s->fs().drop_caches();
  }

  void stop_all() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& s : servers) s->stop();
    manager->stop();
  }

  RigParams p;
  sim::Simulation sim;
  hw::Cluster cluster;
  net::Fabric fabric;
  std::unique_ptr<pvfs::Manager> manager;
  std::vector<std::unique_ptr<pvfs::IoServer>> servers;
  std::vector<std::unique_ptr<pvfs::Client>> clients;
  std::vector<std::unique_ptr<CsarFs>> fs;

 private:
  std::unique_ptr<RedundancyPolicy> policy_;
  std::unique_ptr<pvfs::Client> repair_client_;
  obs::Tracer* tracer_ = nullptr;     ///< not owned; see set_obs
  obs::Registry* metrics_ = nullptr;  ///< not owned; see set_obs
  bool stopped_ = false;
};

}  // namespace csar::raid
