#include "raid/policy.hpp"

namespace csar::raid {

Scheme RedundancyPolicy::assign(std::string_view name) const {
  for (const auto& r : p_.rules) {
    if (name.substr(0, r.prefix.size()) == r.prefix) return r.scheme;
  }
  return p_.default_scheme;
}

std::optional<RedundancyPolicy::Transition> RedundancyPolicy::recommend()
    const {
  const AdaptiveParams& a = p_.adaptive;
  if (!a.enabled) return std::nullopt;
  // Fault pressure is the gate: with a healthy cluster the scheme chosen at
  // create time stands. Once early-warning signals accumulate (latent sector
  // errors, a server flapping, RPC deadlines tripping), shrinking the next
  // rebuild becomes worth foreground migration traffic.
  const bool pressure =
      stats_.media_errors >= a.media_error_threshold ||
      stats_.down_transitions >= a.down_transition_threshold ||
      stats_.rpc_pressure >= a.rpc_pressure_threshold;
  if (!pressure) return std::nullopt;
  for (const auto& [h, t] : files_) {
    if (attempted_.contains(h)) continue;
    Scheme cur = t.last_scheme;
    if (auto it = overrides_.find(h); it != overrides_.end()) {
      cur = it->second.scheme;
    }
    // RAID0 has no redundancy to carry through a transition, and RAID4's
    // fixed parity placement does not transpose onto the rotating layouts;
    // both are left alone.
    if (cur == a.small_write_target || cur == Scheme::raid0 ||
        cur == Scheme::raid4) {
      continue;
    }
    const std::uint64_t total = t.full_bytes + t.partial_bytes;
    if (total < a.min_observed_bytes) continue;
    const bool small_write_heavy =
        static_cast<double>(t.partial_bytes) >=
        a.partial_ratio_threshold * static_cast<double>(total);
    if (small_write_heavy) {
      return Transition{h, cur, a.small_write_target};
    }
    // Multi-disk risk: with repeated down transitions a single-parity scheme
    // is one failure away from data loss during its own rebuild window.
    // Full-stripe-heavy files encode cheaply (no RMW on the common path), so
    // they move to the m>=2 erasure-code target. rs files already there (or
    // RAID1, whose rebuild is already minimal) are left alone.
    if (stats_.down_transitions >= a.multi_fault_threshold &&
        a.multi_fault_target.kind == SchemeKind::rs &&
        cur != a.multi_fault_target && cur.kind != SchemeKind::rs &&
        cur != Scheme::raid1 && uses_parity(cur)) {
      return Transition{h, cur, a.multi_fault_target};
    }
  }
  return std::nullopt;
}

}  // namespace csar::raid
