// SchemeMigrator: online per-file scheme transitions, flip-last.
//
// A migration rebuilds the *target* scheme's base redundancy into a fresh
// redundancy generation while clients keep writing under the old scheme —
// no quiesce, no locks. The protocol mirrors the RebuildCoordinator's
// write-safe rebuild loop:
//
//  1. Copy pass: Recovery::build_redundancy reads the raw data files and
//     writes generation N+1 mirrors/parity, paced by an optional token
//     bucket. The old generation and the overflow overlay stay
//     authoritative throughout.
//  2. Converge: a CsarFs::WriteListener records every write's byte range in
//     a per-handle dirty IntervalSet; after each pass only the dirtied
//     regions are re-copied (unthrottled — that traffic is bounded by the
//     foreground write rate). The loop exits when a pass finds nothing
//     dirty and no write is in flight.
//  3. Flip: RedundancyPolicy::set_override switches the file to the target
//     scheme at generation N+1. The convergence check and the flip run with
//     no await in between, which under the cooperative single-threaded
//     scheduler makes them atomic: no write can start under the old scheme
//     after the check and land after the flip.
//  4. Persist + GC: the new scheme tag and generation are recorded at the
//     manager (Client::set_scheme) so later opens see them, then — after a
//     grace period for straggler redundancy reads — the old generation is
//     dropped on every server (Op::drop_red, idempotent).
//
// Migrating away from Hybrid never touches the overflow files: the overlay
// stays live over the new base redundancy (see RedundancyPolicy::
// overflow_possible), so no client-visible byte can change during or after
// the transition.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/interval_set.hpp"
#include "raid/csar_fs.hpp"
#include "raid/rig.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::raid {

struct MigrateParams {
  /// Token-bucket cap on first-pass copy traffic in bytes/sec (0 =
  /// uncapped). Dirty re-copy passes are exempt, as in the rebuild path.
  double rate_cap = 0.0;
  std::uint64_t burst = 1 << 20;
  /// Convergence-wait re-sample cadence and adaptive decision cadence.
  sim::Duration poll = sim::ms(1);
  sim::Duration decision_interval = sim::ms(250);
  /// Bound on copy passes per migration (initial + dirty re-copies).
  std::uint32_t max_passes = 64;
  /// Per-migration time budget; exceeded ⇒ the attempt fails and the file
  /// stays on its old scheme (generation N+1 is dropped).
  sim::Duration give_up = sim::sec(120);
  /// Delay between the flip and dropping the old generation, covering
  /// redundancy reads issued just before the flip.
  sim::Duration drop_grace = sim::ms(50);
  /// RPC policy for migration traffic (copies run on the rig's dedicated
  /// repair client; see RebuildParams::rpc for why these are generous).
  pvfs::RpcPolicy rpc{sim::sec(30), 2, sim::ms(50), 0.5};
};

struct MigrateStats {
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_failed = 0;
  std::uint64_t passes = 0;         ///< copy passes run (initial + re-copy)
  std::uint64_t recopy_passes = 0;  ///< passes re-copying dirtied regions
  std::uint64_t dirty_bytes = 0;    ///< concurrent-write bytes tracked
  std::uint64_t old_gens_dropped = 0;  ///< drop_red fan-outs completed
  std::uint64_t stale_persists = 0;    ///< set_scheme fenced off post-crash
  std::uint64_t reconcile_resumed = 0;  ///< flips re-persisted + GC'd
  std::uint64_t reconcile_adopted = 0;  ///< manager state adopted locally
  bool ok = true;  ///< false once any migration attempt failed
};

class SchemeMigrator final : public CsarFs::WriteListener {
 public:
  SchemeMigrator(Rig& rig, MigrateParams params = {})
      : rig_(&rig), p_(params) {}
  ~SchemeMigrator() override { stop(); }
  SchemeMigrator(const SchemeMigrator&) = delete;
  SchemeMigrator& operator=(const SchemeMigrator&) = delete;

  /// Register a file the migrator may transition. The manager path `name`
  /// is needed to persist the new scheme tag; `size` bounds copy scans.
  /// Re-tracking a handle raises the size.
  void track(std::string name, const pvfs::OpenFile& f, std::uint64_t size);

  /// Attach write listeners on every CsarFs of the rig and spawn the
  /// supervisor (RPC-pressure sampling + adaptive decisions).
  void start();

  /// Detach and let the supervisor exit at its next tick. In-flight
  /// migrations run to completion.
  void stop();

  /// Act on RedundancyPolicy::recommend() from the supervisor loop.
  void enable_adaptive() { adaptive_ = true; }

  /// Manually request a migration of a tracked handle (spawned async).
  /// Returns false — and spawns nothing — if the handle is unknown, already
  /// migrating, or the target scheme does not fit the deployment; true means
  /// the migration task was spawned (callers budgeting transitions can count
  /// on exactly one started/failed/completed event following).
  bool request(std::uint64_t handle, Scheme to);

  /// True when no migration is running.
  bool idle() const { return active_ == 0; }

  /// Number of migrations currently in flight.
  std::uint32_t active() const { return active_; }

  /// Fleet-level transition-IO budget: when set, initial copy passes of
  /// *every* migration draw from this one bucket (shared across concurrent
  /// migrations) instead of a per-migration bucket built from rate_cap.
  /// Not owned; clear with nullptr. Dirty re-copy passes stay exempt.
  void set_shared_bucket(sim::TokenBucket* b) { shared_bucket_ = b; }
  sim::TokenBucket* shared_bucket() const { return shared_bucket_; }

  /// Post-replay reconciliation: cross-check the manager's durable scheme
  /// tag/generation for every tracked file against the live (in-memory
  /// policy + on-server redundancy) state, and repair whichever side is
  /// behind. Call after a manager restart:
  ///  - live generation ahead (crash landed between flip and persist): the
  ///    flip stands — re-persist it under the current incarnation, then GC
  ///    the superseded generation (resume; `reconcile_resumed`).
  ///  - manager generation ahead (this process lost the flip): adopt the
  ///    durable tag via a policy override (`reconcile_adopted`).
  ///  - equal: sweep partial next-generation redundancy a crashed copy pass
  ///    may have left on the servers (idempotent drop_red).
  /// Files with a migration currently in flight are skipped.
  sim::Task<void> reconcile();

  const MigrateStats& stats() const { return stats_; }
  const MigrateParams& params() const { return p_; }

  // CsarFs::WriteListener — synchronous, from the writing coroutines.
  void on_write_begin(const pvfs::OpenFile& f) override;
  void on_write_end(const pvfs::OpenFile& f, std::uint64_t off,
                    std::uint64_t len, bool ok) override;

 private:
  struct Tracked {
    std::string name;
    pvfs::OpenFile f;
    std::uint64_t size = 0;
    bool migrating = false;
    std::uint32_t writes_in_flight = 0;
    /// Regions written since the migration's last copy pass snapshot
    /// (global file offsets). Only populated while migrating.
    IntervalSet dirty;
  };

  sim::Simulation& sim() const { return rig_->sim; }

  sim::Task<void> supervisor(std::uint64_t my_gen);
  sim::Task<void> migrate_task(std::uint64_t handle, Scheme to);

  Rig* rig_;
  MigrateParams p_;
  std::map<std::uint64_t, Tracked> files_;
  MigrateStats stats_;
  std::uint64_t gen_ = 0;
  std::uint32_t active_ = 0;
  std::uint64_t rpc_pressure_seen_ = 0;  ///< last sampled timeouts+resets
  sim::TokenBucket* shared_bucket_ = nullptr;  ///< see set_shared_bucket
  bool running_ = false;
  bool attached_ = false;
  bool adaptive_ = false;
};

}  // namespace csar::raid
