#include "raid/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/sync.hpp"

namespace csar::raid {

namespace {
using pvfs::Op;
using pvfs::Request;
using pvfs::StripeLayout;

bool contains(const std::vector<std::uint32_t>& v, std::uint32_t s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// Server holding fragment `frag` of rs group g (data fragments [0,k),
/// coding fragments [k, k+m)).
std::uint32_t rs_fragment_server(const StripeLayout& lay, std::uint32_t k,
                                 std::uint64_t g, std::uint32_t frag) {
  return frag < k ? lay.rs_data_server(g, k, frag)
                  : lay.rs_coding_server(g, k, frag - k);
}

/// Read request for columns [c0, c0+len) of fragment `frag` of rs group g:
/// raw data-file read for data fragments, redundancy-file read at the
/// group's slot for coding fragments.
Request rs_fragment_read(const pvfs::OpenFile& f, const StripeLayout& lay,
                         std::uint32_t k, std::uint32_t gen, std::uint64_t g,
                         std::uint32_t frag, std::uint64_t c0,
                         std::uint64_t len) {
  Request r;
  r.handle = f.handle;
  r.len = len;
  r.su = lay.stripe_unit;
  if (frag < k) {
    r.op = Op::read_data_raw;
    r.off = lay.local_unit(g * k + frag) * lay.su() + c0;
  } else {
    r.op = Op::read_red;
    r.off = lay.rs_coding_local_off(g) + c0;
    r.red_gen = gen;
  }
  return r;
}
}  // namespace

sim::Task<Result<Buffer>> Recovery::reconstruct_base(const pvfs::OpenFile& f,
                                                     std::uint32_t failed,
                                                     std::uint64_t global_off,
                                                     std::uint64_t len) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint64_t u_failed = layout.unit_of(global_off);
  assert(layout.server_of_unit(u_failed) == failed);
  assert(layout.unit_of(global_off + len - 1) == u_failed &&
         "piece must lie within one stripe unit");
  const std::uint64_t g = layout.group_of_unit(u_failed);
  const std::uint64_t c0 = global_off % su;

  std::vector<std::pair<std::uint32_t, Request>> reads;
  {
    Request r;
    r.op = Op::read_red;
    r.handle = f.handle;
    r.off = layout.parity_local_off(g) + c0;
    r.len = len;
    r.lock = false;
    r.su = layout.stripe_unit;
    r.red_gen = red_gen_of(f);
    reads.emplace_back(layout.parity_server(g), std::move(r));
  }
  for (std::uint64_t u = g * (layout.n() - 1); u < (g + 1) * (layout.n() - 1);
       ++u) {
    if (u == u_failed) continue;
    Request r;
    r.op = Op::read_data_raw;
    r.handle = f.handle;
    r.off = layout.local_unit(u) * su + c0;
    r.len = len;
    reads.emplace_back(layout.server_of_unit(u), std::move(r));
  }
  auto resps = co_await client_->rpc_all(std::move(reads));
  Buffer out;
  bool first = true;
  for (auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "reconstruct_base"};
    if (first) {
      out = std::move(resp.data);
      first = false;
    } else if (out.materialized() == resp.data.materialized()) {
      out.xor_with(resp.data);
    } else {
      out = Buffer::phantom(len);
    }
  }
  // Charge the client for the reconstruction XOR.
  auto& node = client_->cluster().node(client_->node_id());
  co_await node.mem().occupy(sim::transfer_time(
      len * resps.size(), node.params().xor_bytes_per_sec));
  co_return out;
}

sim::Task<Result<Buffer>> Recovery::reconstruct_piece(const pvfs::OpenFile& f,
                                                      std::uint32_t failed,
                                                      std::uint64_t global_off,
                                                      std::uint64_t len) {
  const StripeLayout& layout = f.layout;
  const std::uint32_t successor = (failed + 1) % layout.n();
  const std::uint64_t local = layout.local_off(global_off);
  const Scheme sch = scheme_of(f);
  if (sch == Scheme::raid0) {
    co_return Error{Errc::server_failed, "RAID0 cannot reconstruct"};
  }
  Buffer out;
  if (sch == Scheme::raid1) {
    // The mirror of the failed server's blocks lives at the same local
    // offsets in the successor's redundancy file.
    Request r;
    r.op = Op::read_red;
    r.handle = f.handle;
    r.off = local;
    r.len = len;
    r.su = layout.stripe_unit;
    r.red_gen = red_gen_of(f);
    auto resp = co_await client_->rpc(successor, std::move(r));
    if (!resp.ok) co_return Error{resp.err, "raid1 mirror read"};
    out = std::move(resp.data);
  } else {
    auto base = co_await reconstruct_base(f, failed, global_off, len);
    if (!base.ok()) co_return base;
    out = std::move(base.value());
  }
  // Overlay the newest partial-stripe data from the mirrored overflow
  // copies on the successor. This applies beyond Scheme::hybrid: a file
  // migrated away from Hybrid keeps its overflow overlay live (the new
  // base redundancy covers the raw data files only), so its reconstruction
  // needs the same overlay. Never-Hybrid files skip the extra read.
  if (overlay_overflow(f)) {
    Request r;
    r.op = Op::read_mirror;
    r.handle = f.handle;
    r.off = local;
    r.len = len;
    r.owner = failed;
    auto resp = co_await client_->rpc(successor, std::move(r));
    if (!resp.ok) co_return Error{resp.err, "mirror overflow read"};
    for (const auto& piece : resp.pieces) {
      if (out.materialized() && piece.data.materialized()) {
        out.write_at(piece.local_off - local, piece.data);
      } else {
        out = Buffer::phantom(len);
      }
    }
  }
  co_return out;
}

sim::Task<Result<Buffer>> Recovery::reconstruct_rs(
    const pvfs::OpenFile& f, Scheme sch, std::uint64_t g, std::uint32_t target,
    std::uint64_t c0, std::uint64_t len, const std::vector<std::uint32_t>& down,
    bool for_rebuild) {
  const StripeLayout& layout = f.layout;
  const CodeSpec spec = sch.code(layout);
  const std::uint32_t k = spec.k;
  const std::uint32_t gen = red_gen_of(f);
  // The minimal k-subset, deterministically: data fragments first (their
  // reads spread over the group's own servers and most coefficients are
  // cheap), then coding fragments, both ascending. Exactly k fragments are
  // fetched — never more — which is the degraded-read cost the A14 ablation
  // measures.
  std::vector<std::uint32_t> present;
  for (std::uint32_t frag = 0;
       frag < spec.fragments() && present.size() < k; ++frag) {
    if (frag == target) continue;  // the fragment being (re)built
    if (contains(down, rs_fragment_server(layout, k, g, frag))) continue;
    present.push_back(frag);
  }
  if (present.size() < k) {
    co_return Error{Errc::server_failed, "rs: fewer than k live fragments"};
  }
  const auto coeffs = rs_reconstruct_coeffs(spec, present, target);
  std::vector<std::pair<std::uint32_t, Request>> reads;
  reads.reserve(k);
  for (const std::uint32_t frag : present) {
    reads.emplace_back(rs_fragment_server(layout, k, g, frag),
                       rs_fragment_read(f, layout, k, gen, g, frag, c0, len));
  }
  auto resps = co_await client_->rpc_all(std::move(reads));
  bool phantom = false;
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "rs fragment read", resp.server};
    if (!resp.data.materialized()) phantom = true;
  }
  Buffer out = phantom ? Buffer::phantom(len) : Buffer::real(len);
  if (!phantom) {
    auto dst = out.mutable_bytes();
    for (std::size_t r = 0; r < resps.size(); ++r) {
      gf_muladd_region(dst, resps[r].data.bytes(), coeffs[r]);
    }
  }
  // Decode cost: k fragment-sized inputs through the GF kernel on the
  // recovering client (same memory-pipeline charge as reconstruct_base).
  auto& node = client_->cluster().node(client_->node_id());
  co_await node.mem().occupy(
      sim::transfer_time(len * k, node.params().xor_bytes_per_sec));
  if (policy_ != nullptr) {
    if (for_rebuild) {
      policy_->note_ec_rebuild_decode(k, len * k);
    } else {
      policy_->note_ec_degraded_read(k, len * k);
    }
  }
  co_return out;
}

sim::Task<Result<Buffer>> Recovery::reconstruct_rs_piece(
    const pvfs::OpenFile& f, Scheme sch, const std::vector<std::uint32_t>& down,
    std::uint64_t global_off, std::uint64_t len) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint64_t u = layout.unit_of(global_off);
  assert(layout.unit_of(global_off + len - 1) == u &&
         "piece must lie within one stripe unit");
  const std::uint32_t k = sch.k;
  const std::uint64_t g = layout.rs_group_of_unit(u, k);
  auto base = co_await reconstruct_rs(f, sch, g,
                                      static_cast<std::uint32_t>(u % k),
                                      global_off % su, len, down,
                                      /*for_rebuild=*/false);
  if (!base.ok()) co_return base;
  Buffer out = std::move(base.value());
  if (overlay_overflow(f)) {
    // A file migrated onto rs from Hybrid keeps its overflow overlay live;
    // the mirror copies on the owner's successor are the only ones left
    // while the owner is down.
    const std::uint32_t owner = layout.server_of_unit(u);
    const std::uint32_t successor = (owner + 1) % layout.n();
    if (contains(down, successor)) {
      co_return Error{Errc::server_failed,
                      "rs overlay: owner and successor both down"};
    }
    const std::uint64_t local = layout.local_off(global_off);
    Request r;
    r.op = Op::read_mirror;
    r.handle = f.handle;
    r.off = local;
    r.len = len;
    r.owner = owner;
    auto resp = co_await client_->rpc(successor, std::move(r));
    if (!resp.ok) co_return Error{resp.err, "mirror overflow read"};
    for (const auto& piece : resp.pieces) {
      if (out.materialized() && piece.data.materialized()) {
        out.write_at(piece.local_off - local, piece.data);
      } else {
        out = Buffer::phantom(len);
      }
    }
  }
  co_return out;
}

sim::Task<Result<Buffer>> Recovery::degraded_read(const pvfs::OpenFile& f,
                                                  std::uint64_t off,
                                                  std::uint64_t len,
                                                  std::uint32_t failed) {
  if (const Scheme sch = scheme_of(f); sch.kind == SchemeKind::rs) {
    std::vector<std::uint32_t> down;
    down.push_back(failed);
    co_return co_await degraded_read_rs(f, sch, off, len, std::move(down));
  }
  if (len == 0) co_return Buffer::real(0);
  Buffer out = Buffer::real(len);
  bool phantom = false;
  bool error = false;
  Error first_error;
  std::vector<sim::Task<void>> tasks;
  for (const auto& e : f.layout.decompose(off, len)) {
    tasks.push_back(
        [](Recovery* self, const pvfs::OpenFile* file,
           StripeLayout::Extent ext, std::uint32_t fsrv, std::uint64_t base,
           Buffer* sink, bool* phant, bool* err,
           Error* ferr) -> sim::Task<void> {
          Result<Buffer> piece = Buffer::real(0);
          if (ext.server == fsrv) {
            piece = co_await self->reconstruct_piece(*file, fsrv,
                                                     ext.global_off, ext.len);
          } else {
            Request r;
            r.op = Op::read_data;
            r.handle = file->handle;
            r.off = ext.local_off;
            r.len = ext.len;
            r.su = file->layout.stripe_unit;
            auto resp = co_await self->client_->rpc(ext.server, std::move(r));
            piece = resp.ok ? Result<Buffer>(std::move(resp.data))
                            : Result<Buffer>(Error{resp.err, "read"});
          }
          if (!piece.ok()) {
            if (!*err) *ferr = piece.error();
            *err = true;
            co_return;
          }
          if (!piece.value().materialized()) {
            *phant = true;
          } else if (sink->materialized()) {
            sink->write_at(ext.global_off - base, piece.value());
          }
        }(this, &f, e, failed, off, &out, &phantom, &error, &first_error));
  }
  co_await sim::when_all(client_->cluster().sim(), std::move(tasks));
  if (error) co_return first_error;
  if (phantom) co_return Buffer::phantom(len);
  co_return out;
}

sim::Task<Result<Buffer>> Recovery::degraded_read(
    const pvfs::OpenFile& f, std::uint64_t off, std::uint64_t len,
    std::vector<std::uint32_t> failed) {
  if (failed.empty()) co_return co_await client_->read(f, off, len);
  const Scheme sch = scheme_of(f);
  if (sch.kind == SchemeKind::rs) {
    co_return co_await degraded_read_rs(f, sch, off, len, std::move(failed));
  }
  if (failed.size() == 1) {
    co_return co_await degraded_read(f, off, len, failed.front());
  }
  co_return Error{Errc::server_failed,
                  "multiple concurrent failures exceed the scheme's "
                  "redundancy"};
}

sim::Task<Result<Buffer>> Recovery::degraded_read_rs(
    const pvfs::OpenFile& f, Scheme sch, std::uint64_t off, std::uint64_t len,
    std::vector<std::uint32_t> failed) {
  if (len == 0) co_return Buffer::real(0);
  if (failed.size() > sch.m) {
    co_return Error{Errc::server_failed,
                    "rs: more concurrent failures than coding fragments"};
  }
  Buffer out = Buffer::real(len);
  bool phantom = false;
  bool error = false;
  Error first_error;
  std::vector<sim::Task<void>> tasks;
  for (const auto& e : f.layout.decompose(off, len)) {
    tasks.push_back(
        [](Recovery* self, const pvfs::OpenFile* file, Scheme sch,
           StripeLayout::Extent ext, const std::vector<std::uint32_t>* down,
           std::uint64_t base, Buffer* sink, bool* phant, bool* err,
           Error* ferr) -> sim::Task<void> {
          Result<Buffer> piece = Buffer::real(0);
          if (contains(*down, ext.server)) {
            piece = co_await self->reconstruct_rs_piece(
                *file, sch, *down, ext.global_off, ext.len);
          } else {
            Request r;
            r.op = Op::read_data;
            r.handle = file->handle;
            r.off = ext.local_off;
            r.len = ext.len;
            r.su = file->layout.stripe_unit;
            auto resp = co_await self->client_->rpc(ext.server, std::move(r));
            piece = resp.ok ? Result<Buffer>(std::move(resp.data))
                            : Result<Buffer>(Error{resp.err, "read"});
          }
          if (!piece.ok()) {
            if (!*err) *ferr = piece.error();
            *err = true;
            co_return;
          }
          if (!piece.value().materialized()) {
            *phant = true;
          } else if (sink->materialized()) {
            sink->write_at(ext.global_off - base, piece.value());
          }
        }(this, &f, sch, e, &failed, off, &out, &phantom, &error,
          &first_error));
  }
  co_await sim::when_all(client_->cluster().sim(), std::move(tasks));
  if (error) co_return first_error;
  if (phantom) co_return Buffer::phantom(len);
  co_return out;
}

namespace {

/// A partial-stripe segment [start, end) of a degraded write.
struct Seg {
  std::uint64_t start;
  std::uint64_t end;
};

/// Overlay the new bytes of `seg` (taken from `data`, which starts at file
/// offset `off`) that fall into stripe unit `u` onto `after`, a buffer
/// holding that unit's columns starting at column `c0`.
void overlay_new(const StripeLayout& layout, std::uint64_t off,
                 const Buffer& data, const Seg& seg, std::uint64_t u,
                 std::uint64_t c0, Buffer& after) {
  for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
    if (layout.unit_of(e.global_off) != u) continue;
    after.write_at(e.global_off % layout.su() - c0,
                   data.slice(e.global_off - off, e.len));
  }
}

}  // namespace

sim::Task<Result<void>> Recovery::degraded_write(const pvfs::OpenFile& f,
                                                 std::uint64_t off,
                                                 Buffer data,
                                                 std::uint32_t failed) {
  const StripeLayout& layout = f.layout;
  const std::uint32_t n = layout.n();
  const std::uint64_t su = layout.su();
  const std::uint64_t len = data.size();
  if (len == 0) co_return Result<void>::success();
  const Scheme sch = scheme_of(f);
  if (sch.kind == SchemeKind::rs) {
    std::vector<std::uint32_t> down;
    down.push_back(failed);
    co_return co_await degraded_write_rs(f, sch, off, std::move(data),
                                         std::move(down));
  }
  const std::uint32_t gen = red_gen_of(f);

  if (sch == Scheme::raid0) {
    for (const auto& e : layout.decompose(off, len)) {
      if (e.server == failed) {
        co_return Error{Errc::server_failed, "RAID0 degraded write"};
      }
    }
    co_return co_await client_->write_striped(f, off, data);
  }

  if (sch == Scheme::raid1) {
    // Update whichever of the two copies is alive; the rebuild restores the
    // other from it. The overflow invalidations are free no-ops for pure
    // RAID1 files and keep an ex-Hybrid file's overlay from shadowing these
    // in-place bytes.
    std::vector<std::pair<std::uint32_t, Request>> reqs;
    for (const auto& e : layout.decompose_merged(off, len)) {
      Buffer payload =
          pvfs::Client::gather_for_server(layout, off, data, e.server);
      if (e.server != failed) {
        Request w;
        w.op = Op::write_data;
        w.handle = f.handle;
        w.off = e.local_off;
        w.payload = payload.slice(0, payload.size());
        w.su = layout.stripe_unit;
        w.inval_own = Interval{e.local_off, e.local_off + e.len};
        reqs.emplace_back(e.server, std::move(w));
      }
      const std::uint32_t mirror = (e.server + 1) % n;
      if (mirror != failed) {
        Request m;
        m.op = Op::write_red;
        m.handle = f.handle;
        m.off = e.local_off;
        m.payload = std::move(payload);
        m.su = layout.stripe_unit;
        m.red_gen = gen;
        m.inval_mirror = Interval{e.local_off, e.local_off + e.len};
        reqs.emplace_back(mirror, std::move(m));
      }
    }
    auto resps = co_await client_->rpc_all(std::move(reqs));
    for (const auto& resp : resps) {
      if (!resp.ok) co_return Error{resp.err, "raid1 degraded write"};
    }
    co_return Result<void>::success();
  }

  // Parity schemes (RAID5 variants and the Hybrid full-stripe path share
  // the same degraded logic; Hybrid's partial path differs below). `inval`
  // extends the overflow invalidations Hybrid needs to ex-Hybrid files
  // migrated onto an in-place parity scheme; never-Hybrid files skip them.
  const auto ws = layout.split_write(off, len);
  const bool hybrid = sch == Scheme::hybrid;
  const bool inval = overlay_overflow(f);
  std::vector<std::pair<std::uint32_t, Request>> writes;

  // --- full groups: compute fresh parity; the failed data unit's content
  //     is representable only through the parity, so the parity write is
  //     what makes the write durable. ---
  if (ws.full_end > ws.full_start) {
    for (std::uint64_t g = ws.full_start / layout.stripe_width();
         g < ws.full_end / layout.stripe_width(); ++g) {
      const std::uint32_t ps = layout.parity_server(g);
      if (ps != failed) {
        Buffer parity = data.materialized() ? Buffer::real(su)
                                            : Buffer::phantom(su);
        for (std::uint64_t pos = layout.group_start(g);
             pos < layout.group_end(g); pos += su) {
          if (data.materialized()) parity.xor_with(data.slice(pos - off, su));
        }
        Request w;
        w.op = Op::write_red;
        w.handle = f.handle;
        w.off = layout.parity_local_off(g);
        w.payload = std::move(parity);
        w.su = layout.stripe_unit;
        w.red_gen = gen;
        if (inval) {
          // The parity server holds no data unit of g, but it may hold
          // mirror overflow entries for its predecessor's unit (crucially,
          // when the predecessor is the *failed* server whose new content
          // now lives only in this parity): invalidate them here, exactly
          // as the normal write path does.
          const std::uint32_t prev = (ps + n - 1) % n;
          for (std::uint64_t v = g * (n - 1); v < (g + 1) * (n - 1); ++v) {
            if (layout.server_of_unit(v) == prev) {
              w.inval_mirror = {layout.local_unit(v) * su,
                                layout.local_unit(v) * su + su};
            }
          }
        }
        writes.emplace_back(ps, std::move(w));
      }
      for (std::uint64_t u = g * (n - 1); u < (g + 1) * (n - 1); ++u) {
        const std::uint32_t s = layout.server_of_unit(u);
        if (s == failed) continue;
        Request w;
        w.op = Op::write_data;
        w.handle = f.handle;
        w.off = layout.local_unit(u) * su;
        w.payload = data.slice(u * su - off, su);
        w.su = layout.stripe_unit;
        if (inval) {
          w.inval_own = {w.off, w.off + su};
          // Mirror entries this server holds for its (possibly failed)
          // predecessor within the same group.
          const std::uint32_t prev = (s + n - 1) % n;
          for (std::uint64_t v = g * (n - 1); v < (g + 1) * (n - 1); ++v) {
            if (layout.server_of_unit(v) == prev) {
              w.inval_mirror = {layout.local_unit(v) * su,
                                layout.local_unit(v) * su + su};
            }
          }
        }
        writes.emplace_back(s, std::move(w));
      }
    }
  }

  // --- partial segments (ascending group order, as in §5.1) ---
  std::vector<Seg> segs;
  if (ws.head_end > ws.head_start) segs.push_back({ws.head_start, ws.head_end});
  if (ws.tail_end > ws.tail_start) segs.push_back({ws.tail_start, ws.tail_end});

  if (hybrid) {
    // Partial stripes: primary + mirror overflow copies; write whichever of
    // the pair is alive.
    for (const auto& seg : segs) {
      for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
        Buffer piece = data.slice(e.global_off - off, e.len);
        if (e.server != failed) {
          Request primary;
          primary.op = Op::write_overflow;
          primary.handle = f.handle;
          primary.off = e.local_off;
          primary.payload = piece.slice(0, piece.size());
          primary.owner = e.server;
          primary.su = layout.stripe_unit;
          writes.emplace_back(e.server, std::move(primary));
        }
        const std::uint32_t mirror_srv = (e.server + 1) % n;
        if (mirror_srv != failed) {
          Request mirror;
          mirror.op = Op::write_overflow;
          mirror.handle = f.handle;
          mirror.off = e.local_off;
          mirror.payload = std::move(piece);
          mirror.owner = e.server;
          mirror.mirror = true;
          mirror.su = layout.stripe_unit;
          writes.emplace_back(mirror_srv, std::move(mirror));
        }
      }
    }
  } else {
    // RAID5: degraded partial stripes use reconstruct-write — read the old
    // parity (locked) plus every surviving unit's columns, rebuild the lost
    // unit's old content, overlay the new data, and recompute the parity
    // outright.
    const bool locking = sch != Scheme::raid5_nolock;
    for (const auto& seg : segs) {
      const std::uint64_t g = layout.group_of_off(seg.start);
      const std::uint32_t ps = layout.parity_server(g);
      // Column range: the whole span touched within the group.
      std::uint64_t c0 = su;
      std::uint64_t c1 = 0;
      for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
        c0 = std::min(c0, e.global_off % su);
        c1 = std::max(c1, e.global_off % su + e.len);
      }

      if (ps == failed) {
        // Parity lost: just update the surviving data (the rebuild will
        // recompute the parity from it). A write to a lost *data* unit in
        // this group would be unrecordable — report it.
        for (const auto& e :
             layout.decompose(seg.start, seg.end - seg.start)) {
          if (e.server == failed) {
            co_return Error{Errc::server_failed,
                            "degraded write to lost unit with lost parity"};
          }
          Request w;
          w.op = Op::write_data;
          w.handle = f.handle;
          w.off = e.local_off;
          w.payload = data.slice(e.global_off - off, e.len);
          w.su = layout.stripe_unit;
          if (inval) {
            w.inval_own = Interval{e.local_off, e.local_off + e.len};
            const std::uint32_t ms = (e.server + 1) % n;
            if (ms != failed) {
              Request iv;
              iv.op = Op::write_data;
              iv.handle = f.handle;
              iv.off = e.local_off;
              iv.su = layout.stripe_unit;
              iv.inval_mirror = Interval{e.local_off, e.local_off + e.len};
              writes.emplace_back(ms, std::move(iv));
            }
          }
          writes.emplace_back(e.server, std::move(w));
        }
        continue;
      }

      // Read parity (locked) and all surviving units over [c0, c1).
      const std::uint64_t rmw_token =
          locking ? client_->next_rmw_token() : 0;
      Request pr;
      pr.op = Op::read_red;
      pr.handle = f.handle;
      pr.off = layout.parity_local_off(g) + c0;
      pr.len = c1 - c0;
      pr.lock = locking;
      pr.rmw_token = rmw_token;
      pr.su = layout.stripe_unit;
      pr.red_gen = gen;
      auto presp = co_await client_->rpc(ps, std::move(pr));
      if (!presp.ok) co_return Error{presp.err, "degraded parity read"};

      std::vector<std::pair<std::uint32_t, Request>> reads;
      std::vector<std::uint64_t> read_units;
      for (std::uint64_t u = g * (n - 1); u < (g + 1) * (n - 1); ++u) {
        if (layout.server_of_unit(u) == failed) continue;
        Request r;
        r.op = Op::read_data_raw;
        r.handle = f.handle;
        r.off = layout.local_unit(u) * su + c0;
        r.len = c1 - c0;
        reads.emplace_back(layout.server_of_unit(u), std::move(r));
        read_units.push_back(u);
      }
      auto old = co_await client_->rpc_all(std::move(reads));
      for (const auto& resp : old) {
        if (!resp.ok) {
          // Abandoning the RMW with the parity lock held: release it
          // explicitly (owner-checked, writes nothing) so the group is not
          // wedged until the lease reaper fires.
          if (locking) {
            Request ur;
            ur.op = Op::unlock_red;
            ur.handle = f.handle;
            ur.off = layout.parity_local_off(g) + c0;
            ur.rmw_token = rmw_token;
            ur.su = layout.stripe_unit;
            ur.red_gen = gen;
            (void)co_await client_->rpc(ps, std::move(ur));
          }
          co_return Error{resp.err, "degraded old-data read"};
        }
      }

      Buffer parity;
      if (data.materialized()) {
        // Reconstruct the lost unit's old columns, then rebuild parity as
        // the XOR of every unit's *after* content.
        Buffer lost_old = Buffer::real(c1 - c0);
        lost_old.xor_with(presp.data);
        for (const auto& resp : old) lost_old.xor_with(resp.data);
        parity = Buffer::real(c1 - c0);
        for (std::size_t i = 0; i < old.size(); ++i) {
          Buffer after = old[i].data.slice(0, c1 - c0);
          overlay_new(layout, off, data, seg, read_units[i], c0, after);
          parity.xor_with(after);
        }
        // The failed unit's after-content.
        const std::uint64_t u_failed = [&]() -> std::uint64_t {
          for (std::uint64_t u = g * (n - 1); u < (g + 1) * (n - 1); ++u) {
            if (layout.server_of_unit(u) == failed) return u;
          }
          return ~0ULL;
        }();
        if (u_failed != ~0ULL) {
          Buffer after = std::move(lost_old);
          overlay_new(layout, off, data, seg, u_failed, c0, after);
          parity.xor_with(after);
        }
      } else {
        parity = Buffer::phantom(c1 - c0);
      }
      auto& node = client_->cluster().node(client_->node_id());
      co_await node.tx().occupy(sim::transfer_time(
          (c1 - c0) * n, node.params().xor_bytes_per_sec));

      Request pw;
      pw.op = Op::write_red;
      pw.handle = f.handle;
      pw.off = layout.parity_local_off(g) + c0;
      pw.payload = std::move(parity);
      pw.unlock = locking;
      pw.rmw_token = rmw_token;
      pw.su = layout.stripe_unit;
      pw.red_gen = gen;
      writes.emplace_back(ps, std::move(pw));

      for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
        if (e.server == failed) continue;
        Request w;
        w.op = Op::write_data;
        w.handle = f.handle;
        w.off = e.local_off;
        w.payload = data.slice(e.global_off - off, e.len);
        w.su = layout.stripe_unit;
        if (inval) {
          w.inval_own = Interval{e.local_off, e.local_off + e.len};
          const std::uint32_t ms = (e.server + 1) % n;
          if (ms != failed) {
            Request iv;
            iv.op = Op::write_data;
            iv.handle = f.handle;
            iv.off = e.local_off;
            iv.su = layout.stripe_unit;
            iv.inval_mirror = Interval{e.local_off, e.local_off + e.len};
            writes.emplace_back(ms, std::move(iv));
          }
        }
        writes.emplace_back(e.server, std::move(w));
      }
    }
  }

  auto resps = co_await client_->rpc_all(std::move(writes));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "degraded write"};
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Recovery::degraded_write(
    const pvfs::OpenFile& f, std::uint64_t off, Buffer data,
    std::vector<std::uint32_t> failed) {
  if (failed.empty()) {
    co_return Error{Errc::invalid_argument, "degraded write with no failure"};
  }
  const Scheme sch = scheme_of(f);
  if (sch.kind == SchemeKind::rs) {
    co_return co_await degraded_write_rs(f, sch, off, std::move(data),
                                         std::move(failed));
  }
  if (failed.size() == 1) {
    co_return co_await degraded_write(f, off, std::move(data),
                                      failed.front());
  }
  co_return Error{Errc::server_failed,
                  "multiple concurrent failures exceed the scheme's "
                  "redundancy"};
}

sim::Task<Result<void>> Recovery::degraded_write_rs(
    const pvfs::OpenFile& f, Scheme sch, std::uint64_t off, Buffer data,
    std::vector<std::uint32_t> failed) {
  const StripeLayout& layout = f.layout;
  const std::uint32_t n = layout.n();
  const std::uint64_t su = layout.su();
  const std::uint64_t len = data.size();
  if (len == 0) co_return Result<void>::success();
  const CodeSpec spec = sch.code(layout);
  const std::uint32_t k = spec.k;
  const std::uint32_t m = spec.m;
  if (failed.size() > m) {
    co_return Error{Errc::server_failed,
                    "rs: more concurrent failures than coding fragments"};
  }
  const std::uint32_t gen = red_gen_of(f);
  const bool inval = overlay_overflow(f);
  const bool mat = data.materialized();
  const std::uint64_t W = layout.rs_group_width(k);
  const auto ws = layout.split_write_w(off, len, W);
  std::vector<std::pair<std::uint32_t, Request>> writes;
  std::uint64_t gf_bytes = 0;

  // Mirror-overflow invalidation interval a write on server `s` owes for its
  // predecessor's unit within group g (ex-Hybrid files only) — same logic as
  // the parity schemes' degraded path.
  auto mirror_inval = [&](std::uint64_t g, std::uint32_t s,
                          Request& w) {
    const std::uint32_t prev = (s + n - 1) % n;
    for (std::uint64_t v = g * k; v < (g + 1) * k; ++v) {
      if (layout.server_of_unit(v) == prev) {
        w.inval_mirror = {layout.local_unit(v) * su,
                          layout.local_unit(v) * su + su};
      }
    }
  };

  // --- full groups: fresh coding fragments to every live coding server;
  //     data in place on the live data servers. A lost fragment's content
  //     stays representable through the survivors (at most m are down). ---
  if (ws.full_end > ws.full_start) {
    for (std::uint64_t g = ws.full_start / W; g < ws.full_end / W; ++g) {
      for (std::uint32_t j = 0; j < m; ++j) {
        const std::uint32_t cs = layout.rs_coding_server(g, k, j);
        if (contains(failed, cs)) continue;
        Buffer coding = mat ? Buffer::real(su) : Buffer::phantom(su);
        if (mat) {
          auto dst = coding.mutable_bytes();
          for (std::uint32_t i = 0; i < k; ++i) {
            const std::uint64_t pos =
                layout.rs_group_start(g, k) + std::uint64_t{i} * su;
            gf_muladd_region(dst, data.slice(pos - off, su).bytes(),
                             rs_coeff(spec, j, i));
          }
        }
        gf_bytes += std::uint64_t{k} * su;
        Request w;
        w.op = Op::write_red;
        w.handle = f.handle;
        w.off = layout.rs_coding_local_off(g);
        w.payload = std::move(coding);
        w.su = layout.stripe_unit;
        w.red_gen = gen;
        if (inval) mirror_inval(g, cs, w);
        writes.emplace_back(cs, std::move(w));
      }
      for (std::uint64_t u = g * k; u < (g + 1) * k; ++u) {
        const std::uint32_t s = layout.server_of_unit(u);
        if (contains(failed, s)) continue;
        Request w;
        w.op = Op::write_data;
        w.handle = f.handle;
        w.off = layout.local_unit(u) * su;
        w.payload = data.slice(u * su - off, su);
        w.su = layout.stripe_unit;
        if (inval) {
          w.inval_own = {w.off, w.off + su};
          mirror_inval(g, s, w);
        }
        writes.emplace_back(s, std::move(w));
      }
    }
  }

  // --- partial segments (ascending group order): reconstruct-write. Lock
  //     and read every live coding fragment of the group, read the live
  //     data units' old columns, decode any lost unit's old content from k
  //     live fragments, overlay the new bytes, and re-encode every live
  //     coding fragment outright. ---
  std::vector<Seg> segs;
  if (ws.head_end > ws.head_start) segs.push_back({ws.head_start, ws.head_end});
  if (ws.tail_end > ws.tail_start) segs.push_back({ws.tail_start, ws.tail_end});

  for (const auto& seg : segs) {
    const std::uint64_t g = layout.rs_group_of_off(seg.start, k);
    std::vector<std::uint32_t> live_j;
    for (std::uint32_t j = 0; j < m; ++j) {
      if (!contains(failed, layout.rs_coding_server(g, k, j))) {
        live_j.push_back(j);
      }
    }
    // Column range: the whole span touched within the group.
    std::uint64_t c0 = su;
    std::uint64_t c1 = 0;
    bool lost_touched = false;
    for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
      c0 = std::min(c0, e.global_off % su);
      c1 = std::max(c1, e.global_off % su + e.len);
      if (contains(failed, e.server)) lost_touched = true;
    }

    if (live_j.empty()) {
      // Every coding fragment of this group is down (all failures sit on
      // its coding servers, so all data servers are live): update the data
      // in place; the rebuild recomputes the coding. A write to a lost data
      // unit would be unrecordable — but none can be lost here.
      if (lost_touched) {
        co_return Error{Errc::server_failed,
                        "rs degraded write with no live coding fragment"};
      }
      for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
        Request w;
        w.op = Op::write_data;
        w.handle = f.handle;
        w.off = e.local_off;
        w.payload = data.slice(e.global_off - off, e.len);
        w.su = layout.stripe_unit;
        if (inval) {
          w.inval_own = Interval{e.local_off, e.local_off + e.len};
          const std::uint32_t ms = (e.server + 1) % n;
          if (!contains(failed, ms)) {
            Request iv;
            iv.op = Op::write_data;
            iv.handle = f.handle;
            iv.off = e.local_off;
            iv.su = layout.stripe_unit;
            iv.inval_mirror = Interval{e.local_off, e.local_off + e.len};
            writes.emplace_back(ms, std::move(iv));
          }
        }
        writes.emplace_back(e.server, std::move(w));
      }
      continue;
    }

    // Locked coding reads, ascending j — the §5.1 ordered-acquisition rule
    // generalized: within a group the coding servers are visited in
    // fragment order, and segments arrive in ascending group order.
    const std::uint64_t rmw_token = client_->next_rmw_token();
    std::vector<Buffer> coding_old(live_j.size());
    auto release_locks = [&](std::size_t upto) -> sim::Task<void> {
      std::vector<std::pair<std::uint32_t, Request>> rel;
      for (std::size_t x = 0; x < upto; ++x) {
        Request u;
        u.op = Op::unlock_red;
        u.handle = f.handle;
        u.off = layout.rs_coding_local_off(g) + c0;
        u.rmw_token = rmw_token;
        u.su = layout.stripe_unit;
        u.red_gen = gen;
        rel.emplace_back(layout.rs_coding_server(g, k, live_j[x]),
                         std::move(u));
      }
      (void)co_await client_->rpc_all(std::move(rel));
    };
    bool lock_failed = false;
    Errc lock_errc = Errc::ok;
    for (std::size_t idx = 0; idx < live_j.size(); ++idx) {
      Request pr;
      pr.op = Op::read_red;
      pr.handle = f.handle;
      pr.off = layout.rs_coding_local_off(g) + c0;
      pr.len = c1 - c0;
      pr.lock = true;
      pr.rmw_token = rmw_token;
      pr.su = layout.stripe_unit;
      pr.red_gen = gen;
      auto presp = co_await client_->rpc(
          layout.rs_coding_server(g, k, live_j[idx]), std::move(pr));
      if (!presp.ok) {
        // Release what we hold (including this one: the envelope may have
        // taken the lock server-side before failing).
        co_await release_locks(idx + 1);
        lock_failed = true;
        lock_errc = presp.err;
        break;
      }
      coding_old[idx] = std::move(presp.data);
    }
    if (lock_failed) {
      co_return Error{lock_errc, "rs degraded coding read"};
    }

    // Old columns of every live data unit.
    std::vector<std::pair<std::uint32_t, Request>> reads;
    std::vector<std::uint32_t> read_frags;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint64_t u = g * k + i;
      if (contains(failed, layout.server_of_unit(u))) continue;
      Request r;
      r.op = Op::read_data_raw;
      r.handle = f.handle;
      r.off = layout.local_unit(u) * su + c0;
      r.len = c1 - c0;
      reads.emplace_back(layout.server_of_unit(u), std::move(r));
      read_frags.push_back(i);
    }
    auto old = co_await client_->rpc_all(std::move(reads));
    for (const auto& resp : old) {
      if (!resp.ok) {
        co_await release_locks(live_j.size());
        co_return Error{resp.err, "rs degraded old-data read"};
      }
    }

    std::vector<Buffer> coding_new(live_j.size());
    if (mat) {
      // After-content of every data fragment: live ones straight from the
      // reads, lost ones decoded from k live fragments; then overlay the
      // segment's new bytes.
      std::vector<Buffer> after(k);
      for (std::size_t r = 0; r < read_frags.size(); ++r) {
        after[read_frags[r]] = old[r].data.slice(0, c1 - c0);
      }
      std::vector<std::uint32_t> present;
      for (const std::uint32_t i : read_frags) present.push_back(i);
      for (std::size_t x = 0; x < live_j.size() && present.size() < k; ++x) {
        present.push_back(k + live_j[x]);
      }
      for (std::uint32_t i = 0; i < k; ++i) {
        if (!after[i].empty()) continue;  // live fragment, already read
        const auto coeffs = rs_reconstruct_coeffs(spec, present, i);
        Buffer lost_old = Buffer::real(c1 - c0);
        auto dst = lost_old.mutable_bytes();
        for (std::size_t r = 0; r < present.size(); ++r) {
          const std::uint32_t frag = present[r];
          const Buffer& src =
              frag < k ? after[frag]
                       : coding_old[std::find(live_j.begin(), live_j.end(),
                                              frag - k) -
                                    live_j.begin()];
          gf_muladd_region(dst, src.bytes(), coeffs[r]);
        }
        gf_bytes += std::uint64_t{k} * (c1 - c0);
        after[i] = std::move(lost_old);
      }
      for (std::uint32_t i = 0; i < k; ++i) {
        overlay_new(layout, off, data, seg, g * k + i, c0, after[i]);
      }
      for (std::size_t x = 0; x < live_j.size(); ++x) {
        coding_new[x] = Buffer::real(c1 - c0);
        auto dst = coding_new[x].mutable_bytes();
        for (std::uint32_t i = 0; i < k; ++i) {
          gf_muladd_region(dst, after[i].bytes(),
                           rs_coeff(spec, live_j[x], i));
        }
        gf_bytes += std::uint64_t{k} * (c1 - c0);
      }
    } else {
      for (auto& c : coding_new) c = Buffer::phantom(c1 - c0);
    }
    auto& node = client_->cluster().node(client_->node_id());
    co_await node.tx().occupy(sim::transfer_time(
        (c1 - c0) * (k + m), node.params().xor_bytes_per_sec));

    for (std::size_t x = 0; x < live_j.size(); ++x) {
      Request pw;
      pw.op = Op::write_red;
      pw.handle = f.handle;
      pw.off = layout.rs_coding_local_off(g) + c0;
      pw.payload = std::move(coding_new[x]);
      pw.unlock = true;
      pw.rmw_token = rmw_token;
      pw.su = layout.stripe_unit;
      pw.red_gen = gen;
      writes.emplace_back(layout.rs_coding_server(g, k, live_j[x]),
                          std::move(pw));
    }
    for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
      if (contains(failed, e.server)) continue;
      Request w;
      w.op = Op::write_data;
      w.handle = f.handle;
      w.off = e.local_off;
      w.payload = data.slice(e.global_off - off, e.len);
      w.su = layout.stripe_unit;
      if (inval) {
        w.inval_own = Interval{e.local_off, e.local_off + e.len};
        const std::uint32_t ms = (e.server + 1) % n;
        if (!contains(failed, ms)) {
          Request iv;
          iv.op = Op::write_data;
          iv.handle = f.handle;
          iv.off = e.local_off;
          iv.su = layout.stripe_unit;
          iv.inval_mirror = Interval{e.local_off, e.local_off + e.len};
          writes.emplace_back(ms, std::move(iv));
        }
      }
      writes.emplace_back(e.server, std::move(w));
    }
  }

  if (policy_ != nullptr && gf_bytes > 0) policy_->note_ec_encode(gf_bytes);
  auto resps = co_await client_->rpc_all(std::move(writes));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "rs degraded write"};
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Recovery::rebuild_server(const pvfs::OpenFile& f,
                                                 std::uint32_t failed,
                                                 std::uint64_t file_size,
                                                 RebuildOptions opt) {
  const StripeLayout& layout = f.layout;
  const std::uint32_t n = layout.n();
  const std::uint64_t su = layout.su();
  const std::uint32_t successor = (failed + 1) % n;
  const std::uint32_t predecessor = (failed + n - 1) % n;
  if (file_size == 0) co_return Result<void>::success();
  const Scheme sch = scheme_of(f);
  if (sch == Scheme::raid0) {
    // Nothing rebuildable: RAID0 stores no redundancy, so a replaced
    // server's units are simply gone. The coordinator admits such servers
    // without a pass; a direct call is a no-op rather than an error so a
    // mixed-scheme pass over many files can treat every file uniformly.
    co_return Result<void>::success();
  }

  // rs(k,m): data and coding fragments are both decoded from any k live
  //   fragments (around concurrent outages in opt.also_down), in a dedicated
  //   pass; the overflow overlay of an ex-Hybrid rs file is then restored by
  //   the shared step 3 below.
  const bool rs = sch.kind == SchemeKind::rs;
  if (rs) {
    auto rb = co_await rebuild_server_rs(f, sch, failed, file_size, opt);
    if (!rb.ok()) co_return rb;
  }

  // 1. Data file: reconstruct every unit the failed server held. For parity
  //    schemes this restores the *base* content (data file only), keeping
  //    the surviving parity consistent; overflow entries are restored
  //    separately in step 3. Units are rebuilt with a pipeline window so
  //    the survivor reads and replacement writes stream concurrently — the
  //    rebuilding node's links become the bottleneck, as in a real rebuild.
  const std::uint32_t dn = layout.data_servers();
  if (!rs) {
    constexpr std::uint32_t kWindow = 16;
    sim::Semaphore window(client_->cluster().sim(), kWindow);
    sim::WaitGroup wg(client_->cluster().sim());
    bool error = false;
    Error first_error;
    for (std::uint64_t u = failed; failed < dn && u * su < file_size;
         u += dn) {
      const std::uint64_t len = std::min<std::uint64_t>(su, file_size - u * su);
      if (opt.delta && !opt.delta->intersects(u * su, u * su + len)) continue;
      if (opt.throttle) {
        // raid1: one mirror read + one replacement write. Parity: N-1
        // survivor reads + one replacement write, all unit-sized.
        co_await opt.throttle->take(
            sch == Scheme::raid1 ? 2 * len : std::uint64_t{n} * len);
      }
      co_await window.acquire();
      wg.add();
      client_->cluster().sim().spawn(
          [](Recovery* self, pvfs::OpenFile file, std::uint32_t fsrv,
             std::uint64_t unit, std::uint64_t len, sim::Semaphore* sem,
             sim::WaitGroup* done, bool* err, Error* ferr) -> sim::Task<void> {
            const StripeLayout& lay = file.layout;
            // NOTE: deliberately not a ?: expression — GCC 12 miscompiles
            // co_await inside conditional expressions (double-destruction
            // of the materialized result).
            // Both branches restore the *base* content (no overflow
            // overlay — step 3 restores the overlay's tables separately):
            // RAID1's mirror tracks the data file byte-for-byte, parity
            // schemes XOR the raw survivors.
            Result<Buffer> piece = Buffer{};
            if (self->scheme_of(file) == Scheme::raid1) {
              Request r;
              r.op = Op::read_red;
              r.handle = file.handle;
              r.off = lay.local_unit(unit) * lay.su();
              r.len = len;
              r.su = file.layout.stripe_unit;
              r.red_gen = self->red_gen_of(file);
              auto resp = co_await self->client_->rpc(
                  (fsrv + 1) % lay.n(), std::move(r));
              if (resp.ok) {
                piece = std::move(resp.data);
              } else {
                piece = Error{resp.err, "raid1 mirror read"};
              }
            } else {
              piece = co_await self->reconstruct_base(file, fsrv,
                                                      unit * lay.su(), len);
            }
            if (!piece.ok()) {
              if (!*err) *ferr = piece.error();
              *err = true;
            } else {
              Request w;
              w.op = Op::write_data;
              w.handle = file.handle;
              w.off = lay.local_unit(unit) * lay.su();
              w.payload = std::move(piece.value());
              w.su = lay.stripe_unit;
              auto resp = co_await self->client_->rpc(fsrv, std::move(w));
              if (!resp.ok) {
                if (!*err) *ferr = Error{resp.err, "rebuild data write"};
                *err = true;
              }
            }
            sem->release();
            done->done();
          }(this, f, failed, u, len, &window, &wg, &error, &first_error));
    }
    co_await wg.wait();
    if (error) co_return first_error;
  }

  // 2. Redundancy file (pipelined like step 1).
  if (!rs) {
    constexpr std::uint32_t kWindow = 16;
    sim::Semaphore window(client_->cluster().sim(), kWindow);
    sim::WaitGroup wg(client_->cluster().sim());
    bool error = false;
    Error first_error;
    if (sch == Scheme::raid1) {
      // Mirror blocks of the predecessor's data, at its local offsets.
      for (std::uint64_t u = predecessor; u * su < file_size; u += dn) {
        const std::uint64_t len =
            std::min<std::uint64_t>(su, file_size - u * su);
        if (opt.delta && !opt.delta->intersects(u * su, u * su + len)) {
          continue;
        }
        if (opt.throttle) co_await opt.throttle->take(2 * len);
        co_await window.acquire();
        wg.add();
        client_->cluster().sim().spawn(
            [](Recovery* self, pvfs::OpenFile file, std::uint32_t fsrv,
               std::uint32_t pred, std::uint64_t unit, std::uint64_t len,
               sim::Semaphore* sem, sim::WaitGroup* done, bool* err,
               Error* ferr) -> sim::Task<void> {
              const StripeLayout& lay = file.layout;
              Request r;
              r.op = Op::read_data_raw;
              r.handle = file.handle;
              r.off = lay.local_unit(unit) * lay.su();
              r.len = len;
              auto resp = co_await self->client_->rpc(pred, std::move(r));
              if (!resp.ok) {
                if (!*err) *ferr = Error{resp.err, "rebuild mirror read"};
                *err = true;
              } else {
                Request w;
                w.op = Op::write_red;
                w.handle = file.handle;
                w.off = lay.local_unit(unit) * lay.su();
                w.payload = std::move(resp.data);
                w.su = lay.stripe_unit;
                w.red_gen = self->red_gen_of(file);
                auto wr = co_await self->client_->rpc(fsrv, std::move(w));
                if (!wr.ok) {
                  if (!*err) *ferr = Error{wr.err, "rebuild mirror write"};
                  *err = true;
                }
              }
              sem->release();
              done->done();
            }(this, f, failed, predecessor, u, len, &window, &wg, &error,
              &first_error));
      }
    } else if (uses_parity(sch)) {
      // Recompute the parity units this server held: groups whose parity
      // placement lands here.
      const std::uint64_t ngroups =
          div_ceil(file_size, layout.stripe_width());
      for (std::uint64_t g = 0; g < ngroups; ++g) {
        if (layout.parity_server(g) != failed) continue;
        if (opt.delta &&
            !opt.delta->intersects(
                layout.group_start(g),
                std::min(layout.group_end(g), file_size))) {
          continue;
        }
        if (opt.throttle) {
          co_await opt.throttle->take(std::uint64_t{n} * su);
        }
        co_await window.acquire();
        wg.add();
        client_->cluster().sim().spawn(
            [](Recovery* self, pvfs::OpenFile file, std::uint32_t fsrv,
               std::uint64_t group, sim::Semaphore* sem, sim::WaitGroup* done,
               bool* err, Error* ferr) -> sim::Task<void> {
              const StripeLayout& lay = file.layout;
              const std::uint64_t unit_sz = lay.su();
              std::vector<std::pair<std::uint32_t, Request>> reads;
              for (std::uint64_t u = group * (lay.n() - 1);
                   u < (group + 1) * (lay.n() - 1); ++u) {
                Request r;
                r.op = Op::read_data_raw;
                r.handle = file.handle;
                r.off = lay.local_unit(u) * unit_sz;
                r.len = unit_sz;
                reads.emplace_back(lay.server_of_unit(u), std::move(r));
              }
              auto resps = co_await self->client_->rpc_all(std::move(reads));
              Buffer parity = Buffer::real(unit_sz);
              bool bad = false;
              for (auto& resp : resps) {
                if (!resp.ok) {
                  if (!*err) *ferr = Error{resp.err, "rebuild parity read"};
                  *err = true;
                  bad = true;
                  break;
                }
                if (parity.materialized() && resp.data.materialized()) {
                  parity.xor_with(resp.data);
                } else {
                  parity = Buffer::phantom(unit_sz);
                }
              }
              if (!bad) {
                Request w;
                w.op = Op::write_red;
                w.handle = file.handle;
                w.off = lay.parity_local_off(group);
                w.payload = std::move(parity);
                w.su = lay.stripe_unit;
                w.red_gen = self->red_gen_of(file);
                auto wr = co_await self->client_->rpc(fsrv, std::move(w));
                if (!wr.ok) {
                  if (!*err) *ferr = Error{wr.err, "rebuild parity write"};
                  *err = true;
                }
              }
              sem->release();
              done->done();
            }(this, f, failed, g, &window, &wg, &error, &first_error));
      }
    }
    co_await wg.wait();
    if (error) co_return first_error;
  }

  // 3. Overflow overlay: restore this server's own entries from the mirrors
  //    on its successor, and the mirror entries it held for its predecessor
  //    from that server's own table. Runs for Hybrid files and for files
  //    migrated away from Hybrid (their overlay is still live).
  if (overlay_overflow(f)) {
    const bool filter = opt.delta != nullptr && !opt.restore_all_overflow;
    if (opt.delta != nullptr && opt.restore_all_overflow) {
      // The rejoiner's overflow content is wholesale suspect (e.g. dirty
      // pages under the overflow file died with the crash): drop both table
      // sides entirely, then re-mirror everything from the survivors below.
      std::vector<Request> invals;
      for (int side = 0; side < 2; ++side) {
        Request r;
        r.op = Op::write_data;
        r.handle = f.handle;
        r.su = layout.stripe_unit;
        if (side == 0) {
          r.inval_own = {0, file_size};
        } else {
          r.inval_mirror = {0, file_size};
        }
        invals.push_back(std::move(r));
      }
      auto ivr = co_await client_->rpc_batch(failed, std::move(invals));
      for (const auto& r : ivr) {
        if (!r.ok) co_return Error{r.err, "rebuild overflow reset"};
      }
    }
    if (filter) {
      // A non-wipe rejoiner kept its overflow tables, but over the delta
      // they are stale: survivors superseded or invalidated those entries
      // while this server was gone. Clear both table sides across the delta
      // first (zero-payload write_data requests carry pure invalidation
      // ranges), then re-mirror the authoritative survivor copies below.
      std::vector<Request> invals;
      for (const auto& iv : opt.delta->to_vector()) {
        for (const auto& ext : layout.decompose(iv.start, iv.length())) {
          Request r;
          r.op = Op::write_data;
          r.handle = f.handle;
          r.su = layout.stripe_unit;
          if (ext.server == failed) {
            r.inval_own = {ext.local_off, ext.local_off + ext.len};
          } else if (ext.server == predecessor) {
            r.inval_mirror = {ext.local_off, ext.local_off + ext.len};
          } else {
            continue;
          }
          invals.push_back(std::move(r));
        }
      }
      if (!invals.empty()) {
        auto ivr = co_await client_->rpc_batch(failed, std::move(invals));
        for (const auto& r : ivr) {
          if (!r.ok) co_return Error{r.err, "rebuild overflow invalidate"};
        }
      }
    }
    // The survivor-side tables can be huge (unaligned collective writes
    // overflow nearly every request), so both whole-table reads are
    // windowed: each read_mirror / read_own_overflow RPC covers a bounded
    // local-offset range and its pieces are restored before the next
    // window is fetched. Restores still arrive in ascending local-offset
    // order across windows (the rebuilt table's allocation order must
    // match piece order; in-order batch execution guarantees it per
    // window, ascending windows guarantee it across them).
    constexpr std::uint64_t kOverflowWindow = 64ull << 20;
    for (std::uint64_t w0 = 0; w0 < file_size; w0 += kOverflowWindow) {
      Request rm;
      rm.op = Op::read_mirror;
      rm.handle = f.handle;
      rm.off = w0;  // local offsets are bounded by the file size
      rm.len = file_size - w0 < kOverflowWindow ? file_size - w0
                                                : kOverflowWindow;
      rm.owner = failed;
      auto mirrors = co_await client_->rpc(successor, std::move(rm));
      if (!mirrors.ok) co_return Error{mirrors.err, "rebuild overflow read"};
      std::vector<Request> restores;
      restores.reserve(mirrors.pieces.size());
      std::uint64_t restore_bytes = 0;
      for (auto& piece : mirrors.pieces) {
        if (filter) {
          const std::uint64_t g0 = layout.global_off(failed, piece.local_off);
          if (!opt.delta->intersects(g0, g0 + piece.data.size())) continue;
        }
        restore_bytes += piece.data.size();
        Request w;
        w.op = Op::write_overflow;
        w.handle = f.handle;
        w.off = piece.local_off;
        w.payload = std::move(piece.data);
        w.owner = failed;
        w.su = layout.stripe_unit;
        restores.push_back(std::move(w));
      }
      if (restores.empty()) continue;
      if (opt.throttle) co_await opt.throttle->take(2 * restore_bytes);
      auto wrs = co_await client_->rpc_batch(failed, std::move(restores));
      for (const auto& wr : wrs) {
        if (!wr.ok) co_return Error{wr.err, "rebuild overflow write"};
      }
    }

    for (std::uint64_t w0 = 0; w0 < file_size; w0 += kOverflowWindow) {
      Request ro;
      ro.op = Op::read_own_overflow;
      ro.handle = f.handle;
      ro.off = w0;
      ro.len = file_size - w0 < kOverflowWindow ? file_size - w0
                                                : kOverflowWindow;
      auto own = co_await client_->rpc(predecessor, std::move(ro));
      if (!own.ok) co_return Error{own.err, "rebuild mirror-table read"};
      std::vector<Request> mirror_restores;
      mirror_restores.reserve(own.pieces.size());
      std::uint64_t mirror_bytes = 0;
      for (auto& piece : own.pieces) {
        if (filter) {
          const std::uint64_t g0 =
              layout.global_off(predecessor, piece.local_off);
          if (!opt.delta->intersects(g0, g0 + piece.data.size())) continue;
        }
        mirror_bytes += piece.data.size();
        Request w;
        w.op = Op::write_overflow;
        w.handle = f.handle;
        w.off = piece.local_off;
        w.payload = std::move(piece.data);
        w.owner = predecessor;
        w.mirror = true;
        w.su = layout.stripe_unit;
        mirror_restores.push_back(std::move(w));
      }
      if (mirror_restores.empty()) continue;
      if (opt.throttle) co_await opt.throttle->take(2 * mirror_bytes);
      auto mwrs =
          co_await client_->rpc_batch(failed, std::move(mirror_restores));
      for (const auto& wr : mwrs) {
        if (!wr.ok) co_return Error{wr.err, "rebuild mirror-table write"};
      }
    }
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Recovery::rebuild_server_rs(const pvfs::OpenFile& f,
                                                    Scheme sch,
                                                    std::uint32_t failed,
                                                    std::uint64_t file_size,
                                                    const RebuildOptions& opt) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const CodeSpec spec = sch.code(layout);
  const std::uint32_t k = spec.k;
  const std::uint32_t m = spec.m;
  // Servers unreadable during this pass: the rebuild target itself plus any
  // concurrent outages — decodes route around all of them (any k live
  // fragments suffice, up to m may be gone).
  std::vector<std::uint32_t> down = opt.also_down;
  if (!contains(down, failed)) down.push_back(failed);
  std::sort(down.begin(), down.end());

  // 1. Data units the failed server held: decode each from k live fragments
  //    of its group and write the replacement, pipelined like the classic
  //    pass.
  const std::uint32_t dn = layout.data_servers();
  {
    constexpr std::uint32_t kWindow = 16;
    sim::Semaphore window(client_->cluster().sim(), kWindow);
    sim::WaitGroup wg(client_->cluster().sim());
    bool error = false;
    Error first_error;
    const std::uint64_t u0 =
        (failed + dn - layout.base % dn) % dn;  // first unit on `failed`
    for (std::uint64_t u = u0; u * su < file_size; u += dn) {
      const std::uint64_t len = std::min<std::uint64_t>(su, file_size - u * su);
      if (opt.delta && !opt.delta->intersects(u * su, u * su + len)) continue;
      if (opt.throttle) {
        // k fragment reads + one replacement write, all unit-sized.
        co_await opt.throttle->take(std::uint64_t{k + 1} * len);
      }
      co_await window.acquire();
      wg.add();
      client_->cluster().sim().spawn(
          [](Recovery* self, pvfs::OpenFile file, Scheme scheme,
             std::uint32_t fsrv, std::uint64_t unit, std::uint64_t len,
             std::vector<std::uint32_t> down, sim::Semaphore* sem,
             sim::WaitGroup* done, bool* err, Error* ferr) -> sim::Task<void> {
            const StripeLayout& lay = file.layout;
            const std::uint32_t kk = scheme.code(lay).k;
            auto piece = co_await self->reconstruct_rs(
                file, scheme, lay.rs_group_of_unit(unit, kk),
                static_cast<std::uint32_t>(unit % kk), 0, len, down,
                /*for_rebuild=*/true);
            if (!piece.ok()) {
              if (!*err) *ferr = piece.error();
              *err = true;
            } else {
              Request w;
              w.op = Op::write_data;
              w.handle = file.handle;
              w.off = lay.local_unit(unit) * lay.su();
              w.payload = std::move(piece.value());
              w.su = lay.stripe_unit;
              auto resp = co_await self->client_->rpc(fsrv, std::move(w));
              if (!resp.ok) {
                if (!*err) *ferr = Error{resp.err, "rs rebuild data write"};
                *err = true;
              }
            }
            sem->release();
            done->done();
          }(this, f, sch, failed, u, len, down, &window, &wg, &error,
            &first_error));
    }
    co_await wg.wait();
    if (error) co_return first_error;
  }

  // 2. Coding fragments whose placement lands on the failed server: same
  //    decode machinery, targeting fragment k+j instead of a data fragment.
  {
    constexpr std::uint32_t kWindow = 16;
    sim::Semaphore window(client_->cluster().sim(), kWindow);
    sim::WaitGroup wg(client_->cluster().sim());
    bool error = false;
    Error first_error;
    const std::uint64_t ngroups =
        div_ceil(file_size, layout.rs_group_width(k));
    for (std::uint64_t g = 0; g < ngroups; ++g) {
      for (std::uint32_t j = 0; j < m; ++j) {
        if (layout.rs_coding_server(g, k, j) != failed) continue;
        if (opt.delta &&
            !opt.delta->intersects(
                layout.rs_group_start(g, k),
                std::min(layout.rs_group_end(g, k), file_size))) {
          continue;
        }
        if (opt.throttle) {
          co_await opt.throttle->take(std::uint64_t{k + 1} * su);
        }
        co_await window.acquire();
        wg.add();
        client_->cluster().sim().spawn(
            [](Recovery* self, pvfs::OpenFile file, Scheme scheme,
               std::uint32_t fsrv, std::uint64_t group, std::uint32_t frag,
               std::vector<std::uint32_t> down, sim::Semaphore* sem,
               sim::WaitGroup* done, bool* err,
               Error* ferr) -> sim::Task<void> {
              const StripeLayout& lay = file.layout;
              auto piece = co_await self->reconstruct_rs(
                  file, scheme, group, frag, 0, lay.su(), down,
                  /*for_rebuild=*/true);
              if (!piece.ok()) {
                if (!*err) *ferr = piece.error();
                *err = true;
              } else {
                Request w;
                w.op = Op::write_red;
                w.handle = file.handle;
                w.off = lay.rs_coding_local_off(group);
                w.payload = std::move(piece.value());
                w.su = lay.stripe_unit;
                w.red_gen = self->red_gen_of(file);
                auto wr = co_await self->client_->rpc(fsrv, std::move(w));
                if (!wr.ok) {
                  if (!*err) *ferr = Error{wr.err, "rs rebuild coding write"};
                  *err = true;
                }
              }
              sem->release();
              done->done();
            }(this, f, sch, failed, g, k + j, down, &window, &wg, &error,
              &first_error));
      }
    }
    co_await wg.wait();
    if (error) co_return first_error;
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Recovery::build_redundancy(const pvfs::OpenFile& f,
                                                   Scheme to,
                                                   std::uint32_t red_gen,
                                                   std::uint64_t file_size,
                                                   const IntervalSet* delta,
                                                   sim::TokenBucket* throttle) {
  const StripeLayout& layout = f.layout;
  const std::uint32_t n = layout.n();
  const std::uint64_t su = layout.su();
  if (file_size == 0) co_return Result<void>::success();
  if (to == Scheme::raid0 || to == Scheme::raid4) {
    // RAID0 has no redundancy to build; RAID4's fixed parity placement does
    // not transpose onto a file laid out with rotating placement.
    co_return Error{Errc::invalid_argument, "unsupported migration target"};
  }

  constexpr std::uint32_t kWindow = 16;
  sim::Semaphore window(client_->cluster().sim(), kWindow);
  sim::WaitGroup wg(client_->cluster().sim());
  bool error = false;
  Error first_error;

  if (to == Scheme::raid1) {
    // One mirror unit per data unit of *every* server: raw read from the
    // owner, write into the successor's generation-`red_gen` file at the
    // owner's local offset.
    for (std::uint64_t u = 0; u * su < file_size; ++u) {
      const std::uint64_t len = std::min<std::uint64_t>(su, file_size - u * su);
      if (delta && !delta->intersects(u * su, u * su + len)) continue;
      if (throttle) co_await throttle->take(2 * len);
      co_await window.acquire();
      wg.add();
      client_->cluster().sim().spawn(
          [](Recovery* self, pvfs::OpenFile file, std::uint64_t unit,
             std::uint64_t len, std::uint32_t gen, sim::Semaphore* sem,
             sim::WaitGroup* done, bool* err, Error* ferr) -> sim::Task<void> {
            const StripeLayout& lay = file.layout;
            const std::uint32_t owner = lay.server_of_unit(unit);
            Request r;
            r.op = Op::read_data_raw;
            r.handle = file.handle;
            r.off = lay.local_unit(unit) * lay.su();
            r.len = len;
            auto resp = co_await self->client_->rpc(owner, std::move(r));
            if (!resp.ok) {
              if (!*err) *ferr = Error{resp.err, "migrate mirror read"};
              *err = true;
            } else {
              Request w;
              w.op = Op::write_red;
              w.handle = file.handle;
              w.off = lay.local_unit(unit) * lay.su();
              w.payload = std::move(resp.data);
              w.su = lay.stripe_unit;
              w.red_gen = gen;
              auto wr = co_await self->client_->rpc((owner + 1) % lay.n(),
                                                    std::move(w));
              if (!wr.ok) {
                if (!*err) *ferr = Error{wr.err, "migrate mirror write"};
                *err = true;
              }
            }
            sem->release();
            done->done();
          }(this, f, u, len, red_gen, &window, &wg, &error, &first_error));
    }
  } else if (to.kind == SchemeKind::rs) {
    // rs(k,m) target: per group, read the k raw data units and write the m
    // coding fragments into the generation-`red_gen` redundancy files of
    // their placement servers. Overflow stays excluded, exactly like the
    // parity branch.
    const CodeSpec spec = to.code(layout);
    if (spec.fragments() > n) {
      co_return Error{Errc::invalid_argument,
                      "rs placement needs k+m <= N servers"};
    }
    const std::uint64_t ngroups =
        div_ceil(file_size, layout.rs_group_width(spec.k));
    for (std::uint64_t g = 0; g < ngroups; ++g) {
      if (delta && !delta->intersects(
                       layout.rs_group_start(g, spec.k),
                       std::min(layout.rs_group_end(g, spec.k), file_size))) {
        continue;
      }
      if (throttle) {
        co_await throttle->take(std::uint64_t{spec.fragments()} * su);
      }
      co_await window.acquire();
      wg.add();
      client_->cluster().sim().spawn(
          [](Recovery* self, pvfs::OpenFile file, Scheme scheme,
             std::uint64_t group, std::uint32_t gen, sim::Semaphore* sem,
             sim::WaitGroup* done, bool* err, Error* ferr) -> sim::Task<void> {
            const StripeLayout& lay = file.layout;
            const CodeSpec sp = scheme.code(lay);
            const std::uint64_t unit_sz = lay.su();
            std::vector<std::pair<std::uint32_t, Request>> reads;
            for (std::uint32_t i = 0; i < sp.k; ++i) {
              Request r;
              r.op = Op::read_data_raw;
              r.handle = file.handle;
              r.off = lay.local_unit(group * sp.k + i) * unit_sz;
              r.len = unit_sz;
              reads.emplace_back(lay.rs_data_server(group, sp.k, i),
                                 std::move(r));
            }
            auto resps = co_await self->client_->rpc_all(std::move(reads));
            bool bad = false;
            bool mat = true;
            for (const auto& resp : resps) {
              if (!resp.ok) {
                if (!*err) *ferr = Error{resp.err, "migrate rs read"};
                *err = true;
                bad = true;
                break;
              }
              if (!resp.data.materialized()) mat = false;
            }
            if (!bad) {
              std::vector<std::pair<std::uint32_t, Request>> writes;
              for (std::uint32_t j = 0; j < sp.m; ++j) {
                Buffer coding =
                    mat ? Buffer::real(unit_sz) : Buffer::phantom(unit_sz);
                if (mat) {
                  auto dst = coding.mutable_bytes();
                  for (std::uint32_t i = 0; i < sp.k; ++i) {
                    gf_muladd_region(dst, resps[i].data.bytes(),
                                     rs_coeff(sp, j, i));
                  }
                }
                Request w;
                w.op = Op::write_red;
                w.handle = file.handle;
                w.off = lay.rs_coding_local_off(group);
                w.payload = std::move(coding);
                w.su = lay.stripe_unit;
                w.red_gen = gen;
                writes.emplace_back(lay.rs_coding_server(group, sp.k, j),
                                    std::move(w));
              }
              if (self->policy_ != nullptr) {
                self->policy_->note_ec_encode(std::uint64_t{sp.k} * unit_sz *
                                              sp.m);
              }
              auto wrs = co_await self->client_->rpc_all(std::move(writes));
              for (const auto& wr : wrs) {
                if (!wr.ok) {
                  if (!*err) *ferr = Error{wr.err, "migrate rs coding write"};
                  *err = true;
                  break;
                }
              }
            }
            sem->release();
            done->done();
          }(this, f, to, g, red_gen, &window, &wg, &error, &first_error));
    }
  } else {
    // Parity target (RAID5 variants / Hybrid): fresh parity per group from
    // the raw data units — partial-write overflow deliberately excluded, so
    // the new parity is consistent with the data files just like Hybrid's.
    const std::uint64_t ngroups = div_ceil(file_size, layout.stripe_width());
    for (std::uint64_t g = 0; g < ngroups; ++g) {
      if (delta && !delta->intersects(layout.group_start(g),
                                      std::min(layout.group_end(g),
                                               file_size))) {
        continue;
      }
      if (throttle) co_await throttle->take(std::uint64_t{n} * su);
      co_await window.acquire();
      wg.add();
      client_->cluster().sim().spawn(
          [](Recovery* self, pvfs::OpenFile file, std::uint64_t group,
             std::uint32_t gen, sim::Semaphore* sem, sim::WaitGroup* done,
             bool* err, Error* ferr) -> sim::Task<void> {
            const StripeLayout& lay = file.layout;
            const std::uint64_t unit_sz = lay.su();
            std::vector<std::pair<std::uint32_t, Request>> reads;
            for (std::uint64_t u = group * (lay.n() - 1);
                 u < (group + 1) * (lay.n() - 1); ++u) {
              Request r;
              r.op = Op::read_data_raw;
              r.handle = file.handle;
              r.off = lay.local_unit(u) * unit_sz;
              r.len = unit_sz;
              reads.emplace_back(lay.server_of_unit(u), std::move(r));
            }
            auto resps = co_await self->client_->rpc_all(std::move(reads));
            Buffer parity = Buffer::real(unit_sz);
            bool bad = false;
            for (auto& resp : resps) {
              if (!resp.ok) {
                if (!*err) *ferr = Error{resp.err, "migrate parity read"};
                *err = true;
                bad = true;
                break;
              }
              if (parity.materialized() && resp.data.materialized()) {
                parity.xor_with(resp.data);
              } else {
                parity = Buffer::phantom(unit_sz);
              }
            }
            if (!bad) {
              Request w;
              w.op = Op::write_red;
              w.handle = file.handle;
              w.off = lay.parity_local_off(group);
              w.payload = std::move(parity);
              w.su = lay.stripe_unit;
              w.red_gen = gen;
              auto wr = co_await self->client_->rpc(lay.parity_server(group),
                                                    std::move(w));
              if (!wr.ok) {
                if (!*err) *ferr = Error{wr.err, "migrate parity write"};
                *err = true;
              }
            }
            sem->release();
            done->done();
          }(this, f, g, red_gen, &window, &wg, &error, &first_error));
    }
  }
  co_await wg.wait();
  if (error) co_return first_error;
  co_return Result<void>::success();
}

}  // namespace csar::raid
