// RedundancyPolicy: the per-file redundancy policy layer.
//
// The paper fixes one scheme per run; this layer makes the scheme per-file
// metadata. At create time a file's scheme comes from a static rule table
// (path-prefix hints) or the deployment default; afterwards every consumer
// (CsarFs data paths, Recovery, RebuildCoordinator, Scrubber, the storm
// harness) resolves the scheme through scheme_of() instead of a global.
//
// The adaptive half is fed by telemetry the stack already produces —
// HealthMonitor transitions, scrub media-error findings, RpcPolicy
// timeout/reset counts, and per-file partial-vs-full-stripe write ratios —
// and recommends scheme *transitions*: under fault pressure a small-write-
// heavy parity/Hybrid file is worth migrating to RAID1, whose rebuild moves
// 2·len per lost unit instead of n·len, shrinking the post-fault window
// during which a second failure would lose data. Transitions are executed
// by SchemeMigrator (migrate.hpp) as background copies that ride the
// Recovery rebuild machinery; the policy only tracks state and decides.
//
// Everything here is deterministic: decisions are pure functions of the
// counters, and iteration is over ordered maps, so a fixed seed reproduces
// the same transitions at the same simulated times.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "pvfs/manager.hpp"
#include "raid/scheme.hpp"
#include "sim/time.hpp"

namespace csar::raid {

/// Static assignment rule: files whose name starts with `prefix` get
/// `scheme`. First matching rule wins; no match falls to the default.
struct PolicyRule {
  std::string prefix;
  Scheme scheme = Scheme::hybrid;
};

struct AdaptiveParams {
  bool enabled = false;
  /// Fault-pressure gates: any one of these tripping makes the engine
  /// consider transitions (all counters are cumulative since construction).
  std::uint64_t media_error_threshold = 1;
  std::uint64_t down_transition_threshold = 1;
  std::uint64_t rpc_pressure_threshold = 8;  ///< timeouts + resets
  /// A file is "small-write-heavy" when at least this fraction of its
  /// observed write bytes were partial-stripe.
  double partial_ratio_threshold = 0.5;
  /// Ignore files with less observed write traffic than this (no signal).
  std::uint64_t min_observed_bytes = 256 * 1024;
  /// Where small-write-heavy parity/Hybrid files go under fault pressure.
  Scheme small_write_target = Scheme::raid1;
  /// Multi-disk-risk gate: once this many alive->down transitions have been
  /// observed, a single-parity scheme leaves no margin for the *next*
  /// failure during a rebuild — full-stripe-heavy parity/Hybrid files are
  /// worth migrating to an rs(k,m) code that survives m concurrent losses.
  /// Small-write-heavy files still prefer the mirror target above (an rs
  /// small write pays m coding RMWs).
  std::uint64_t multi_fault_threshold = 2;
  Scheme multi_fault_target = Scheme::rs(4, 2);
};

struct PolicyParams {
  Scheme default_scheme = Scheme::hybrid;
  std::vector<PolicyRule> rules;
  AdaptiveParams adaptive;
};

/// Per-scheme activity counters (diagnostics / A10 scheme-mix reporting).
struct SchemeCounters {
  std::uint64_t writes = 0;           ///< write() calls routed to the scheme
  std::uint64_t bytes = 0;            ///< bytes those writes carried
  std::uint64_t rmw_groups = 0;       ///< partial-group read-modify-writes
  std::uint64_t overflow_bytes = 0;   ///< bytes routed to overflow copies
};

struct PolicyStats {
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_failed = 0;
  std::uint64_t media_errors = 0;      ///< scrub findings + client-observed
  std::uint64_t down_transitions = 0;  ///< HealthMonitor alive->down flips
  std::uint64_t rpc_pressure = 0;      ///< client RPC timeouts + resets
};

/// Erasure-coding activity counters (rs(k,m) paths). Kept on the policy —
/// the one object shared by every CsarFs and every per-op Recovery in a
/// deployment — so degraded-read accounting survives the short-lived
/// Recovery instances the failover paths construct.
struct EcStats {
  std::uint64_t degraded_reads = 0;     ///< rs pieces served by decode
  std::uint64_t fragments_fetched = 0;  ///< fragments read for those decodes
  std::uint64_t decode_bytes = 0;       ///< bytes fed through the GF decoder
  std::uint64_t encode_bytes = 0;       ///< bytes fed through the GF encoder
  std::uint64_t rebuild_decodes = 0;    ///< fragment decodes done by rebuilds
};

class RedundancyPolicy {
 public:
  explicit RedundancyPolicy(PolicyParams params = {}) : p_(std::move(params)) {}
  RedundancyPolicy(const RedundancyPolicy&) = delete;
  RedundancyPolicy& operator=(const RedundancyPolicy&) = delete;

  const PolicyParams& params() const { return p_; }
  Scheme default_scheme() const { return p_.default_scheme; }

  /// Scheme a file created under `name` should get (rules, then default).
  Scheme assign(std::string_view name) const;

  /// Resolve a file's current scheme: the live override (a completed
  /// migration this policy instance executed) wins over the creation-time
  /// tag carried in the OpenFile — callers routinely hold OpenFile copies
  /// taken before a migration — and an untagged file (raw pvfs create)
  /// inherits the deployment default.
  Scheme scheme_of(const pvfs::OpenFile& f) const {
    if (auto it = overrides_.find(f.handle); it != overrides_.end()) {
      return it->second.scheme;
    }
    if (f.scheme != pvfs::kSchemeUnset) return scheme_from_tag(f.scheme);
    return p_.default_scheme;
  }

  /// The file's current redundancy-file generation (see Request::red_gen).
  std::uint32_t red_gen_of(const pvfs::OpenFile& f) const {
    if (auto it = overrides_.find(f.handle); it != overrides_.end()) {
      return it->second.red_gen;
    }
    return f.red_gen;
  }

  /// Whether the file may have live overflow entries: true for files that
  /// are — or ever were — Hybrid. Migrating away from Hybrid keeps the
  /// overflow overlay live (the new base redundancy covers the *raw* data
  /// files), so post-migration in-place writes must invalidate overlapping
  /// entries and reconstruction must keep overlaying mirror pieces. Files
  /// that were never Hybrid return false and keep their exact pre-policy
  /// message traffic.
  bool overflow_possible(const pvfs::OpenFile& f) const {
    return scheme_of(f) == Scheme::hybrid || ever_hybrid_.contains(f.handle);
  }

  /// Record a freshly created file's assigned scheme.
  void note_created(const pvfs::OpenFile& f, Scheme s) {
    if (s == Scheme::hybrid) ever_hybrid_.insert(f.handle);
    auto& t = files_[f.handle];
    t.last_scheme = s;
  }

  /// Flip a file to `s` at redundancy generation `red_gen` (migration
  /// commit; called with no awaits between the migrator's convergence check
  /// and this flip, so no write can interleave).
  void set_override(const pvfs::OpenFile& f, Scheme s, std::uint32_t red_gen) {
    if (scheme_of(f) == Scheme::hybrid) ever_hybrid_.insert(f.handle);
    overrides_[f.handle] = Override{s, red_gen};
    files_[f.handle].last_scheme = s;
  }

  // --- telemetry feeds ---
  void note_health_transition(std::uint32_t /*server*/, bool alive,
                              sim::Time /*at*/) {
    if (!alive) ++stats_.down_transitions;
  }
  void note_media_errors(std::uint64_t n) { stats_.media_errors += n; }
  void note_rpc_pressure(std::uint64_t events) {
    stats_.rpc_pressure += events;
  }
  /// Called by CsarFs for every write, with the full/partial-stripe byte
  /// split the layout computed anyway.
  void note_write(const pvfs::OpenFile& f, Scheme s, std::uint64_t full_bytes,
                  std::uint64_t partial_bytes) {
    auto& c = per_scheme_[s];
    ++c.writes;
    c.bytes += full_bytes + partial_bytes;
    auto& t = files_[f.handle];
    t.last_scheme = s;
    t.full_bytes += full_bytes;
    t.partial_bytes += partial_bytes;
  }
  void note_rmw(Scheme s, std::uint64_t groups) {
    per_scheme_[s].rmw_groups += groups;
  }
  void note_overflow_bytes(Scheme s, std::uint64_t bytes) {
    per_scheme_[s].overflow_bytes += bytes;
  }

  // --- erasure-coding telemetry ---
  // const (with mutable storage): Recovery instances hold the policy const —
  // they only ever *account* through it, never change routing state.
  void note_ec_degraded_read(std::uint64_t fragments,
                             std::uint64_t bytes) const {
    ++ec_.degraded_reads;
    ec_.fragments_fetched += fragments;
    ec_.decode_bytes += bytes;
  }
  void note_ec_rebuild_decode(std::uint64_t fragments,
                              std::uint64_t bytes) const {
    ++ec_.rebuild_decodes;
    ec_.fragments_fetched += fragments;
    ec_.decode_bytes += bytes;
  }
  void note_ec_encode(std::uint64_t bytes) const { ec_.encode_bytes += bytes; }
  const EcStats& ec_stats() const { return ec_; }

  // --- migration bookkeeping (SchemeMigrator) ---
  void note_migration_started(std::uint64_t handle) {
    attempted_.insert(handle);
    ++stats_.migrations_started;
  }
  void note_migration_completed() { ++stats_.migrations_completed; }
  void note_migration_failed() { ++stats_.migrations_failed; }
  /// Exclude a handle from future recommendations without counting an
  /// attempt (the migrator has no name/size for it, so it cannot act — and
  /// recommend() would otherwise return the same handle forever).
  void dismiss(std::uint64_t handle) { attempted_.insert(handle); }

  /// One recommended transition, or nullopt. Deterministic: a pure function
  /// of the counters, scanning files in ascending handle order. A handle is
  /// recommended at most once (migration attempts are recorded).
  struct Transition {
    std::uint64_t handle = 0;
    Scheme from = Scheme::hybrid;
    Scheme to = Scheme::raid1;
  };
  std::optional<Transition> recommend() const;

  const std::map<Scheme, SchemeCounters>& per_scheme() const {
    return per_scheme_;
  }
  const PolicyStats& stats() const { return stats_; }

 private:
  struct Override {
    Scheme scheme = Scheme::hybrid;
    std::uint32_t red_gen = 0;
  };
  struct FileTelemetry {
    Scheme last_scheme = Scheme::hybrid;
    std::uint64_t full_bytes = 0;
    std::uint64_t partial_bytes = 0;
  };

  PolicyParams p_;
  std::map<std::uint64_t, Override> overrides_;
  std::map<std::uint64_t, FileTelemetry> files_;
  std::set<std::uint64_t> ever_hybrid_;
  std::set<std::uint64_t> attempted_;
  std::map<Scheme, SchemeCounters> per_scheme_;
  PolicyStats stats_;
  mutable EcStats ec_;
};

}  // namespace csar::raid
