#include "raid/migrate.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "raid/recovery.hpp"
#include "sim/sync.hpp"

namespace csar::raid {

void SchemeMigrator::track(std::string name, const pvfs::OpenFile& f,
                           std::uint64_t size) {
  auto [it, fresh] = files_.try_emplace(f.handle);
  Tracked& t = it->second;
  if (fresh) {
    t.name = std::move(name);
    t.f = f;
    t.size = size;
  } else {
    t.size = std::max(t.size, size);
  }
}

void SchemeMigrator::start() {
  if (running_) return;
  running_ = true;
  ++gen_;
  if (!attached_) {
    attached_ = true;
    for (auto& fs : rig_->fs) fs->set_write_listener(this);
  }
  // Migration copies ride the rig's dedicated repair client; give it real
  // deadlines (a coexisting RebuildCoordinator installs the same defaults).
  rig_->repair_client().set_rpc_policy(p_.rpc);
  sim().spawn(supervisor(gen_), "migrate_supervisor");
}

void SchemeMigrator::stop() {
  running_ = false;
  ++gen_;
  if (attached_) {
    attached_ = false;
    for (auto& fs : rig_->fs) fs->set_write_listener(nullptr);
  }
}

bool SchemeMigrator::request(std::uint64_t handle, Scheme to) {
  auto it = files_.find(handle);
  if (it == files_.end() || it->second.migrating) return false;
  if (to.kind == SchemeKind::rs &&
      to.k + to.m > it->second.f.layout.nservers) {
    return false;  // rs(k,m) needs k+m distinct servers; refuse, don't corrupt
  }
  sim().spawn(migrate_task(handle, to), "migrate_task");
  return true;
}

void SchemeMigrator::on_write_begin(const pvfs::OpenFile& f) {
  auto it = files_.find(f.handle);
  if (it == files_.end()) return;
  ++it->second.writes_in_flight;
}

void SchemeMigrator::on_write_end(const pvfs::OpenFile& f, std::uint64_t off,
                                  std::uint64_t len, bool /*ok*/) {
  auto it = files_.find(f.handle);
  if (it == files_.end()) return;
  Tracked& t = it->second;
  if (t.writes_in_flight > 0) --t.writes_in_flight;
  if (!t.migrating || len == 0) return;
  // A failed write may still have landed on a subset of servers, so it
  // dirties its range like a successful one.
  t.dirty.insert(off, off + len);
  stats_.dirty_bytes += len;
  if (off + len > t.size) t.size = off + len;
}

sim::Task<void> SchemeMigrator::supervisor(std::uint64_t my_gen) {
  while (gen_ == my_gen) {
    // Feed the adaptive engine the clients' cumulative RPC pressure
    // (timeouts + fabric resets), as a delta since the last sample.
    std::uint64_t total = 0;
    for (auto& c : rig_->clients) {
      total += c->rpc_stats().timeouts + c->rpc_stats().resets;
    }
    if (total > rpc_pressure_seen_) {
      rig_->policy().note_rpc_pressure(total - rpc_pressure_seen_);
      rpc_pressure_seen_ = total;
    }
    if (adaptive_) {
      if (auto rec = rig_->policy().recommend()) {
        auto it = files_.find(rec->handle);
        if (it == files_.end()) {
          // Untracked handle: no manager path / size to act with, and
          // recommend() would return it forever.
          rig_->policy().dismiss(rec->handle);
        } else if (!it->second.migrating) {
          sim().spawn(migrate_task(rec->handle, rec->to), "migrate_task");
        }
      }
    }
    co_await sim().sleep(p_.decision_interval);
  }
}

sim::Task<void> SchemeMigrator::migrate_task(std::uint64_t handle, Scheme to) {
  auto it = files_.find(handle);
  if (it == files_.end() || it->second.migrating) co_return;
  Tracked& t = it->second;
  RedundancyPolicy& pol = rig_->policy();
  const Scheme from = pol.scheme_of(t.f);
  if (from == to) co_return;
  t.migrating = true;
  t.dirty.clear();
  ++active_;
  ++stats_.migrations_started;
  pol.note_migration_started(handle);
  if (obs::kEnabled && rig_->tracer() != nullptr) {
    rig_->tracer()->instant("migrate:start", "migrate",
                            "\"handle\":" + std::to_string(handle) +
                                ",\"to\":\"" + std::string(scheme_name(to)) +
                                "\"");
  }

  const std::uint32_t old_gen = pol.red_gen_of(t.f);
  const std::uint32_t new_gen = old_gen + 1;
  const sim::Time t0 = sim().now();
  pvfs::Client& repair = rig_->repair_client();

  // Sample the manager incarnation up front and fence the final persist to
  // it: if the manager crashes and replays mid-migration, the (stale)
  // persist is rejected instead of clobbering post-replay state, and
  // reconcile() resolves the flip afterwards.
  auto cur = co_await repair.open(t.name);
  if (!cur.ok()) {
    pol.note_migration_failed();
    ++stats_.migrations_failed;
    stats_.ok = false;
    t.migrating = false;
    --active_;
    co_return;
  }
  const std::uint32_t fence = repair.manager_epoch();

  // Pass 0 is paced by the rate cap (or, when a fleet-level budget is
  // installed, by the one bucket every concurrent migration shares); dirty
  // re-copy passes are bounded by the foreground write rate, so pacing them
  // could only delay convergence.
  sim::TokenBucket paced(sim(), p_.rate_cap, p_.burst);
  sim::TokenBucket* pace = shared_bucket_ ? shared_bucket_ : &paced;
  Recovery rec = rig_->repair_recovery();

  std::uint32_t passes = 0;
  bool failed = false;
  while (true) {
    if (passes >= p_.max_passes || sim().now() - t0 > p_.give_up) {
      failed = true;
      break;
    }
    IntervalSet snap = std::move(t.dirty);
    t.dirty.clear();
    const bool initial = passes == 0;
    if (!initial && snap.empty()) {
      if (t.writes_in_flight == 0) {
        // Converged. No await between this check and the flip: under the
        // cooperative scheduler the pair is atomic, so no write can start
        // under the old scheme and land after the flip.
        pol.set_override(t.f, to, new_gen);
        if (obs::kEnabled && rig_->tracer() != nullptr) {
          rig_->tracer()->instant("migrate:flip", "migrate",
                                  "\"handle\":" + std::to_string(handle));
        }
        break;
      }
      co_await sim().sleep(p_.poll);
      continue;
    }
    ++passes;
    ++stats_.passes;
    if (!initial) ++stats_.recopy_passes;
    auto r = co_await rec.build_redundancy(t.f, to, new_gen, t.size,
                                           initial ? nullptr : &snap,
                                           initial ? pace : nullptr);
    if (!r.ok()) {
      failed = true;
      break;
    }
  }

  if (failed) {
    // The file never left its old scheme; generation N+1 is garbage.
    // Best-effort cleanup, ignoring per-server errors (drop is idempotent
    // and a dead server's copy died with its disk).
    for (std::uint32_t s = 0; s < repair.nservers(); ++s) {
      pvfs::Request r;
      r.op = pvfs::Op::drop_red;
      r.handle = handle;
      r.red_gen = new_gen;
      co_await repair.rpc(s, std::move(r), p_.rpc);
    }
    pol.note_migration_failed();
    ++stats_.migrations_failed;
    stats_.ok = false;
    t.migrating = false;
    --active_;
    co_return;
  }

  // Persist the transition at the manager so later opens carry the new
  // scheme tag and generation (the in-memory override already covers every
  // OpenFile copy taken before or during the migration).
  auto ns = co_await repair.set_scheme(t.name, scheme_tag(to),
                                       new_gen, fence);
  if (ns.ok()) {
    t.f = *ns;
  } else {
    // The flip stands (generation N+1 is complete and live); only the
    // durable tag is stale. Count the failure and keep the old generation
    // so nothing is lost either way; reconcile() re-persists after the
    // manager replays.
    if (ns.error().code == Errc::stale_epoch) ++stats_.stale_persists;
    pol.note_migration_failed();
    ++stats_.migrations_failed;
    stats_.ok = false;
    t.migrating = false;
    --active_;
    co_return;
  }

  // Old-generation GC after a grace period for straggler redundancy reads
  // issued just before the flip. RAID0 sources have no redundancy to drop.
  co_await sim().sleep(p_.drop_grace);
  if (from != Scheme::raid0) {
    for (std::uint32_t s = 0; s < repair.nservers(); ++s) {
      pvfs::Request r;
      r.op = pvfs::Op::drop_red;
      r.handle = handle;
      r.red_gen = old_gen;
      co_await repair.rpc(s, std::move(r), p_.rpc);
    }
    ++stats_.old_gens_dropped;
  }

  pol.note_migration_completed();
  ++stats_.migrations_completed;
  if (obs::kEnabled && rig_->tracer() != nullptr) {
    rig_->tracer()->instant("migrate:complete", "migrate",
                            "\"handle\":" + std::to_string(handle));
  }
  t.migrating = false;
  --active_;
}

sim::Task<void> SchemeMigrator::reconcile() {
  RedundancyPolicy& pol = rig_->policy();
  pvfs::Client& repair = rig_->repair_client();
  // Snapshot the handle set first: the map may gain entries while we await.
  std::vector<std::uint64_t> handles;
  for (const auto& [h, t] : files_) handles.push_back(h);

  for (std::uint64_t handle : handles) {
    auto it = files_.find(handle);
    if (it == files_.end() || it->second.migrating) continue;
    Tracked& t = it->second;

    auto mgr = co_await repair.open(t.name);
    // Re-check after every await: a migration may have started meanwhile,
    // and reconciling under it could GC a generation it is building.
    if (t.migrating) continue;
    if (!mgr.ok()) continue;  // removed (or manager still down): nothing to do

    const Scheme live_scheme = pol.scheme_of(t.f);
    const std::uint32_t live_gen = pol.red_gen_of(t.f);
    const std::uint32_t mgr_gen = mgr->red_gen;

    if (live_gen > mgr_gen) {
      // Crash landed between flip and persist: generation `live_gen` is
      // complete and live but the durable tag still says `mgr_gen`. The
      // flip stands — re-persist under the current incarnation, then GC the
      // superseded generation the completed migration never got to drop.
      auto ns = co_await repair.set_scheme(
          t.name, scheme_tag(live_scheme), live_gen, repair.manager_epoch());
      if (t.migrating) continue;
      if (!ns.ok()) continue;  // manager crashed again; a later pass retries
      t.f = *ns;
      for (std::uint32_t s = 0; s < repair.nservers(); ++s) {
        pvfs::Request r;
        r.op = pvfs::Op::drop_red;
        r.handle = handle;
        r.red_gen = mgr_gen;
        co_await repair.rpc(s, std::move(r), p_.rpc);
        if (t.migrating) break;
      }
      ++stats_.reconcile_resumed;
      if (obs::kEnabled && rig_->tracer() != nullptr) {
        rig_->tracer()->instant("migrate:reconcile_resume", "migrate",
                                "\"handle\":" + std::to_string(handle));
      }
      continue;
    }

    if (mgr_gen > live_gen) {
      // The manager's durable state is ahead of this process (its replay
      // carries a persisted flip our in-memory policy never saw). Adopt it.
      if (mgr->scheme != pvfs::kSchemeUnset) {
        pol.set_override(t.f, scheme_from_tag(mgr->scheme), mgr_gen);
      }
      t.f = *mgr;
      ++stats_.reconcile_adopted;
      if (obs::kEnabled && rig_->tracer() != nullptr) {
        rig_->tracer()->instant("migrate:reconcile_adopt", "migrate",
                                "\"handle\":" + std::to_string(handle));
      }
      continue;
    }

    // Generations agree: sweep partial next-generation redundancy left by a
    // copy pass the crash aborted (drop_red of an absent generation is an
    // idempotent no-op on every server).
    for (std::uint32_t s = 0; s < repair.nservers(); ++s) {
      pvfs::Request r;
      r.op = pvfs::Op::drop_red;
      r.handle = handle;
      r.red_gen = live_gen + 1;
      co_await repair.rpc(s, std::move(r), p_.rpc);
      if (t.migrating) break;  // that generation is being built again — stop
    }
  }
}

}  // namespace csar::raid
