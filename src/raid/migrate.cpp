#include "raid/migrate.hpp"

#include <algorithm>
#include <utility>

#include "raid/recovery.hpp"
#include "sim/sync.hpp"

namespace csar::raid {

void SchemeMigrator::track(std::string name, const pvfs::OpenFile& f,
                           std::uint64_t size) {
  auto [it, fresh] = files_.try_emplace(f.handle);
  Tracked& t = it->second;
  if (fresh) {
    t.name = std::move(name);
    t.f = f;
    t.size = size;
  } else {
    t.size = std::max(t.size, size);
  }
}

void SchemeMigrator::start() {
  if (running_) return;
  running_ = true;
  ++gen_;
  if (!attached_) {
    attached_ = true;
    for (auto& fs : rig_->fs) fs->set_write_listener(this);
  }
  // Migration copies ride the rig's dedicated repair client; give it real
  // deadlines (a coexisting RebuildCoordinator installs the same defaults).
  rig_->repair_client().set_rpc_policy(p_.rpc);
  sim().spawn(supervisor(gen_), "migrate_supervisor");
}

void SchemeMigrator::stop() {
  running_ = false;
  ++gen_;
  if (attached_) {
    attached_ = false;
    for (auto& fs : rig_->fs) fs->set_write_listener(nullptr);
  }
}

void SchemeMigrator::request(std::uint64_t handle, Scheme to) {
  auto it = files_.find(handle);
  if (it == files_.end() || it->second.migrating) return;
  sim().spawn(migrate_task(handle, to), "migrate_task");
}

void SchemeMigrator::on_write_begin(const pvfs::OpenFile& f) {
  auto it = files_.find(f.handle);
  if (it == files_.end()) return;
  ++it->second.writes_in_flight;
}

void SchemeMigrator::on_write_end(const pvfs::OpenFile& f, std::uint64_t off,
                                  std::uint64_t len, bool /*ok*/) {
  auto it = files_.find(f.handle);
  if (it == files_.end()) return;
  Tracked& t = it->second;
  if (t.writes_in_flight > 0) --t.writes_in_flight;
  if (!t.migrating || len == 0) return;
  // A failed write may still have landed on a subset of servers, so it
  // dirties its range like a successful one.
  t.dirty.insert(off, off + len);
  stats_.dirty_bytes += len;
  if (off + len > t.size) t.size = off + len;
}

sim::Task<void> SchemeMigrator::supervisor(std::uint64_t my_gen) {
  while (gen_ == my_gen) {
    // Feed the adaptive engine the clients' cumulative RPC pressure
    // (timeouts + fabric resets), as a delta since the last sample.
    std::uint64_t total = 0;
    for (auto& c : rig_->clients) {
      total += c->rpc_stats().timeouts + c->rpc_stats().resets;
    }
    if (total > rpc_pressure_seen_) {
      rig_->policy().note_rpc_pressure(total - rpc_pressure_seen_);
      rpc_pressure_seen_ = total;
    }
    if (adaptive_) {
      if (auto rec = rig_->policy().recommend()) {
        auto it = files_.find(rec->handle);
        if (it == files_.end()) {
          // Untracked handle: no manager path / size to act with, and
          // recommend() would return it forever.
          rig_->policy().dismiss(rec->handle);
        } else if (!it->second.migrating) {
          sim().spawn(migrate_task(rec->handle, rec->to), "migrate_task");
        }
      }
    }
    co_await sim().sleep(p_.decision_interval);
  }
}

sim::Task<void> SchemeMigrator::migrate_task(std::uint64_t handle, Scheme to) {
  auto it = files_.find(handle);
  if (it == files_.end() || it->second.migrating) co_return;
  Tracked& t = it->second;
  RedundancyPolicy& pol = rig_->policy();
  const Scheme from = pol.scheme_of(t.f);
  if (from == to) co_return;
  t.migrating = true;
  t.dirty.clear();
  ++active_;
  ++stats_.migrations_started;
  pol.note_migration_started(handle);
  if (obs::kEnabled && rig_->tracer() != nullptr) {
    rig_->tracer()->instant("migrate:start", "migrate",
                            "\"handle\":" + std::to_string(handle) +
                                ",\"to\":\"" + std::string(scheme_name(to)) +
                                "\"");
  }

  const std::uint32_t old_gen = pol.red_gen_of(t.f);
  const std::uint32_t new_gen = old_gen + 1;
  const sim::Time t0 = sim().now();
  pvfs::Client& repair = rig_->repair_client();

  // Pass 0 is paced by the rate cap; dirty re-copy passes are bounded by
  // the foreground write rate, so pacing them could only delay convergence.
  sim::TokenBucket paced(sim(), p_.rate_cap, p_.burst);
  Recovery rec = rig_->repair_recovery();

  std::uint32_t passes = 0;
  bool failed = false;
  while (true) {
    if (passes >= p_.max_passes || sim().now() - t0 > p_.give_up) {
      failed = true;
      break;
    }
    IntervalSet snap = std::move(t.dirty);
    t.dirty.clear();
    const bool initial = passes == 0;
    if (!initial && snap.empty()) {
      if (t.writes_in_flight == 0) {
        // Converged. No await between this check and the flip: under the
        // cooperative scheduler the pair is atomic, so no write can start
        // under the old scheme and land after the flip.
        pol.set_override(t.f, to, new_gen);
        if (obs::kEnabled && rig_->tracer() != nullptr) {
          rig_->tracer()->instant("migrate:flip", "migrate",
                                  "\"handle\":" + std::to_string(handle));
        }
        break;
      }
      co_await sim().sleep(p_.poll);
      continue;
    }
    ++passes;
    ++stats_.passes;
    if (!initial) ++stats_.recopy_passes;
    auto r = co_await rec.build_redundancy(t.f, to, new_gen, t.size,
                                           initial ? nullptr : &snap,
                                           initial ? &paced : nullptr);
    if (!r.ok()) {
      failed = true;
      break;
    }
  }

  if (failed) {
    // The file never left its old scheme; generation N+1 is garbage.
    // Best-effort cleanup, ignoring per-server errors (drop is idempotent
    // and a dead server's copy died with its disk).
    for (std::uint32_t s = 0; s < repair.nservers(); ++s) {
      pvfs::Request r;
      r.op = pvfs::Op::drop_red;
      r.handle = handle;
      r.red_gen = new_gen;
      co_await repair.rpc(s, std::move(r), p_.rpc);
    }
    pol.note_migration_failed();
    ++stats_.migrations_failed;
    stats_.ok = false;
    t.migrating = false;
    --active_;
    co_return;
  }

  // Persist the transition at the manager so later opens carry the new
  // scheme tag and generation (the in-memory override already covers every
  // OpenFile copy taken before or during the migration).
  auto ns = co_await repair.set_scheme(t.name, static_cast<std::uint8_t>(to),
                                       new_gen);
  if (ns.ok()) {
    t.f = *ns;
  } else {
    // The flip stands (generation N+1 is complete and live); only the
    // durable tag is stale. Count the failure and keep the old generation
    // so nothing is lost either way.
    pol.note_migration_failed();
    ++stats_.migrations_failed;
    stats_.ok = false;
    t.migrating = false;
    --active_;
    co_return;
  }

  // Old-generation GC after a grace period for straggler redundancy reads
  // issued just before the flip. RAID0 sources have no redundancy to drop.
  co_await sim().sleep(p_.drop_grace);
  if (from != Scheme::raid0) {
    for (std::uint32_t s = 0; s < repair.nservers(); ++s) {
      pvfs::Request r;
      r.op = pvfs::Op::drop_red;
      r.handle = handle;
      r.red_gen = old_gen;
      co_await repair.rpc(s, std::move(r), p_.rpc);
    }
    ++stats_.old_gens_dropped;
  }

  pol.note_migration_completed();
  ++stats_.migrations_completed;
  if (obs::kEnabled && rig_->tracer() != nullptr) {
    rig_->tracer()->instant("migrate:complete", "migrate",
                            "\"handle\":" + std::to_string(handle));
  }
  t.migrating = false;
  --active_;
}

}  // namespace csar::raid
