// Scrubber: online verification (and repair) of a file's redundancy.
//
// A distributed RAID must be able to audit itself: RAID5 parity can be left
// inconsistent by concurrent writers without the locking protocol (§5.1),
// by a crash between the data and parity writes, or by the NO-LOCK ablation
// — and a stale parity group turns a later disk failure into data loss.
// The scrubber walks every parity group (or mirror pair, for RAID1),
// recomputes what the redundancy should be from the data files, reports
// mismatches, and optionally rewrites the redundancy in place.
//
// For the Hybrid scheme the base invariant is identical to RAID5's: parity
// covers the *data files* only, because partial-stripe writes go to
// overflow. Mirrored overflow copies are audited pairwise as well.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "pvfs/client.hpp"
#include "raid/policy.hpp"
#include "raid/scheme.hpp"
#include "sim/task.hpp"

namespace csar::raid {

class Scrubber {
 public:
  /// Fixed-scheme scrubbing: every file is audited as `scheme`.
  Scrubber(pvfs::Client& client, Scheme scheme)
      : client_(&client), fixed_(scheme) {}

  /// Policy-routed scrubbing: each file is audited under its own scheme and
  /// redundancy generation, and media-error findings feed the policy's
  /// fault-pressure counters. The policy is not owned.
  Scrubber(pvfs::Client& client, RedundancyPolicy* policy)
      : client_(&client), policy_(policy) {}

  struct Report {
    std::uint64_t groups_checked = 0;    ///< parity groups (RAID5/Hybrid)
    std::uint64_t parity_mismatches = 0;
    std::uint64_t mirror_units_checked = 0;  ///< mirrored units (RAID1)
    std::uint64_t mirror_mismatches = 0;
    std::uint64_t overflow_pairs_checked = 0;  ///< Hybrid primary/mirror
    std::uint64_t overflow_mismatches = 0;
    /// Reads lost to latent sector errors (Errc::media_error). These are
    /// per-range findings, not dead servers: the scrubber reconstructs the
    /// unreadable unit from the surviving units of its group / its mirror
    /// twin and rewrites it in place (rewriting remaps the bad sectors).
    std::uint64_t media_errors = 0;
    /// Findings with no surviving copy to rebuild from (e.g. two latent
    /// errors in one single-parity group).
    std::uint64_t unrepairable = 0;
    std::uint64_t repaired = 0;

    bool clean() const {
      return parity_mismatches + mirror_mismatches + overflow_mismatches +
                 media_errors + unrepairable ==
             0;
    }
  };

  /// Audit the redundancy of [0, file_size). Content comparison requires
  /// materialized files; on phantom files the scrub still performs all the
  /// I/O (useful for timing) but sizes are the only thing compared.
  sim::Task<Result<Report>> verify(const pvfs::OpenFile& f,
                                   std::uint64_t file_size) {
    return run(f, file_size, /*repair=*/false);
  }

  /// Audit and rewrite any redundancy found inconsistent.
  sim::Task<Result<Report>> repair(const pvfs::OpenFile& f,
                                   std::uint64_t file_size) {
    return run(f, file_size, /*repair=*/true);
  }

 private:
  sim::Task<Result<Report>> run(const pvfs::OpenFile& f,
                                std::uint64_t file_size, bool repair);
  sim::Task<Result<void>> scrub_parity(const pvfs::OpenFile& f,
                                       std::uint64_t file_size, bool repair,
                                       Report& report);
  sim::Task<Result<void>> scrub_rs(const pvfs::OpenFile& f,
                                   std::uint64_t file_size, bool repair,
                                   Report& report);
  sim::Task<Result<void>> scrub_mirrors(const pvfs::OpenFile& f,
                                        std::uint64_t file_size, bool repair,
                                        Report& report);
  sim::Task<Result<void>> scrub_overflow(const pvfs::OpenFile& f,
                                         std::uint64_t file_size, bool repair,
                                         Report& report);

  Scheme scheme_of(const pvfs::OpenFile& f) const {
    return policy_ != nullptr ? policy_->scheme_of(f) : fixed_;
  }
  std::uint32_t red_gen_of(const pvfs::OpenFile& f) const {
    return policy_ != nullptr ? policy_->red_gen_of(f) : f.red_gen;
  }
  /// Whether the file may carry live overflow entries (Hybrid now, or a
  /// migrated ex-Hybrid file whose overlay is still authoritative).
  bool overlay_overflow(const pvfs::OpenFile& f) const {
    return policy_ != nullptr ? policy_->overflow_possible(f)
                              : fixed_ == Scheme::hybrid;
  }

  pvfs::Client* client_;
  RedundancyPolicy* policy_ = nullptr;
  Scheme fixed_ = Scheme::hybrid;
};

}  // namespace csar::raid
