// Diagnostics: per-rig hardware and protocol counters as a table — what a
// systems paper's "where did the time go" appendix would show. Benches
// print this with CSAR_DIAG=1.
#pragma once

#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "raid/rig.hpp"

namespace csar::raid {

/// One row per I/O server: disk traffic, seeks, cache behaviour, parity
/// lock activity.
inline TextTable rig_stats_table(Rig& rig) {
  TextTable t({"server", "disk rd", "disk wr", "seeks", "cache hit%",
               "prereads", "dirty evict", "lock acq", "lock waits",
               "wait tot (ms)"});
  for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
    auto& node = rig.cluster.node(rig.server(s).node_id());
    const auto d = node.disk()->stats();
    const auto& c = node.cache()->stats();
    const auto& l = rig.server(s).lock_stats();
    const std::uint64_t accesses = c.hits + c.misses + c.prereads;
    const double hit_pct =
        accesses == 0 ? 0.0
                      : 100.0 * static_cast<double>(c.hits) /
                            static_cast<double>(accesses);
    t.add_row({"s" + std::to_string(s), format_bytes(d.bytes_read),
               format_bytes(d.bytes_written), TextTable::num(d.seeks),
               TextTable::num(hit_pct, 1), TextTable::num(c.prereads),
               TextTable::num(c.dirty_evictions),
               TextTable::num(l.acquisitions), TextTable::num(l.waits),
               TextTable::num(sim::to_seconds(l.wait_time) * 1e3, 1)});
  }
  return t;
}

/// One row per scheme the policy layer routed traffic to: write activity,
/// read-modify-write groups, overflow bytes.
inline TextTable policy_stats_table(const RedundancyPolicy& policy) {
  TextTable t({"scheme", "writes", "bytes", "rmw groups", "ovfl bytes"});
  for (const auto& [s, c] : policy.per_scheme()) {
    t.add_row({scheme_name(s), TextTable::num(c.writes),
               format_bytes(c.bytes), TextTable::num(c.rmw_groups),
               format_bytes(c.overflow_bytes)});
  }
  return t;
}

/// Erasure-coding activity: decode/encode traffic of the rs(k,m) paths.
/// The fragments/read column is the degraded-read cost the MDS property
/// promises: exactly k fragments fetched per decoded piece.
inline TextTable ec_stats_table(const RedundancyPolicy& policy) {
  const EcStats& e = policy.ec_stats();
  TextTable t({"degraded reads", "fragments", "frags/read", "decode bytes",
               "encode bytes", "rebuild decodes"});
  const double per_read =
      e.degraded_reads == 0
          ? 0.0
          : static_cast<double>(e.fragments_fetched) /
                static_cast<double>(e.degraded_reads + e.rebuild_decodes);
  t.add_row({TextTable::num(e.degraded_reads),
             TextTable::num(e.fragments_fetched), TextTable::num(per_read, 2),
             format_bytes(e.decode_bytes), format_bytes(e.encode_bytes),
             TextTable::num(e.rebuild_decodes)});
  return t;
}

/// Print the tables when the CSAR_DIAG environment variable is set.
inline void maybe_print_diagnostics(Rig& rig, const std::string& label) {
  if (std::getenv("CSAR_DIAG") == nullptr) return;
  std::printf("\n-- diagnostics: %s --\n", label.c_str());
  rig_stats_table(rig).print();
  {
    const pvfs::ManagerStats& mg = rig.manager->stats();
    const pvfs::JournalStats jn = rig.manager->journal_stats();
    std::printf(
        "manager: served=%llu dropped_replies=%llu dedup_hits=%llu "
        "journal_records=%llu checkpoints=%llu crashes=%llu replays=%llu\n",
        static_cast<unsigned long long>(mg.served),
        static_cast<unsigned long long>(mg.dropped_replies),
        static_cast<unsigned long long>(mg.dedup_hits),
        static_cast<unsigned long long>(jn.records_appended),
        static_cast<unsigned long long>(jn.checkpoints),
        static_cast<unsigned long long>(mg.crashes),
        static_cast<unsigned long long>(mg.replays));
  }
  {
    const EcStats& e = rig.policy().ec_stats();
    if (e.degraded_reads + e.rebuild_decodes + e.encode_bytes != 0) {
      std::printf("\n-- erasure coding: %s --\n", label.c_str());
      ec_stats_table(rig.policy()).print();
    }
  }
  if (!rig.policy().per_scheme().empty()) {
    std::printf("\n-- policy: %s --\n", label.c_str());
    policy_stats_table(rig.policy()).print();
    const auto& ps = rig.policy().stats();
    std::printf(
        "pressure: media=%llu down=%llu rpc=%llu | migrations: "
        "started=%llu completed=%llu failed=%llu\n",
        static_cast<unsigned long long>(ps.media_errors),
        static_cast<unsigned long long>(ps.down_transitions),
        static_cast<unsigned long long>(ps.rpc_pressure),
        static_cast<unsigned long long>(ps.migrations_started),
        static_cast<unsigned long long>(ps.migrations_completed),
        static_cast<unsigned long long>(ps.migrations_failed));
  }
}

}  // namespace csar::raid
