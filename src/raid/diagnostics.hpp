// Diagnostics: per-rig hardware and protocol counters as a table — what a
// systems paper's "where did the time go" appendix would show. Benches
// print this with CSAR_DIAG=1.
#pragma once

#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "raid/rig.hpp"

namespace csar::raid {

/// One row per I/O server: disk traffic, seeks, cache behaviour, parity
/// lock activity.
inline TextTable rig_stats_table(Rig& rig) {
  TextTable t({"server", "disk rd", "disk wr", "seeks", "cache hit%",
               "prereads", "dirty evict", "lock acq", "lock waits",
               "wait tot (ms)"});
  for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
    auto& node = rig.cluster.node(rig.server(s).node_id());
    const auto d = node.disk()->stats();
    const auto& c = node.cache()->stats();
    const auto& l = rig.server(s).lock_stats();
    const std::uint64_t accesses = c.hits + c.misses + c.prereads;
    const double hit_pct =
        accesses == 0 ? 0.0
                      : 100.0 * static_cast<double>(c.hits) /
                            static_cast<double>(accesses);
    t.add_row({"s" + std::to_string(s), format_bytes(d.bytes_read),
               format_bytes(d.bytes_written), TextTable::num(d.seeks),
               TextTable::num(hit_pct, 1), TextTable::num(c.prereads),
               TextTable::num(c.dirty_evictions),
               TextTable::num(l.acquisitions), TextTable::num(l.waits),
               TextTable::num(sim::to_seconds(l.wait_time) * 1e3, 1)});
  }
  return t;
}

/// Print the table when the CSAR_DIAG environment variable is set.
inline void maybe_print_diagnostics(Rig& rig, const char* label) {
  if (std::getenv("CSAR_DIAG") == nullptr) return;
  std::printf("\n-- diagnostics: %s --\n", label);
  rig_stats_table(rig).print();
}

}  // namespace csar::raid
