// HealthMonitor: periodic liveness probing of the I/O servers.
//
// Failure *detection* is the piece the paper leaves implicit in its
// single-disk-failure story: someone has to notice that a server stopped
// answering before degraded mode or a rebuild can begin. This monitor
// pings every server on a fixed interval, tracks per-server status, and
// records when each transition was observed — giving experiments a
// detection-latency number and clients a place to ask "who is down?"
// before falling back to degraded reads.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "pvfs/client.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace csar::raid {

struct HealthParams {
  sim::Duration interval = sim::ms(500);
  /// Per-ping deadline. Without one, a crashed or partitioned (message-
  /// dropping) server would stall the poller forever and the monitor would
  /// never mark anything down. Generous relative to ping RTT so queueing
  /// behind bulk traffic does not produce false positives.
  sim::Duration probe_timeout = sim::ms(200);
  /// Send attempts per probe; >1 rides out isolated message drops so one
  /// lost ping does not flap the server to "down".
  std::uint32_t probe_attempts = 2;
};

class HealthMonitor {
 public:
  HealthMonitor(pvfs::Client& client, HealthParams params = {})
      : client_(&client),
        p_(params),
        status_(client.nservers(), true),
        detected_at_(client.nservers(), 0) {}
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Spawn the probing loop. It runs until stop() is called (the pending
  /// probe round finishes first). A stop()/start() pair always yields a
  /// running poller: each start bumps a generation counter and spawns a
  /// fresh loop; any older loop exits at its next check.
  void start() {
    if (running_) return;
    running_ = true;
    ++gen_;
    client_->cluster().sim().spawn(poller(gen_));
  }

  void stop() {
    running_ = false;
    ++gen_;  // invalidates the live poller even mid-round
  }

  bool running() const { return running_; }

  bool is_alive(std::uint32_t server) const { return status_[server]; }

  /// Index of the first server currently believed down, if any.
  std::optional<std::uint32_t> first_failed() const {
    for (std::uint32_t s = 0; s < status_.size(); ++s) {
      if (!status_[s]) return s;
    }
    return std::nullopt;
  }

  /// All servers currently believed down, ascending. Multi-failure callers
  /// (the rs(k,m) degraded paths tolerate up to m concurrent victims) need
  /// the whole set; first_failed() remains the single-failure fast path.
  std::vector<std::uint32_t> failed_set() const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t s = 0; s < status_.size(); ++s) {
      if (!status_[s]) out.push_back(s);
    }
    return out;
  }

  /// Simulated time at which the server's current status was first
  /// observed (0 = never changed from the initial alive assumption).
  sim::Time status_since(std::uint32_t server) const {
    return detected_at_[server];
  }

  std::uint64_t probes_sent() const { return probes_; }
  std::uint64_t transitions() const { return transitions_; }

  /// Called on every status transition (after the tables update), from the
  /// poller coroutine. Listeners must not block; they may spawn tasks.
  /// Multiple consumers can subscribe (the RebuildCoordinator's rejoin
  /// handler and the RedundancyPolicy's fault-pressure feed); each add
  /// returns an id for removal. Removal leaves a tombstone so ids stay
  /// stable.
  using TransitionListener =
      std::function<void(std::uint32_t server, bool alive, sim::Time at)>;
  using ListenerId = std::size_t;
  ListenerId add_listener(TransitionListener fn) {
    listeners_.push_back(std::move(fn));
    return listeners_.size() - 1;
  }
  void remove_listener(ListenerId id) {
    if (id < listeners_.size()) listeners_[id] = nullptr;
  }

  /// Force-mark a server alive immediately. A RebuildCoordinator calls this
  /// the instant it admits a rebuilt server: waiting for the next probe
  /// round would leave a window where clients keep degrading writes around
  /// an already-trustworthy server, re-staling exactly what was rebuilt.
  /// In-flight probe results older than this flip are discarded.
  void mark_alive(std::uint32_t server) {
    if (status_[server]) return;
    status_[server] = true;
    detected_at_[server] = client_->cluster().sim().now();
    ++transitions_;
    notify(server, true, detected_at_[server]);
  }

 private:
  void notify(std::uint32_t server, bool alive, sim::Time at) {
    for (auto& l : listeners_) {
      if (l) l(server, alive, at);
    }
  }

  sim::Task<void> poller(std::uint64_t my_gen) {
    auto& sim = client_->cluster().sim();
    // Probes carry their own bounded policy: pings must fail fast even when
    // the client's default policy waits forever.
    pvfs::RpcPolicy probe_policy;
    probe_policy.timeout = p_.probe_timeout;
    probe_policy.max_attempts = p_.probe_attempts;
    while (gen_ == my_gen) {
      for (std::uint32_t s = 0;
           s < client_->nservers() && gen_ == my_gen; ++s) {
        pvfs::Request r;
        r.op = pvfs::Op::ping;
        const sim::Time sent = sim.now();
        auto resp = co_await client_->rpc(s, std::move(r), probe_policy);
        ++probes_;
        // A probe launched before a forced transition (mark_alive) reports
        // state older than the flip — discard it.
        if (gen_ == my_gen && sent >= detected_at_[s]) {
          const bool alive = resp.ok;
          if (alive != status_[s]) {
            status_[s] = alive;
            detected_at_[s] = sim.now();
            ++transitions_;
            notify(s, alive, sim.now());
          }
        }
      }
      co_await sim.sleep(p_.interval);
    }
  }

  pvfs::Client* client_;
  HealthParams p_;
  std::vector<bool> status_;
  std::vector<sim::Time> detected_at_;
  std::uint64_t probes_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t gen_ = 0;
  bool running_ = false;
  std::vector<TransitionListener> listeners_;
};

}  // namespace csar::raid
