#include "raid/scrub.hpp"

#include <utility>
#include <vector>

#include "common/interval_map.hpp"
#include "common/units.hpp"

namespace csar::raid {

namespace {
using pvfs::Op;
using pvfs::Request;
using pvfs::StripeLayout;

struct BufferSlicer {
  Buffer operator()(const Buffer& b, std::uint64_t off,
                    std::uint64_t len) const {
    return b.slice(off, len);
  }
};
}  // namespace

sim::Task<Result<Scrubber::Report>> Scrubber::run(const pvfs::OpenFile& f,
                                                  std::uint64_t file_size,
                                                  bool repair) {
  Report report;
  if (file_size == 0) co_return report;
  const Scheme sch = scheme_of(f);
  switch (sch.kind) {
    case SchemeKind::raid0:
      co_return report;  // nothing to audit
    case SchemeKind::raid1: {
      auto r = co_await scrub_mirrors(f, file_size, repair, report);
      if (!r.ok()) co_return r.error();
      break;
    }
    case SchemeKind::raid4:
    case SchemeKind::raid5:
    case SchemeKind::raid5_nolock:
    case SchemeKind::raid5_npc:
    case SchemeKind::hybrid: {
      auto r = co_await scrub_parity(f, file_size, repair, report);
      if (!r.ok()) co_return r.error();
      break;
    }
    case SchemeKind::rs: {
      auto r = co_await scrub_rs(f, file_size, repair, report);
      if (!r.ok()) co_return r.error();
      break;
    }
  }
  // Overflow entries outlive a migration away from Hybrid (the overlay stays
  // authoritative over the new base redundancy), so the pairwise overflow
  // audit runs for every file that may still carry entries — not just files
  // whose current base scheme is Hybrid.
  if (sch != Scheme::raid0 && overlay_overflow(f)) {
    auto o = co_await scrub_overflow(f, file_size, repair, report);
    if (!o.ok()) co_return o.error();
  }
  // Latent-sector findings are exactly the early-warning signal the adaptive
  // engine watches: feed them back so sustained media pressure can tip a
  // scheme recommendation before a whole server dies.
  if (policy_ != nullptr && report.media_errors > 0) {
    policy_->note_media_errors(report.media_errors);
  }
  if (repair && report.repaired > 0) {
    // Repairs only count once they are durable: a rewrite that rebuilds a
    // latent-sector unit must reach the disk (that is what remaps the bad
    // sectors), not sit dirty in a page cache that may be dropped.
    auto fl = co_await client_->flush(f);
    if (!fl.ok()) co_return Error{fl.error().code, "scrub flush"};
  }
  co_return report;
}

sim::Task<Result<void>> Scrubber::scrub_parity(const pvfs::OpenFile& f,
                                               std::uint64_t file_size,
                                               bool repair, Report& report) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint32_t gen = red_gen_of(f);
  const std::uint64_t ngroups = div_ceil(file_size, layout.stripe_width());
  for (std::uint64_t g = 0; g < ngroups; ++g) {
    // Gather the group's data units and its stored parity.
    std::vector<std::pair<std::uint32_t, Request>> reads;
    for (std::uint64_t u = g * (layout.n() - 1);
         u < (g + 1) * (layout.n() - 1); ++u) {
      Request r;
      r.op = Op::read_data_raw;
      r.handle = f.handle;
      r.off = layout.local_unit(u) * su;
      r.len = su;
      reads.emplace_back(layout.server_of_unit(u), std::move(r));
    }
    {
      Request r;
      r.op = Op::read_red;
      r.handle = f.handle;
      r.off = layout.parity_local_off(g);
      r.len = su;
      r.su = layout.stripe_unit;
      r.red_gen = gen;
      reads.emplace_back(layout.parity_server(g), std::move(r));
    }
    auto resps = co_await client_->rpc_all(std::move(reads));
    const std::size_t parity_idx = resps.size() - 1;
    std::vector<std::size_t> lost;  // responses lost to latent sector errors
    for (std::size_t i = 0; i < resps.size(); ++i) {
      if (resps[i].ok) continue;
      if (resps[i].err == Errc::media_error) {
        // A latent sector error is a per-range finding, not a dead server.
        ++report.media_errors;
        lost.push_back(i);
        continue;
      }
      co_return Error{resps[i].err, "scrub read", resps[i].server};
    }
    ++report.groups_checked;
    bool materialized = true;
    for (std::size_t i = 0; i < resps.size(); ++i) {
      if (resps[i].ok && !resps[i].data.materialized()) materialized = false;
    }
    if (lost.size() > 1) {
      // Single redundancy cannot rebuild two lost units of one group.
      report.unrepairable += lost.size();
      continue;
    }
    if (lost.size() == 1) {
      if (!repair) continue;  // verify-only: the finding is recorded
      // Rebuild the unreadable unit by XOR-ing the surviving n-1 units of
      // the group; rewriting it clears the bad sectors underneath.
      const std::size_t bad = lost.front();
      Buffer rebuilt =
          materialized ? Buffer::real(su) : Buffer::phantom(su);
      if (materialized) {
        for (std::size_t i = 0; i < resps.size(); ++i) {
          if (i != bad) rebuilt.xor_with(resps[i].data);
        }
        auto& node = client_->cluster().node(client_->node_id());
        co_await node.tx().occupy(sim::transfer_time(
            su * layout.n(), node.params().xor_bytes_per_sec));
      }
      Request w;
      w.handle = f.handle;
      w.payload = std::move(rebuilt);
      w.su = layout.stripe_unit;
      std::uint32_t target;
      if (bad == parity_idx) {
        w.op = Op::write_red;
        w.off = layout.parity_local_off(g);
        w.red_gen = gen;
        target = layout.parity_server(g);
      } else {
        const std::uint64_t u = g * (layout.n() - 1) + bad;
        w.op = Op::write_data;
        w.off = layout.local_unit(u) * su;
        target = layout.server_of_unit(u);
      }
      auto wr = co_await client_->rpc(target, std::move(w));
      if (!wr.ok) co_return Error{wr.err, "scrub media rewrite", wr.server};
      ++report.repaired;
      continue;
    }
    Buffer expect;
    if (!materialized) continue;  // phantom content: nothing to compare
    expect = Buffer::real(su);
    for (std::size_t i = 0; i + 1 < resps.size(); ++i) {
      expect.xor_with(resps[i].data);
    }
    // Charge the audit XOR on the scrubbing client.
    auto& node = client_->cluster().node(client_->node_id());
    co_await node.tx().occupy(sim::transfer_time(
        su * layout.n(), node.params().xor_bytes_per_sec));
    if (resps.back().data == expect) continue;
    ++report.parity_mismatches;
    if (repair) {
      Request w;
      w.op = Op::write_red;
      w.handle = f.handle;
      w.off = layout.parity_local_off(g);
      w.payload = std::move(expect);
      w.su = layout.stripe_unit;
      w.red_gen = gen;
      auto wr = co_await client_->rpc(layout.parity_server(g), std::move(w));
      if (!wr.ok) co_return Error{wr.err, "scrub parity rewrite"};
      ++report.repaired;
    }
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Scrubber::scrub_rs(const pvfs::OpenFile& f,
                                           std::uint64_t file_size,
                                           bool repair, Report& report) {
  // The parity audit generalized to rs(k,m): per group, read the k data
  // units and all m coding fragments; recompute each fragment and compare.
  // Up to m latent-sector losses per group decode from the k live
  // fragments; more is unrepairable.
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint32_t gen = red_gen_of(f);
  const Scheme sch = scheme_of(f);
  const CodeSpec spec = sch.code(layout);
  const std::uint32_t k = spec.k;
  const std::uint32_t m = spec.m;
  const std::uint64_t ngroups = div_ceil(file_size, layout.rs_group_width(k));
  for (std::uint64_t g = 0; g < ngroups; ++g) {
    std::vector<std::pair<std::uint32_t, Request>> reads;
    for (std::uint32_t i = 0; i < k; ++i) {
      Request r;
      r.op = Op::read_data_raw;
      r.handle = f.handle;
      r.off = layout.local_unit(g * k + i) * su;
      r.len = su;
      reads.emplace_back(layout.rs_data_server(g, k, i), std::move(r));
    }
    for (std::uint32_t j = 0; j < m; ++j) {
      Request r;
      r.op = Op::read_red;
      r.handle = f.handle;
      r.off = layout.rs_coding_local_off(g);
      r.len = su;
      r.su = layout.stripe_unit;
      r.red_gen = gen;
      reads.emplace_back(layout.rs_coding_server(g, k, j), std::move(r));
    }
    auto resps = co_await client_->rpc_all(std::move(reads));
    std::vector<std::uint32_t> lost;  // fragment indexes, data then coding
    for (std::size_t i = 0; i < resps.size(); ++i) {
      if (resps[i].ok) continue;
      if (resps[i].err == Errc::media_error) {
        ++report.media_errors;
        lost.push_back(static_cast<std::uint32_t>(i));
        continue;
      }
      co_return Error{resps[i].err, "scrub rs read", resps[i].server};
    }
    ++report.groups_checked;
    bool materialized = true;
    for (const auto& resp : resps) {
      if (resp.ok && !resp.data.materialized()) materialized = false;
    }
    if (lost.size() > m) {
      report.unrepairable += lost.size();
      continue;
    }
    if (!lost.empty()) {
      if (!repair) continue;  // verify-only: the findings are recorded
      // Decode each lost fragment from the first k live fragments.
      std::vector<std::uint32_t> present;
      for (std::uint32_t frag = 0; frag < spec.fragments() && present.size() < k;
           ++frag) {
        bool is_lost = false;
        for (const std::uint32_t l : lost) is_lost = is_lost || l == frag;
        if (!is_lost) present.push_back(frag);
      }
      for (const std::uint32_t bad : lost) {
        Buffer rebuilt = materialized ? Buffer::real(su) : Buffer::phantom(su);
        if (materialized) {
          const auto coeffs = rs_reconstruct_coeffs(spec, present, bad);
          auto dst = rebuilt.mutable_bytes();
          for (std::size_t r = 0; r < present.size(); ++r) {
            gf_muladd_region(dst, resps[present[r]].data.bytes(), coeffs[r]);
          }
          auto& node = client_->cluster().node(client_->node_id());
          co_await node.tx().occupy(sim::transfer_time(
              su * (k + 1), node.params().xor_bytes_per_sec));
        }
        Request w;
        w.handle = f.handle;
        w.payload = std::move(rebuilt);
        w.su = layout.stripe_unit;
        std::uint32_t target;
        if (bad >= k) {
          w.op = Op::write_red;
          w.off = layout.rs_coding_local_off(g);
          w.red_gen = gen;
          target = layout.rs_coding_server(g, k, bad - k);
        } else {
          w.op = Op::write_data;
          w.off = layout.local_unit(g * k + bad) * su;
          target = layout.rs_data_server(g, k, bad);
        }
        auto wr = co_await client_->rpc(target, std::move(w));
        if (!wr.ok) co_return Error{wr.err, "scrub rs rewrite", wr.server};
        ++report.repaired;
      }
      continue;
    }
    if (!materialized) continue;  // phantom content: nothing to compare
    for (std::uint32_t j = 0; j < m; ++j) {
      Buffer expect = Buffer::real(su);
      auto dst = expect.mutable_bytes();
      for (std::uint32_t i = 0; i < k; ++i) {
        gf_muladd_region(dst, resps[i].data.bytes(), rs_coeff(spec, j, i));
      }
      auto& node = client_->cluster().node(client_->node_id());
      co_await node.tx().occupy(sim::transfer_time(
          su * (k + 1), node.params().xor_bytes_per_sec));
      if (resps[k + j].data == expect) continue;
      ++report.parity_mismatches;
      if (repair) {
        Request w;
        w.op = Op::write_red;
        w.handle = f.handle;
        w.off = layout.rs_coding_local_off(g);
        w.payload = std::move(expect);
        w.su = layout.stripe_unit;
        w.red_gen = gen;
        auto wr = co_await client_->rpc(layout.rs_coding_server(g, k, j),
                                        std::move(w));
        if (!wr.ok) co_return Error{wr.err, "scrub rs coding rewrite"};
        ++report.repaired;
      }
    }
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Scrubber::scrub_mirrors(const pvfs::OpenFile& f,
                                                std::uint64_t file_size,
                                                bool repair, Report& report) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint32_t gen = red_gen_of(f);
  for (std::uint64_t u = 0; u * su < file_size; ++u) {
    const std::uint32_t s = layout.server_of_unit(u);
    const std::uint64_t local = layout.local_unit(u) * su;
    const std::uint64_t len = std::min<std::uint64_t>(su, file_size - u * su);
    Request rd;
    rd.op = Op::read_data_raw;
    rd.handle = f.handle;
    rd.off = local;
    rd.len = len;
    Request rm;
    rm.op = Op::read_red;
    rm.handle = f.handle;
    rm.off = local;
    rm.len = len;
    rm.su = layout.stripe_unit;
    rm.red_gen = gen;
    std::vector<std::pair<std::uint32_t, Request>> reads;
    reads.emplace_back(s, std::move(rd));
    reads.emplace_back((s + 1) % layout.n(), std::move(rm));
    auto resps = co_await client_->rpc_all(std::move(reads));
    bool primary_lost = false;
    bool mirror_lost = false;
    for (std::size_t i = 0; i < resps.size(); ++i) {
      if (resps[i].ok) continue;
      if (resps[i].err == Errc::media_error) {
        ++report.media_errors;
        (i == 0 ? primary_lost : mirror_lost) = true;
        continue;
      }
      co_return Error{resps[i].err, "scrub mirror read", resps[i].server};
    }
    ++report.mirror_units_checked;
    if (primary_lost && mirror_lost) {
      report.unrepairable += 2;  // both copies of the unit are unreadable
      continue;
    }
    if (primary_lost || mirror_lost) {
      if (!repair) continue;
      // Restore the unreadable copy from its healthy twin.
      Request w;
      w.handle = f.handle;
      w.off = local;
      w.su = layout.stripe_unit;
      w.op = primary_lost ? Op::write_data : Op::write_red;
      if (!primary_lost) w.red_gen = gen;
      w.payload = std::move(resps[primary_lost ? 1 : 0].data);
      auto wr = co_await client_->rpc(
          primary_lost ? s : (s + 1) % layout.n(), std::move(w));
      if (!wr.ok) {
        co_return Error{wr.err, "scrub mirror media rewrite", wr.server};
      }
      ++report.repaired;
      continue;
    }
    if (!resps[0].data.materialized() || !resps[1].data.materialized()) {
      continue;
    }
    if (resps[0].data == resps[1].data) continue;
    ++report.mirror_mismatches;
    if (repair) {
      Request w;
      w.op = Op::write_red;
      w.handle = f.handle;
      w.off = local;
      w.payload = std::move(resps[0].data);
      w.su = layout.stripe_unit;
      w.red_gen = gen;
      auto wr = co_await client_->rpc((s + 1) % layout.n(), std::move(w));
      if (!wr.ok) co_return Error{wr.err, "scrub mirror rewrite"};
      ++report.repaired;
    }
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Scrubber::scrub_overflow(const pvfs::OpenFile& f,
                                                 std::uint64_t file_size,
                                                 bool repair,
                                                 Report& report) {
  const StripeLayout& layout = f.layout;
  for (std::uint32_t s = 0; s < layout.n(); ++s) {
    // Primary entries on s must match the mirrors on s+1.
    Request ro;
    ro.op = Op::read_own_overflow;
    ro.handle = f.handle;
    ro.off = 0;
    ro.len = file_size;
    auto own = co_await client_->rpc(s, std::move(ro));
    if (!own.ok && own.err == Errc::media_error) {
      // The owner's overflow region has latent sector errors: restore its
      // entries from the successor's mirror copies.
      ++report.media_errors;
      if (!repair) continue;
      Request rr;
      rr.op = Op::read_mirror;
      rr.handle = f.handle;
      rr.off = 0;
      rr.len = file_size;
      rr.owner = s;
      auto surv = co_await client_->rpc((s + 1) % layout.n(), std::move(rr));
      if (!surv.ok) {
        ++report.unrepairable;  // mirror unreadable too
        continue;
      }
      for (auto& piece : surv.pieces) {
        Request w;
        w.op = Op::write_overflow;
        w.handle = f.handle;
        w.off = piece.local_off;
        w.payload = std::move(piece.data);
        w.owner = s;
        w.su = layout.stripe_unit;
        auto wr = co_await client_->rpc(s, std::move(w));
        if (!wr.ok) {
          co_return Error{wr.err, "scrub overflow media rewrite", wr.server};
        }
        ++report.repaired;
      }
      continue;
    }
    if (!own.ok) co_return Error{own.err, "scrub overflow read", own.server};
    if (own.pieces.empty()) continue;

    Request rm;
    rm.op = Op::read_mirror;
    rm.handle = f.handle;
    rm.off = 0;
    rm.len = file_size;
    rm.owner = s;
    auto mirror = co_await client_->rpc((s + 1) % layout.n(), std::move(rm));
    if (!mirror.ok && mirror.err == Errc::media_error) {
      // Mirror side unreadable: rewrite every primary entry's mirror copy.
      ++report.media_errors;
      if (repair) {
        for (const auto& piece : own.pieces) {
          ++report.overflow_pairs_checked;
          Request w;
          w.op = Op::write_overflow;
          w.handle = f.handle;
          w.off = piece.local_off;
          w.payload = piece.data.slice(0, piece.data.size());
          w.owner = s;
          w.mirror = true;
          w.su = layout.stripe_unit;
          auto wr =
              co_await client_->rpc((s + 1) % layout.n(), std::move(w));
          if (!wr.ok) {
            co_return Error{wr.err, "scrub mirror-table media rewrite",
                            wr.server};
          }
          ++report.repaired;
        }
      }
      continue;
    }
    if (!mirror.ok) {
      co_return Error{mirror.err, "scrub mirror-table read", mirror.server};
    }

    IntervalMap<Buffer, BufferSlicer> mirror_map;
    bool mirror_materialized = true;
    for (auto& piece : mirror.pieces) {
      if (!piece.data.materialized()) mirror_materialized = false;
      const std::uint64_t end = piece.local_off + piece.data.size();
      mirror_map.insert(piece.local_off, end, std::move(piece.data));
    }
    for (const auto& piece : own.pieces) {
      ++report.overflow_pairs_checked;
      const std::uint64_t start = piece.local_off;
      const std::uint64_t end = start + piece.data.size();
      bool match = true;
      if (!piece.data.materialized() || !mirror_materialized) {
        // Phantom: compare coverage only.
        match = mirror_map.covered_bytes() > 0 || mirror_map.intersects(
                                                      start, end);
      } else {
        Buffer assembled = Buffer::real(end - start);
        std::uint64_t covered = 0;
        for (const auto& chunk : mirror_map.query(start, end)) {
          assembled.write_at(
              chunk.start - start,
              chunk.value->slice(chunk.start - chunk.entry_start,
                                 chunk.end - chunk.start));
          covered += chunk.end - chunk.start;
        }
        match = covered == end - start && assembled == piece.data;
      }
      if (match) continue;
      ++report.overflow_mismatches;
      if (repair) {
        Request w;
        w.op = Op::write_overflow;
        w.handle = f.handle;
        w.off = start;
        w.payload = piece.data.slice(0, piece.data.size());
        w.owner = s;
        w.mirror = true;
        w.su = layout.stripe_unit;
        auto wr =
            co_await client_->rpc((s + 1) % layout.n(), std::move(w));
        if (!wr.ok) co_return Error{wr.err, "scrub overflow rewrite"};
        ++report.repaired;
      }
    }
  }
  co_return Result<void>::success();
}

}  // namespace csar::raid
