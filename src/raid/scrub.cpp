#include "raid/scrub.hpp"

#include <utility>
#include <vector>

#include "common/interval_map.hpp"
#include "common/units.hpp"

namespace csar::raid {

namespace {
using pvfs::Op;
using pvfs::Request;
using pvfs::StripeLayout;

struct BufferSlicer {
  Buffer operator()(const Buffer& b, std::uint64_t off,
                    std::uint64_t len) const {
    return b.slice(off, len);
  }
};
}  // namespace

sim::Task<Result<Scrubber::Report>> Scrubber::run(const pvfs::OpenFile& f,
                                                  std::uint64_t file_size,
                                                  bool repair) {
  Report report;
  if (file_size == 0) co_return report;
  switch (scheme_) {
    case Scheme::raid0:
      co_return report;  // nothing to audit
    case Scheme::raid1: {
      auto r = co_await scrub_mirrors(f, file_size, repair, report);
      if (!r.ok()) co_return r.error();
      co_return report;
    }
    case Scheme::raid4:
    case Scheme::raid5:
    case Scheme::raid5_nolock:
    case Scheme::raid5_npc: {
      auto r = co_await scrub_parity(f, file_size, repair, report);
      if (!r.ok()) co_return r.error();
      co_return report;
    }
    case Scheme::hybrid: {
      auto r = co_await scrub_parity(f, file_size, repair, report);
      if (!r.ok()) co_return r.error();
      auto o = co_await scrub_overflow(f, file_size, repair, report);
      if (!o.ok()) co_return o.error();
      co_return report;
    }
  }
  co_return Error{Errc::invalid_argument, "unknown scheme"};
}

sim::Task<Result<void>> Scrubber::scrub_parity(const pvfs::OpenFile& f,
                                               std::uint64_t file_size,
                                               bool repair, Report& report) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint64_t ngroups = div_ceil(file_size, layout.stripe_width());
  for (std::uint64_t g = 0; g < ngroups; ++g) {
    // Gather the group's data units and its stored parity.
    std::vector<std::pair<std::uint32_t, Request>> reads;
    for (std::uint64_t u = g * (layout.n() - 1);
         u < (g + 1) * (layout.n() - 1); ++u) {
      Request r;
      r.op = Op::read_data_raw;
      r.handle = f.handle;
      r.off = layout.local_unit(u) * su;
      r.len = su;
      reads.emplace_back(layout.server_of_unit(u), std::move(r));
    }
    {
      Request r;
      r.op = Op::read_red;
      r.handle = f.handle;
      r.off = layout.parity_local_off(g);
      r.len = su;
      r.su = layout.stripe_unit;
      reads.emplace_back(layout.parity_server(g), std::move(r));
    }
    auto resps = co_await client_->rpc_all(std::move(reads));
    Buffer expect;
    bool materialized = true;
    for (std::size_t i = 0; i < resps.size(); ++i) {
      if (!resps[i].ok) co_return Error{resps[i].err, "scrub read"};
      if (!resps[i].data.materialized()) materialized = false;
    }
    ++report.groups_checked;
    if (!materialized) continue;  // phantom content: nothing to compare
    expect = Buffer::real(su);
    for (std::size_t i = 0; i + 1 < resps.size(); ++i) {
      expect.xor_with(resps[i].data);
    }
    // Charge the audit XOR on the scrubbing client.
    auto& node = client_->cluster().node(client_->node_id());
    co_await node.tx().occupy(sim::transfer_time(
        su * layout.n(), node.params().xor_bytes_per_sec));
    if (resps.back().data == expect) continue;
    ++report.parity_mismatches;
    if (repair) {
      Request w;
      w.op = Op::write_red;
      w.handle = f.handle;
      w.off = layout.parity_local_off(g);
      w.payload = std::move(expect);
      w.su = layout.stripe_unit;
      auto wr = co_await client_->rpc(layout.parity_server(g), std::move(w));
      if (!wr.ok) co_return Error{wr.err, "scrub parity rewrite"};
      ++report.repaired;
    }
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Scrubber::scrub_mirrors(const pvfs::OpenFile& f,
                                                std::uint64_t file_size,
                                                bool repair, Report& report) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  for (std::uint64_t u = 0; u * su < file_size; ++u) {
    const std::uint32_t s = layout.server_of_unit(u);
    const std::uint64_t local = layout.local_unit(u) * su;
    const std::uint64_t len = std::min<std::uint64_t>(su, file_size - u * su);
    Request rd;
    rd.op = Op::read_data_raw;
    rd.handle = f.handle;
    rd.off = local;
    rd.len = len;
    Request rm;
    rm.op = Op::read_red;
    rm.handle = f.handle;
    rm.off = local;
    rm.len = len;
    rm.su = layout.stripe_unit;
    std::vector<std::pair<std::uint32_t, Request>> reads;
    reads.emplace_back(s, std::move(rd));
    reads.emplace_back((s + 1) % layout.n(), std::move(rm));
    auto resps = co_await client_->rpc_all(std::move(reads));
    for (const auto& resp : resps) {
      if (!resp.ok) co_return Error{resp.err, "scrub mirror read"};
    }
    ++report.mirror_units_checked;
    if (!resps[0].data.materialized() || !resps[1].data.materialized()) {
      continue;
    }
    if (resps[0].data == resps[1].data) continue;
    ++report.mirror_mismatches;
    if (repair) {
      Request w;
      w.op = Op::write_red;
      w.handle = f.handle;
      w.off = local;
      w.payload = std::move(resps[0].data);
      w.su = layout.stripe_unit;
      auto wr = co_await client_->rpc((s + 1) % layout.n(), std::move(w));
      if (!wr.ok) co_return Error{wr.err, "scrub mirror rewrite"};
      ++report.repaired;
    }
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> Scrubber::scrub_overflow(const pvfs::OpenFile& f,
                                                 std::uint64_t file_size,
                                                 bool repair,
                                                 Report& report) {
  const StripeLayout& layout = f.layout;
  for (std::uint32_t s = 0; s < layout.n(); ++s) {
    // Primary entries on s must match the mirrors on s+1.
    Request ro;
    ro.op = Op::read_own_overflow;
    ro.handle = f.handle;
    ro.off = 0;
    ro.len = file_size;
    auto own = co_await client_->rpc(s, std::move(ro));
    if (!own.ok) co_return Error{own.err, "scrub overflow read"};
    if (own.pieces.empty()) continue;

    Request rm;
    rm.op = Op::read_mirror;
    rm.handle = f.handle;
    rm.off = 0;
    rm.len = file_size;
    rm.owner = s;
    auto mirror = co_await client_->rpc((s + 1) % layout.n(), std::move(rm));
    if (!mirror.ok) co_return Error{mirror.err, "scrub mirror-table read"};

    IntervalMap<Buffer, BufferSlicer> mirror_map;
    bool mirror_materialized = true;
    for (auto& piece : mirror.pieces) {
      if (!piece.data.materialized()) mirror_materialized = false;
      const std::uint64_t end = piece.local_off + piece.data.size();
      mirror_map.insert(piece.local_off, end, std::move(piece.data));
    }
    for (const auto& piece : own.pieces) {
      ++report.overflow_pairs_checked;
      const std::uint64_t start = piece.local_off;
      const std::uint64_t end = start + piece.data.size();
      bool match = true;
      if (!piece.data.materialized() || !mirror_materialized) {
        // Phantom: compare coverage only.
        match = mirror_map.covered_bytes() > 0 || mirror_map.intersects(
                                                      start, end);
      } else {
        Buffer assembled = Buffer::real(end - start);
        std::uint64_t covered = 0;
        for (const auto& chunk : mirror_map.query(start, end)) {
          assembled.write_at(
              chunk.start - start,
              chunk.value->slice(chunk.start - chunk.entry_start,
                                 chunk.end - chunk.start));
          covered += chunk.end - chunk.start;
        }
        match = covered == end - start && assembled == piece.data;
      }
      if (match) continue;
      ++report.overflow_mismatches;
      if (repair) {
        Request w;
        w.op = Op::write_overflow;
        w.handle = f.handle;
        w.off = start;
        w.payload = piece.data.slice(0, piece.data.size());
        w.owner = s;
        w.mirror = true;
        w.su = layout.stripe_unit;
        auto wr =
            co_await client_->rpc((s + 1) % layout.n(), std::move(w));
        if (!wr.ok) co_return Error{wr.err, "scrub overflow rewrite"};
        ++report.repaired;
      }
    }
  }
  co_return Result<void>::success();
}

}  // namespace csar::raid
