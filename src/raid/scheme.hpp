// Redundancy schemes studied in the paper (§4) plus the two ablations used
// in its evaluation (§5.1, §6.2).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "pvfs/layout.hpp"

namespace csar::raid {

enum class Scheme : std::uint8_t {
  raid0,         ///< plain PVFS striping, no redundancy (the baseline)
  raid1,         ///< striped block mirroring (mirror on the next server)
  raid4,         ///< fixed parity server (Swift implemented this; §3 notes
                 ///< it performed worse than RAID5 — see the ablation)
  raid5,         ///< rotated parity, client RMW + distributed parity locks
  raid5_nolock,  ///< "R5 NO LOCK": parity may be left inconsistent (Fig. 3)
  raid5_npc,     ///< "RAID5-npc": parity computation not charged (Fig. 4a)
  hybrid,        ///< CSAR: RAID5 for full stripes, mirrored overflow for
                 ///< partial stripes (the paper's contribution)
};

// The switches below are exhaustive: every enumerator returns, and
// -Werror=switch flags any future Scheme addition at compile time. The
// std::abort() after each switch is unreachable (an out-of-range cast is the
// only way there) — there is deliberately no "?" fallback that could mask a
// bogus value in printed output.
inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::raid0:
      return "RAID0";
    case Scheme::raid1:
      return "RAID1";
    case Scheme::raid4:
      return "RAID4";
    case Scheme::raid5:
      return "RAID5";
    case Scheme::raid5_nolock:
      return "R5-NOLOCK";
    case Scheme::raid5_npc:
      return "RAID5-npc";
    case Scheme::hybrid:
      return "Hybrid";
  }
  std::abort();
}

/// True for the schemes that store block parity (RAID4, all RAID5 variants
/// and the Hybrid full-stripe path).
inline bool uses_parity(Scheme s) {
  switch (s) {
    case Scheme::raid0:
    case Scheme::raid1:
      return false;
    case Scheme::raid4:
    case Scheme::raid5:
    case Scheme::raid5_nolock:
    case Scheme::raid5_npc:
    case Scheme::hybrid:
      return true;
  }
  std::abort();
}

/// The parity placement a scheme's files should be created with.
inline pvfs::ParityPlacement placement_for(Scheme s) {
  switch (s) {
    case Scheme::raid4:
      return pvfs::ParityPlacement::fixed;
    case Scheme::raid0:
    case Scheme::raid1:
    case Scheme::raid5:
    case Scheme::raid5_nolock:
    case Scheme::raid5_npc:
    case Scheme::hybrid:
      return pvfs::ParityPlacement::rotating;
  }
  std::abort();
}

/// Inverse of scheme_name for CLI flags and scripts: accepts the display
/// names case-insensitively plus the lowercase identifiers used in code
/// ("raid5_nolock", "raid5_npc"). nullopt for anything unrecognized.
inline std::optional<Scheme> parse_scheme(std::string_view text) {
  std::string t;
  t.reserve(text.size());
  for (char c : text) {
    t.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (t == "raid0") return Scheme::raid0;
  if (t == "raid1") return Scheme::raid1;
  if (t == "raid4") return Scheme::raid4;
  if (t == "raid5") return Scheme::raid5;
  if (t == "raid5_nolock" || t == "r5-nolock") return Scheme::raid5_nolock;
  if (t == "raid5_npc" || t == "raid5-npc") return Scheme::raid5_npc;
  if (t == "hybrid") return Scheme::hybrid;
  return std::nullopt;
}

}  // namespace csar::raid
