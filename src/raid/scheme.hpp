// Redundancy schemes studied in the paper (§4) plus the two ablations used
// in its evaluation (§5.1, §6.2).
#pragma once

#include <cstdint>

#include "pvfs/layout.hpp"

namespace csar::raid {

enum class Scheme : std::uint8_t {
  raid0,         ///< plain PVFS striping, no redundancy (the baseline)
  raid1,         ///< striped block mirroring (mirror on the next server)
  raid4,         ///< fixed parity server (Swift implemented this; §3 notes
                 ///< it performed worse than RAID5 — see the ablation)
  raid5,         ///< rotated parity, client RMW + distributed parity locks
  raid5_nolock,  ///< "R5 NO LOCK": parity may be left inconsistent (Fig. 3)
  raid5_npc,     ///< "RAID5-npc": parity computation not charged (Fig. 4a)
  hybrid,        ///< CSAR: RAID5 for full stripes, mirrored overflow for
                 ///< partial stripes (the paper's contribution)
};

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::raid0:
      return "RAID0";
    case Scheme::raid1:
      return "RAID1";
    case Scheme::raid4:
      return "RAID4";
    case Scheme::raid5:
      return "RAID5";
    case Scheme::raid5_nolock:
      return "R5-NOLOCK";
    case Scheme::raid5_npc:
      return "RAID5-npc";
    case Scheme::hybrid:
      return "Hybrid";
  }
  return "?";
}

/// True for the schemes that store block parity (RAID4, all RAID5 variants
/// and the Hybrid full-stripe path).
inline bool uses_parity(Scheme s) {
  return s == Scheme::raid4 || s == Scheme::raid5 ||
         s == Scheme::raid5_nolock || s == Scheme::raid5_npc ||
         s == Scheme::hybrid;
}

/// The parity placement a scheme's files should be created with.
inline pvfs::ParityPlacement placement_for(Scheme s) {
  return s == Scheme::raid4 ? pvfs::ParityPlacement::fixed
                            : pvfs::ParityPlacement::rotating;
}

}  // namespace csar::raid
