// Redundancy schemes studied in the paper (§4) plus the two ablations used
// in its evaluation (§5.1, §6.2), generalized to k+m erasure codes.
//
// A Scheme is now a small value type: a kind plus, for Reed-Solomon, the
// CodeSpec parameters (k data + m coding fragments per group). The classic
// schemes are special cases of the code — RAID1 ≈ RS(1,1), RAID4/5 ≈
// RS(k,1) with fixed/rotated placement — but keep their dedicated kinds
// (and I/O paths) so the paper's original experiments stay byte-identical.
// `Scheme::raid5`-style spellings keep working via inline static constants.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.hpp"
#include "pvfs/layout.hpp"

namespace csar::raid {

enum class SchemeKind : std::uint8_t {
  raid0,         ///< plain PVFS striping, no redundancy (the baseline)
  raid1,         ///< striped block mirroring (mirror on the next server)
  raid4,         ///< fixed parity server (Swift implemented this; §3 notes
                 ///< it performed worse than RAID5 — see the ablation)
  raid5,         ///< rotated parity, client RMW + distributed parity locks
  raid5_nolock,  ///< "R5 NO LOCK": parity may be left inconsistent (Fig. 3)
  raid5_npc,     ///< "RAID5-npc": parity computation not charged (Fig. 4a)
  hybrid,        ///< CSAR: RAID5 for full stripes, mirrored overflow for
                 ///< partial stripes (the paper's contribution)
  rs,            ///< Reed-Solomon rs(k,m): k data + m coding fragments per
                 ///< group, any k of the k+m recover everything
};

/// Bounds for rs(k,m) parameters — the persisted one-byte scheme tag packs
/// (k-1) in four bits and (m-1) in three (see scheme_tag), which also keeps
/// every rs tag below pvfs::kSchemeUnset (0xFF).
inline constexpr std::uint32_t kMaxRsK = 16;
inline constexpr std::uint32_t kMaxRsM = 7;

struct Scheme {
  SchemeKind kind = SchemeKind::hybrid;
  /// Code parameters; meaningful only when kind == rs (0 otherwise, so
  /// default comparison treats the classic schemes as plain enumerators).
  std::uint8_t k = 0;
  std::uint8_t m = 0;

  friend constexpr auto operator<=>(const Scheme&, const Scheme&) = default;

  /// The rs(k,m) scheme. Bounds: 1 <= k <= kMaxRsK, 1 <= m <= kMaxRsM.
  static constexpr Scheme rs(std::uint32_t k, std::uint32_t m) {
    assert(k >= 1 && k <= kMaxRsK && m >= 1 && m <= kMaxRsM);
    return Scheme{SchemeKind::rs, static_cast<std::uint8_t>(k),
                  static_cast<std::uint8_t>(m)};
  }

  /// The erasure-code view of this scheme: every scheme is a k+m code
  /// (RAID1 is RS(1,1); the parity schemes are RS(data_servers,1)); callers
  /// that need the classic schemes' k resolve it from the layout.
  CodeSpec code(const pvfs::StripeLayout& layout) const {
    switch (kind) {
      case SchemeKind::raid0:
        return CodeSpec{layout.data_servers(), 0};
      case SchemeKind::raid1:
        return CodeSpec{1, 1};
      case SchemeKind::raid4:
      case SchemeKind::raid5:
      case SchemeKind::raid5_nolock:
      case SchemeKind::raid5_npc:
      case SchemeKind::hybrid:
        // A parity group is one unit per data server (fixed) or N-1
        // consecutive units (rotating) — k = N-1 either way.
        return CodeSpec{layout.n() - 1, 1};
      case SchemeKind::rs:
        return CodeSpec{k, m};
    }
    std::abort();
  }

  // The classic schemes as named constants, so `Scheme::raid5` spellings
  // from the enum era keep compiling. Defined out of line below
  // (constant-initialized aggregates; no static-init-order hazard).
  static const Scheme raid0, raid1, raid4, raid5, raid5_nolock, raid5_npc,
      hybrid;
};

inline const Scheme Scheme::raid0{SchemeKind::raid0};
inline const Scheme Scheme::raid1{SchemeKind::raid1};
inline const Scheme Scheme::raid4{SchemeKind::raid4};
inline const Scheme Scheme::raid5{SchemeKind::raid5};
inline const Scheme Scheme::raid5_nolock{SchemeKind::raid5_nolock};
inline const Scheme Scheme::raid5_npc{SchemeKind::raid5_npc};
inline const Scheme Scheme::hybrid{SchemeKind::hybrid};

// The switches below are exhaustive: every enumerator returns, and
// -Werror=switch flags any future SchemeKind addition at compile time. The
// std::abort() after each switch is unreachable (an out-of-range cast is the
// only way there) — there is deliberately no "?" fallback that could mask a
// bogus value in printed output.
inline std::string scheme_name(Scheme s) {
  switch (s.kind) {
    case SchemeKind::raid0:
      return "RAID0";
    case SchemeKind::raid1:
      return "RAID1";
    case SchemeKind::raid4:
      return "RAID4";
    case SchemeKind::raid5:
      return "RAID5";
    case SchemeKind::raid5_nolock:
      return "R5-NOLOCK";
    case SchemeKind::raid5_npc:
      return "RAID5-npc";
    case SchemeKind::hybrid:
      return "Hybrid";
    case SchemeKind::rs:
      return "RS(" + std::to_string(s.k) + "," + std::to_string(s.m) + ")";
  }
  std::abort();
}

/// True for the schemes that store block parity (RAID4, all RAID5 variants
/// and the Hybrid full-stripe path). rs is *not* in this set: its coding
/// units live in the redundancy file too, but at rs-specific offsets, and
/// every rs path resolves geometry through the rs_* layout helpers.
inline bool uses_parity(Scheme s) {
  switch (s.kind) {
    case SchemeKind::raid0:
    case SchemeKind::raid1:
    case SchemeKind::rs:
      return false;
    case SchemeKind::raid4:
    case SchemeKind::raid5:
    case SchemeKind::raid5_nolock:
    case SchemeKind::raid5_npc:
    case SchemeKind::hybrid:
      return true;
  }
  std::abort();
}

/// True when the scheme stores redundancy in the per-server redundancy
/// files keyed by group (parity schemes and rs alike).
inline bool uses_group_coding(Scheme s) {
  return uses_parity(s) || s.kind == SchemeKind::rs;
}

/// The parity placement a scheme's files should be created with. rs keeps
/// the rotating data layout (data striped over all N servers, identical to
/// plain PVFS); its coding placement is computed by the rs_* helpers.
inline pvfs::ParityPlacement placement_for(Scheme s) {
  switch (s.kind) {
    case SchemeKind::raid4:
      return pvfs::ParityPlacement::fixed;
    case SchemeKind::raid0:
    case SchemeKind::raid1:
    case SchemeKind::raid5:
    case SchemeKind::raid5_nolock:
    case SchemeKind::raid5_npc:
    case SchemeKind::hybrid:
    case SchemeKind::rs:
      return pvfs::ParityPlacement::rotating;
  }
  std::abort();
}

// --- persisted scheme tags ---
// The manager stores a file's scheme as one opaque byte (OpenFile::scheme,
// journaled). Classic kinds map to their enumerator value; rs packs its
// parameters as 0x80 | (k-1)<<3 | (m-1), which tops out at 0xFE — never
// colliding with pvfs::kSchemeUnset (0xFF) or a classic kind.

inline std::uint8_t scheme_tag(Scheme s) {
  if (s.kind == SchemeKind::rs) {
    assert(s.k >= 1 && s.k <= kMaxRsK && s.m >= 1 && s.m <= kMaxRsM);
    return static_cast<std::uint8_t>(0x80 | ((s.k - 1) << 3) | (s.m - 1));
  }
  return static_cast<std::uint8_t>(s.kind);
}

inline Scheme scheme_from_tag(std::uint8_t tag) {
  if (tag & 0x80) {
    return Scheme::rs(((tag >> 3) & 0x0F) + 1u, (tag & 0x07) + 1u);
  }
  assert(tag <= static_cast<std::uint8_t>(SchemeKind::hybrid));
  return Scheme{static_cast<SchemeKind>(tag)};
}

/// Inverse of scheme_name for CLI flags and scripts: accepts the display
/// names case-insensitively plus the lowercase identifiers used in code
/// ("raid5_nolock", "raid5_npc") and "rs(k,m)" specs. nullopt for anything
/// unrecognized or out of the rs bounds.
inline std::optional<Scheme> parse_scheme(std::string_view text) {
  std::string t;
  t.reserve(text.size());
  for (char c : text) {
    t.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (t == "raid0") return Scheme::raid0;
  if (t == "raid1") return Scheme::raid1;
  if (t == "raid4") return Scheme::raid4;
  if (t == "raid5") return Scheme::raid5;
  if (t == "raid5_nolock" || t == "r5-nolock") return Scheme::raid5_nolock;
  if (t == "raid5_npc" || t == "raid5-npc") return Scheme::raid5_npc;
  if (t == "hybrid") return Scheme::hybrid;
  // rs(k,m) — also accepted as "rs4_2"-style? No: one canonical spelling
  // keeps round-tripping exact; scheme_name prints uppercase, parsing is
  // case-folded above.
  if (t.size() >= 7 && t.substr(0, 3) == "rs(" && t.back() == ')') {
    const std::string_view body = std::string_view(t).substr(3, t.size() - 4);
    const std::size_t comma = body.find(',');
    if (comma == std::string_view::npos) return std::nullopt;
    std::uint32_t k = 0;
    std::uint32_t m = 0;
    const std::string_view ks = body.substr(0, comma);
    const std::string_view ms = body.substr(comma + 1);
    if (ks.empty() || ms.empty()) return std::nullopt;
    for (char c : ks) {
      if (c < '0' || c > '9') return std::nullopt;
      k = k * 10 + static_cast<std::uint32_t>(c - '0');
      if (k > 1000) return std::nullopt;
    }
    for (char c : ms) {
      if (c < '0' || c > '9') return std::nullopt;
      m = m * 10 + static_cast<std::uint32_t>(c - '0');
      if (m > 1000) return std::nullopt;
    }
    if (k < 1 || k > kMaxRsK || m < 1 || m > kMaxRsM) return std::nullopt;
    return Scheme::rs(k, m);
  }
  return std::nullopt;
}

/// Parse a comma-separated scheme list ("hybrid,rs(4,2),raid5") for CLI
/// flags and storm configs. Commas at parenthesis depth > 0 belong to a
/// parameterized spec, not the list — naive splitting would shear "rs(4,2)"
/// into "rs(4" and "2)". Surrounding whitespace per element is ignored.
/// nullopt when the list is empty or any element fails parse_scheme.
inline std::optional<std::vector<Scheme>> parse_scheme_list(
    std::string_view text) {
  std::vector<Scheme> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool split = i == text.size() || (text[i] == ',' && depth == 0);
    if (!split) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')') --depth;
      continue;
    }
    std::string_view elem = text.substr(start, i - start);
    while (!elem.empty() && (elem.front() == ' ' || elem.front() == '\t')) {
      elem.remove_prefix(1);
    }
    while (!elem.empty() && (elem.back() == ' ' || elem.back() == '\t')) {
      elem.remove_suffix(1);
    }
    const std::optional<Scheme> s = parse_scheme(elem);
    if (!s) return std::nullopt;
    out.push_back(*s);
    start = i + 1;
  }
  if (depth != 0 || out.empty()) return std::nullopt;
  return out;
}

}  // namespace csar::raid
