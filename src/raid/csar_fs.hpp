// CsarFs: the user-facing CSAR file system API.
//
// Wraps a pvfs::Client with one of the redundancy schemes from the paper.
// Reads are identical for every scheme in normal operation (redundancy is
// never read; servers already return the newest copy, overflow included).
// Writes dispatch to the per-scheme paths:
//
//  RAID0   data only (plain PVFS).
//  RAID1   data + block mirror on the next server's redundancy file.
//  RAID5   data in place; for each touched parity group the client reads
//          old data + old parity (taking the parity-block lock, §5.1),
//          XORs the delta, and writes data + new parity (releasing the
//          lock). Full groups skip the reads — parity is computed fresh.
//  Hybrid  the write is split (§4) into [partial | full stripes | partial]:
//          the full-stripe run takes the RAID5 fast path (and invalidates
//          overlapping overflow entries); the partial edges are written
//          twice into overflow regions (owner server + its successor),
//          never updating the data file in place, so the stale parity still
//          reconstructs the old stripe content.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/buffer.hpp"
#include "common/result.hpp"
#include "pvfs/client.hpp"
#include "raid/policy.hpp"
#include "raid/scheme.hpp"
#include "sim/task.hpp"

namespace csar::raid {

class HealthMonitor;

struct CsarParams {
  /// Default scheme: what untagged files inherit and what create() assigns
  /// when no policy rule matches. On the I/O path every routing decision
  /// resolves through the policy's per-file lookup, never this field.
  Scheme scheme = Scheme::hybrid;
  /// Shared per-deployment policy (the Rig owns one and hands it to every
  /// CsarFs). nullptr → this CsarFs owns a private policy whose default is
  /// `scheme` (standalone/test construction).
  RedundancyPolicy* policy = nullptr;
};

class CsarFs {
 public:
  CsarFs(pvfs::Client& client, CsarParams params)
      : client_(&client), p_(params) {
    if (p_.policy == nullptr) {
      owned_policy_ =
          std::make_unique<RedundancyPolicy>(PolicyParams{p_.scheme, {}, {}});
      p_.policy = owned_policy_.get();
    }
  }
  CsarFs(const CsarFs&) = delete;
  CsarFs& operator=(const CsarFs&) = delete;

  pvfs::Client& client() { return *client_; }
  RedundancyPolicy& policy() { return *p_.policy; }
  const RedundancyPolicy& policy() const { return *p_.policy; }

  // --- metadata ---
  /// Create a file: the policy assigns its scheme (rules, then default),
  /// the layout's parity placement is fixed to match (RAID4 = fixed parity
  /// server), and the scheme tag is persisted at the manager.
  sim::Task<Result<pvfs::OpenFile>> create(std::string name,
                                           pvfs::StripeLayout layout);
  sim::Task<Result<pvfs::OpenFile>> open(std::string name) {
    return client_->open(std::move(name));
  }

  /// Attach a HealthMonitor and turn on automatic failover: read()/write()
  /// consult the monitor before issuing I/O and reroute around a down
  /// server through raid::Recovery's degraded paths; errors that slip
  /// through (the monitor has not noticed yet) trigger reactive failover
  /// using the Error's server hint. Pass nullptr to return to the plain
  /// fail-loudly behaviour. The monitor is not owned.
  void enable_failover(HealthMonitor* mon) { mon_ = mon; }
  HealthMonitor* health_monitor() const { return mon_; }

  struct FailoverStats {
    std::uint64_t degraded_reads = 0;   ///< reads served via reconstruction
    std::uint64_t degraded_writes = 0;  ///< writes routed degraded
    std::uint64_t reactive = 0;  ///< failovers triggered by an error, not
                                 ///< by the monitor's advance knowledge
  };
  const FailoverStats& failover_stats() const { return failover_stats_; }

  /// Observer for degraded-path writes — the RebuildCoordinator's dirty-
  /// interval feed. `begin` fires before the degraded write issues any IO
  /// and `end` after it completes (success or failure: even a torn degraded
  /// write may have updated redundancy, so the region counts as dirtied).
  /// Callbacks run synchronously inside the writing coroutine and must not
  /// block. Not owned; pass nullptr to detach.
  class WriteObserver {
   public:
    virtual ~WriteObserver() = default;
    virtual void on_degraded_write_begin(std::uint32_t failed) = 0;
    virtual void on_degraded_write_end(const pvfs::OpenFile& f,
                                       std::uint64_t off, std::uint64_t len,
                                       std::uint32_t failed) = 0;
  };
  void set_write_observer(WriteObserver* o) { observer_ = o; }

  /// Listener for *all* writes (healthy and degraded) — the SchemeMigrator's
  /// dirty-interval feed during a live migration. `begin` fires before the
  /// write resolves its scheme or issues any IO, `end` after it completes;
  /// both run synchronously inside the writing coroutine and must not block.
  /// Not owned; pass nullptr to detach.
  class WriteListener {
   public:
    virtual ~WriteListener() = default;
    virtual void on_write_begin(const pvfs::OpenFile& f) = 0;
    virtual void on_write_end(const pvfs::OpenFile& f, std::uint64_t off,
                              std::uint64_t len, bool ok) = 0;
  };
  void set_write_listener(WriteListener* l) { listener_ = l; }

  // --- data path ---
  sim::Task<Result<void>> write(const pvfs::OpenFile& f, std::uint64_t off,
                                Buffer data);
  sim::Task<Result<Buffer>> read(const pvfs::OpenFile& f, std::uint64_t off,
                                 std::uint64_t len);

  /// Failover read: like read(), but when an I/O server is down the client
  /// locates it and transparently reconstructs the lost pieces from the
  /// redundancy (degraded-mode read). This is what "tolerant of single
  /// disk failures" means to an application: reads keep working.
  sim::Task<Result<Buffer>> read_resilient(const pvfs::OpenFile& f,
                                           std::uint64_t off,
                                           std::uint64_t len);

  /// Probe every I/O server and report the index of the first failed one.
  sim::Task<std::optional<std::uint32_t>> find_failed_server(
      const pvfs::OpenFile& f);

  /// Probe one suspect with a bounded policy; true only when the probe
  /// itself fails the way a dead (or fenced) server fails.
  sim::Task<bool> confirmed_down(const pvfs::OpenFile& f, std::uint32_t s);

  /// RAID1 mirror-balanced read: alternate stripe units between the primary
  /// copy and the mirror on the successor server, spreading read load over
  /// both copies — the classic RAID1 read optimization ("our scheme lends
  /// itself to simple extensions", §5.1). Falls back to read() for every
  /// other scheme.
  sim::Task<Result<Buffer>> read_balanced(const pvfs::OpenFile& f,
                                          std::uint64_t off,
                                          std::uint64_t len);
  sim::Task<Result<void>> flush(const pvfs::OpenFile& f) {
    return client_->flush(f);
  }

  /// Total bytes stored across all servers for this file, including
  /// redundancy and overflow allocation — the paper's Table 2 metric.
  sim::Task<pvfs::StorageInfo> storage(const pvfs::OpenFile& f) {
    return client_->storage(f);
  }

  /// The background cleaner the paper proposes in §6.7: read the file in
  /// its entirety and rewrite it in large full-stripe chunks, migrating all
  /// overflow data back into the RAID5 layout; then garbage-collect the
  /// overflow files. Afterwards the Hybrid scheme's long-term storage
  /// equals RAID5's. Only meaningful for Scheme::hybrid.
  sim::Task<Result<void>> compact(const pvfs::OpenFile& f,
                                  std::uint64_t file_size);

 private:
  /// write() minus the listener bracketing: failover handling + dispatch.
  sim::Task<Result<void>> write_guarded(const pvfs::OpenFile& f,
                                        std::uint64_t off, Buffer data);

  /// The per-scheme write dispatch (the pre-failover write() body). The
  /// scheme is the policy's resolution for `f`, done once at dispatch.
  sim::Task<Result<void>> dispatch_write(const pvfs::OpenFile& f,
                                         std::uint64_t off,
                                         const Buffer& data);

  /// Recovery::degraded_write bracketed by the WriteObserver hooks (fired
  /// once per down server — every victim's rebuild tracks the dirty region).
  sim::Task<Result<void>> degraded_write_observed(
      const pvfs::OpenFile& f, std::uint64_t off, Buffer data,
      std::vector<std::uint32_t> failed);

  /// Resolve which server caused `err` (hint, else probe) and re-serve the
  /// read through Recovery::degraded_read; returns `err` unchanged when no
  /// failed server can be identified.
  sim::Task<Result<Buffer>> reroute_read(const pvfs::OpenFile& f,
                                         std::uint64_t off, std::uint64_t len,
                                         Error err);

  sim::Task<Result<void>> write_raid1(const pvfs::OpenFile& f,
                                      std::uint64_t off, const Buffer& data);
  /// `sch` distinguishes the RAID5 variants (locking, parity-cost charging)
  /// and doubles as the in-place parity path for RAID4 and Hybrid full runs.
  sim::Task<Result<void>> write_raid5(const pvfs::OpenFile& f,
                                      std::uint64_t off, const Buffer& data,
                                      Scheme sch);
  sim::Task<Result<void>> write_hybrid(const pvfs::OpenFile& f,
                                       std::uint64_t off, const Buffer& data);
  /// rs(k,m) write path: full groups compute all m coding fragments fresh;
  /// partial groups run the batched RMW protocol (one locked read+update per
  /// touched coding server, ascending order) folding per-fragment GF deltas.
  sim::Task<Result<void>> write_rs(const pvfs::OpenFile& f, std::uint64_t off,
                                   const Buffer& data, Scheme sch);

  /// Charge the client CPU for XOR-ing `bytes` (skipped for RAID5-npc).
  sim::Task<void> charge_xor(Scheme sch, std::uint64_t bytes);

  /// Parity unit content for a group fully covered by this write.
  Buffer full_group_parity(const pvfs::StripeLayout& layout, std::uint64_t g,
                           std::uint64_t off, const Buffer& data) const;

  /// Append per-server merged parity writes for the fully covered groups
  /// [g0, g1) to `reqs`, targeting redundancy generation `red_gen`.
  /// `hybrid_invalidate` attaches overflow invalidations.
  void build_full_parity_writes(
      const pvfs::OpenFile& f, std::uint64_t off, const Buffer& data,
      std::uint64_t g0, std::uint64_t g1, bool hybrid_invalidate,
      std::uint32_t red_gen,
      std::vector<std::pair<std::uint32_t, pvfs::Request>>& reqs,
      std::uint64_t& xor_bytes);

  pvfs::Client* client_;
  CsarParams p_;
  std::unique_ptr<RedundancyPolicy> owned_policy_;
  HealthMonitor* mon_ = nullptr;
  WriteObserver* observer_ = nullptr;
  WriteListener* listener_ = nullptr;
  FailoverStats failover_stats_{};
};

}  // namespace csar::raid
