// Recovery: degraded reads and server reconstruction after a single I/O
// server failure — the fault-tolerance the redundancy schemes exist for
// (the paper's stated long-term objective, §1).
//
//  RAID1   a failed server's data is served from (and rebuilt out of) the
//          mirror blocks on its successor's redundancy file.
//  RAID5   a lost data unit is the XOR of its group's surviving N-2 data
//          units and the group's parity unit.
//  Hybrid  RAID5 reconstruction yields the *base* stripe content (parity is
//          computed only against the data files, which partial writes never
//          touch); the newest partial-stripe data is then overlaid from the
//          mirrored overflow copies on the failed server's successor. This
//          is exactly why the Hybrid scheme must write partial stripes to
//          overflow instead of updating blocks in place.
#pragma once

#include <cstdint>
#include <vector>

#include "common/buffer.hpp"
#include "common/interval_set.hpp"
#include "common/result.hpp"
#include "pvfs/client.hpp"
#include "raid/policy.hpp"
#include "raid/scheme.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace csar::raid {

/// Knobs for rebuild_server. The defaults reproduce the legacy behaviour:
/// full-file reconstruction at full pipeline speed.
struct RebuildOptions {
  /// Restrict reconstruction to the stripe units / parity groups / overflow
  /// entries whose *global* byte ranges intersect this set (nullptr =
  /// rebuild everything). The RebuildCoordinator passes the stale regions of
  /// a non-wipe rejoiner, or the regions dirtied by concurrent writes on a
  /// re-copy pass.
  const IntervalSet* delta = nullptr;
  /// Pace reconstruction traffic through this bucket (nullptr = full
  /// pipeline speed). Charged with an estimate of the bytes each unit moves
  /// (survivor reads + replacement write), before the unit is issued.
  sim::TokenBucket* throttle = nullptr;
  /// Hybrid: restore every overflow entry even when `delta` filters the
  /// data/parity scan (set when the overflow content itself is suspect,
  /// e.g. lost dirty pages under the overflow file).
  bool restore_all_overflow = false;
  /// Other servers that are *also* unavailable while this one rebuilds
  /// (concurrent outages). rs(k,m) files decode around them — any k live
  /// fragments suffice; the classic single-redundancy schemes ignore the
  /// list (their survivor reads fail loudly if one is actually needed).
  std::vector<std::uint32_t> also_down;
};

class Recovery {
 public:
  /// Fixed-scheme recovery: every file is treated as `scheme` (the classic
  /// single-scheme deployments and most tests).
  Recovery(pvfs::Client& client, Scheme scheme)
      : client_(&client), fixed_(scheme) {}

  /// Policy-routed recovery: each file's scheme, redundancy generation and
  /// overflow-overlay status resolve through the per-file policy. The
  /// policy is not owned and must outlive this object.
  Recovery(pvfs::Client& client, const RedundancyPolicy* policy)
      : client_(&client), policy_(policy) {}

  /// Read [off, off+len) of `f` while server `failed` is down; data on
  /// surviving servers is read normally, lost pieces are reconstructed.
  sim::Task<Result<Buffer>> degraded_read(const pvfs::OpenFile& f,
                                          std::uint64_t off,
                                          std::uint64_t len,
                                          std::uint32_t failed);

  /// Multi-failure degraded read: `failed` lists every server currently
  /// down (ascending, at least one). rs(k,m) files tolerate up to m
  /// concurrent victims — each lost piece is decoded client-side from the
  /// minimal k-subset of live fragments; the classic schemes delegate to
  /// the single-failure path when exactly one server is down and error
  /// beyond their single-redundancy budget.
  sim::Task<Result<Buffer>> degraded_read(const pvfs::OpenFile& f,
                                          std::uint64_t off, std::uint64_t len,
                                          std::vector<std::uint32_t> failed);

  /// Write [off, off+data.size()) of `f` while server `failed` is down —
  /// continued operation in degraded mode. Redundancy is maintained so the
  /// write survives: RAID1 updates whichever of the two copies is alive;
  /// RAID5 records writes to lost units *in the parity* (reconstruct-write)
  /// and skips parity updates for groups whose parity server is down (the
  /// rebuild recomputes those); Hybrid routes partial-stripe copies to
  /// whichever of the owner/successor pair survives.
  sim::Task<Result<void>> degraded_write(const pvfs::OpenFile& f,
                                         std::uint64_t off, Buffer data,
                                         std::uint32_t failed);

  /// Multi-failure degraded write (see the degraded_read overload): rs
  /// files keep all live coding fragments consistent as long as at most m
  /// servers are down; classic schemes accept exactly one victim.
  sim::Task<Result<void>> degraded_write(const pvfs::OpenFile& f,
                                         std::uint64_t off, Buffer data,
                                         std::vector<std::uint32_t> failed);

  /// Rebuild everything server `failed` stored for `f` — its data file,
  /// its redundancy file (mirror blocks or parity units), its own overflow
  /// entries (from the mirrors on its successor) and the mirror entries it
  /// held for its predecessor. The server must already be back online
  /// (recover()ed onto a blank disk); `file_size` bounds the scan. `opt`
  /// restricts the scan to a delta and/or paces it (see RebuildOptions).
  sim::Task<Result<void>> rebuild_server(const pvfs::OpenFile& f,
                                         std::uint32_t failed,
                                         std::uint64_t file_size,
                                         RebuildOptions opt = {});

  /// Build scheme `to`'s base redundancy for `f` at generation `red_gen`,
  /// reading only the raw data files (never the old redundancy, never the
  /// overflow overlay — both stay authoritative until the migrator flips
  /// the file). `delta` restricts the pass to the given global byte ranges
  /// (re-copy passes over regions dirtied by concurrent writes) and
  /// `throttle` paces the copy traffic. No locks are taken: until the flip
  /// only the migrator writes generation `red_gen`, and data reads are raw.
  /// RAID1, the parity-rotating schemes and rs(k,m) are buildable targets.
  sim::Task<Result<void>> build_redundancy(const pvfs::OpenFile& f, Scheme to,
                                           std::uint32_t red_gen,
                                           std::uint64_t file_size,
                                           const IntervalSet* delta = nullptr,
                                           sim::TokenBucket* throttle =
                                               nullptr);

 private:
  Scheme scheme_of(const pvfs::OpenFile& f) const {
    return policy_ != nullptr ? policy_->scheme_of(f) : fixed_;
  }
  std::uint32_t red_gen_of(const pvfs::OpenFile& f) const {
    return policy_ != nullptr ? policy_->red_gen_of(f) : f.red_gen;
  }
  /// Whether reads/writes of `f` must honour a (possibly live) overflow
  /// overlay — Hybrid files and files migrated away from Hybrid.
  bool overlay_overflow(const pvfs::OpenFile& f) const {
    return policy_ != nullptr ? policy_->overflow_possible(f)
                              : fixed_ == Scheme::hybrid;
  }

  /// Reconstruct the bytes of one lost piece (within a single stripe unit
  /// of the failed server), including the Hybrid overflow overlay.
  sim::Task<Result<Buffer>> reconstruct_piece(const pvfs::OpenFile& f,
                                              std::uint32_t failed,
                                              std::uint64_t global_off,
                                              std::uint64_t len);

  /// RAID5/Hybrid base reconstruction: XOR of survivors + parity, without
  /// the overflow overlay.
  sim::Task<Result<Buffer>> reconstruct_base(const pvfs::OpenFile& f,
                                             std::uint32_t failed,
                                             std::uint64_t global_off,
                                             std::uint64_t len);

  /// rs(k,m): rebuild fragment `target` (data fragments [0,k), coding
  /// fragments [k,k+m)) of group `g` over unit columns [c0, c0+len) by
  /// fetching exactly k live fragments — data fragments first, then coding,
  /// both ascending, skipping every server in `down` — and combining them
  /// with rs_reconstruct_coeffs. Errors if fewer than k fragments are live.
  sim::Task<Result<Buffer>> reconstruct_rs(
      const pvfs::OpenFile& f, Scheme sch, std::uint64_t g,
      std::uint32_t target, std::uint64_t c0, std::uint64_t len,
      const std::vector<std::uint32_t>& down, bool for_rebuild);

  /// reconstruct_rs for the lost *data* piece at `global_off`, plus the
  /// overflow overlay an ex-Hybrid rs file still carries.
  sim::Task<Result<Buffer>> reconstruct_rs_piece(
      const pvfs::OpenFile& f, Scheme sch,
      const std::vector<std::uint32_t>& down, std::uint64_t global_off,
      std::uint64_t len);

  /// The rs branches of degraded_read / degraded_write / rebuild_server.
  sim::Task<Result<Buffer>> degraded_read_rs(
      const pvfs::OpenFile& f, Scheme sch, std::uint64_t off,
      std::uint64_t len, std::vector<std::uint32_t> failed);
  sim::Task<Result<void>> degraded_write_rs(
      const pvfs::OpenFile& f, Scheme sch, std::uint64_t off, Buffer data,
      std::vector<std::uint32_t> failed);
  sim::Task<Result<void>> rebuild_server_rs(const pvfs::OpenFile& f,
                                            Scheme sch, std::uint32_t failed,
                                            std::uint64_t file_size,
                                            const RebuildOptions& opt);

  pvfs::Client* client_;
  const RedundancyPolicy* policy_ = nullptr;
  Scheme fixed_ = Scheme::hybrid;  ///< used only when policy_ is null
};

}  // namespace csar::raid
