// RebuildCoordinator: the first-class detect → degrade → restart → rebuild →
// admit state machine, promoted out of the fault-storm harness's inline
// watcher. Unlike that watcher it never quiesces clients:
//
//  - Write-safe online rebuild. While reconstruction is in flight the
//    coordinator observes every degraded write (CsarFs::WriteObserver) and
//    records the written region in a per-server dirty IntervalSet. A
//    degraded write lands in the *redundancy* (parity / mirror / overflow),
//    not in the rebuilding server's files, so the copier's output for that
//    region is stale the moment the write completes. After each copier pass
//    the coordinator re-copies exactly the dirtied regions; reconstruction
//    always reads the post-write redundancy, so the loop converges. The
//    admit decision — "no writes in flight and nothing dirty" followed by
//    IoServer::admit() — is taken without an intervening await, which in the
//    cooperative single-threaded scheduler makes it atomic: no write can
//    slip between the check and the fence lift.
//
//  - Rebuild throttling. RebuildParams::rate_cap paces the initial copier
//    pass through a sim::TokenBucket (survivor reads + replacement writes
//    are charged per unit before it is issued), yielding bandwidth to
//    foreground IO at the cost of a longer rebuild. Re-copy passes run
//    unthrottled: their traffic is bounded by the foreground write rate
//    itself, so pacing them could only delay convergence, never protect
//    bandwidth.
//
//  - Delta-rebuild for non-wipe restarts. The coordinator arms
//    IoServer::fence_restarts so a rejoiner whose disk *survived* still
//    comes back fenced: regions degraded-written during the outage exist
//    only in the redundancy, and content covered solely by dirty pages died
//    with the crash (LocalFs::take_crash_losses). Only those stale regions
//    are re-reconstructed (Recovery::RebuildOptions::delta) before admit —
//    instead of either a full rebuild or, worse, silently serving stale
//    bytes (the pre-coordinator behaviour).
//
// The same delta path repairs a live server after transient unreachability:
// if the monitor believed a server dead and clients degraded-wrote around
// it, those regions are resynced in place once probes succeed again,
// closing the "file fork" hazard of proactive failover against a slow-but-
// alive server.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/interval_set.hpp"
#include "raid/csar_fs.hpp"
#include "raid/health.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::raid {

struct RebuildParams {
  /// Token-bucket cap on reconstruction traffic in bytes/sec (0 = uncapped).
  /// Applies to the initial copier pass; dirty re-copy passes are exempt
  /// (see file comment).
  double rate_cap = 0.0;
  /// Token-bucket burst (bytes): how much reconstruction may be issued
  /// back-to-back before pacing kicks in.
  std::uint64_t burst = 1 << 20;
  /// Supervisor cadence: how often restarted/flapped servers are checked
  /// and how often a convergence wait re-samples the in-flight counter.
  sim::Duration poll = sim::ms(1);
  /// Per-rebuild time budget; exceeded ⇒ the attempt fails and the fence
  /// stays up (clients remain degraded) until the next attempt.
  sim::Duration give_up = sim::sec(120);
  /// Bound on copier passes per rebuild (initial + dirty re-copies).
  std::uint32_t max_passes = 64;
  /// Delay before re-attempting a failed rebuild.
  sim::Duration retry_backoff = sim::ms(500);
  /// RPC policy for reconstruction traffic. Rebuilds run on the rig's
  /// dedicated repair client, so these deadlines are independent of the
  /// workload clients' (which may be far too tight for 64 KiB reads queued
  /// behind saturated disks). Generous because a single rebuild RPC can
  /// carry an entire overflow table — hundreds of MB under unaligned
  /// collective writes — but still finite, or a second crash mid-rebuild
  /// would hang the coordinator instead of failing the attempt.
  pvfs::RpcPolicy rpc{sim::sec(30), 2, sim::ms(50), 0.5};
};

struct RebuildStats {
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuilds_failed = 0;    ///< attempts that hit a budget/error
  std::uint64_t full_rebuilds = 0;      ///< wipe rejoin: whole-file copy
  std::uint64_t delta_rebuilds = 0;     ///< non-wipe rejoin or live resync
  std::uint64_t passes = 0;             ///< copier passes run
  std::uint64_t recopy_passes = 0;      ///< passes re-copying dirtied regions
  std::uint64_t bytes_rebuilt = 0;      ///< reconstruction traffic (charged)
  std::uint64_t dirty_bytes = 0;        ///< degraded-write bytes tracked
  std::uint64_t lost_dirty_bytes = 0;   ///< content destroyed by crashes
  std::uint64_t degraded_writes_seen = 0;
  sim::Time first_down_at = 0;          ///< first down transition observed
  sim::Time first_admit_at = 0;         ///< first completed-rebuild admit
  sim::Time last_admit_at = 0;
  sim::Duration last_rebuild_time = 0;  ///< rejoin→admit of last completion
  bool ok = true;                       ///< false once any attempt failed
};

class RebuildCoordinator final : public CsarFs::WriteObserver {
 public:
  RebuildCoordinator(Rig& rig, HealthMonitor& mon, RebuildParams params = {});
  ~RebuildCoordinator() override;
  RebuildCoordinator(const RebuildCoordinator&) = delete;
  RebuildCoordinator& operator=(const RebuildCoordinator&) = delete;

  /// Register a file the coordinator repairs. `size` is the logical file
  /// size bounding rebuild scans; re-tracking a handle raises it.
  void track(const pvfs::OpenFile& f, std::uint64_t size);

  /// Attach to the rig (write observers on every client's CsarFs, the
  /// monitor's transition listener, fence-on-restart on every server) and
  /// spawn the supervisor loop. The monitor itself must be started by the
  /// caller.
  void start();

  /// Detach everything and let the supervisor exit at its next tick. Must
  /// be called from inside the simulation before expecting sim.run() to
  /// drain (the supervisor re-arms a sleep forever otherwise).
  void stop();

  /// True when no rebuild is running and no reachable server is fenced or
  /// pending repair. Permanently-crashed servers do not count: there is
  /// nothing to coordinate until they restart.
  bool idle() const;

  const RebuildStats& stats() const { return stats_; }
  const RebuildParams& params() const { return p_; }

  // CsarFs::WriteObserver — called synchronously from writing coroutines.
  void on_degraded_write_begin(std::uint32_t failed) override;
  void on_degraded_write_end(const pvfs::OpenFile& f, std::uint64_t off,
                             std::uint64_t len, std::uint32_t failed) override;

 private:
  enum class Phase : std::uint8_t { healthy, degraded, rebuilding };

  struct Outage {
    Phase phase = Phase::healthy;
    sim::Time down_since = 0;
    std::uint32_t writes_in_flight = 0;  ///< degraded writes not yet landed
    /// Regions degraded-written around this server since it went down
    /// (global file offsets, per handle). Snapshot-and-cleared by each
    /// copier pass.
    std::map<std::uint64_t, IntervalSet> stale;
    sim::Time next_attempt = 0;  ///< backoff gate after a failed rebuild
    /// Overflow content was destroyed by the crash: delta rebuilds must
    /// restore the whole overflow table, not just entries under the delta.
    bool overflow_suspect = false;
  };

  struct Tracked {
    pvfs::OpenFile f;
    std::uint64_t size = 0;
  };

  sim::Simulation& sim() const { return rig_->sim; }
  bool stale_empty(const Outage& o) const;

  sim::Task<void> supervisor(std::uint64_t my_gen);

  /// Run one full rebuild conversation for server `s`: snapshot work, copy,
  /// re-copy dirtied regions until convergence, then (for a fenced rejoiner)
  /// admit. `fenced_rejoin` distinguishes a restarted server behind the
  /// fence from a live resync after transient unreachability.
  sim::Task<void> handle_rejoin(std::uint32_t s, bool fenced_rejoin);

  /// Fold the server's crash-lost byte ranges (dirty pages that died with
  /// the crash) into its stale map, mapped back to global file offsets.
  /// Flags the outage when overflow content was lost.
  void merge_crash_losses(std::uint32_t s);

  Rig* rig_;
  HealthMonitor* mon_;
  HealthMonitor::ListenerId listener_id_ = 0;
  RebuildParams p_;
  std::vector<Tracked> files_;
  std::vector<Outage> outages_;
  RebuildStats stats_;
  std::uint64_t gen_ = 0;
  bool running_ = false;
  bool attached_ = false;
};

}  // namespace csar::raid
