#include "raid/csar_fs.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "raid/health.hpp"
#include "raid/recovery.hpp"
#include "sim/time.hpp"

namespace csar::raid {

namespace {

/// Error codes a single failed/unreachable/bad-sector server produces — the
/// ones degraded-mode rerouting can transparently absorb.
bool failover_errc(Errc e) {
  return e == Errc::server_failed || e == Errc::timeout ||
         e == Errc::conn_dropped || e == Errc::media_error;
}

/// Restores the client's ambient parent span when an fs-level op span closes
/// (declare *after* the op Span so the restore runs first).
struct AmbientGuard {
  pvfs::Client* c = nullptr;
  obs::SpanId prev = 0;
  ~AmbientGuard() {
    if (c != nullptr) c->set_ambient_span(prev);
  }
};

using pvfs::Op;
using pvfs::Request;
using pvfs::StripeLayout;

/// A partial-stripe segment of a write (the head or tail of the split).
struct PartialSeg {
  std::uint64_t start;
  std::uint64_t end;
  std::uint64_t group;
};

std::vector<PartialSeg> partial_segments(const StripeLayout& layout,
                                         const StripeLayout::WriteSplit& ws) {
  std::vector<PartialSeg> out;
  if (ws.head_end > ws.head_start) {
    out.push_back(
        {ws.head_start, ws.head_end, layout.group_of_off(ws.head_start)});
  }
  if (ws.tail_end > ws.tail_start) {
    out.push_back(
        {ws.tail_start, ws.tail_end, layout.group_of_off(ws.tail_start)});
  }
  // Head group < tail group, so this is already ascending — the ordered
  // parity-lock acquisition the paper uses to avoid deadlock (§5.1).
  return out;
}

/// Byte columns of the parity unit touched by a partial segment. With more
/// than one touched unit the union of per-unit column ranges may have a gap;
/// we read/write the covering range, which is what "reads the corresponding
/// parity region" amounts to.
struct ColRange {
  std::uint64_t lo;
  std::uint64_t hi;
};

ColRange col_range(const StripeLayout& layout, const PartialSeg& seg) {
  const std::uint64_t su = layout.su();
  const std::uint64_t u0 = layout.unit_of(seg.start);
  const std::uint64_t u1 = layout.unit_of(seg.end - 1);
  if (u0 == u1) return {seg.start % su, (seg.end - 1) % su + 1};
  return {0, su};
}

/// Force `b` to match the materialization of the write payload; server reads
/// of sparse regions come back materialized (zeros) even in phantom runs.
Buffer match_materialization(Buffer b, bool materialized) {
  if (b.materialized() == materialized) return b;
  assert(!materialized && "cannot materialize a phantom buffer");
  return Buffer::phantom(b.size());
}

}  // namespace

sim::Task<Result<pvfs::OpenFile>> CsarFs::create(std::string name,
                                                 pvfs::StripeLayout layout) {
  const Scheme s = p_.policy->assign(name);
  if (s.kind == SchemeKind::rs && s.k + s.m > layout.nservers) {
    // rs(k,m) places k+m fragments on distinct servers; a narrower rig
    // would silently double-place fragments and void the fault tolerance.
    co_return Error{Errc::invalid_argument, "rs(k,m) needs k+m servers"};
  }
  layout.placement = placement_for(s);
  auto f = co_await client_->create(std::move(name), layout, scheme_tag(s));
  if (f.ok()) p_.policy->note_created(*f, s);
  co_return f;
}

sim::Task<void> CsarFs::charge_xor(Scheme sch, std::uint64_t bytes) {
  if (sch == Scheme::raid5_npc || bytes == 0) co_return;
  auto& node = client_->cluster().node(client_->node_id());
  const double rate = node.params().xor_bytes_per_sec;
  // Parity computation happens on the client's single-threaded send path —
  // it occupies the same pipeline as the socket writes, which is why the
  // paper measures it as a ~8% hit on streaming writes (RAID5 vs
  // RAID5-npc, Figure 4a).
  co_await node.tx().occupy(sim::transfer_time(bytes, rate));
}

Buffer CsarFs::full_group_parity(const StripeLayout& layout, std::uint64_t g,
                                 std::uint64_t off,
                                 const Buffer& data) const {
  const std::uint64_t su = layout.su();
  if (!data.materialized()) return Buffer::phantom(su);
  Buffer parity = Buffer::real(su);
  for (std::uint64_t pos = layout.group_start(g); pos < layout.group_end(g);
       pos += su) {
    parity.xor_with(data.slice(pos - off, su));
  }
  return parity;
}

void CsarFs::build_full_parity_writes(
    const pvfs::OpenFile& f, std::uint64_t off, const Buffer& data,
    std::uint64_t g0, std::uint64_t g1, bool /*hybrid_invalidate*/,
    std::uint32_t red_gen,
    std::vector<std::pair<std::uint32_t, pvfs::Request>>& reqs,
    std::uint64_t& xor_bytes) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  // Bucket groups by parity server; each bucket's parity units are
  // contiguous in that server's redundancy file (every N-th group), so one
  // merged write per server suffices.
  std::map<std::uint32_t, std::vector<std::uint64_t>> buckets;
  for (std::uint64_t g = g0; g < g1; ++g) {
    buckets[layout.parity_server(g)].push_back(g);
  }
  for (auto& [server, groups] : buckets) {
    Buffer payload = data.materialized()
                         ? Buffer::real(groups.size() * su)
                         : Buffer::phantom(groups.size() * su);
    for (std::size_t i = 0; i < groups.size(); ++i) {
      assert(i == 0 || layout.parity_local_unit(groups[i]) ==
                           layout.parity_local_unit(groups[i - 1]) + 1);
      if (data.materialized()) {
        payload.write_at(i * su,
                         full_group_parity(layout, groups[i], off, data));
      }
      xor_bytes += layout.stripe_width();
    }
    Request r;
    r.op = Op::write_red;
    r.handle = f.handle;
    r.off = layout.parity_local_off(groups.front());
    r.payload = std::move(payload);
    r.su = layout.stripe_unit;
    r.red_gen = red_gen;
    reqs.emplace_back(server, std::move(r));
  }
}

sim::Task<Result<void>> CsarFs::write(const pvfs::OpenFile& f,
                                      std::uint64_t off, Buffer data) {
  if (data.empty()) co_return Result<void>::success();
  {
    // Telemetry for the adaptive engine: the full/partial-stripe byte split
    // the layout computes anyway, attributed to the file's current scheme.
    const auto ws = f.layout.split_write(off, data.size());
    const std::uint64_t full = ws.full_end - ws.full_start;
    p_.policy->note_write(f, p_.policy->scheme_of(f), full,
                          data.size() - full);
  }
  obs::Span span;
  AmbientGuard ambient;
  if (obs::kEnabled && client_->tracer() != nullptr) {
    span = client_->tracer()->task_span(
        client_->obs_pid(), "fs", "fs.write", "fs", 0,
        "\"off\":" + std::to_string(off) +
            ",\"len\":" + std::to_string(data.size()));
    ambient.c = client_;
    ambient.prev = client_->ambient_span();
    client_->set_ambient_span(span.id());
  }
  if (listener_ == nullptr) co_return co_await write_guarded(f, off, std::move(data));
  const std::uint64_t len = data.size();
  listener_->on_write_begin(f);
  auto wr = co_await write_guarded(f, off, std::move(data));
  // Fires on failure too: a torn write may have landed partially, so the
  // migrator must treat the region as dirty.
  listener_->on_write_end(f, off, len, wr.ok());
  co_return wr;
}

sim::Task<Result<void>> CsarFs::write_guarded(const pvfs::OpenFile& f,
                                              std::uint64_t off, Buffer data) {
  if (mon_ != nullptr) {
    std::vector<std::uint32_t> down = mon_->failed_set();
    if (!down.empty()) {
      ++failover_stats_.degraded_writes;
      co_return co_await degraded_write_observed(f, off, std::move(data),
                                                 std::move(down));
    }
  }
  auto wr = co_await dispatch_write(f, off, data);
  if (wr.ok() || mon_ == nullptr || !failover_errc(wr.error().code)) {
    co_return wr;
  }
  // The monitor had not caught up when we issued the write; resolve the
  // culprit from the error (or by probing) and redo the whole write through
  // the degraded path — server ops are idempotent, so the parts that did
  // land are simply rewritten.
  ++failover_stats_.reactive;
  std::optional<std::uint32_t> failed;
  if (wr.error().server >= 0) {
    // The hint can name a server that is merely slow (one late or dropped
    // message). A reconstruct-write against a *live* server would fork the
    // file: the new bytes exist only in the parity, while the server keeps
    // answering plain reads from its now-stale data file — and a later
    // scrub would "repair" the parity from that stale data. Only a server
    // that also fails a dedicated probe gets the degraded path; a transient
    // fault is reported back to the caller, whose RPC retry budget is the
    // knob for riding those out.
    failed = static_cast<std::uint32_t>(wr.error().server);
    if (!(co_await confirmed_down(f, *failed))) co_return wr;
  } else {
    failed = co_await find_failed_server(f);
  }
  if (!failed.has_value()) co_return wr;
  ++failover_stats_.degraded_writes;
  std::vector<std::uint32_t> down;
  down.push_back(*failed);
  co_return co_await degraded_write_observed(f, off, std::move(data),
                                             std::move(down));
}

sim::Task<Result<void>> CsarFs::degraded_write_observed(
    const pvfs::OpenFile& f, std::uint64_t off, Buffer data,
    std::vector<std::uint32_t> failed) {
  const std::uint64_t len = data.size();
  // Hooks fire once per victim: each down server's rebuild pass must treat
  // the written region as dirtied.
  if (observer_ != nullptr) {
    for (const std::uint32_t s : failed) observer_->on_degraded_write_begin(s);
  }
  Recovery rec(*client_, p_.policy);
  auto wr = co_await rec.degraded_write(f, off, std::move(data), failed);
  // The end hook fires on failure too: a torn degraded write may still have
  // updated some redundancy, so the region must count as dirtied.
  if (observer_ != nullptr) {
    for (const std::uint32_t s : failed) {
      observer_->on_degraded_write_end(f, off, len, s);
    }
  }
  co_return wr;
}

sim::Task<Result<Buffer>> CsarFs::read(const pvfs::OpenFile& f,
                                       std::uint64_t off, std::uint64_t len) {
  obs::Span span;
  AmbientGuard ambient;
  if (obs::kEnabled && client_->tracer() != nullptr) {
    span = client_->tracer()->task_span(
        client_->obs_pid(), "fs", "fs.read", "fs", 0,
        "\"off\":" + std::to_string(off) + ",\"len\":" + std::to_string(len));
    ambient.c = client_;
    ambient.prev = client_->ambient_span();
    client_->set_ambient_span(span.id());
  }
  if (mon_ == nullptr) co_return co_await client_->read(f, off, len);
  std::vector<std::uint32_t> down = mon_->failed_set();
  if (!down.empty()) {
    ++failover_stats_.degraded_reads;
    Recovery rec(*client_, p_.policy);
    co_return co_await rec.degraded_read(f, off, len, std::move(down));
  }
  auto rd = co_await client_->read(f, off, len);
  if (rd.ok() || !failover_errc(rd.error().code)) co_return rd;
  ++failover_stats_.reactive;
  co_return co_await reroute_read(f, off, len, rd.error());
}

sim::Task<Result<void>> CsarFs::dispatch_write(const pvfs::OpenFile& f,
                                               std::uint64_t off,
                                               const Buffer& data) {
  // Resolve the file's scheme once, here: a migration flip lands between
  // whole writes (the flip requires zero writes in flight), so a single
  // resolution per dispatch can never straddle two schemes.
  const Scheme sch = p_.policy->scheme_of(f);
  switch (sch.kind) {
    case SchemeKind::raid0:
      co_return co_await client_->write_striped(f, off, data);
    case SchemeKind::raid1:
      co_return co_await write_raid1(f, off, data);
    case SchemeKind::raid4:
    case SchemeKind::raid5:
    case SchemeKind::raid5_nolock:
    case SchemeKind::raid5_npc:
      co_return co_await write_raid5(f, off, data, sch);
    case SchemeKind::hybrid:
      co_return co_await write_hybrid(f, off, data);
    case SchemeKind::rs:
      co_return co_await write_rs(f, off, data, sch);
  }
  co_return Error{Errc::invalid_argument, "unknown scheme"};
}

sim::Task<Result<void>> CsarFs::write_raid1(const pvfs::OpenFile& f,
                                            std::uint64_t off,
                                            const Buffer& data) {
  // Block mirroring (§4): every data block is written twice — in place on
  // its own server, and at the same local offset into the *next* server's
  // redundancy file, so a single failed server can be served by its
  // successor. The client pushes 2x the bytes through its own link.
  const StripeLayout& layout = f.layout;
  const std::uint32_t gen = p_.policy->red_gen_of(f);
  std::vector<std::pair<std::uint32_t, Request>> reqs;
  for (const auto& e : layout.decompose_merged(off, data.size())) {
    Buffer payload = pvfs::Client::gather_for_server(layout, off, data,
                                                     e.server);
    // The overflow invalidations cost nothing on the wire and are no-ops
    // for files that never had overflow entries; for an ex-Hybrid file they
    // keep the (still live) overflow overlay from shadowing these in-place
    // bytes. The mirror write already goes to the successor — exactly where
    // the mirror overflow entries live — so no extra message is needed.
    Request w;
    w.op = Op::write_data;
    w.handle = f.handle;
    w.off = e.local_off;
    w.payload = payload.slice(0, payload.size());
    w.su = layout.stripe_unit;
    w.inval_own = Interval{e.local_off, e.local_off + e.len};
    reqs.emplace_back(e.server, std::move(w));

    Request m;
    m.op = Op::write_red;
    m.handle = f.handle;
    m.off = e.local_off;
    m.payload = std::move(payload);
    m.su = layout.stripe_unit;
    m.red_gen = gen;
    m.inval_mirror = Interval{e.local_off, e.local_off + e.len};
    reqs.emplace_back((e.server + 1) % layout.n(), std::move(m));
  }
  auto resps = co_await client_->rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "raid1 write", resp.server};
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> CsarFs::write_raid5(const pvfs::OpenFile& f,
                                            std::uint64_t off,
                                            const Buffer& data, Scheme sch) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint64_t len = data.size();
  const auto ws = layout.split_write(off, len);
  const auto segs = partial_segments(layout, ws);
  const bool locking = sch != Scheme::raid5_nolock;
  const std::uint32_t gen = p_.policy->red_gen_of(f);
  std::uint64_t xor_bytes = 0;

  // 1. For each partially-written group the client needs the old parity
  //    (taking the parity-block lock) and the old contents of the regions
  //    being overwritten. The old-data reads are lock-free and proceed in
  //    parallel with the parity reads — parity deltas of disjoint regions
  //    commute, so only the parity read->write pair must be atomic (§5.1).
  //    The parity reads themselves are ordered lowest-group-first, the
  //    paper's deadlock-avoidance rule.
  struct SegCtx {
    PartialSeg seg;
    ColRange cols;
    Buffer parity;  // old parity, updated in place to the new parity
  };
  std::vector<SegCtx> ctx;
  ctx.reserve(segs.size());
  for (const auto& seg : segs) {
    ctx.push_back({seg, col_range(layout, seg), Buffer{}});
  }

  std::vector<std::pair<std::uint32_t, Request>> reads;
  std::vector<std::pair<std::size_t, StripeLayout::Extent>> read_meta;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const auto& seg = ctx[i].seg;
    for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
      Request r;
      r.op = Op::read_data_raw;
      r.handle = f.handle;
      r.off = e.local_off;
      r.len = e.len;
      reads.emplace_back(e.server, std::move(r));
      read_meta.emplace_back(i, e);
    }
  }

  // Shared state between this frame and the old-data reader tasks. The
  // readers stream the delta half of the parity update: each computes
  // old ^ new per response *as it arrives* (overlapping the XOR with the
  // parity-lock phase below) instead of after a global join.
  struct OldReadShared {
    CsarFs* self;
    const std::vector<std::pair<std::size_t, StripeLayout::Extent>>* meta;
    const Buffer* data;
    std::uint64_t off;
    bool materialized;
    Scheme sch;
    std::vector<Buffer> deltas;  // indexed like read_meta
    bool failed = false;
    Errc errc = Errc::ok;
    int err_server = -1;
  };
  OldReadShared shared{this,          &read_meta, &data, off,
                       data.materialized(), sch,   {},    false, Errc::ok,
                       -1};
  shared.deltas.resize(read_meta.size());

  // One reader per extent: bulk old-data responses pipeline best as
  // independent messages (the server overlaps their disk reads, and each
  // response streams back as soon as it is done). Each reader folds its
  // extent into a delta the moment the response lands.
  auto read_one = [](OldReadShared* sh, std::uint32_t srv, Request req,
                     std::size_t k) -> sim::Task<void> {
    auto resp = co_await sh->self->client_->rpc(srv, std::move(req));
    if (!resp.ok) {
      if (!sh->failed) {
        sh->failed = true;
        sh->errc = resp.err;
        sh->err_server = resp.server;
      }
      co_return;
    }
    const auto& e = (*sh->meta)[k].second;
    Buffer delta =
        match_materialization(std::move(resp.data), sh->materialized);
    delta.xor_with(sh->data->slice(e.global_off - sh->off, e.len));
    sh->deltas[k] = std::move(delta);
    co_await sh->self->charge_xor(sh->sch, e.len);
  };
  std::vector<sim::ProcessHandle> readers;
  readers.reserve(reads.size());
  for (std::size_t k = 0; k < reads.size(); ++k) {
    readers.push_back(client_->cluster().sim().spawn(
        read_one(&shared, reads[k].first, std::move(reads[k].second), k)));
  }

  // 2. Parity-lock phase: one batched lock+read RPC per parity server. The
  //    server acquires every lock of the batch atomically (ascending key
  //    order) before answering; servers are visited sequentially in
  //    ascending min-group order, which preserves the paper's ordered-
  //    acquisition deadlock-avoidance rule across writers (§5.1). ctx is
  //    ascending by group, so first-seen bucket order is exactly that.
  struct LockBucket {
    std::uint32_t server;
    std::vector<std::size_t> cs;  // ctx indexes, ascending group order
  };
  // One token identifies this whole RMW to the lock protocol: a retried
  // lock read re-enters its own grant, and the paired (or abandon-time)
  // release cannot be confused with a later RMW's lock.
  const std::uint64_t rmw_token = locking ? client_->next_rmw_token() : 0;
  std::vector<LockBucket> lbuckets;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const std::uint32_t srv = layout.parity_server(ctx[i].seg.group);
    LockBucket* b = nullptr;
    for (auto& cand : lbuckets) {
      if (cand.server == srv) {
        b = &cand;
        break;
      }
    }
    if (b == nullptr) {
      lbuckets.push_back({srv, {}});
      b = &lbuckets.back();
    }
    b->cs.push_back(i);
  }

  bool parity_error = false;
  Errc parity_errc = Errc::ok;
  int parity_err_server = -1;
  // Locks whose acquisition request went out; on abort each gets an
  // explicit owner-checked release (safe even when the grant is unknown —
  // a timed-out envelope may or may not have taken them server-side).
  std::vector<char> lock_sent(ctx.size(), 0);
  for (auto& b : lbuckets) {
    std::vector<Request> subs;
    subs.reserve(b.cs.size());
    for (const std::size_t i : b.cs) {
      const ColRange cr = ctx[i].cols;
      Request r;
      r.op = Op::read_red;
      r.handle = f.handle;
      r.off = layout.parity_local_off(ctx[i].seg.group) + cr.lo;
      r.len = cr.hi - cr.lo;
      r.lock = locking;
      r.rmw_token = rmw_token;
      r.su = layout.stripe_unit;
      r.red_gen = gen;
      subs.push_back(std::move(r));
      if (locking) lock_sent[i] = 1;
    }
    auto resps = co_await client_->rpc_batch(b.server, std::move(subs));
    for (std::size_t k = 0; k < resps.size(); ++k) {
      if (!resps[k].ok) {
        if (!parity_error) {
          parity_error = true;
          parity_errc = resps[k].err;
          parity_err_server = resps[k].server;
        }
        continue;
      }
      ctx[b.cs[k]].parity = match_materialization(std::move(resps[k].data),
                                                  data.materialized());
    }
    if (parity_error) break;
  }
  for (auto& h : readers) co_await h.join();

  if (parity_error || shared.failed) {
    // Abandoning the RMW with lock requests in flight: explicitly release
    // every lock we may hold so the stripe is not wedged until the lease
    // reaper fires. unlock_red is owner-checked and writes nothing, so it
    // is safe to send for locks that failed their read (media error — the
    // lock was still taken) and for grants lost to a timeout alike.
    if (locking) {
      std::vector<std::pair<std::uint32_t, Request>> rel;
      for (std::size_t i = 0; i < ctx.size(); ++i) {
        if (lock_sent[i] == 0) continue;
        Request u;
        u.op = Op::unlock_red;
        u.handle = f.handle;
        u.off = layout.parity_local_off(ctx[i].seg.group) + ctx[i].cols.lo;
        u.rmw_token = rmw_token;
        u.su = layout.stripe_unit;
        u.red_gen = gen;
        rel.emplace_back(layout.parity_server(ctx[i].seg.group),
                         std::move(u));
      }
      (void)co_await client_->rpc_all(std::move(rel));
    }
    if (parity_error) {
      co_return Error{parity_errc, "raid5 parity read", parity_err_server};
    }
    co_return Error{shared.errc, "raid5 old data", shared.err_server};
  }

  // 3. Fold the streamed deltas into the old parity: new_p = old_p ^ delta.
  //    The old ^ new half was computed (and its XOR charged) per response
  //    as it arrived.
  for (std::size_t k = 0; k < read_meta.size(); ++k) {
    const std::size_t i = read_meta[k].first;
    const auto& e = read_meta[k].second;
    ctx[i].parity.xor_at(e.global_off % su - ctx[i].cols.lo,
                         shared.deltas[k]);
    xor_bytes += e.len;
  }

  // 4. Issue every write in parallel: the updated parity for partial groups
  //    *first* (their transfer releases the parity-block locks — sending
  //    them ahead of the bulk data keeps the critical section short), then
  //    the full data range (in place), then fresh parity for fully covered
  //    groups.
  std::vector<std::pair<std::uint32_t, Request>> writes;
  for (auto& c : ctx) {
    Request w;
    w.op = Op::write_red;
    w.handle = f.handle;
    w.off = layout.parity_local_off(c.seg.group) + c.cols.lo;
    w.payload = std::move(c.parity);
    w.unlock = locking;
    w.rmw_token = rmw_token;
    w.su = layout.stripe_unit;
    w.red_gen = gen;
    writes.emplace_back(layout.parity_server(c.seg.group), std::move(w));
  }
  const bool inval = p_.policy->overflow_possible(f);
  for (const auto& e : layout.decompose_merged(off, len)) {
    Request w;
    w.op = Op::write_data;
    w.handle = f.handle;
    w.off = e.local_off;
    w.payload = pvfs::Client::gather_for_server(layout, off, data, e.server);
    w.su = layout.stripe_unit;
    if (inval) {
      // An ex-Hybrid file migrated to RAID5 keeps its overflow overlay
      // live; in-place writes must kill overlapping entries or reads would
      // keep returning the superseded overflow bytes. The owner entry dies
      // on the data write itself; the mirror entry lives on the successor,
      // which gets a zero-payload invalidation-only write below. Files that
      // were never Hybrid skip all of this and keep their exact pre-policy
      // message traffic.
      w.inval_own = Interval{e.local_off, e.local_off + e.len};
      Request inv;
      inv.op = Op::write_data;
      inv.handle = f.handle;
      inv.off = e.local_off;
      inv.su = layout.stripe_unit;
      inv.inval_mirror = Interval{e.local_off, e.local_off + e.len};
      writes.emplace_back((e.server + 1) % layout.n(), std::move(inv));
    }
    writes.emplace_back(e.server, std::move(w));
  }
  if (ws.full_end > ws.full_start) {
    build_full_parity_writes(f, off, data, ws.full_start / layout.stripe_width(),
                             ws.full_end / layout.stripe_width(),
                             /*hybrid_invalidate=*/false, gen, writes,
                             xor_bytes);
  }
  if (!ctx.empty()) p_.policy->note_rmw(sch, ctx.size());
  co_await charge_xor(sch, xor_bytes);
  auto resps = co_await client_->rpc_all(std::move(writes));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "raid5 write", resp.server};
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> CsarFs::write_rs(const pvfs::OpenFile& f,
                                         std::uint64_t off, const Buffer& data,
                                         Scheme sch) {
  // rs(k,m) generalizes the RAID5 path: a group is k consecutive units with
  // m coding fragments on the next m servers in rotation. Full groups
  // compute all m fragments fresh; partial groups run the same batched RMW
  // protocol with one locked read+update per (group, coding fragment) — the
  // XOR delta becomes m GF-scaled deltas, one per fragment (coding_j ^=
  // coeff(j,i) * (old ^ new) for a write to data fragment i).
  const StripeLayout& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint64_t len = data.size();
  const CodeSpec spec = sch.code(layout);
  const std::uint32_t k = spec.k;
  const std::uint32_t m = spec.m;
  if (std::uint64_t{k} + m > layout.n()) {
    co_return Error{Errc::invalid_argument, "rs placement needs k+m <= N"};
  }
  const std::uint64_t W = layout.rs_group_width(k);
  const auto ws = layout.split_write_w(off, len, W);
  const std::uint32_t gen = p_.policy->red_gen_of(f);
  std::uint64_t xor_bytes = 0;

  // Partial segments in ascending group order (head group < tail group):
  // the §5.1 ordered-acquisition rule, applied to coding-server visits.
  std::vector<PartialSeg> segs;
  if (ws.head_end > ws.head_start) {
    segs.push_back({ws.head_start, ws.head_end,
                    layout.rs_group_of_off(ws.head_start, k)});
  }
  if (ws.tail_end > ws.tail_start) {
    segs.push_back({ws.tail_start, ws.tail_end,
                    layout.rs_group_of_off(ws.tail_start, k)});
  }

  struct SegCtx {
    PartialSeg seg;
    ColRange cols;
    std::vector<Buffer> coding;  // old fragment columns, updated in place
  };
  std::vector<SegCtx> ctx;
  ctx.reserve(segs.size());
  for (const auto& seg : segs) {
    ColRange cr;
    const std::uint64_t u0 = layout.unit_of(seg.start);
    const std::uint64_t u1 = layout.unit_of(seg.end - 1);
    if (u0 == u1) {
      cr = {seg.start % su, (seg.end - 1) % su + 1};
    } else {
      cr = {0, su};
    }
    ctx.push_back({seg, cr, std::vector<Buffer>(m)});
  }

  // Old-data readers: one per extent, each folding old ^ new the moment its
  // response lands (identical streaming shape to the RAID5 path; the
  // GF-scaled fold into each coding fragment happens after the join).
  std::vector<std::pair<std::uint32_t, Request>> reads;
  std::vector<std::pair<std::size_t, StripeLayout::Extent>> read_meta;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const auto& seg = ctx[i].seg;
    for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
      Request r;
      r.op = Op::read_data_raw;
      r.handle = f.handle;
      r.off = e.local_off;
      r.len = e.len;
      reads.emplace_back(e.server, std::move(r));
      read_meta.emplace_back(i, e);
    }
  }
  struct OldReadShared {
    CsarFs* self;
    const std::vector<std::pair<std::size_t, StripeLayout::Extent>>* meta;
    const Buffer* data;
    std::uint64_t off;
    bool materialized;
    Scheme sch;
    std::vector<Buffer> deltas;
    bool failed = false;
    Errc errc = Errc::ok;
    int err_server = -1;
  };
  OldReadShared shared{this,          &read_meta, &data, off,
                       data.materialized(), sch,   {},    false, Errc::ok,
                       -1};
  shared.deltas.resize(read_meta.size());
  auto read_one = [](OldReadShared* sh, std::uint32_t srv, Request req,
                     std::size_t x) -> sim::Task<void> {
    auto resp = co_await sh->self->client_->rpc(srv, std::move(req));
    if (!resp.ok) {
      if (!sh->failed) {
        sh->failed = true;
        sh->errc = resp.err;
        sh->err_server = resp.server;
      }
      co_return;
    }
    const auto& e = (*sh->meta)[x].second;
    Buffer delta =
        match_materialization(std::move(resp.data), sh->materialized);
    delta.xor_with(sh->data->slice(e.global_off - sh->off, e.len));
    sh->deltas[x] = std::move(delta);
    co_await sh->self->charge_xor(sh->sch, e.len);
  };
  std::vector<sim::ProcessHandle> readers;
  readers.reserve(reads.size());
  for (std::size_t x = 0; x < reads.size(); ++x) {
    readers.push_back(client_->cluster().sim().spawn(
        read_one(&shared, reads[x].first, std::move(reads[x].second), x)));
  }

  // Coding-lock phase: one batched lock+read RPC per coding server, servers
  // visited sequentially in first-seen (ascending group, ascending fragment)
  // order — the deadlock-avoidance rule across writers.
  struct LockBucket {
    std::uint32_t server;
    std::vector<std::pair<std::size_t, std::uint32_t>> cs;  // (ctx, j)
  };
  const std::uint64_t rmw_token =
      ctx.empty() ? 0 : client_->next_rmw_token();
  std::vector<LockBucket> lbuckets;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    for (std::uint32_t j = 0; j < m; ++j) {
      const std::uint32_t srv =
          layout.rs_coding_server(ctx[i].seg.group, k, j);
      LockBucket* b = nullptr;
      for (auto& cand : lbuckets) {
        if (cand.server == srv) {
          b = &cand;
          break;
        }
      }
      if (b == nullptr) {
        lbuckets.push_back({srv, {}});
        b = &lbuckets.back();
      }
      b->cs.emplace_back(i, j);
    }
  }

  bool coding_error = false;
  Errc coding_errc = Errc::ok;
  int coding_err_server = -1;
  std::vector<char> lock_sent(ctx.size() * m, 0);
  for (auto& b : lbuckets) {
    std::vector<Request> subs;
    subs.reserve(b.cs.size());
    for (const auto& [i, j] : b.cs) {
      const ColRange cr = ctx[i].cols;
      Request r;
      r.op = Op::read_red;
      r.handle = f.handle;
      r.off = layout.rs_coding_local_off(ctx[i].seg.group) + cr.lo;
      r.len = cr.hi - cr.lo;
      r.lock = true;
      r.rmw_token = rmw_token;
      r.su = layout.stripe_unit;
      r.red_gen = gen;
      subs.push_back(std::move(r));
      lock_sent[i * m + j] = 1;
    }
    auto resps = co_await client_->rpc_batch(b.server, std::move(subs));
    for (std::size_t x = 0; x < resps.size(); ++x) {
      if (!resps[x].ok) {
        if (!coding_error) {
          coding_error = true;
          coding_errc = resps[x].err;
          coding_err_server = resps[x].server;
        }
        continue;
      }
      ctx[b.cs[x].first].coding[b.cs[x].second] = match_materialization(
          std::move(resps[x].data), data.materialized());
    }
    if (coding_error) break;
  }
  for (auto& h : readers) co_await h.join();

  if (coding_error || shared.failed) {
    std::vector<std::pair<std::uint32_t, Request>> rel;
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      for (std::uint32_t j = 0; j < m; ++j) {
        if (lock_sent[i * m + j] == 0) continue;
        Request u;
        u.op = Op::unlock_red;
        u.handle = f.handle;
        u.off = layout.rs_coding_local_off(ctx[i].seg.group) + ctx[i].cols.lo;
        u.rmw_token = rmw_token;
        u.su = layout.stripe_unit;
        u.red_gen = gen;
        rel.emplace_back(layout.rs_coding_server(ctx[i].seg.group, k, j),
                         std::move(u));
      }
    }
    (void)co_await client_->rpc_all(std::move(rel));
    if (coding_error) {
      co_return Error{coding_errc, "rs coding read", coding_err_server};
    }
    co_return Error{shared.errc, "rs old data", shared.err_server};
  }

  // Fold the streamed deltas: coding_j ^= coeff(j, i) * delta, at the
  // extent's column offset.
  for (std::size_t x = 0; x < read_meta.size(); ++x) {
    const std::size_t i = read_meta[x].first;
    const auto& e = read_meta[x].second;
    const std::uint32_t frag =
        static_cast<std::uint32_t>(layout.unit_of(e.global_off) % k);
    const std::uint64_t colofs = e.global_off % su - ctx[i].cols.lo;
    for (std::uint32_t j = 0; j < m; ++j) {
      if (ctx[i].coding[j].materialized() && shared.deltas[x].materialized()) {
        gf_muladd_region(
            ctx[i].coding[j].mutable_bytes().subspan(colofs, e.len),
            shared.deltas[x].bytes(), rs_coeff(spec, j, frag));
      }
      xor_bytes += e.len;
    }
  }

  // Writes: updated coding fragments first (their transfer releases the
  // locks), then the data range in place, then fresh coding for fully
  // covered groups. rs coding slots are one unit per (server, group) and
  // consecutive groups rotate servers, so full-group coding writes go out
  // per group rather than merged per server.
  std::vector<std::pair<std::uint32_t, Request>> writes;
  for (auto& c : ctx) {
    for (std::uint32_t j = 0; j < m; ++j) {
      Request w;
      w.op = Op::write_red;
      w.handle = f.handle;
      w.off = layout.rs_coding_local_off(c.seg.group) + c.cols.lo;
      w.payload = std::move(c.coding[j]);
      w.unlock = true;
      w.rmw_token = rmw_token;
      w.su = layout.stripe_unit;
      w.red_gen = gen;
      writes.emplace_back(layout.rs_coding_server(c.seg.group, k, j),
                          std::move(w));
    }
  }
  const bool inval = p_.policy->overflow_possible(f);
  for (const auto& e : layout.decompose_merged(off, len)) {
    Request w;
    w.op = Op::write_data;
    w.handle = f.handle;
    w.off = e.local_off;
    w.payload = pvfs::Client::gather_for_server(layout, off, data, e.server);
    w.su = layout.stripe_unit;
    if (inval) {
      w.inval_own = Interval{e.local_off, e.local_off + e.len};
      Request inv;
      inv.op = Op::write_data;
      inv.handle = f.handle;
      inv.off = e.local_off;
      inv.su = layout.stripe_unit;
      inv.inval_mirror = Interval{e.local_off, e.local_off + e.len};
      writes.emplace_back((e.server + 1) % layout.n(), std::move(inv));
    }
    writes.emplace_back(e.server, std::move(w));
  }
  if (ws.full_end > ws.full_start) {
    for (std::uint64_t g = ws.full_start / W; g < ws.full_end / W; ++g) {
      for (std::uint32_t j = 0; j < m; ++j) {
        Buffer coding = data.materialized() ? Buffer::real(su)
                                            : Buffer::phantom(su);
        if (data.materialized()) {
          auto dst = coding.mutable_bytes();
          for (std::uint32_t i = 0; i < k; ++i) {
            const std::uint64_t pos =
                layout.rs_group_start(g, k) + std::uint64_t{i} * su;
            gf_muladd_region(dst, data.slice(pos - off, su).bytes(),
                             rs_coeff(spec, j, i));
          }
        }
        xor_bytes += W;
        Request w;
        w.op = Op::write_red;
        w.handle = f.handle;
        w.off = layout.rs_coding_local_off(g);
        w.payload = std::move(coding);
        w.su = layout.stripe_unit;
        w.red_gen = gen;
        writes.emplace_back(layout.rs_coding_server(g, k, j), std::move(w));
      }
    }
  }
  if (!ctx.empty()) p_.policy->note_rmw(sch, ctx.size());
  p_.policy->note_ec_encode(xor_bytes);
  co_await charge_xor(sch, xor_bytes);
  auto resps = co_await client_->rpc_all(std::move(writes));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "rs write", resp.server};
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> CsarFs::write_hybrid(const pvfs::OpenFile& f,
                                             std::uint64_t off,
                                             const Buffer& data) {
  const StripeLayout& layout = f.layout;
  const std::uint32_t n = layout.n();
  const std::uint64_t len = data.size();
  const auto ws = layout.split_write(off, len);
  const auto segs = partial_segments(layout, ws);
  const std::uint32_t gen = p_.policy->red_gen_of(f);
  std::uint64_t xor_bytes = 0;

  std::vector<std::pair<std::uint32_t, Request>> writes;

  // Full-stripe run: RAID5 fast path — in-place data + fresh parity, plus
  // invalidation of any overflow entries the new stripes supersede.
  if (ws.full_end > ws.full_start) {
    const std::uint64_t span = ws.full_end - ws.full_start;
    const auto merged = layout.decompose_merged(ws.full_start, span);
    // Per-server local data extents, for overflow invalidation: server s
    // invalidates its own entries over its extent, and the mirror entries it
    // holds for server s-1 over *that* server's extent.
    std::vector<Interval> extent(n, Interval{0, 0});
    for (const auto& e : merged) {
      extent[e.server] = {e.local_off, e.local_off + e.len};
    }
    for (const auto& e : merged) {
      Request w;
      w.op = Op::write_data;
      w.handle = f.handle;
      w.off = e.local_off;
      w.payload = pvfs::Client::gather_for_server(layout, ws.full_start,
                                                  data.slice(ws.full_start - off,
                                                             span),
                                                  e.server);
      w.su = layout.stripe_unit;
      w.inval_own = extent[e.server];
      w.inval_mirror = extent[(e.server + n - 1) % n];
      writes.emplace_back(e.server, std::move(w));
    }
    const std::size_t parity_first = writes.size();
    build_full_parity_writes(f, off, data,
                             ws.full_start / layout.stripe_width(),
                             ws.full_end / layout.stripe_width(),
                             /*hybrid_invalidate=*/true, gen, writes,
                             xor_bytes);
    // A server that holds no data unit in the span (possible when the span
    // is shorter than N groups) still receives its parity write; attach the
    // invalidations there so its stale mirror entries die too.
    // The invalidation is idempotent with the one on the data write, so it
    // is attached unconditionally.
    for (std::size_t i = parity_first; i < writes.size(); ++i) {
      const std::uint32_t s = writes[i].first;
      writes[i].second.inval_own = extent[s];
      writes[i].second.inval_mirror = extent[(s + n - 1) % n];
    }
  }

  // Partial-stripe segments: the updated blocks are written twice into
  // overflow regions (owner + successor), never touching the data file, so
  // the group's stale parity still reconstructs the *old* stripe (§4).
  std::uint64_t overflow_bytes = 0;
  for (const auto& seg : segs) {
    for (const auto& e : layout.decompose(seg.start, seg.end - seg.start)) {
      Buffer piece = data.slice(e.global_off - off, e.len);
      overflow_bytes += 2 * e.len;  // both copies
      Request primary;
      primary.op = Op::write_overflow;
      primary.handle = f.handle;
      primary.off = e.local_off;
      primary.payload = piece.slice(0, piece.size());
      primary.owner = e.server;
      primary.su = layout.stripe_unit;
      writes.emplace_back(e.server, std::move(primary));

      Request mirror;
      mirror.op = Op::write_overflow;
      mirror.handle = f.handle;
      mirror.off = e.local_off;
      mirror.payload = std::move(piece);
      mirror.owner = e.server;
      mirror.mirror = true;
      mirror.su = layout.stripe_unit;
      writes.emplace_back((e.server + 1) % n, std::move(mirror));
    }
  }

  if (overflow_bytes > 0) {
    p_.policy->note_overflow_bytes(Scheme::hybrid, overflow_bytes);
  }
  co_await charge_xor(Scheme::hybrid, xor_bytes);
  auto resps = co_await client_->rpc_all(std::move(writes));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "hybrid write", resp.server};
  }
  co_return Result<void>::success();
}

sim::Task<Result<void>> CsarFs::compact(const pvfs::OpenFile& f,
                                        std::uint64_t file_size) {
  const StripeLayout& layout = f.layout;
  const std::uint64_t w = layout.stripe_width();
  // Rewrite in bursts of 8 stripes; the final burst is zero-padded to a
  // stripe boundary so no new partial-stripe overflow is created (bytes
  // past file_size were zeros either way).
  const std::uint64_t burst = 8 * w;
  const std::uint64_t padded = align_up(file_size, w);
  for (std::uint64_t off = 0; off < padded; off += burst) {
    const std::uint64_t len = std::min(burst, padded - off);
    auto rd = co_await client_->read(f, off, len);
    if (!rd.ok()) co_return rd.error();
    auto wr = co_await write(f, off, std::move(rd.value()));
    if (!wr.ok()) co_return wr;
  }
  // Garbage-collect the (now fully invalidated) overflow regions.
  std::vector<std::pair<std::uint32_t, pvfs::Request>> reqs;
  for (std::uint32_t s = 0; s < layout.n(); ++s) {
    pvfs::Request r;
    r.op = pvfs::Op::compact_overflow;
    r.handle = f.handle;
    r.su = layout.stripe_unit;
    reqs.emplace_back(s, std::move(r));
  }
  auto resps = co_await client_->rpc_all(std::move(reqs));
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "compact", resp.server};
  }
  co_return Result<void>::success();
}

sim::Task<Result<Buffer>> CsarFs::read_balanced(const pvfs::OpenFile& f,
                                                std::uint64_t off,
                                                std::uint64_t len) {
  if (p_.policy->scheme_of(f) != Scheme::raid1) {
    co_return co_await client_->read(f, off, len);
  }
  if (p_.policy->overflow_possible(f)) {
    // An ex-Hybrid file's mirror (new red generation) covers the raw data
    // files; the overflow overlay holds the newest partial-write bytes and
    // only the plain read path applies it. Balanced reads would need the
    // overlay logic duplicated per unit — not worth it for this corner.
    co_return co_await read(f, off, len);
  }
  if (len == 0) co_return Buffer::real(0);
  const StripeLayout& layout = f.layout;
  const std::uint32_t gen = p_.policy->red_gen_of(f);
  // Per-unit pieces, alternating primary/mirror by global unit index.
  const auto pieces = layout.decompose(off, len);
  std::vector<std::pair<std::uint32_t, Request>> reads;
  reads.reserve(pieces.size());
  for (const auto& e : pieces) {
    const std::uint64_t u = layout.unit_of(e.global_off);
    Request r;
    r.handle = f.handle;
    r.off = e.local_off;
    r.len = e.len;
    r.su = layout.stripe_unit;
    if (u % 2 == 0) {
      r.op = Op::read_data;
      reads.emplace_back(e.server, std::move(r));
    } else {
      // The mirror lives at the same local offset in the successor's
      // redundancy file.
      r.op = Op::read_red;
      r.red_gen = gen;
      reads.emplace_back((e.server + 1) % layout.n(), std::move(r));
    }
  }
  auto resps = co_await client_->rpc_all(std::move(reads));
  bool phantom = false;
  for (const auto& resp : resps) {
    if (!resp.ok) co_return Error{resp.err, "balanced read", resp.server};
    if (!resp.data.materialized()) phantom = true;
  }
  if (phantom) co_return Buffer::phantom(len);
  Buffer out = Buffer::real(len);
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    out.write_at(pieces[i].global_off - off, resps[i].data);
  }
  co_return out;
}

sim::Task<std::optional<std::uint32_t>> CsarFs::find_failed_server(
    const pvfs::OpenFile& f) {
  for (std::uint32_t s = 0; s < f.layout.n(); ++s) {
    if (co_await confirmed_down(f, s)) co_return s;
  }
  co_return std::nullopt;
}

sim::Task<bool> CsarFs::confirmed_down(const pvfs::OpenFile& f,
                                       std::uint32_t s) {
  // Probes must not inherit an infinite client policy: a crashed server
  // answers nothing, and the whole point here is to notice that quickly.
  pvfs::RpcPolicy probe = client_->rpc_policy();
  if (probe.timeout == 0) probe.timeout = sim::ms(250);
  probe.max_attempts = std::max<std::uint32_t>(probe.max_attempts, 2);
  Request r;
  r.op = Op::storage_query;
  r.handle = f.handle;
  auto resp = co_await client_->rpc(s, std::move(r), probe);
  co_return !resp.ok && (resp.err == Errc::server_failed ||
                         resp.err == Errc::timeout ||
                         resp.err == Errc::conn_dropped);
}

sim::Task<Result<Buffer>> CsarFs::reroute_read(const pvfs::OpenFile& f,
                                               std::uint64_t off,
                                               std::uint64_t len, Error err) {
  std::optional<std::uint32_t> failed;
  if (err.server >= 0) {
    failed = static_cast<std::uint32_t>(err.server);
  } else {
    failed = co_await find_failed_server(f);
  }
  if (!failed.has_value()) co_return err;  // transient: report the error
  ++failover_stats_.degraded_reads;
  Recovery rec(*client_, p_.policy);
  co_return co_await rec.degraded_read(f, off, len, *failed);
}

sim::Task<Result<Buffer>> CsarFs::read_resilient(const pvfs::OpenFile& f,
                                                 std::uint64_t off,
                                                 std::uint64_t len) {
  auto rd = co_await client_->read(f, off, len);
  if (rd.ok() || !failover_errc(rd.error().code)) co_return rd;
  co_return co_await reroute_read(f, off, len, rd.error());
}

}  // namespace csar::raid
