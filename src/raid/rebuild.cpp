#include "raid/rebuild.hpp"

#include <algorithm>
#include <utility>

#include "pvfs/io_server.hpp"
#include "sim/sync.hpp"

namespace csar::raid {

RebuildCoordinator::RebuildCoordinator(Rig& rig, HealthMonitor& mon,
                                       RebuildParams params)
    : rig_(&rig), mon_(&mon), p_(params), outages_(rig.p.nservers) {
  // Materialize the repair client now, while the deployment is still being
  // assembled (keeps node-id assignment independent of when the first
  // rebuild happens to run).
  rig.repair_client().set_rpc_policy(p_.rpc);
}

RebuildCoordinator::~RebuildCoordinator() { stop(); }

void RebuildCoordinator::track(const pvfs::OpenFile& f, std::uint64_t size) {
  for (auto& t : files_) {
    if (t.f.handle == f.handle) {
      t.size = std::max(t.size, size);
      return;
    }
  }
  files_.push_back({f, size});
}

void RebuildCoordinator::start() {
  if (running_) return;
  running_ = true;
  ++gen_;
  if (!attached_) {
    attached_ = true;
    for (auto& fs : rig_->fs) fs->set_write_observer(this);
    for (auto& srv : rig_->servers) srv->fence_restarts(true);
    listener_id_ =
        mon_->add_listener([this](std::uint32_t s, bool alive, sim::Time at) {
          if (alive) return;
          Outage& o = outages_[s];
          if (o.phase == Phase::healthy) {
            o.phase = Phase::degraded;
            o.down_since = at;
            if (obs::kEnabled && rig_->tracer() != nullptr) {
              rig_->tracer()->instant("rebuild:degraded", "rebuild",
                                      "\"server\":" + std::to_string(s));
            }
          }
          if (stats_.first_down_at == 0) stats_.first_down_at = at;
        });
  }
  sim().spawn(supervisor(gen_), "rebuild_supervisor");
}

void RebuildCoordinator::stop() {
  running_ = false;
  ++gen_;
  if (attached_) {
    attached_ = false;
    for (auto& fs : rig_->fs) fs->set_write_observer(nullptr);
    for (auto& srv : rig_->servers) srv->fence_restarts(false);
    mon_->remove_listener(listener_id_);
  }
}

bool RebuildCoordinator::idle() const {
  for (std::uint32_t s = 0; s < outages_.size(); ++s) {
    auto& srv = rig_->server(s);
    if (srv.crashed()) continue;  // nothing to coordinate until it restarts
    if (srv.fenced()) return false;
    if (outages_[s].phase != Phase::healthy) return false;
  }
  return true;
}

void RebuildCoordinator::on_degraded_write_begin(std::uint32_t failed) {
  ++outages_[failed].writes_in_flight;
  ++stats_.degraded_writes_seen;
}

void RebuildCoordinator::on_degraded_write_end(const pvfs::OpenFile& f,
                                               std::uint64_t off,
                                               std::uint64_t len,
                                               std::uint32_t failed) {
  // Recorded unconditionally (even while the phase is still `healthy`): a
  // reactive degraded write can land before the monitor's transition, and
  // the region is stale on the target either way.
  Outage& o = outages_[failed];
  --o.writes_in_flight;
  o.stale[f.handle].insert(off, off + len);
  stats_.dirty_bytes += len;
}

bool RebuildCoordinator::stale_empty(const Outage& o) const {
  for (const auto& [handle, set] : o.stale) {
    (void)handle;
    if (!set.empty()) return false;
  }
  return true;
}

sim::Task<void> RebuildCoordinator::supervisor(std::uint64_t my_gen) {
  while (running_ && gen_ == my_gen) {
    for (std::uint32_t s = 0; s < outages_.size() && gen_ == my_gen; ++s) {
      Outage& o = outages_[s];
      if (o.phase == Phase::rebuilding) continue;
      if (sim().now() < o.next_attempt) continue;
      auto& srv = rig_->server(s);
      if (srv.crashed()) continue;  // still down: clients stay degraded
      if (srv.fenced()) {
        co_await handle_rejoin(s, /*fenced_rejoin=*/true);
      } else if ((o.phase == Phase::degraded || !stale_empty(o)) &&
                 mon_->is_alive(s)) {
        // Transient unreachability: the server answers probes again without
        // having restarted, but any degraded writes routed around it exist
        // only in the redundancy — resync those regions in place.
        co_await handle_rejoin(s, /*fenced_rejoin=*/false);
      }
    }
    co_await sim().sleep(p_.poll);
  }
}

sim::Task<void> RebuildCoordinator::handle_rejoin(std::uint32_t s,
                                                  bool fenced_rejoin) {
  Outage& o = outages_[s];
  auto& srv = rig_->server(s);

  // Schemes are per-file now: only when *no* tracked file carries any
  // redundancy is there nothing to rebuild from. A mixed population takes
  // the normal path; Recovery::rebuild_server no-ops on its RAID0 files.
  bool any_redundancy = false;
  for (const auto& t : files_) {
    if (rig_->policy().scheme_of(t.f) != Scheme::raid0) {
      any_redundancy = true;
      break;
    }
  }
  if (!any_redundancy && !files_.empty()) {
    // No redundancy exists to rebuild from; lift the fence as-is.
    if (srv.fenced()) srv.admit();
    o.stale.clear();
    o.phase = Phase::healthy;
    co_return;
  }

  const bool wiped = fenced_rejoin && srv.last_restart_wiped();
  if (fenced_rejoin) merge_crash_losses(s);

  std::map<std::uint64_t, IntervalSet> work;
  if (wiped) {
    // Pass 0 below copies everything ever written, and reconstruction reads
    // the post-write redundancy — so regions dirtied before this snapshot
    // come out fresh anyway. Only writes completing after it must re-copy.
    o.stale.clear();
  } else {
    work = std::exchange(o.stale, {});
    bool any = false;
    for (const auto& [handle, set] : work) {
      (void)handle;
      if (!set.empty()) any = true;
    }
    if (!any && o.writes_in_flight == 0 && !fenced_rejoin) {
      // A probe flap with nothing recorded: nothing is stale.
      o.phase = Phase::healthy;
      co_return;
    }
  }

  o.phase = Phase::rebuilding;
  ++stats_.rebuilds_started;
  if (wiped) {
    ++stats_.full_rebuilds;
  } else {
    ++stats_.delta_rebuilds;
  }
  if (obs::kEnabled && rig_->tracer() != nullptr) {
    rig_->tracer()->instant("rebuild:start", "rebuild",
                            "\"server\":" + std::to_string(s) +
                                ",\"full\":" + (wiped ? "true" : "false"));
  }
  const sim::Time t0 = sim().now();
  // Pass 0 is paced by the rate cap; dirty re-copy passes only tally their
  // bytes — their traffic is bounded by the foreground write rate, so
  // pacing them could only delay convergence, never protect bandwidth.
  sim::TokenBucket paced(sim(), p_.rate_cap, p_.burst);
  sim::TokenBucket tally(sim(), 0.0, 1);
  Recovery rec = rig_->repair_recovery();
  bool ok = true;

  for (std::uint32_t pass = 0;; ++pass) {
    if (!running_ || pass >= p_.max_passes ||
        sim().now() - t0 > p_.give_up) {
      ok = false;
      break;
    }
    // Other servers still out while this one rebuilds: rs(k,m) files decode
    // around them (any k live fragments); classic schemes ignore the list.
    // Recomputed per pass — a concurrent outage may heal or appear between
    // passes.
    std::vector<std::uint32_t> also_down;
    for (std::uint32_t s2 = 0; s2 < outages_.size(); ++s2) {
      if (s2 == s) continue;
      auto& srv2 = rig_->server(s2);
      if (srv2.crashed() || srv2.fenced() || !mon_->is_alive(s2)) {
        also_down.push_back(s2);
      }
    }
    for (const auto& t : files_) {
      RebuildOptions opt;
      opt.throttle = pass == 0 ? &paced : &tally;
      opt.restore_all_overflow = o.overflow_suspect;
      opt.also_down = also_down;
      const bool full = wiped && pass == 0;
      if (!full) {
        auto it = work.find(t.f.handle);
        if (it == work.end() || it->second.empty()) continue;
        opt.delta = &it->second;
      }
      auto rb = co_await rec.rebuild_server(t.f, s, t.size, opt);
      if (!rb.ok()) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
    ++stats_.passes;
    if (pass > 0) ++stats_.recopy_passes;

    // Convergence check, admit and monitor flip with no await in between:
    // atomic under the cooperative scheduler, so no degraded write can
    // start (or land) between the check and the fence lift.
    if (o.writes_in_flight == 0 && stale_empty(o)) {
      if (srv.fenced()) {
        srv.admit();
        // Flip the monitor now rather than at its next probe round: the
        // detection lag would keep clients degrading writes around an
        // already-trustworthy server, re-staling what was just rebuilt.
        mon_->mark_alive(s);
      }
      o.phase = Phase::healthy;
      o.next_attempt = 0;
      o.overflow_suspect = false;
      ++stats_.rebuilds_completed;
      if (obs::kEnabled && rig_->tracer() != nullptr) {
        rig_->tracer()->instant("rebuild:admit", "rebuild",
                                "\"server\":" + std::to_string(s));
      }
      if (stats_.first_admit_at == 0) stats_.first_admit_at = sim().now();
      stats_.last_admit_at = sim().now();
      stats_.last_rebuild_time = sim().now() - t0;
      stats_.bytes_rebuilt += paced.taken() + tally.taken();
      co_return;
    }
    // Foreground writes raced the pass: wait for the in-flight ones to
    // land, then re-copy exactly the regions they dirtied.
    while (running_ && o.writes_in_flight > 0 && stale_empty(o) &&
           sim().now() - t0 <= p_.give_up) {
      co_await sim().sleep(p_.poll);
    }
    work = std::exchange(o.stale, {});
  }

  // Attempt failed (error, pass budget, or time budget). The fence stays up
  // — a fenced server keeps failing probes, so clients stay degraded and no
  // stale byte is served. Merge the unfinished work back and retry after a
  // backoff.
  stats_.ok = false;
  ++stats_.rebuilds_failed;
  if (obs::kEnabled && rig_->tracer() != nullptr) {
    rig_->tracer()->instant("rebuild:failed", "rebuild",
                            "\"server\":" + std::to_string(s));
  }
  stats_.bytes_rebuilt += paced.taken() + tally.taken();
  for (const auto& [handle, set] : work) {
    for (const auto& iv : set.to_vector()) {
      o.stale[handle].insert(iv.start, iv.end);
    }
  }
  o.phase = Phase::degraded;
  o.next_attempt = sim().now() + p_.retry_backoff;
}

void RebuildCoordinator::merge_crash_losses(std::uint32_t s) {
  auto losses = rig_->server(s).fs().take_crash_losses();
  if (losses.empty()) return;
  Outage& o = outages_[s];
  for (const auto& t : files_) {
    const pvfs::StripeLayout& lay = t.f.layout;
    const std::uint64_t su = lay.su();
    const Scheme sch = rig_->policy().scheme_of(t.f);
    const std::uint32_t gen = rig_->policy().red_gen_of(t.f);

    // Data file: each lost local row maps straight back to a global span.
    // (Under fixed parity placement the dedicated parity server holds no
    // data file, so the inverse mapping does not apply to it.)
    if (auto it = losses.find(pvfs::IoServer::data_name(t.f.handle));
        it != losses.end() &&
        !(lay.placement == pvfs::ParityPlacement::fixed &&
          s >= lay.data_servers())) {
      for (const auto& iv : it->second.to_vector()) {
        stats_.lost_dirty_bytes += iv.length();
        for (std::uint64_t lo = iv.start; lo < iv.end;) {
          const std::uint64_t row_end =
              std::min(iv.end, (lo / su + 1) * su);
          const std::uint64_t g0 = lay.global_off(s, lo);
          o.stale[t.f.handle].insert(g0, g0 + (row_end - lo));
          lo = row_end;
        }
      }
    }

    // Redundancy file: mirror rows map through the predecessor (RAID1);
    // parity rows dirty their whole group (parity schemes). Only the file's
    // *current* generation matters — losses in a superseded generation are
    // garbage awaiting drop_red, never read again.
    if (auto it = losses.find(pvfs::IoServer::red_name(t.f.handle, gen));
        it != losses.end()) {
      for (const auto& iv : it->second.to_vector()) {
        stats_.lost_dirty_bytes += iv.length();
        if (sch == Scheme::raid1) {
          const std::uint32_t pred = (s + lay.n() - 1) % lay.n();
          for (std::uint64_t lo = iv.start; lo < iv.end;) {
            const std::uint64_t row_end =
                std::min(iv.end, (lo / su + 1) * su);
            const std::uint64_t g0 = lay.global_off(pred, lo);
            o.stale[t.f.handle].insert(g0, g0 + (row_end - lo));
            lo = row_end;
          }
        } else if (uses_parity(sch)) {
          for (std::uint64_t k = iv.start / su; k * su < iv.end; ++k) {
            // Groups whose parity lands in local unit k of this server:
            // g == k under fixed placement, one of [k*n, (k+1)*n) rotating.
            const std::uint64_t g_lo =
                lay.placement == pvfs::ParityPlacement::fixed ? k
                                                              : k * lay.n();
            const std::uint64_t g_hi =
                lay.placement == pvfs::ParityPlacement::fixed
                    ? k + 1
                    : (k + 1) * lay.n();
            for (std::uint64_t g = g_lo; g < g_hi; ++g) {
              if (lay.parity_server(g) != s) continue;
              if (lay.parity_local_unit(g) != k) continue;
              const std::uint64_t gs = lay.group_start(g);
              if (gs >= t.size) continue;
              o.stale[t.f.handle].insert(gs,
                                         std::min(lay.group_end(g), t.size));
            }
          }
        } else if (sch.kind == SchemeKind::rs) {
          // rs coding slots: group g's fragments live at local offset g*su
          // (rs_coding_local_off), so local unit q ↔ group q. The server
          // may hold several of group q's m fragments only when fragments
          // wrap, which rs placement forbids (k+m <= N), so one hit per j
          // suffices: taint the whole group span.
          for (std::uint64_t q = iv.start / su; q * su < iv.end; ++q) {
            bool holds = false;
            for (std::uint32_t j = 0; j < sch.m && !holds; ++j) {
              holds = lay.rs_coding_server(q, sch.k, j) == s;
            }
            if (!holds) continue;
            const std::uint64_t gs = lay.rs_group_start(q, sch.k);
            if (gs >= t.size) continue;
            o.stale[t.f.handle].insert(
                gs, std::min(lay.rs_group_end(q, sch.k), t.size));
          }
        }
      }
    }

    // Overflow file: entry boundaries are server-local allocation detail,
    // so a partial loss taints the whole table — restore all of it.
    if (auto it = losses.find(pvfs::IoServer::ovfl_name(t.f.handle));
        it != losses.end()) {
      for (const auto& iv : it->second.to_vector()) {
        stats_.lost_dirty_bytes += iv.length();
      }
      o.overflow_suspect = true;
    }
  }
}

}  // namespace csar::raid
