// Request traces: record the PVFS-level request stream of any workload and
// replay it later against a different configuration.
//
// The paper characterizes every application by its request stream as seen
// at the PVFS layer ("46% of the requests were less than 2KB", "most write
// requests of size 16K", "writes are usually 4 MB and not aligned"). Traces
// make that notion first-class: capture once, then replay the identical
// stream against any scheme / stripe unit / server count — the cleanest way
// to compare redundancy schemes on real access patterns.
//
// Text format (one op per line, '#' comments):
//   W <client> <offset> <length>
//   R <client> <offset> <length>
//   B                      -- barrier across all clients in the trace
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "raid/rig.hpp"
#include "workloads/harness.hpp"

namespace csar::wl {

struct TraceOp {
  enum class Kind : std::uint8_t { write, read, barrier };
  Kind kind = Kind::write;
  std::uint32_t client = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

class Trace {
 public:
  void add_write(std::uint32_t client, std::uint64_t off, std::uint64_t len) {
    ops_.push_back({TraceOp::Kind::write, client, off, len});
  }
  void add_read(std::uint32_t client, std::uint64_t off, std::uint64_t len) {
    ops_.push_back({TraceOp::Kind::read, client, off, len});
  }
  void add_barrier() { ops_.push_back({TraceOp::Kind::barrier, 0, 0, 0}); }

  const std::vector<TraceOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }

  /// Number of distinct clients referenced (max client index + 1).
  std::uint32_t nclients() const;

  /// Total bytes written / read.
  std::uint64_t bytes_written() const;
  std::uint64_t bytes_read() const;

  /// Highest offset touched (the file size a replay needs).
  std::uint64_t extent() const;

  /// Request-size histogram summary, the paper's characterization style:
  /// fraction of requests strictly below `threshold` bytes.
  double fraction_below(std::uint64_t threshold) const;

  // --- text serialization ---
  std::string serialize() const;
  static Result<Trace> parse(const std::string& text);

 private:
  std::vector<TraceOp> ops_;
};

/// Replay a trace on a rig: ops of each client run in order on that
/// client's CsarFs; different clients run concurrently; barriers
/// synchronize all of them. Returns the measured result.
sim::Task<WorkloadResult> replay(raid::Rig& rig, const Trace& trace,
                                 std::uint32_t stripe_unit);

/// Synthesize a trace from one of the paper's application characterizations
/// without running a simulation (deterministic in `seed`): a FLASH-like
/// mixed-size stream for `nprocs` clients.
Trace synthesize_flash_trace(std::uint32_t nprocs, std::uint64_t total_bytes,
                             double small_fraction, std::uint64_t seed);

}  // namespace csar::wl
