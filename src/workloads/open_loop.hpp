// Open-loop traffic generation for simulator scaling runs.
//
// Unlike the paper-reproduction workloads (closed loops: each client issues
// the next request only when the previous one finishes), an OpenLoopSource
// fires requests on a seeded arrival process regardless of completions —
// the standard model for "offered load" experiments, and the shape of
// traffic that actually stresses the simulator's event queue: tens of
// thousands of concurrent timers, cancellations and channel hand-offs.
//
// Determinism: every random draw flows from params.seed through split
// per-tenant streams, arrivals are scheduled in integer nanoseconds, and the
// returned fingerprint folds every completion (tenant, time, bytes) in
// completion order — two runs with equal params must return equal
// fingerprints bit for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "raid/rig.hpp"
#include "sim/task.hpp"

namespace csar::wl {

enum class Arrivals {
  poisson,  ///< exponential interarrival gaps
  pareto,   ///< bounded-Pareto gaps (heavy tail, same mean)
};

struct OpenLoopParams {
  std::uint32_t stripe_unit = 64 * 1024;
  std::uint32_t ntenants = 16;
  /// Aggregate offered request rate across all tenants (requests per
  /// simulated second), split between tenants by the Zipf skew below.
  double total_rate = 2000.0;
  Arrivals arrivals = Arrivals::poisson;
  /// Shape for Arrivals::pareto; must be > 1 so the mean exists. Gaps are
  /// capped at 50x the mean to keep the tail bounded.
  double pareto_alpha = 1.5;
  /// Zipf exponent for the per-tenant rate split: tenant i carries weight
  /// 1/(i+1)^skew. 0 = uniform.
  double zipf_skew = 0.8;
  /// Request payload in bytes (write size; reads use the same size).
  std::uint64_t request_bytes = 64 * 1024;
  /// Fraction of requests that are reads (of previously written data).
  double read_fraction = 0.3;
  /// Per-tenant concurrent-request cap. An arrival finding the tenant at
  /// the cap is shed and counted — open-loop semantics: the arrival clock
  /// keeps running, modelling overload instead of silently back-pressuring.
  std::uint32_t max_outstanding = 8;
  /// Logical extent of each tenant's file; write offsets are drawn
  /// uniformly from it (stripe-unit aligned).
  std::uint64_t file_extent = 8ull << 20;
  /// Simulated run length; arrivals stop after this, then in-flight
  /// requests drain.
  sim::Duration duration = sim::sec(2);
  std::uint64_t seed = 0xC5A20123ULL;
  /// Rotate each tenant file's placement base across the servers (tenant i
  /// gets base i mod nservers) instead of basing every layout at server 0.
  /// Spreads the tenants' primary placement groups across failure domains —
  /// the fleet layer keys a file's rgroup off its base.
  bool rotate_base = false;
  /// Synchronous hook invoked right after each tenant file is created
  /// (tenant id, manager path, open handle, logical extent). The fleet
  /// controller registers files here; must not block.
  std::function<void(std::uint32_t, const std::string&, const pvfs::OpenFile&,
                     std::uint64_t)>
      on_file_created;
};

struct OpenLoopStats {
  std::uint64_t arrivals = 0;    ///< requests the arrival process generated
  std::uint64_t completed = 0;   ///< requests that finished OK
  std::uint64_t failed = 0;      ///< requests that returned an error
  std::uint64_t shed = 0;        ///< arrivals dropped at the admission cap
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  sim::Duration latency_sum = 0;  ///< issue -> completion, completed reqs
  sim::Duration latency_max = 0;
  /// Bucketed percentiles over completed-request latency (obs::Histogram
  /// with the standard latency bounds; deterministic, bucket upper bounds).
  sim::Duration latency_p50 = 0;
  sim::Duration latency_p99 = 0;
  sim::Duration elapsed = 0;      ///< start -> last completion drained
  /// FNV-1a fold of every completion (tenant, completion time, bytes) in
  /// completion order; equal-params runs must produce equal values.
  std::uint64_t fingerprint = 0;
};

/// Drive `params.ntenants` open-loop tenants against the rig (tenants map
/// onto the rig's clients round-robin; each tenant owns one file). Returns
/// once the arrival window closed and every admitted request completed.
sim::Task<OpenLoopStats> run_open_loop(raid::Rig& rig,
                                       const OpenLoopParams& params);

}  // namespace csar::wl
