#include "workloads/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/sync.hpp"

namespace csar::wl {

std::uint32_t Trace::nclients() const {
  std::uint32_t n = 0;
  for (const auto& op : ops_) {
    if (op.kind != TraceOp::Kind::barrier) n = std::max(n, op.client + 1);
  }
  return n;
}

std::uint64_t Trace::bytes_written() const {
  std::uint64_t sum = 0;
  for (const auto& op : ops_) {
    if (op.kind == TraceOp::Kind::write) sum += op.length;
  }
  return sum;
}

std::uint64_t Trace::bytes_read() const {
  std::uint64_t sum = 0;
  for (const auto& op : ops_) {
    if (op.kind == TraceOp::Kind::read) sum += op.length;
  }
  return sum;
}

std::uint64_t Trace::extent() const {
  std::uint64_t end = 0;
  for (const auto& op : ops_) {
    if (op.kind != TraceOp::Kind::barrier) {
      end = std::max(end, op.offset + op.length);
    }
  }
  return end;
}

double Trace::fraction_below(std::uint64_t threshold) const {
  std::uint64_t total = 0;
  std::uint64_t below = 0;
  for (const auto& op : ops_) {
    if (op.kind == TraceOp::Kind::barrier) continue;
    ++total;
    if (op.length < threshold) ++below;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(below) / static_cast<double>(total);
}

std::string Trace::serialize() const {
  std::string out;
  out += "# CSAR request trace v1\n";
  char line[96];
  for (const auto& op : ops_) {
    switch (op.kind) {
      case TraceOp::Kind::write:
      case TraceOp::Kind::read:
        std::snprintf(line, sizeof(line), "%c %u %llu %llu\n",
                      op.kind == TraceOp::Kind::write ? 'W' : 'R', op.client,
                      static_cast<unsigned long long>(op.offset),
                      static_cast<unsigned long long>(op.length));
        out += line;
        break;
      case TraceOp::Kind::barrier:
        out += "B\n";
        break;
    }
  }
  return out;
}

Result<Trace> Trace::parse(const std::string& text) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == 'B') {
      trace.add_barrier();
      continue;
    }
    char kind = 0;
    unsigned client = 0;
    unsigned long long off = 0;
    unsigned long long len = 0;
    if (std::sscanf(line.c_str(), "%c %u %llu %llu", &kind, &client, &off,
                    &len) != 4 ||
        (kind != 'W' && kind != 'R')) {
      return Error{Errc::invalid_argument,
                   "trace parse error at line " + std::to_string(lineno)};
    }
    if (kind == 'W') {
      trace.add_write(client, off, len);
    } else {
      trace.add_read(client, off, len);
    }
  }
  return trace;
}

sim::Task<WorkloadResult> replay(raid::Rig& rig, const Trace& trace,
                                 std::uint32_t stripe_unit) {
  WorkloadResult res;
  const std::uint32_t n = trace.nclients();
  if (n == 0) co_return res;
  assert(rig.p.nclients >= n && "rig needs a client per trace client");
  auto f = co_await rig.client_fs(0).create(
      "trace-" + std::to_string(rig.manager->file_count()),
      rig.layout(stripe_unit));
  assert(f.ok());
  const pvfs::OpenFile file = *f;

  // Pre-split the trace into per-client op sequences with barrier markers.
  // Barriers are global: every client participates in each one.
  std::uint32_t barriers = 0;
  for (const auto& op : trace.ops()) {
    if (op.kind == TraceOp::Kind::barrier) ++barriers;
  }
  sim::Barrier barrier(rig.sim, n);
  (void)barriers;

  const sim::Time t0 = rig.sim.now();
  co_await run_clients(rig, n, [&](std::uint32_t c) -> sim::Task<void> {
    return [](raid::Rig& r, pvfs::OpenFile fl, const Trace* tr,
              std::uint32_t client, sim::Barrier* bar) -> sim::Task<void> {
      for (const auto& op : tr->ops()) {
        switch (op.kind) {
          case TraceOp::Kind::barrier:
            co_await bar->arrive_and_wait();
            break;
          case TraceOp::Kind::write:
            if (op.client == client) {
              auto wr = co_await r.client_fs(client).write(
                  fl, op.offset, Buffer::phantom(op.length));
              assert(wr.ok());
              (void)wr;
            }
            break;
          case TraceOp::Kind::read:
            if (op.client == client) {
              auto rd = co_await r.client_fs(client).read(fl, op.offset,
                                                          op.length);
              assert(rd.ok());
              (void)rd;
            }
            break;
        }
      }
    }(rig, file, &trace, c, &barrier);
  });
  res.bytes_written = trace.bytes_written();
  res.bytes_read = trace.bytes_read();
  res.write_time = rig.sim.now() - t0;
  res.read_time = res.write_time;
  co_return res;
}

Trace synthesize_flash_trace(std::uint32_t nprocs, std::uint64_t total_bytes,
                             double small_fraction, std::uint64_t seed) {
  Trace trace;
  const std::uint64_t quota = total_bytes / nprocs;
  constexpr std::uint64_t kMetaArea = 256 * 1024;
  for (std::uint32_t proc = 0; proc < nprocs; ++proc) {
    Rng rng(seed * 1000 + proc);
    const std::uint64_t region = static_cast<std::uint64_t>(proc) * quota;
    std::uint64_t meta_off = region;
    std::uint64_t data_off = align_up(region + kMetaArea, 64 * 1024);
    const std::uint64_t end = region + quota;
    while (data_off < end) {
      if (rng.chance(small_fraction) &&
          meta_off + 2048 < region + kMetaArea) {
        const std::uint64_t len = rng.range(256, 2048);
        trace.add_write(proc, meta_off, len);
        meta_off += len;
      } else {
        const std::uint64_t len = std::min<std::uint64_t>(
            rng.range(7, 18) * 16 * 1024, end - data_off);
        trace.add_write(proc, data_off, len);
        data_off += len;
      }
    }
  }
  return trace;
}

}  // namespace csar::wl
