#include "workloads/workloads.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "kmod/mounted_client.hpp"

namespace csar::wl {

namespace {

/// Unique file names per run so repeated workloads on one rig don't collide.
std::string fresh_name(raid::Rig& rig, const char* prefix) {
  return std::string(prefix) + "-" +
         std::to_string(rig.manager->file_count());
}

}  // namespace

sim::Task<WorkloadResult> full_stripe_write(raid::Rig& rig, MicroParams p) {
  auto& fs = rig.client_fs(0);
  auto f = co_await fs.create(fresh_name(rig, "fsw"), rig.layout(p.stripe_unit));
  assert(f.ok());
  // With a single server there are no parity groups; a "stripe" degenerates
  // to one unit (RAID0/RAID1 still run there in Figure 4a).
  const std::uint64_t w = f->layout.n() >= 2 ? f->layout.stripe_width()
                                             : f->layout.su();
  const std::uint64_t chunk = w * p.stripes_per_write;
  const std::uint64_t total = align_down(p.total_bytes, chunk);
  WorkloadResult res;
  const sim::Time t0 = rig.sim.now();
  sim::Semaphore window(rig.sim, std::max<std::uint32_t>(1, p.window));
  sim::WaitGroup wg(rig.sim);
  for (std::uint64_t off = 0; off < total; off += chunk) {
    co_await window.acquire();
    wg.add();
    rig.sim.spawn([](raid::CsarFs& cfs, pvfs::OpenFile fl, std::uint64_t o,
                     std::uint64_t len, sim::Semaphore* sem,
                     sim::WaitGroup* done) -> sim::Task<void> {
      auto wr = co_await cfs.write(fl, o, Buffer::phantom(len));
      assert(wr.ok());
      (void)wr;
      sem->release();
      done->done();
    }(fs, *f, off, chunk, &window, &wg));
  }
  co_await wg.wait();
  res.bytes_written = total;
  res.write_time = rig.sim.now() - t0;
  co_return res;
}

sim::Task<WorkloadResult> small_block_write(raid::Rig& rig, MicroParams p) {
  auto& fs = rig.client_fs(0);
  auto f = co_await fs.create(fresh_name(rig, "sbw"), rig.layout(p.stripe_unit));
  assert(f.ok());
  const std::uint64_t total = align_down(p.total_bytes, p.stripe_unit);
  // Create the file first; its contents stay in the server caches, which is
  // what makes RAID5's pre-reads cache hits in Figure 4(b).
  auto seed = co_await fs.write(*f, 0, Buffer::phantom(total));
  assert(seed.ok());
  (void)seed;
  WorkloadResult res;
  const sim::Time t0 = rig.sim.now();
  for (std::uint64_t off = 0; off < total; off += p.stripe_unit) {
    auto wr = co_await fs.write(*f, off, Buffer::phantom(p.stripe_unit));
    assert(wr.ok());
    (void)wr;
  }
  res.bytes_written = total;
  res.write_time = rig.sim.now() - t0;
  co_return res;
}

sim::Task<WorkloadResult> stripe_contention(raid::Rig& rig,
                                            ContentionParams p) {
  assert(rig.p.nclients >= p.nclients);
  assert(rig.p.nservers >= 2 &&
         p.nclients <= rig.p.nservers - 1 && "one client per data block");
  auto f = co_await rig.client_fs(0).create(fresh_name(rig, "cont"),
                                            rig.layout(p.stripe_unit));
  assert(f.ok());
  const pvfs::OpenFile file = *f;
  WorkloadResult res;
  const sim::Time t0 = rig.sim.now();
  co_await run_clients(
      rig, p.nclients, [&](std::uint32_t c) -> sim::Task<void> {
        return [](raid::Rig& r, pvfs::OpenFile fl, std::uint32_t client,
                  ContentionParams prm) -> sim::Task<void> {
          for (std::uint32_t round = 0; round < prm.rounds; ++round) {
            auto wr = co_await r.client_fs(client).write(
                fl, static_cast<std::uint64_t>(client) * prm.stripe_unit,
                Buffer::phantom(prm.stripe_unit));
            assert(wr.ok());
            (void)wr;
          }
        }(rig, file, c, p);
      });
  res.bytes_written =
      static_cast<std::uint64_t>(p.nclients) * p.rounds * p.stripe_unit;
  res.write_time = rig.sim.now() - t0;
  co_return res;
}

sim::Task<WorkloadResult> romio_perf(raid::Rig& rig, RomioParams p) {
  assert(rig.p.nclients >= p.nclients);
  auto f = co_await rig.client_fs(0).create(fresh_name(rig, "perf"),
                                            rig.layout(p.stripe_unit));
  assert(f.ok());
  const pvfs::OpenFile file = *f;
  const std::uint64_t extent = static_cast<std::uint64_t>(p.nclients) *
                               p.rounds * p.buffer_bytes;
  if (p.on_create) p.on_create(file, extent);
  WorkloadResult res;

  // Write phase: each client writes its buffer at rank*size (per round);
  // the paper reports the bandwidth *after* the flush to disk.
  const sim::Time w0 = rig.sim.now();
  co_await run_clients(
      rig, p.nclients, [&](std::uint32_t c) -> sim::Task<void> {
        return [](raid::Rig& r, pvfs::OpenFile fl, std::uint32_t client,
                  RomioParams prm, std::uint64_t* failed) -> sim::Task<void> {
          for (std::uint32_t round = 0; round < prm.rounds; ++round) {
            const std::uint64_t off =
                (static_cast<std::uint64_t>(round) * prm.nclients + client) *
                prm.buffer_bytes;
            auto wr = co_await r.client_fs(client).write(
                fl, off, Buffer::phantom(prm.buffer_bytes));
            if (!wr.ok()) {
              assert(prm.tolerate_faults);
              ++*failed;
            }
          }
        }(rig, file, c, p, &res.ops_failed);
      });
  auto fl = co_await rig.client_fs(0).flush(file);
  if (!fl.ok()) {
    assert(p.tolerate_faults);
    ++res.ops_failed;
  }
  res.bytes_written = extent;
  res.write_time = rig.sim.now() - w0;

  // Read phase.
  const sim::Time r0 = rig.sim.now();
  co_await run_clients(
      rig, p.nclients, [&](std::uint32_t c) -> sim::Task<void> {
        return [](raid::Rig& r, pvfs::OpenFile fl2, std::uint32_t client,
                  RomioParams prm, std::uint64_t* failed) -> sim::Task<void> {
          for (std::uint32_t round = 0; round < prm.rounds; ++round) {
            const std::uint64_t off =
                (static_cast<std::uint64_t>(round) * prm.nclients + client) *
                prm.buffer_bytes;
            auto rd = co_await r.client_fs(client).read(fl2, off,
                                                        prm.buffer_bytes);
            if (!rd.ok()) {
              assert(prm.tolerate_faults);
              ++*failed;
            }
          }
        }(rig, file, c, p, &res.ops_failed);
      });
  res.bytes_read = res.bytes_written;
  res.read_time = rig.sim.now() - r0;
  co_return res;
}

std::uint64_t btio_total_bytes(BtioClass cls) {
  switch (cls) {
    case BtioClass::A:
      return 419 * MB;
    case BtioClass::B:
      return 1698 * MB;
    case BtioClass::C:
      return 6802 * MB;
  }
  return 0;
}

const char* btio_class_name(BtioClass cls) {
  switch (cls) {
    case BtioClass::A:
      return "A";
    case BtioClass::B:
      return "B";
    case BtioClass::C:
      return "C";
  }
  return "?";
}

namespace {

/// One BTIO output pass: `steps` collective appends; in each step proc p
/// writes `chunk` bytes at step*nprocs*chunk + p*chunk + skew. The constant
/// skew keeps every request unaligned with the stripe grid, which is what
/// produces the paper's one-or-two partial stripes per request.
sim::Task<void> btio_pass(raid::Rig& rig, const pvfs::OpenFile& file,
                          const BtioParams& p, std::uint64_t chunk,
                          std::uint32_t steps, std::uint64_t skew,
                          std::uint64_t* failed) {
  sim::Barrier barrier(rig.sim, p.nprocs);
  co_await run_clients(
      rig, p.nprocs, [&](std::uint32_t c) -> sim::Task<void> {
        return [](raid::Rig& r, pvfs::OpenFile fl, std::uint32_t proc,
                  BtioParams prm, std::uint64_t ch, std::uint32_t st,
                  std::uint64_t sk, sim::Barrier* bar,
                  std::uint64_t* fail) -> sim::Task<void> {
          for (std::uint32_t step = 0; step < st; ++step) {
            const std::uint64_t off =
                (static_cast<std::uint64_t>(step) * prm.nprocs + proc) * ch +
                sk;
            auto wr = co_await r.client_fs(proc).write(fl, off,
                                                       Buffer::phantom(ch));
            if (!wr.ok()) {
              assert(prm.tolerate_faults);
              ++*fail;
            }
            // Solution checkpointing is collective: synchronize per step.
            co_await bar->arrive_and_wait();
          }
        }(rig, file, c, p, chunk, steps, skew, &barrier, failed);
      });
}

}  // namespace

sim::Task<WorkloadResult> btio(raid::Rig& rig, BtioParams p) {
  assert(rig.p.nclients >= p.nprocs);
  auto f = co_await rig.client_fs(0).create(fresh_name(rig, "btio"),
                                            rig.layout(p.stripe_unit));
  assert(f.ok());
  const pvfs::OpenFile file = *f;
  const std::uint64_t total = btio_total_bytes(p.cls);
  // Aim for the ~4 MB requests ROMIO's collective buffering produces.
  const std::uint32_t steps = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             total / (static_cast<std::uint64_t>(p.nprocs) * (4ull << 20))));
  const std::uint64_t chunk = total / (static_cast<std::uint64_t>(p.nprocs) *
                                       steps);
  const std::uint64_t skew = 1711;  // deliberate stripe misalignment
  if (p.on_create) {
    p.on_create(file,
                static_cast<std::uint64_t>(chunk) * p.nprocs * steps + skew);
  }

  WorkloadResult res;
  if (p.overwrite) {
    // Case 2 (§6.5): the file exists and its contents have been removed
    // from the server caches.
    co_await btio_pass(rig, file, p, chunk, steps, skew, &res.ops_failed);
    auto fl = co_await rig.client_fs(0).flush(file);
    if (!fl.ok()) {
      assert(p.tolerate_faults);
      ++res.ops_failed;
    }
    rig.drop_all_caches();
  }
  const sim::Time t0 = rig.sim.now();
  co_await btio_pass(rig, file, p, chunk, steps, skew, &res.ops_failed);
  res.bytes_written =
      static_cast<std::uint64_t>(chunk) * p.nprocs * steps;
  res.write_time = rig.sim.now() - t0;
  co_return res;
}

sim::Task<WorkloadResult> flash_io(raid::Rig& rig, FlashParams p) {
  assert(rig.p.nclients >= p.nprocs);
  auto f = co_await rig.client_fs(0).create(fresh_name(rig, "flash"),
                                            rig.layout(p.stripe_unit));
  assert(f.ok());
  const pvfs::OpenFile file = *f;
  // Table 2 totals: 45 MB at 4 procs, 235 MB at 24; small-request fraction
  // 46% and 37% respectively. Interpolate for other counts.
  const std::uint64_t total =
      p.nprocs <= 4 ? 45 * MB
                    : (p.nprocs >= 24 ? 235 * MB
                                      : 45 * MB + (235 - 45) * MB *
                                                      (p.nprocs - 4) / 20);
  const double small_fraction = p.nprocs <= 4 ? 0.46 : 0.37;
  const std::uint64_t quota = total / p.nprocs;

  WorkloadResult res;
  const sim::Time t0 = rig.sim.now();
  co_await run_clients(
      rig, p.nprocs, [&](std::uint32_t c) -> sim::Task<void> {
        return [](raid::Rig& r, pvfs::OpenFile fl, std::uint32_t proc,
                  FlashParams prm, std::uint64_t q,
                  double small_frac) -> sim::Task<void> {
          // Each proc writes its own record region of the shared HDF5 file:
          // many sub-2KB attribute/metadata records (written into a small
          // header area) plus 100-300 KB data blocks that HDF5 chunking
          // keeps on a 64 KiB-aligned grid.
          Rng rng(prm.seed * 1000 + proc);
          const std::uint64_t region = static_cast<std::uint64_t>(proc) * q;
          constexpr std::uint64_t kMetaArea = 256 * 1024;
          std::uint64_t meta_off = region;
          std::uint64_t data_off = align_up(region + kMetaArea, 64 * 1024);
          const std::uint64_t end = region + q;
          std::uint64_t written = 0;
          while (data_off < end) {
            std::uint64_t len;
            std::uint64_t off;
            if (rng.chance(small_frac) &&
                meta_off + 2048 < region + kMetaArea) {
              len = rng.range(256, 2048);
              off = meta_off;
              meta_off += len;
            } else {
              // 100-300 KB data blocks on the HDF5 chunk grid.
              len = std::min<std::uint64_t>(
                  rng.range(7, 18) * 16 * 1024, end - data_off);
              off = data_off;
              data_off += len;
            }
            auto wr = co_await r.client_fs(proc).write(fl, off,
                                                       Buffer::phantom(len));
            assert(wr.ok());
            (void)wr;
            written += len;
          }
        }(rig, file, c, p, quota, small_fraction);
      });
  // Slightly under the nominal quota: the metadata header area is sparse.
  res.bytes_written = quota * p.nprocs;
  res.write_time = rig.sim.now() - t0;
  co_return res;
}

sim::Task<WorkloadResult> cactus_benchio(raid::Rig& rig, CactusParams p) {
  assert(rig.p.nclients >= p.nclients);
  auto f = co_await rig.client_fs(0).create(fresh_name(rig, "cactus"),
                                            rig.layout(p.stripe_unit));
  assert(f.ok());
  const pvfs::OpenFile file = *f;
  const std::uint64_t total = 2949 * MB;  // Table 2
  const std::uint64_t per_client = total / p.nclients;
  const std::uint64_t chunk = 4ull << 20;

  WorkloadResult res;
  const sim::Time t0 = rig.sim.now();
  co_await run_clients(
      rig, p.nclients, [&](std::uint32_t c) -> sim::Task<void> {
        return [](raid::Rig& r, pvfs::OpenFile fl, std::uint32_t client,
                  std::uint64_t quota, std::uint64_t ch) -> sim::Task<void> {
          std::uint64_t off = static_cast<std::uint64_t>(client) * quota;
          const std::uint64_t end = off + quota;
          while (off < end) {
            const std::uint64_t len = std::min(ch, end - off);
            auto wr = co_await r.client_fs(client).write(
                fl, off, Buffer::phantom(len));
            assert(wr.ok());
            (void)wr;
            off += len;
          }
        }(rig, file, c, per_client, chunk);
      });
  res.bytes_written = per_client * p.nclients;
  res.write_time = rig.sim.now() - t0;
  co_return res;
}

sim::Task<WorkloadResult> hartree_fock(raid::Rig& rig, HartreeFockParams p) {
  auto& fs = rig.client_fs(0);
  auto f = co_await fs.create(fresh_name(rig, "hf"),
                              rig.layout(p.stripe_unit));
  assert(f.ok());
  const std::uint64_t total = 149 * MB;  // Table 2 (argos output)
  const std::uint64_t chunk = 16 * 1024;

  WorkloadResult res;
  const sim::Time t0 = rig.sim.now();
  // The application writes through the mounted kernel module: each request
  // pays the fixed kernel cost on its critical path while the PVFS write
  // proceeds write-behind (see kmod::MountedClient).
  kmod::MountParams mp;
  mp.per_request = p.kernel_module_overhead;
  mp.write_behind = p.write_behind;
  kmod::MountedClient mount(rig, fs, *f, mp);
  for (std::uint64_t off = 0; off < total; off += chunk) {
    const std::uint64_t len = std::min(chunk, total - off);
    auto wr = co_await mount.write(off, Buffer::phantom(len));
    assert(wr.ok());
    (void)wr;
  }
  // argos closes the file without O_SYNC: drain the write-behind queue but
  // leave the server caches dirty, as the paper's timed runs did.
  co_await mount.drain();
  assert(!mount.pending_error());
  res.bytes_written = total;
  res.write_time = rig.sim.now() - t0;
  co_return res;
}

}  // namespace csar::wl
