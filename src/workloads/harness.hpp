// Harness helpers shared by the workload generators and bench binaries.
#pragma once

#include <cassert>
#include <functional>
#include <optional>
#include <utility>

#include "raid/rig.hpp"
#include "sim/sync.hpp"

namespace csar::wl {

/// Run a task to completion on the rig's simulation and return its value
/// (blocking helper for bench/example main()s).
template <typename T>
T run_on(raid::Rig& rig, sim::Task<T> t) {
  std::optional<T> out;
  rig.sim.spawn([](sim::Task<T> task, std::optional<T>* o) -> sim::Task<void> {
    o->emplace(co_await std::move(task));
  }(std::move(t), &out));
  rig.sim.run();
  assert(out.has_value() && "workload deadlocked");
  return std::move(*out);
}

/// Aggregate outcome of one workload run.
struct WorkloadResult {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  sim::Duration write_time = 0;
  sim::Duration read_time = 0;
  /// Ops that failed despite retry/failover; only populated by workloads
  /// run with tolerate_faults (they assert otherwise).
  std::uint64_t ops_failed = 0;

  double write_bw() const {
    return write_time == 0
               ? 0.0
               : static_cast<double>(bytes_written) /
                     sim::to_seconds(write_time);
  }
  double read_bw() const {
    return read_time == 0
               ? 0.0
               : static_cast<double>(bytes_read) / sim::to_seconds(read_time);
  }
};

/// Spawn `nclients` concurrent client coroutines and wait for all of them.
/// `fn(client)` produces each client's task.
inline sim::Task<void> run_clients(
    raid::Rig& rig, std::uint32_t nclients,
    const std::function<sim::Task<void>(std::uint32_t)>& fn) {
  sim::WaitGroup wg(rig.sim);
  wg.add(nclients);
  for (std::uint32_t c = 0; c < nclients; ++c) {
    rig.sim.spawn([](sim::Task<void> body,
                     sim::WaitGroup* done) -> sim::Task<void> {
      co_await std::move(body);
      done->done();
    }(fn(c), &wg));
  }
  co_await wg.wait();
}

}  // namespace csar::wl
