// Workload generators reproducing the paper's evaluation (§6).
//
// Each generator creates its own file(s) on a Rig, drives the configured
// number of client processes with the access pattern the paper describes,
// and returns measured simulated-time bandwidths. Payloads are phantom
// buffers: sizes, extents and all timing are exact, but no bytes are
// materialized (BTIO Class C writes 6.6 GB).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "raid/rig.hpp"
#include "sim/task.hpp"
#include "workloads/harness.hpp"

namespace csar::wl {

// ---------------------------------------------------------------- §6.2/§6.3

struct MicroParams {
  std::uint32_t stripe_unit = 64 * 1024;
  std::uint64_t total_bytes = 64ull << 20;
  /// full_stripe_write: chunk = this many full stripes per write.
  std::uint32_t stripes_per_write = 4;
  /// full_stripe_write: writes kept in flight. PVFS clients stream data
  /// continuously; a window > 1 models that pipelining (the client link and
  /// per-server ingest then become the steady-state bottlenecks, which is
  /// what shapes Figure 4a).
  std::uint32_t window = 4;
};

/// §6.2: a single client writes chunks that are an integral number of
/// stripes — the best case for RAID5, where Hybrid == RAID5.
sim::Task<WorkloadResult> full_stripe_write(raid::Rig& rig, MicroParams p);

/// §6.3: a single client first creates a large file, then overwrites it in
/// one-block (one stripe-unit) chunks — the RAID5 small-write worst case.
/// The pre-created file is cached at the servers, as in the paper.
sim::Task<WorkloadResult> small_block_write(raid::Rig& rig, MicroParams p);

// -------------------------------------------------------------------- §5.1

struct ContentionParams {
  std::uint32_t stripe_unit = 64 * 1024;
  std::uint32_t nclients = 5;  ///< one per data block of the stripe
  std::uint32_t rounds = 40;
};

/// Figure 3: `nclients` clients concurrently rewrite distinct blocks of the
/// *same* stripe, round after round — maximal parity-lock contention.
sim::Task<WorkloadResult> stripe_contention(raid::Rig& rig,
                                            ContentionParams p);

// -------------------------------------------------------------------- §6.4

struct RomioParams {
  std::uint32_t stripe_unit = 64 * 1024;
  std::uint32_t nclients = 4;
  std::uint64_t buffer_bytes = 4ull << 20;  ///< perf default: 4 MB
  std::uint32_t rounds = 8;
  /// Called with the created file and the workload's logical extent before
  /// any IO — lets fault harnesses register the file with a
  /// RebuildCoordinator (and injectors) while the workload owns creation.
  std::function<void(const pvfs::OpenFile&, std::uint64_t)> on_create;
  /// Keep going when an op fails (fault-injection runs): failures are
  /// counted in WorkloadResult::ops_failed instead of asserting.
  bool tolerate_faults = false;
};

/// ROMIO `perf`: every client writes `buffer_bytes` at offset
/// rank*buffer_bytes (per round), then reads it back. As in the paper, the
/// reported write bandwidth includes the flush to disk.
sim::Task<WorkloadResult> romio_perf(raid::Rig& rig, RomioParams p);

// -------------------------------------------------------------------- §6.5

enum class BtioClass { A, B, C };

/// Total output sizes from Table 2's RAID0 column (decimal MB).
std::uint64_t btio_total_bytes(BtioClass cls);
const char* btio_class_name(BtioClass cls);

struct BtioParams {
  BtioClass cls = BtioClass::B;
  std::uint32_t nprocs = 4;
  std::uint32_t stripe_unit = 64 * 1024;
  /// Overwrite mode: the file already exists and the server caches are cold
  /// (the paper's case 2).
  bool overwrite = false;
  /// See RomioParams::on_create.
  std::function<void(const pvfs::OpenFile&, std::uint64_t)> on_create;
  /// See RomioParams::tolerate_faults.
  bool tolerate_faults = false;
};

/// NAS BTIO (full MPI-IO): the procs collectively append ~4 MB requests
/// whose offsets are not stripe aligned, so nearly every request produces
/// one or two partial-stripe writes (§6.5).
sim::Task<WorkloadResult> btio(raid::Rig& rig, BtioParams p);

// -------------------------------------------------------------------- §6.6

struct FlashParams {
  std::uint32_t nprocs = 4;
  std::uint32_t stripe_unit = 16 * 1024;
  std::uint64_t seed = 2003;
};

/// FLASH I/O: checkpoint + plotfiles through HDF5. At the PVFS level the
/// paper sees a large number of requests under 2 KB (46% at 4 procs, 37% at
/// 24) with the rest in the 100–300 KB range; totals from Table 2.
sim::Task<WorkloadResult> flash_io(raid::Rig& rig, FlashParams p);

struct CactusParams {
  std::uint32_t nclients = 8;
  std::uint32_t stripe_unit = 64 * 1024;
};

/// Cactus/BenchIO: eight nodes each write ~400 MB of checkpoint data in
/// 4 MB chunks (2949 MB total, Table 2).
sim::Task<WorkloadResult> cactus_benchio(raid::Rig& rig, CactusParams p);

struct HartreeFockParams {
  std::uint32_t stripe_unit = 16 * 1024;
  /// Per-request cost of going through the PVFS kernel module (VFS entry,
  /// user/kernel copies, pvfsd handoff); the paper attributes the leveled
  /// Figure 8 results to exactly this cost dominating the scheme
  /// differences.
  sim::Duration kernel_module_overhead = sim::ms(1) + sim::us(200);
  /// Write-behind depth: the kernel module acknowledges the write once it
  /// is staged and issues the PVFS request asynchronously, keeping up to
  /// this many in flight. The PVFS layer therefore still sees 16 KB
  /// requests (hence Table 2's Hybrid = RAID1-like 2x storage for HF),
  /// while the application's execution time is dominated by the per-request
  /// kernel cost (hence Figure 8's flat profile).
  std::uint32_t write_behind = 16;
};

/// Hartree-Fock (`argos` phase): a sequential application writing ~149 MB in
/// 16 KB requests through the mounted PVFS kernel module.
sim::Task<WorkloadResult> hartree_fock(raid::Rig& rig, HartreeFockParams p);

}  // namespace csar::wl
