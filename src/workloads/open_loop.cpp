#include "workloads/open_loop.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sim/sync.hpp"

namespace csar::wl {

namespace {

struct TenantCtx {
  pvfs::OpenFile file;
  double rate = 0;             ///< requests per simulated second
  std::uint32_t outstanding = 0;
  std::uint64_t written_hwm = 0;  ///< bytes written so far (read ceiling)
  Rng rng{0};
};

/// FNV-1a fold, one 64-bit word at a time.
void fold(std::uint64_t& h, std::uint64_t v) {
  if (h == 0) h = 0xCBF29CE484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
}

/// Next interarrival gap in nanoseconds (>= 1 so the clock always moves).
sim::Duration next_gap(Rng& rng, const OpenLoopParams& p, double mean_sec) {
  double gap;
  if (p.arrivals == Arrivals::poisson) {
    gap = rng.exponential(mean_sec);
  } else {
    // Bounded Pareto with shape alpha, scaled so the mean matches the
    // Poisson configuration: xm = mean * (alpha-1)/alpha, capped at 50x.
    const double alpha = std::max(1.05, p.pareto_alpha);
    const double xm = mean_sec * (alpha - 1.0) / alpha;
    gap = std::min(rng.pareto(alpha, xm), mean_sec * 50.0);
  }
  const double ns = gap * 1e9;
  return ns < 1.0 ? 1 : static_cast<sim::Duration>(ns);
}

/// One admitted request, running detached under the outstanding cap.
sim::Task<void> one_request(raid::Rig& rig, const OpenLoopParams& p,
                            TenantCtx* t, std::uint32_t tenant_id,
                            std::uint32_t client, bool is_read,
                            std::uint64_t off, OpenLoopStats* stats,
                            obs::Histogram* lat_hist, sim::WaitGroup* wg) {
  const sim::Time issued = rig.sim.now();
  bool ok;
  if (is_read) {
    auto r = co_await rig.client_fs(client).read(t->file, off,
                                                 p.request_bytes);
    ok = r.ok();
    if (ok) stats->bytes_read += p.request_bytes;
  } else {
    auto r = co_await rig.client_fs(client).write(
        t->file, off, Buffer::phantom(p.request_bytes));
    ok = r.ok();
    if (ok) {
      stats->bytes_written += p.request_bytes;
      t->written_hwm = std::max(t->written_hwm, off + p.request_bytes);
    }
  }
  const sim::Duration lat = rig.sim.now() - issued;
  if (ok) {
    ++stats->completed;
    stats->latency_sum += lat;
    stats->latency_max = std::max(stats->latency_max, lat);
    lat_hist->add(static_cast<std::uint64_t>(lat));
  } else {
    ++stats->failed;
  }
  fold(stats->fingerprint, tenant_id);
  fold(stats->fingerprint, rig.sim.now());
  fold(stats->fingerprint, ok ? p.request_bytes : 0);
  --t->outstanding;
  wg->done();
}

/// One tenant's arrival clock: sleep a gap, admit-or-shed, repeat until the
/// window closes.
sim::Task<void> tenant_loop(raid::Rig& rig, const OpenLoopParams& p,
                            TenantCtx* t, std::uint32_t tenant_id,
                            sim::Time t_end, OpenLoopStats* stats,
                            obs::Histogram* lat_hist, sim::WaitGroup* wg) {
  const std::uint32_t client =
      tenant_id % static_cast<std::uint32_t>(rig.clients.size());
  const double mean_sec = 1.0 / t->rate;
  const std::uint64_t slots =
      std::max<std::uint64_t>(1, p.file_extent / p.stripe_unit);
  for (;;) {
    co_await rig.sim.sleep(next_gap(t->rng, p, mean_sec));
    if (rig.sim.now() >= t_end) break;
    ++stats->arrivals;
    if (t->outstanding >= p.max_outstanding) {
      ++stats->shed;  // open loop: the clock keeps running regardless
      continue;
    }
    // Reads target already-written data; until something is written, every
    // arrival is a write.
    bool is_read = t->rng.chance(p.read_fraction) &&
                   t->written_hwm >= p.request_bytes;
    std::uint64_t off =
        t->rng.below(slots) * static_cast<std::uint64_t>(p.stripe_unit);
    if (is_read) {
      const std::uint64_t rslots =
          std::max<std::uint64_t>(1, t->written_hwm / p.request_bytes);
      off = t->rng.below(rslots) * p.request_bytes;
    }
    ++t->outstanding;
    wg->add();
    rig.sim.spawn(one_request(rig, p, t, tenant_id, client, is_read, off,
                              stats, lat_hist, wg));
  }
  wg->done();  // balances the add() in run_open_loop
}

}  // namespace

sim::Task<OpenLoopStats> run_open_loop(raid::Rig& rig,
                                       const OpenLoopParams& params) {
  assert(!rig.clients.empty());
  OpenLoopStats stats;
  // Zipf weights -> per-tenant rates (every tenant gets a strictly positive
  // share so its arrival clock advances).
  std::vector<double> weight(params.ntenants);
  double wsum = 0;
  for (std::uint32_t i = 0; i < params.ntenants; ++i) {
    weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), params.zipf_skew);
    wsum += weight[i];
  }

  Rng root(params.seed);
  std::vector<TenantCtx> tenants(params.ntenants);
  for (std::uint32_t i = 0; i < params.ntenants; ++i) {
    const std::string name = "ol-" + std::to_string(i);
    pvfs::StripeLayout layout = rig.layout(params.stripe_unit);
    if (params.rotate_base) layout.base = i % layout.nservers;
    auto f = co_await rig.client_fs(i % rig.clients.size())
                 .create(name, layout);
    assert(f.ok());
    tenants[i].file = *f;
    tenants[i].rate = params.total_rate * weight[i] / wsum;
    tenants[i].rng = root.split();
    if (params.on_file_created) {
      params.on_file_created(i, name, *f, params.file_extent);
    }
  }

  obs::Histogram lat_hist(obs::Histogram::latency_bounds());
  const sim::Time t0 = rig.sim.now();
  const sim::Time t_end = t0 + params.duration;
  sim::WaitGroup wg(rig.sim);
  wg.add(params.ntenants);  // one per arrival clock; requests add their own
  for (std::uint32_t i = 0; i < params.ntenants; ++i) {
    rig.sim.spawn(tenant_loop(rig, params, &tenants[i], i, t_end, &stats,
                              &lat_hist, &wg));
  }
  co_await wg.wait();
  stats.elapsed = rig.sim.now() - t0;
  stats.latency_p50 = static_cast<sim::Duration>(lat_hist.percentile(0.50));
  stats.latency_p99 = static_cast<sim::Duration>(lat_hist.percentile(0.99));
  co_return stats;
}

}  // namespace csar::wl
