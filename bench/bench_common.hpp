// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "raid/rig.hpp"
#include "report/report.hpp"
#include "workloads/harness.hpp"
#include "workloads/workloads.hpp"

namespace csar::bench {

/// A raid::Rig with environment-driven observability: set
/// CSAR_TRACE=<file.json> and/or CSAR_METRICS=<file.csv|file.json> to record
/// any bench run without touching its code. The obs wiring lives here once —
/// every bench binary (the perf figures and the faulted harness in
/// bench_fault_common.hpp) builds this instead of a bare raid::Rig. With
/// neither variable set, nothing is attached: no task observer, no tracer,
/// so event counts, fingerprints and bench numbers are exactly the bare
/// rig's.
class Rig : public raid::Rig {
 public:
  explicit Rig(const raid::RigParams& rp) : raid::Rig(rp) {
    if (!obs::kEnabled) return;
    const char* tf = std::getenv("CSAR_TRACE");
    const char* mf = std::getenv("CSAR_METRICS");
    if (tf == nullptr && mf == nullptr) return;
    if (tf != nullptr) {
      tracer_ = std::make_unique<obs::Tracer>();
      trace_path_ = tf;
    }
    if (mf != nullptr) {
      metrics_ = std::make_unique<obs::Registry>();
      metrics_path_ = mf;
    }
    set_obs(tracer_.get(), metrics_.get());
  }

  ~Rig() {
    if (!tracer_ && !metrics_) return;
    // Drain while the tracer is still alive (our members die before the
    // base), dump, then detach so the base destructor's own drain cannot
    // call into freed observers.
    stop_all();
    sim.run();
    if (metrics_) {
      export_metrics(*metrics_);
      const bool json =
          metrics_path_.size() > 5 &&
          metrics_path_.compare(metrics_path_.size() - 5, 5, ".json") == 0;
      metrics_->write_file(metrics_path_, json);
    }
    if (tracer_) tracer_->write_file(trace_path_);
    set_obs(nullptr, nullptr);
  }

 private:
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::Registry> metrics_;
  std::string trace_path_;
  std::string metrics_path_;
};

/// The scheme lineup most figures compare.
inline const std::vector<raid::Scheme>& main_schemes() {
  static const std::vector<raid::Scheme> s = {
      raid::Scheme::raid0, raid::Scheme::raid1, raid::Scheme::raid5,
      raid::Scheme::hybrid};
  return s;
}

inline raid::RigParams make_rig(raid::Scheme scheme, std::uint32_t nservers,
                                std::uint32_t nclients,
                                const hw::HwProfile& profile) {
  raid::RigParams p;
  p.scheme = scheme;
  p.nservers = nservers;
  p.nclients = nclients;
  p.profile = profile;
  return p;
}

/// "6 I/O servers, 4 clients, experimental-2003 testbed" style setup line.
inline std::string setup_line(std::uint32_t nservers, std::uint32_t nclients,
                              const char* profile_name,
                              std::uint32_t stripe_unit) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u I/O servers, %u client(s), %s profile, %s stripe unit",
                nservers, nclients, profile_name,
                format_bytes(stripe_unit).c_str());
  return buf;
}

}  // namespace csar::bench
