// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "raid/rig.hpp"
#include "report/report.hpp"
#include "workloads/harness.hpp"
#include "workloads/workloads.hpp"

namespace csar::bench {

/// The scheme lineup most figures compare.
inline const std::vector<raid::Scheme>& main_schemes() {
  static const std::vector<raid::Scheme> s = {
      raid::Scheme::raid0, raid::Scheme::raid1, raid::Scheme::raid5,
      raid::Scheme::hybrid};
  return s;
}

inline raid::RigParams make_rig(raid::Scheme scheme, std::uint32_t nservers,
                                std::uint32_t nclients,
                                const hw::HwProfile& profile) {
  raid::RigParams p;
  p.scheme = scheme;
  p.nservers = nservers;
  p.nclients = nclients;
  p.profile = profile;
  return p;
}

/// "6 I/O servers, 4 clients, experimental-2003 testbed" style setup line.
inline std::string setup_line(std::uint32_t nservers, std::uint32_t nclients,
                              const char* profile_name,
                              std::uint32_t stripe_unit) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u I/O servers, %u client(s), %s profile, %s stripe unit",
                nservers, nclients, profile_name,
                format_bytes(stripe_unit).c_str());
  return buf;
}

}  // namespace csar::bench
