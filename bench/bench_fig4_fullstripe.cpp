// Figure 4(a): bandwidth of large (integral-stripe) writes from a single
// client, versus the number of I/O servers, for RAID0/RAID1/RAID5/
// RAID5-npc/Hybrid.
#include "bench_common.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const auto profile = hw::profile_experimental2003();
  report::banner(
      "F4a", "Performance of large (full-stripe) writes — Figure 4(a)",
      bench::setup_line(7, 1, "experimental-2003", kSu) +
          ", single client writing 4-stripe chunks, 128 MiB total");
  report::expectations({
      "RAID1 plateaus by ~4 servers (2x bytes saturate the client link)",
      "RAID5 and Hybrid are indistinguishable (full stripes take the same path)",
      "RAID5 trails RAID0 by roughly the parity fraction 1/(N-1)",
      "RAID5-npc is ~8% above RAID5 (cost of computing parity)",
  });

  const std::vector<raid::Scheme> schemes = {
      raid::Scheme::raid0, raid::Scheme::raid1, raid::Scheme::raid5,
      raid::Scheme::raid5_npc, raid::Scheme::hybrid};
  TextTable t({"ioservers", "RAID0", "RAID1", "RAID5", "RAID5-npc",
               "Hybrid"});
  std::map<std::pair<std::uint32_t, raid::Scheme>, double> bw;
  for (std::uint32_t n = 1; n <= 7; ++n) {
    std::vector<std::string> row = {TextTable::num(std::uint64_t{n})};
    for (raid::Scheme s : schemes) {
      if (raid::uses_parity(s) && n < 2) {
        row.push_back("-");
        continue;
      }
      bench::Rig rig(bench::make_rig(s, n, 1, profile));
      wl::MicroParams p;
      p.stripe_unit = kSu;
      p.total_bytes = 128 * MiB;
      p.stripes_per_write = 4;
      const auto res = wl::run_on(rig, wl::full_stripe_write(rig, p));
      bw[{n, s}] = res.write_bw();
      row.push_back(report::mbps(res.write_bw()));
    }
    t.add_row(std::move(row));
  }
  report::table("single-client full-stripe write bandwidth (MB/s)", t);

  report::check("RAID1 gains <10% from 4 to 7 servers",
                bw[{7, raid::Scheme::raid1}] <
                    1.10 * bw[{4, raid::Scheme::raid1}]);
  report::check("RAID0 still rising at 7 servers",
                bw[{7, raid::Scheme::raid0}] >
                    1.15 * bw[{4, raid::Scheme::raid0}]);
  report::check("Hybrid == RAID5 at 7 servers (±2%)",
                std::abs(bw[{7, raid::Scheme::hybrid}] -
                         bw[{7, raid::Scheme::raid5}]) <
                    0.02 * bw[{7, raid::Scheme::raid5}]);
  const double npc_gain = bw[{7, raid::Scheme::raid5_npc}] /
                          bw[{7, raid::Scheme::raid5}] - 1.0;
  report::check("parity compute overhead in [2%, 15%] (paper: ~8%)",
                npc_gain > 0.02 && npc_gain < 0.15);
  std::printf("parity compute overhead at 7 servers: %.1f%%\n",
              npc_gain * 100.0);
  return report::exit_code();
}
