// Figure 4(b): bandwidth of small (one-block) writes into a preexisting,
// server-cached file, versus the number of I/O servers.
#include "bench_common.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const auto profile = hw::profile_experimental2003();
  report::banner(
      "F4b", "Performance of small (one-block) writes — Figure 4(b)",
      bench::setup_line(7, 1, "experimental-2003", kSu) +
          ", single client rewriting a cached 16 MiB file block by block");
  report::expectations({
      "RAID1 and Hybrid are identical (both just write two copies)",
      "RAID5 is clearly lower even though its pre-reads hit the server cache",
      "(at N=2 a one-block write IS a full stripe, so RAID5 matches there)",
  });

  const std::vector<raid::Scheme> schemes = {
      raid::Scheme::raid0, raid::Scheme::raid1, raid::Scheme::raid5,
      raid::Scheme::hybrid};
  TextTable t({"ioservers", "RAID0", "RAID1", "RAID5", "Hybrid"});
  std::map<std::pair<std::uint32_t, raid::Scheme>, double> bw;
  for (std::uint32_t n = 2; n <= 7; ++n) {
    std::vector<std::string> row = {TextTable::num(std::uint64_t{n})};
    for (raid::Scheme s : schemes) {
      bench::Rig rig(bench::make_rig(s, n, 1, profile));
      wl::MicroParams p;
      p.stripe_unit = kSu;
      p.total_bytes = 16 * MiB;
      const auto res = wl::run_on(rig, wl::small_block_write(rig, p));
      bw[{n, s}] = res.write_bw();
      row.push_back(report::mbps(res.write_bw()));
    }
    t.add_row(std::move(row));
  }
  report::table("single-client one-block write bandwidth (MB/s)", t);

  bool hybrid_eq_raid1 = true;
  bool raid5_below = true;
  for (std::uint32_t n = 3; n <= 7; ++n) {
    if (std::abs(bw[{n, raid::Scheme::hybrid}] -
                 bw[{n, raid::Scheme::raid1}]) >
        0.10 * bw[{n, raid::Scheme::raid1}]) {
      hybrid_eq_raid1 = false;
    }
    if (bw[{n, raid::Scheme::raid5}] >= 0.9 * bw[{n, raid::Scheme::raid1}]) {
      raid5_below = false;
    }
  }
  report::check("Hybrid == RAID1 at every server count (±10%)",
                hybrid_eq_raid1);
  report::check("RAID5 below RAID1 for N >= 3", raid5_below);
  return report::exit_code();
}
