// Figure 6: NAS BTIO Class B (1698 MB) — initial-write (a) and cold-cache
// overwrite (b) bandwidth versus process count, on the OSC-cluster profile.
#include "bench_common.hpp"
#include "bench_fault_common.hpp"
#include "raid/diagnostics.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const std::uint32_t kServers = 6;
  const auto profile = hw::profile_osc2003();
  report::banner(
      "F6", "BTIO Class B: initial write (a) and overwrite (b) — Figure 6",
      bench::setup_line(kServers, 25, "OSC-2003", kSu) +
          ", ~4 MB unaligned collective writes, 1698 MB total");
  report::expectations({
      "(a) RAID5 ~= Hybrid > RAID1 at 4 and 9 procs",
      "(a) RAID5 collapses at 25 procs: parity-lock serialization "
      "(R5 NO LOCK column isolates the locking share of the drop)",
      "(b) overwrite: RAID5 drops far below every other scheme "
      "(partial-stripe pre-reads go to disk); Hybrid stays on top",
  });

  const std::vector<raid::Scheme> schemes = {
      raid::Scheme::raid1, raid::Scheme::raid5, raid::Scheme::raid5_nolock,
      raid::Scheme::hybrid};
  const std::vector<std::uint32_t> procs = {4, 9, 16, 25};
  TextTable ta({"procs", "RAID1", "RAID5", "R5 NO LOCK", "Hybrid"});
  TextTable tb({"procs", "RAID1", "RAID5", "R5 NO LOCK", "Hybrid"});
  std::map<std::tuple<std::uint32_t, raid::Scheme, bool>, double> bw;
  for (std::uint32_t np : procs) {
    std::vector<std::string> row_a = {TextTable::num(std::uint64_t{np})};
    std::vector<std::string> row_b = {TextTable::num(std::uint64_t{np})};
    for (raid::Scheme s : schemes) {
      for (bool overwrite : {false, true}) {
        bench::Rig rig(bench::make_rig(s, kServers, np, profile));
        wl::BtioParams p;
        p.cls = wl::BtioClass::B;
        p.nprocs = np;
        p.stripe_unit = kSu;
        p.overwrite = overwrite;
        const auto res = wl::run_on(rig, wl::btio(rig, p));
        raid::maybe_print_diagnostics(rig, raid::scheme_name(s));
        bw[{np, s, overwrite}] = res.write_bw();
        (overwrite ? row_b : row_a)
            .push_back(report::mbps(res.write_bw()));
      }
    }
    ta.add_row(std::move(row_a));
    tb.add_row(std::move(row_b));
  }
  report::table("(a) initial write bandwidth (MB/s)", ta);
  report::table("(b) overwrite bandwidth, cold server caches (MB/s)", tb);

  report::check("(a) Hybrid > RAID1 at 4 procs",
                bw[{4, raid::Scheme::hybrid, false}] >
                    bw[{4, raid::Scheme::raid1, false}]);
  const double r5_drop = bw[{25, raid::Scheme::raid5, false}] /
                         bw[{4, raid::Scheme::raid5, false}];
  const double hy_drop = bw[{25, raid::Scheme::hybrid, false}] /
                         bw[{4, raid::Scheme::hybrid, false}];
  std::printf("(a) 25-proc/4-proc ratio: RAID5 %.2f, Hybrid %.2f\n", r5_drop,
              hy_drop);
  report::check("(a) RAID5 degrades more than Hybrid as procs grow",
                r5_drop < hy_drop);
  report::check("(a) locking explains most of the 25-proc RAID5 drop",
                bw[{25, raid::Scheme::raid5_nolock, false}] >
                    1.15 * bw[{25, raid::Scheme::raid5, false}]);
  bool overwrite_shape = true;
  for (std::uint32_t np : procs) {
    if (bw[{np, raid::Scheme::raid5, true}] >=
        0.7 * bw[{np, raid::Scheme::hybrid, true}]) {
      overwrite_shape = false;
    }
  }
  report::check("(b) RAID5 far below Hybrid at every proc count",
                overwrite_shape);
  report::check("(b) Hybrid best overall at 25 procs",
                bw[{25, raid::Scheme::hybrid, true}] >
                        bw[{25, raid::Scheme::raid1, true}] &&
                    bw[{25, raid::Scheme::hybrid, true}] >
                        bw[{25, raid::Scheme::raid5, true}]);

  // Faulted scenario: the 4-proc hybrid write with a transient crash whose
  // disk *survives* the restart — the coordinator fences the rejoiner and
  // delta-rebuilds only the regions degraded-written during the outage
  // instead of re-copying 1698 MB.
  report::banner("F6c", "BTIO-B through a crash + non-wipe delta rebuild",
                 bench::setup_line(kServers, 4, "OSC-2003", kSu) +
                     ", server 1 down 2 s..5 s, disk survives");
  raid::RigParams frp = bench::make_rig(raid::Scheme::hybrid, kServers, 4,
                                        profile);
  bench::arm_fault_tolerance(frp);
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.crashes.push_back({sim::sec(2), 1, sim::sec(5), /*wipe=*/false});
  const auto out = bench::run_faulted(
      frp, plan, raid::RebuildParams{},
      [&](raid::Rig& rg, raid::RebuildCoordinator& co)
          -> sim::Task<wl::WorkloadResult> {
        wl::BtioParams p;
        p.cls = wl::BtioClass::B;
        p.nprocs = 4;
        p.stripe_unit = kSu;
        p.tolerate_faults = true;
        p.on_create = [&co](const pvfs::OpenFile& f, std::uint64_t sz) {
          co.track(f, sz);
        };
        return wl::btio(rg, p);
      });
  std::printf("faulted: write %s, %llu stale bytes delta-rebuilt "
              "(vs %llu written)\n",
              report::mbps(out.result.write_bw()).c_str(),
              static_cast<unsigned long long>(out.rebuild.dirty_bytes),
              static_cast<unsigned long long>(out.result.bytes_written));
  report::check("faulted: zero failed ops through the outage",
                out.result.ops_failed == 0);
  report::check("faulted: rejoin used the delta path (no full rebuild)",
                out.rebuild.delta_rebuilds >= 1 &&
                    out.rebuild.full_rebuilds == 0 && out.all_admitted);
  return report::exit_code();
}
