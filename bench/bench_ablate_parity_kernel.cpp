// Ablation A1 (§3): "computing parity one word at a time instead of one
// byte at a time significantly improved the performance of the RAID5 and
// Hybrid schemes" — the Swift/RAID lesson the paper repeats. Measured with
// google-benchmark on the real kernels. Extended with the GF(2^8)
// multiply-accumulate rows behind the rs(k,m) paths: the scalar table walk
// vs the runtime-dispatched kernel (PSHUFB nibble tables on SSSE3/AVX2),
// plus a full rs(4,2) group encode.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/codec.hpp"
#include "common/parity.hpp"
#include "common/rng.hpp"

namespace {

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  csar::Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.below(256));
  return v;
}

void BM_XorBytes(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_bytes(n, 1);
  const auto src = random_bytes(n, 2);
  for (auto _ : state) {
    csar::xor_bytes(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_XorWordsSingle(benchmark::State& state) {
  // The pre-blocking kernel (one 64-bit word per iteration) — the bytes/s
  // delta against BM_XorWords is the 32-byte-block unroll's win.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_bytes(n, 1);
  const auto src = random_bytes(n, 2);
  for (auto _ : state) {
    csar::xor_words_single(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_XorWords(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_bytes(n, 1);
  const auto src = random_bytes(n, 2);
  for (auto _ : state) {
    csar::xor_words(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_XorWordsUnaligned(benchmark::State& state) {
  // Stripe-unit columns are rarely 8-byte aligned; the word kernel must not
  // lose its advantage on unaligned spans.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_bytes(n + 3, 1);
  const auto src = random_bytes(n + 5, 2);
  std::span<std::byte> d(dst.data() + 3, n);
  std::span<const std::byte> s(src.data() + 5, n);
  for (auto _ : state) {
    csar::xor_words(d, s);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ParityOfStripe(benchmark::State& state) {
  // Full parity of a 5-data-unit stripe (the Figure 3 geometry) at the
  // given stripe-unit size.
  const auto su = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::byte>> units;
  units.reserve(5);
  for (int i = 0; i < 5; ++i) units.push_back(random_bytes(su, 10 + i));
  std::vector<std::byte> parity(su, std::byte{0});
  std::vector<std::span<const std::byte>> srcs(units.begin(), units.end());
  for (auto _ : state) {
    std::fill(parity.begin(), parity.end(), std::byte{0});
    csar::xor_accumulate(parity, srcs);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(su) * 5);
}

void BM_GfMulAddScalar(benchmark::State& state) {
  // Per-byte log/exp table walk — the portable baseline of the GF kernel.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_bytes(n, 1);
  const auto src = random_bytes(n, 2);
  for (auto _ : state) {
    csar::gf_muladd_region_scalar(dst, src, 0x1d);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_GfMulAddDispatch(benchmark::State& state) {
  // Runtime-dispatched kernel (split nibble tables via PSHUFB when the host
  // has SSSE3/AVX2; bit-identical to the scalar walk by construction).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_bytes(n, 1);
  const auto src = random_bytes(n, 2);
  for (auto _ : state) {
    csar::gf_muladd_region(dst, src, 0x1d);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(csar::codec_dispatch_name());
}

void BM_RsEncodeGroup(benchmark::State& state) {
  // Full rs(4,2) group encode at the given stripe-unit size: both coding
  // fragments accumulated from the 4 data units (8 muladd passes; the j=0
  // row is all ones, so half of them degrade to plain XOR).
  const auto su = static_cast<std::size_t>(state.range(0));
  const csar::CodeSpec spec{4, 2};
  std::vector<std::vector<std::byte>> units;
  for (std::uint32_t i = 0; i < spec.k; ++i) {
    units.push_back(random_bytes(su, 20 + i));
  }
  std::vector<std::vector<std::byte>> coding(spec.m,
                                             std::vector<std::byte>(su));
  for (auto _ : state) {
    for (std::uint32_t j = 0; j < spec.m; ++j) {
      std::fill(coding[j].begin(), coding[j].end(), std::byte{0});
      for (std::uint32_t i = 0; i < spec.k; ++i) {
        csar::gf_muladd_region(coding[j], units[i],
                               csar::rs_coeff(spec, j, i));
      }
    }
    benchmark::DoNotOptimize(coding.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(su) * spec.k * spec.m);
  state.SetLabel(csar::codec_dispatch_name());
}

BENCHMARK(BM_XorBytes)->Arg(4096)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_XorWordsSingle)->Arg(4096)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_XorWords)->Arg(4096)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_XorWordsUnaligned)->Arg(65536);
BENCHMARK(BM_ParityOfStripe)->Arg(16 * 1024)->Arg(64 * 1024);
BENCHMARK(BM_GfMulAddScalar)->Arg(4096)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_GfMulAddDispatch)->Arg(4096)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_RsEncodeGroup)->Arg(16 * 1024)->Arg(64 * 1024);

}  // namespace

BENCHMARK_MAIN();
