// Figure 3: overhead of the distributed parity-locking protocol — five
// clients concurrently rewriting the five data blocks of one RAID5 stripe.
#include "bench_common.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const std::uint32_t kServers = 6;  // 5 data blocks per stripe, as in §5.1
  const auto profile = hw::profile_experimental2003();
  report::banner("F3", "Overhead of parity locking — Figure 3",
                 bench::setup_line(kServers, 5, "experimental-2003", kSu) +
                     ", 5 clients rewriting the 5 blocks of one stripe");
  report::expectations({
      "RAID0 (plain PVFS) is fastest: no redundancy traffic at all",
      "R5 NO LOCK moves the same bytes as RAID5 but skips serialization",
      "locking costs roughly 20% versus R5 NO LOCK",
  });

  const std::vector<raid::Scheme> schemes = {
      raid::Scheme::raid0, raid::Scheme::raid5_nolock, raid::Scheme::raid5};
  const std::vector<const char*> names = {"RAID0", "R5 NO LOCK", "RAID5"};
  TextTable t({"scheme", "MB/s", "lock waits", "avg wait (ms)"});
  std::map<raid::Scheme, double> bw;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    bench::Rig rig(bench::make_rig(schemes[i], kServers, 5, profile));
    wl::ContentionParams p;
    p.stripe_unit = kSu;
    p.nclients = 5;
    p.rounds = 40;
    const auto res = wl::run_on(rig, wl::stripe_contention(rig, p));
    bw[schemes[i]] = res.write_bw();
    std::uint64_t waits = 0;
    sim::Duration wait_time = 0;
    for (std::uint32_t s = 0; s < kServers; ++s) {
      waits += rig.server(s).lock_stats().waits;
      wait_time += rig.server(s).lock_stats().wait_time;
    }
    t.add_row({names[i], report::mbps(res.write_bw()),
               TextTable::num(waits),
               TextTable::num(waits ? sim::to_seconds(wait_time) * 1e3 /
                                          static_cast<double>(waits)
                                    : 0.0,
                              2)});
  }
  report::table("5-client same-stripe write bandwidth (MB/s)", t);

  const double lock_cost = 1.0 - bw[raid::Scheme::raid5] /
                                     bw[raid::Scheme::raid5_nolock];
  std::printf("locking overhead vs R5 NO LOCK: %.1f%%\n", lock_cost * 100.0);
  // The paper measured ~20%. Our simulated no-lock baseline is faster
  // relative to the lock-hold round trip than the 2003 testbed's, which
  // inflates the relative cost; the qualitative claim — locking costs a
  // moderate fraction, not a collapse — is what this checks.
  report::check("locking overhead in [10%, 60%] (paper: ~20%)",
                lock_cost > 0.10 && lock_cost < 0.60);
  report::check("RAID0 fastest",
                bw[raid::Scheme::raid0] > bw[raid::Scheme::raid5_nolock]);
  return report::exit_code();
}
