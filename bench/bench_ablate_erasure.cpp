// Ablation A14: rs(k,m) erasure coding vs replication and single parity —
// what the generalized redundancy layer buys and what it costs.
//
// Three questions, all answered on the same simulated testbed:
//   1. Repair traffic. Rebuilding one replaced disk under rs(k,m) reads k
//      fragments per fragment restored, but only the failed server's share
//      of the file — measured against a "re-replicate" baseline row (a
//      mirror stack with no partial repair, which must re-ingest the whole
//      file), while tolerating m concurrent failures instead of 1.
//   2. Multi-failure repair. Two concurrently wiped servers under rs(4,2)
//      rebuild to a clean bill; RAID5 refuses the same double failure.
//   3. Degraded-read cost. The MDS promise in numbers: every decoded piece
//      fetches exactly k fragments (raid::EcStats), and survivor read
//      amplification sits between RAID1's 1x and RAID5's (N-1)x.
//
// Deterministic: every number is sim-derived (no wall clock), so two runs
// print byte-identical output — CI diffs this binary against itself.
#include <cstring>

#include "bench_common.hpp"
#include "raid/recovery.hpp"

using namespace csar;

namespace {

std::uint64_t cluster_tx_total(raid::Rig& rig) {
  std::uint64_t total = 0;
  for (hw::NodeId id = 0; id < rig.cluster.node_count(); ++id) {
    total += rig.cluster.node(id).tx().bytes_total();
  }
  return total;
}

enum class RepairMode {
  targeted,        // Recovery::rebuild_server of the wiped disk only
  targeted_double, // two concurrent wipes, rebuilt from any-k survivors
  rereplicate,     // no partial repair: re-ingest the whole file
};

struct RepairOutcome {
  double mbps = 0;        // file bytes re-protected per second
  double write_mib = 0;   // network traffic to write the file protected
  double repair_mib = 0;  // total network traffic of the repair itself
  std::uint64_t events = 0;
  std::uint64_t ec_rebuild_decodes = 0;
  std::uint64_t ec_fragments = 0;
};

/// Preload a file, wipe server 1 (and 4 for the double-failure mode), then
/// repair — either the targeted rebuild path or, for the re-replication
/// baseline, by re-writing every byte of the file (what a stack with no
/// partial repair must do). Traffic is the sum of every node's NIC sends.
RepairOutcome repair_run(raid::Scheme scheme, std::uint32_t nservers,
                         std::uint64_t file_bytes, RepairMode mode) {
  bench::Rig rig(bench::make_rig(scheme, nservers, 1,
                                 hw::profile_experimental2003()));
  pvfs::OpenFile f = wl::run_on(
      rig, [](raid::Rig& r, std::uint64_t total) -> sim::Task<pvfs::OpenFile> {
        auto fh = co_await r.client_fs().create("f", r.layout(64 * KiB));
        assert(fh.ok());
        auto wr = co_await r.client_fs().write(*fh, 0, Buffer::phantom(total));
        assert(wr.ok());
        (void)wr;
        auto fl = co_await r.client_fs().flush(*fh);
        assert(fl.ok());
        (void)fl;
        co_return *fh;
      }(rig, file_bytes));

  RepairOutcome o;
  o.write_mib = static_cast<double>(cluster_tx_total(rig)) / MiB;
  const std::uint64_t tx0 = cluster_tx_total(rig);

  o.mbps = wl::run_on(
      rig, [](raid::Rig& r, pvfs::OpenFile f, std::uint64_t total,
              RepairMode mode) -> sim::Task<double> {
        r.server(1).fail();
        r.server(1).wipe();
        if (mode == RepairMode::targeted_double) {
          r.server(4).fail();
          r.server(4).wipe();
        }
        r.server(1).recover();
        const sim::Time t0 = r.sim.now();
        raid::Recovery rec = r.recovery();
        if (mode == RepairMode::rereplicate) {
          // Full re-replication: push the entire file through the normal
          // write path again, restoring every share from the client's copy.
          auto wr = co_await r.client_fs().write(f, 0, Buffer::phantom(total));
          assert(wr.ok());
          (void)wr;
          auto fl = co_await r.client_fs().flush(f);
          assert(fl.ok());
          (void)fl;
        } else {
          raid::RebuildOptions opt;
          if (mode == RepairMode::targeted_double) opt.also_down.push_back(4);
          auto rb = co_await rec.rebuild_server(f, 1, total, opt);
          assert(rb.ok());
          (void)rb;
          if (mode == RepairMode::targeted_double) {
            r.server(4).recover();
            auto rb2 = co_await rec.rebuild_server(f, 4, total);
            assert(rb2.ok());
            (void)rb2;
          }
        }
        co_return static_cast<double>(total) /
            sim::to_seconds(r.sim.now() - t0) / 1e6;
      }(rig, f, file_bytes, mode));

  o.repair_mib = static_cast<double>(cluster_tx_total(rig) - tx0) / MiB;
  o.events = rig.sim.events_executed();
  o.ec_rebuild_decodes = rig.policy().ec_stats().rebuild_decodes;
  o.ec_fragments = rig.policy().ec_stats().fragments_fetched;
  return o;
}

struct DegradedOutcome {
  double survivor_amp = 0;  // survivor bytes read per file byte served
  std::uint64_t decodes = 0;
  double frags_per_decode = 0;
  bool refused = false;  // the scheme rejected the failure pattern
};

/// Fail `nfail` servers and serve the whole file through degraded reads.
DegradedOutcome degraded_run(raid::Scheme scheme, std::uint32_t nservers,
                             std::uint64_t file_bytes, std::uint32_t nfail) {
  bench::Rig rig(bench::make_rig(scheme, nservers, 1,
                                 hw::profile_experimental2003()));
  DegradedOutcome o;
  const std::uint64_t base_tx = 0;
  (void)base_tx;
  const bool ok = wl::run_on(
      rig, [](raid::Rig& r, std::uint64_t total,
              std::uint32_t nf) -> sim::Task<bool> {
        auto f = co_await r.client_fs().create("f", r.layout(64 * KiB));
        assert(f.ok());
        auto wr = co_await r.client_fs().write(*f, 0, Buffer::phantom(total));
        assert(wr.ok());
        (void)wr;
        std::vector<std::uint32_t> down;
        for (std::uint32_t i = 0; i < nf; ++i) {
          const std::uint32_t victim = 1 + 2 * i;  // 1, 3, ...
          r.server(victim).fail();
          down.push_back(victim);
        }
        raid::Recovery rec = r.recovery();
        auto rd = co_await rec.degraded_read(*f, 0, total, down);
        co_return rd.ok();
      }(rig, file_bytes, nfail));
  o.refused = !ok;
  std::uint64_t survivor_tx = 0;
  for (std::uint32_t s = 0; s < nservers; ++s) {
    survivor_tx +=
        rig.cluster.node(rig.server(s).node_id()).tx().bytes_total();
  }
  o.survivor_amp =
      static_cast<double>(survivor_tx) / static_cast<double>(file_bytes);
  const raid::EcStats& e = rig.policy().ec_stats();
  o.decodes = e.degraded_reads + e.rebuild_decodes;
  o.frags_per_decode =
      o.decodes == 0 ? 0
                     : static_cast<double>(e.fragments_fetched) /
                           static_cast<double>(o.decodes);
  return o;
}

std::string pct(double overhead) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", overhead * 100.0);
  return buf;
}

}  // namespace

int main() {
  const std::uint64_t file = 64 * MiB;

  report::banner(
      "ablate-erasure (A14)", "rs(k,m) vs replication/parity: repair & reads",
      bench::setup_line(6, 1, "experimental-2003", 64 * KiB).c_str());

  // --- 1: single-disk repair traffic ---------------------------------
  // Baseline first: a mirror-everything stack with no partial repair — the
  // only way to heal a wiped disk is to push every file byte through the
  // write path again. Its measured repair traffic anchors the comparison.
  const RepairOutcome rerepl =
      repair_run(raid::Scheme::raid1, 6, file, RepairMode::rereplicate);

  struct Row {
    const char* name;
    raid::Scheme scheme;
    std::uint32_t n;
    RepairMode mode;
    double overhead;  // redundancy bytes per data byte
    std::uint32_t tolerates;
  };
  const Row rows[] = {
      {"re-replicate", raid::Scheme::raid1, 6, RepairMode::rereplicate, 1.0,
       1},
      {"RAID1", raid::Scheme::raid1, 6, RepairMode::targeted, 1.0, 1},
      {"RAID5", raid::Scheme::raid5, 6, RepairMode::targeted, 1.0 / 5, 1},
      {"Hybrid", raid::Scheme::hybrid, 6, RepairMode::targeted, 1.0 / 5, 1},
      {"RS(4,2)", raid::Scheme::rs(4, 2), 6, RepairMode::targeted, 2.0 / 4,
       2},
      {"RS(6,3)", raid::Scheme::rs(6, 3), 9, RepairMode::targeted, 3.0 / 6,
       3},
  };
  TextTable t({"scheme", "overhead", "tolerates", "write MiB", "rebuild MB/s",
               "repair MiB", "vs re-replication"});
  double rs42_repair = -1, rs63_repair = -1, rs42_write = -1;
  for (const Row& row : rows) {
    const RepairOutcome o = row.mode == RepairMode::rereplicate
                                ? rerepl
                                : repair_run(row.scheme, row.n, file,
                                             row.mode);
    if (std::strcmp(row.name, "RS(4,2)") == 0) {
      rs42_repair = o.repair_mib;
      rs42_write = o.write_mib;
    }
    if (std::strcmp(row.name, "RS(6,3)") == 0) rs63_repair = o.repair_mib;
    t.add_row({row.name, pct(row.overhead), std::to_string(row.tolerates),
               TextTable::num(o.write_mib, 1), TextTable::num(o.mbps, 1),
               TextTable::num(o.repair_mib, 1),
               TextTable::num(o.repair_mib / rerepl.repair_mib, 2) + "x"});
  }
  report::table("repair one wiped disk of a 64 MiB file", t);
  report::check(
      "RS(4,2)/RS(6,3) repair traffic beats full re-replication at 2-3x the "
      "fault tolerance",
      rs42_repair > 0 && rs42_repair < rerepl.repair_mib &&
          rs63_repair > 0 && rs63_repair < rerepl.repair_mib);
  report::check(
      "RS(4,2) redundancy (write) traffic beats mirroring at double the "
      "fault tolerance",
      rs42_write > 0 && rs42_write < rerepl.write_mib);

  // --- 2: double failure ---------------------------------------------
  std::printf("\n");
  const RepairOutcome d1 =
      repair_run(raid::Scheme::rs(4, 2), 6, file, RepairMode::targeted_double);
  const RepairOutcome d2 =
      repair_run(raid::Scheme::rs(4, 2), 6, file, RepairMode::targeted_double);
  TextTable dt({"scheme", "wiped", "rebuild MB/s", "repair MiB",
                "rebuild decodes"});
  dt.add_row({"RS(4,2)", "2", TextTable::num(d1.mbps, 1),
              TextTable::num(d1.repair_mib, 1),
              TextTable::num(d1.ec_rebuild_decodes)});
  report::table("two concurrently wiped disks, rebuilt from any-4 survivors",
                dt);
  report::check("double-wipe rebuild decoded around the second victim",
                d1.ec_rebuild_decodes > 0);
  report::check("A14 repair runs are bit-deterministic",
                d1.events == d2.events &&
                    d1.ec_fragments == d2.ec_fragments &&
                    d1.ec_rebuild_decodes == d2.ec_rebuild_decodes);

  // --- 3: degraded-read cost -----------------------------------------
  std::printf("\n");
  TextTable g({"scheme", "failures", "survivor amp", "frags/decode",
               "served"});
  struct DRow {
    const char* name;
    raid::Scheme scheme;
    std::uint32_t n;
    std::uint32_t nfail;
  };
  const DRow drows[] = {
      {"RAID1", raid::Scheme::raid1, 6, 1},
      {"RAID5", raid::Scheme::raid5, 6, 1},
      {"RS(4,2)", raid::Scheme::rs(4, 2), 6, 1},
      {"RS(4,2)", raid::Scheme::rs(4, 2), 6, 2},
      {"RAID5", raid::Scheme::raid5, 6, 2},
  };
  double rs_frags_single = 0;
  bool raid5_double_refused = false;
  for (const DRow& row : drows) {
    const DegradedOutcome o = degraded_run(row.scheme, row.n, file, row.nfail);
    if (row.scheme == raid::Scheme::rs(4, 2) && row.nfail == 1) {
      rs_frags_single = o.frags_per_decode;
    }
    if (row.scheme == raid::Scheme::raid5 && row.nfail == 2) {
      raid5_double_refused = o.refused;
    }
    g.add_row({row.name, std::to_string(row.nfail),
               TextTable::num(o.survivor_amp, 2) + "x",
               o.decodes == 0 ? "-" : TextTable::num(o.frags_per_decode, 2),
               o.refused ? "refused" : "ok"});
  }
  report::table("degraded full-file read, survivor traffic per byte served",
                g);
  report::check("rs degraded reads fetch exactly k=4 fragments per decode",
                rs_frags_single == 4.0);
  report::check("RAID5 refuses a double failure that RS(4,2) serves",
                raid5_double_refused);

  return report::exit_code();
}
