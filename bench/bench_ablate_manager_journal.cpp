// Ablation A12: metadata-manager journaling — durability cost and crash MTTR.
//
// Plain PVFS keeps its manager's file table in memory only: a manager crash
// loses every file's metadata. The journaled manager (MetaJournal) writes
// each committed mutation through the manager node's disk before replying,
// checkpoints periodically, and replays checkpoint + journal on restart.
// Durability is not free — the journal flush sits on the create/remove/
// set_scheme critical path — so this ablation prices it:
//
//   overhead   identical create-heavy metadata workload with journaling off
//              (the legacy baseline, crash = total loss) vs on; the delta in
//              simulated completion time is the durability tax.
//   MTTR       with journaling on, crash the manager mid-workload (losing
//              the unsynced page-cache tail), restart it, and measure crash
//              -> first successfully served meta op, replay included.
//
// Everything is simulated and seeded, so both halves are bit-deterministic:
// a second identical MTTR run must reproduce the same replay count, the
// same MTTR and the same completion time exactly.
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "workloads/harness.hpp"

using namespace csar;

namespace {

constexpr std::uint32_t kServers = 4;
constexpr std::uint32_t kSu = 64 * KiB;
constexpr std::uint32_t kFiles = 240;

raid::RigParams rig_params(bool journaling) {
  raid::RigParams p;
  p.scheme = raid::Scheme::raid0;  // metadata-only workload; data path idle
  p.nservers = kServers;
  p.manager.journaling = journaling;
  return p;
}

struct MetaRunResult {
  double secs = 0.0;          ///< workload completion (simulated)
  std::uint64_t records = 0;  ///< journal records appended
  std::uint64_t bytes = 0;    ///< journal bytes appended
  std::uint64_t checkpoints = 0;
};

/// Create kFiles files, tag every fourth with a scheme, remove every eighth
/// — the create-heavy mix a checkpoint/restore workload throws at the
/// manager (data writes excluded so the journal cost is not diluted).
MetaRunResult run_meta_workload(bool journaling) {
  bench::Rig rig(rig_params(journaling));
  MetaRunResult out;
  out.secs = wl::run_on(rig, [](raid::Rig& r) -> sim::Task<double> {
    const sim::Time t0 = r.sim.now();
    for (std::uint32_t i = 0; i < kFiles; ++i) {
      const std::string name = "ckpt" + std::to_string(i);
      auto f = co_await r.client().create(name, r.layout(kSu));
      assert(f.ok());
      (void)f;
      if (i % 4 == 0) {
        auto s = co_await r.client().set_scheme(
            name, raid::scheme_tag(raid::Scheme::raid1), 1);
        assert(s.ok());
        (void)s;
      }
      if (i % 8 == 0) {
        auto rm = co_await r.client().remove(name);
        assert(rm.ok());
        (void)rm;
      }
    }
    co_return sim::to_seconds(r.sim.now() - t0);
  }(rig));
  const pvfs::JournalStats js = rig.manager->journal_stats();
  out.records = js.records_appended;
  out.bytes = js.bytes_appended;
  out.checkpoints = js.checkpoints;
  return out;
}

struct MttrResult {
  double mttr_ms = 0.0;  ///< crash -> first successfully served meta op
  double secs = 0.0;     ///< full run completion
  std::uint64_t replayed = 0;
  std::uint64_t files_after = 0;
  bool recovered_all = true;
};

/// Crash the journaled manager (wiping the unsynced tail) halfway through
/// the create stream, restart it after a fixed outage, and time how long a
/// retrying client is locked out of metadata service.
MttrResult run_mttr() {
  bench::Rig rig(rig_params(/*journaling=*/true));
  MttrResult out;
  out.mttr_ms = wl::run_on(rig, [](raid::Rig& r,
                                   MttrResult* res) -> sim::Task<double> {
    pvfs::RpcPolicy retry;
    retry.timeout = sim::ms(20);
    retry.max_attempts = 3;
    retry.jitter = 0.0;
    r.client().set_rpc_policy(retry);
    for (std::uint32_t i = 0; i < kFiles / 2; ++i) {
      auto f = co_await r.client().create("ckpt" + std::to_string(i),
                                          r.layout(kSu));
      assert(f.ok());
      (void)f;
    }
    const sim::Time crash_at = r.sim.now();
    r.manager->crash(/*wipe_unsynced=*/true);
    // Operator-restart outage: replay starts 50 simulated ms after the
    // crash; the client keeps retrying throughout.
    r.sim.spawn([](raid::Rig& rr) -> sim::Task<void> {
      co_await rr.sim.sleep(sim::ms(50));
      co_await rr.manager->restart();
    }(r), "manager_restart");
    sim::Time served_at = 0;
    while (true) {
      auto f = co_await r.client().open("ckpt0");
      if (f.ok()) {
        served_at = r.sim.now();
        break;
      }
      co_await r.sim.sleep(sim::ms(5));
    }
    // The back half of the stream lands on the replayed manager.
    for (std::uint32_t i = kFiles / 2; i < kFiles; ++i) {
      auto f = co_await r.client().create("ckpt" + std::to_string(i),
                                          r.layout(kSu));
      assert(f.ok());
      (void)f;
    }
    res->secs = sim::to_seconds(r.sim.now());
    co_return sim::to_seconds(served_at - crash_at) * 1e3;
  }(rig, &out));
  out.replayed = rig.manager->stats().replayed_records;
  out.files_after = rig.manager->file_count();
  out.recovered_all = out.files_after == kFiles;
  return out;
}

}  // namespace

int main() {
  report::banner(
      "A12", "Manager metadata journaling: durability cost and crash MTTR",
      "4 I/O servers, 1 client, 240-file create/tag/remove metadata stream "
      "on the manager; mid-stream manager wipe-crash + journal replay");
  report::expectations({
      "journaling costs real time on the create path: every mutation buys",
      "one synchronous flush through the manager disk before the reply, so",
      "the per-mutation tax is about one disk service time (~10 ms) against",
      "a near-free in-memory baseline",
      "a wipe-crash halfway through the stream loses nothing: replay",
      "restores every committed file and the stream completes on the",
      "replayed manager",
      "manager MTTR (crash -> first served meta op) is dominated by the",
      "scheduled 50 ms outage, not by replay",
      "identical runs reproduce identical MTTR, replay counts and times",
  });

  const MetaRunResult off = run_meta_workload(false);
  const MetaRunResult on = run_meta_workload(true);
  const MttrResult mttr = run_mttr();
  const MttrResult mttr2 = run_mttr();

  const double overhead_pct = off.secs > 0.0
                                  ? 100.0 * (on.secs - off.secs) / off.secs
                                  : 0.0;
  TextTable t({"config", "meta stream (ms)", "journal recs", "journal bytes",
               "checkpoints"});
  t.add_row({"in-memory (legacy)", TextTable::num(off.secs * 1e3, 2),
             TextTable::num(off.records), format_bytes(off.bytes),
             TextTable::num(off.checkpoints)});
  t.add_row({"journaled", TextTable::num(on.secs * 1e3, 2),
             TextTable::num(on.records), format_bytes(on.bytes),
             TextTable::num(on.checkpoints)});
  report::table("create-heavy metadata stream, journaling off vs on", t);
  std::printf("journal overhead on the metadata stream: %.1f%%\n",
              overhead_pct);
  std::printf(
      "wipe-crash at file %u: MTTR %.3f ms, %" PRIu64
      " records replayed, %" PRIu64 "/%u files after the full stream\n",
      kFiles / 2, mttr.mttr_ms, mttr.replayed, mttr.files_after, kFiles);

  std::printf(
      "JSON {\"bench\":\"ablate_manager_journal\",\"stream_ms_off\":%.3f,"
      "\"stream_ms_on\":%.3f,\"overhead_pct\":%.2f,\"journal_records\":%"
      PRIu64 ",\"journal_bytes\":%" PRIu64 ",\"mttr_ms\":%.3f,"
      "\"replayed_records\":%" PRIu64 "}\n",
      off.secs * 1e3, on.secs * 1e3, overhead_pct, on.records, on.bytes,
      mttr.mttr_ms, mttr.replayed);

  report::check("journaling appended a record per committed mutation",
                on.records >= kFiles && off.records == 0);
  report::check("periodic checkpoints bounded the journal",
                on.checkpoints >= 1);
  const double per_record_ms =
      on.records > 0
          ? (on.secs - off.secs) * 1e3 / static_cast<double>(on.records)
          : 0.0;
  std::printf("per-mutation journal cost: %.2f ms (one sync disk flush)\n",
              per_record_ms);
  report::check("per-mutation journal cost ~ one disk service time (<15 ms)",
                on.secs > off.secs && per_record_ms > 0.5 &&
                    per_record_ms < 15.0);
  report::check("replay restored every committed file (wipe lost nothing)",
                mttr.recovered_all);
  report::check("MTTR covers the outage and stays under 100 ms",
                mttr.mttr_ms >= 50.0 && mttr.mttr_ms < 100.0);
  report::check("MTTR run is bit-deterministic",
                mttr.mttr_ms == mttr2.mttr_ms &&
                    mttr.replayed == mttr2.replayed &&
                    mttr.secs == mttr2.secs);
  return report::exit_code();
}
