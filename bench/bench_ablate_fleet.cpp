// Ablation A15: fleet disk-adaptive redundancy with budgeted transitions
// (PACEMAKER) vs one-scheme-fits-all and vs unbudgeted reactive transitions.
//
// The setup is a 9-server fleet of three age cohorts (disk groups sharing a
// rack and a purchase batch): group 0 starts late in useful life and crosses
// into wearout mid-run — the class-wide AFR shift — group 1 sits safely on
// the flat bottom of the bathtub, and group 2 starts in infancy and matures
// into useful life. Sixteen open-loop tenants spread their files' placement
// bases across the groups while an AFR-derived fault plan (crashes + latent
// sector errors drawn from each disk's own bathtub curve) runs underneath.
//
// Three configurations answer the PACEMAKER question:
//   static     one-scheme-fits-all rs(4,2); no controller, no transitions.
//   budgeted   the fleet controller upgrades edge-class groups to rs(6,3)
//              through a shared 8 MB/s transition-IO budget, two migrations
//              in flight at most, proactive lead before each class change.
//   unbudget   same controller decisions, but every required transition
//              fires at once with uncapped copy traffic — the reactive
//              "HeART-attack" storm.
//
// Measured: foreground p50/p99 latency (bucketed, deterministic), expected
// data-loss events integrated along each group's actual AFR curve under the
// scheme schedule the controller really executed, transition counters and
// budget draw. The acceptance criteria from the issue are the CHECK lines:
// budgeted p99 within 1.2x of the no-transition baseline, unbudgeted p99
// beyond it, adaptive loss no worse than static rs(4,2) — all
// bit-deterministic (the budgeted config runs twice and must agree).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "raid/migrate.hpp"
#include "workloads/open_loop.hpp"

using namespace csar;

namespace {

constexpr std::uint32_t kServers = 9;
constexpr std::uint32_t kTenants = 16;
constexpr sim::Duration kRun = sim::ms(4000);  // 4 s = 2 fleet-years

fleet::FleetParams fleet_params() {
  fleet::FleetParams fp;
  fp.group_size = 3;
  // Group ages at t=0: g0 = 3.0y (crosses into wearout mid-run), g1 = 1.0y
  // (useful life throughout), g2 = 0y (infancy, matures mid-run).
  fp.group0_age_years = 3.0;
  fp.group_age_step_years = 2.0;
  fp.years_per_sim_sec = 0.5;  // 4 s of sim time = 2 fleet-years
  fp.lead_years = 0.1;
  fp.decision_interval = sim::ms(50);
  fp.transition_budget_bps = 8e6;
  fp.max_concurrent = 2;
  // Fault-plan derivation: enough boost that the 2-year window sees real
  // events. All of them latent sector errors here: a single crash outage
  // parks ~1%% of the window's requests on the RPC retry ceiling, flattening
  // every config's p99 to the same bucket and hiding the transition-storm
  // contention this ablation isolates (crash and whole-domain derivation is
  // covered by fleet_test and the fault_storm --fleet example).
  fp.fault_boost = 2.0;
  fp.media_fraction = 1.0;
  return fp;
}

enum class Mode { static42, budgeted, unbudgeted };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::static42:
      return "static rs(4,2)";
    case Mode::budgeted:
      return "fleet budgeted";
    case Mode::unbudgeted:
      return "fleet unbudgeted";
  }
  return "?";
}

struct Outcome {
  wl::OpenLoopStats ol;
  fleet::FleetStats fs;
  std::uint64_t migs_completed = 0;
  std::uint64_t migs_failed = 0;
  std::uint64_t budget_bytes = 0;
  double loss = 0;  ///< expected data-loss events, summed over groups
  std::uint64_t faults_executed = 0;
  std::uint64_t events = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

Outcome run_mode(Mode mode) {
  raid::RigParams rp;
  rp.scheme = raid::Scheme::rs(4, 2);
  rp.nservers = kServers;
  rp.nclients = 4;
  // Crashed servers must fail requests, not hang them: finite per-attempt
  // deadline with a few retries (covers the 200 ms crash outages).
  rp.rpc.timeout = sim::ms(150);
  rp.rpc.max_attempts = 4;
  rp.rpc.backoff = sim::ms(5);
  bench::Rig rig(rp);

  fleet::FleetParams fp = fleet_params();
  if (mode == Mode::unbudgeted) {
    // Reactive storm: no shared budget, no concurrency cap — every pending
    // transition fires immediately with uncapped copy traffic.
    fp.transition_budget_bps = 0.0;
    fp.max_concurrent = 1u << 16;
  }
  fleet::FleetModel model(rig, fp);

  // Same AFR-derived fault plan in every mode (same model, same seed).
  fault::FaultPlan plan = model.derive_fault_plan(kRun, sim::ms(20), kTenants);
  std::vector<pvfs::IoServer*> server_ptrs;
  for (auto& s : rig.servers) server_ptrs.push_back(s.get());
  fault::FaultInjector inj(rig.cluster, rig.fabric, std::move(server_ptrs),
                           std::move(plan));
  inj.start();

  raid::SchemeMigrator mig(rig);  // rate_cap 0: pacing is the fleet budget
  fleet::FleetController ctl(rig, mig, model, fp);

  wl::OpenLoopParams olp;
  olp.ntenants = kTenants;
  olp.total_rate = 25.0 * kTenants;
  olp.duration = kRun;
  olp.max_outstanding = 8;
  olp.request_bytes = 16 * 1024;
  olp.stripe_unit = 64 * 1024;
  olp.file_extent = 8ull << 20;
  olp.seed = 0xA15F1EE7ULL;
  olp.rotate_base = true;  // spread placement bases across the disk groups
  if (mode != Mode::static42) {
    olp.on_file_created = [&ctl](std::uint32_t tenant, const std::string& name,
                                 const pvfs::OpenFile& f,
                                 std::uint64_t extent) {
      ctl.register_file(tenant, name, f, extent);
    };
    mig.start();
    ctl.start();
  }

  // One task: run the window, drain in-flight transitions, then stop the
  // controller + migrator loops so the event queue can empty (sim.run()
  // returns only once nothing is scheduled).
  Outcome o;
  o.ol = wl::run_on(
      rig,
      [](raid::Rig& r, const wl::OpenLoopParams& p, raid::SchemeMigrator& m,
         fleet::FleetController& c,
         Mode mode) -> sim::Task<wl::OpenLoopStats> {
        wl::OpenLoopStats stats = co_await wl::run_open_loop(r, p);
        if (mode != Mode::static42) {
          while (!m.idle()) co_await r.sim.sleep(sim::ms(5));
          c.stop();
          m.stop();
        }
        co_return stats;
      }(rig, olp, mig, ctl, mode));

  const double total_years = model.added_years(rig.sim.now());
  for (std::uint32_t g = 0; g < model.ngroups(); ++g) {
    const std::vector<fleet::SchemePeriod> periods =
        mode == Mode::static42
            ? std::vector<fleet::SchemePeriod>{{0.0, total_years,
                                                raid::Scheme::rs(4, 2)}}
            : ctl.scheme_periods(g, total_years);
    o.loss += fleet::expected_loss_events(model, g, periods,
                                          fp.repair_window_years);
  }
  o.fs = ctl.stats();
  o.migs_completed = mig.stats().migrations_completed;
  o.migs_failed = mig.stats().migrations_failed;
  o.budget_bytes = ctl.budget_bytes_taken();
  o.faults_executed = inj.stats().crashes + inj.stats().media_planted;
  o.events = rig.sim.events_executed();
  o.p50_ms = sim::to_seconds(o.ol.latency_p50) * 1e3;
  o.p99_ms = sim::to_seconds(o.ol.latency_p99) * 1e3;
  return o;
}

}  // namespace

int main() {
  report::banner("ablate-fleet (A15)",
                 "disk-adaptive redundancy with budgeted transitions",
                 bench::setup_line(kServers, 4, "experimental-2003",
                                   64 * KiB)
                     .c_str());

  // The fleet's age-cohort structure (one throwaway rig for the tables).
  {
    raid::RigParams rp;
    rp.scheme = raid::Scheme::rs(4, 2);
    rp.nservers = kServers;
    raid::Rig rig(rp);
    fleet::FleetModel model(rig, fleet_params());
    report::table("disk groups at t=0 (2 fleet-years simulated)",
                  fleet::fleet_groups_table(model, 0.0));
    std::printf("\n");
    report::table("disk groups at end of run",
                  fleet::fleet_groups_table(model, 2.0));
    std::printf("\n");
  }

  const Outcome base = run_mode(Mode::static42);
  const Outcome budget = run_mode(Mode::budgeted);
  const Outcome budget2 = run_mode(Mode::budgeted);  // determinism witness
  const Outcome storm = run_mode(Mode::unbudgeted);

  TextTable t({"config", "p50 ms", "p99 ms", "completed", "failed", "shed",
               "transitions", "urgent", "deferred", "budget MiB",
               "E[loss events]"});
  struct NamedRow {
    const char* name;
    const Outcome* o;
  };
  const NamedRow rows[] = {{mode_name(Mode::static42), &base},
                           {mode_name(Mode::budgeted), &budget},
                           {mode_name(Mode::unbudgeted), &storm}};
  for (const NamedRow& r : rows) {
    t.add_row({r.name, TextTable::num(r.o->p50_ms, 2),
               TextTable::num(r.o->p99_ms, 2),
               TextTable::num(r.o->ol.completed),
               TextTable::num(r.o->ol.failed), TextTable::num(r.o->ol.shed),
               TextTable::num(r.o->fs.transitions_requested),
               TextTable::num(r.o->fs.urgent_requested),
               TextTable::num(r.o->fs.deferred_concurrency),
               TextTable::num(static_cast<double>(r.o->budget_bytes) /
                                  static_cast<double>(MiB),
                              1),
               TextTable::num(r.o->loss * 1e6, 3) + "e-6"});
  }
  report::table("open-loop foreground vs transition policy, AFR fault plan",
                t);

  std::printf("\n");
  std::printf("faults executed: %llu (identical plan in every config)\n",
              static_cast<unsigned long long>(base.faults_executed));
  std::printf("budgeted run fingerprint: 0x%016llx events=%llu\n",
              static_cast<unsigned long long>(budget.ol.fingerprint),
              static_cast<unsigned long long>(budget.events));

  // --- acceptance criteria -------------------------------------------
  report::check("fleet controller acted on the AFR shift (urgent upgrades)",
                budget.fs.urgent_requested > 0 && budget.migs_completed > 0 &&
                    storm.fs.urgent_requested > 0);
  report::check(
      "budgeted transitions keep foreground p99 within 1.2x of the "
      "no-transition baseline",
      budget.p99_ms <= 1.2 * base.p99_ms);
  report::check(
      "unbudgeted reactive transitions blow the 1.2x p99 envelope the "
      "budget holds",
      storm.p99_ms > 1.2 * base.p99_ms);
  report::check(
      "disk-adaptive expected data-loss events no worse than "
      "one-scheme-fits-all rs(4,2)",
      budget.loss <= base.loss);
  report::check(
      "budgeted copy traffic drew from the shared transition budget; the "
      "storm ran unmetered",
      budget.budget_bytes > 0 && storm.budget_bytes == 0);
  report::check(
      "A15 is bit-deterministic: budgeted run-twice agrees on fingerprint, "
      "events and transitions",
      budget.ol.fingerprint == budget2.ol.fingerprint &&
          budget.events == budget2.events &&
          budget.fs.transitions_requested ==
              budget2.fs.transitions_requested &&
          budget.migs_completed == budget2.migs_completed);

  return report::exit_code();
}
