// Ablation A9: wire-level RPC batching + pipelined parity-lock acquisition.
//
// The batched small-write path coalesces same-server requests into one
// Op::batch envelope (one fabric transfer, one per-message header, one iod
// dispatch) and acquires all of a batch's parity locks atomically on the
// server. The payoff point is a misaligned write spanning ~N groups: its
// head and tail partial groups land on the SAME parity server (groups g and
// g+N share parity placement), so the batched path does one lock+read round
// trip where the legacy path does two sequential ones — and the two parity
// units are adjacent in the redundancy file, so the server merges them into
// a single disk/page-cache read.
//
// Every point is run with rpc_batching on and off; batching must never lose
// (same-server coalescing degrades to the legacy wire traffic when there is
// nothing to coalesce), and must clearly win on the straddling-write point.
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"

using namespace csar;

namespace {

constexpr std::uint32_t kServers = 6;
constexpr std::uint32_t kSu = 64 * KiB;

struct Outcome {
  double bw = 0.0;            // bytes/s
  std::uint64_t rpc_sent = 0; // client RPC attempts that reached the fabric
  std::uint64_t batches = 0;  // Op::batch envelopes the servers executed
  std::uint64_t merged = 0;   // adjacent sub-reads coalesced server-side
  sim::Time end = 0;          // simulated end time (bit-determinism probe)
};

void collect(raid::Rig& rig, Outcome& o) {
  for (const auto& c : rig.clients) o.rpc_sent += c->rpc_stats().sent;
  for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
    o.batches += rig.server(s).batch_stats().batches;
    o.merged += rig.server(s).batch_stats().merged_reads;
  }
  o.end = rig.sim.now();
}

/// Misaligned writes whose head and tail partial groups land on the SAME
/// parity server — so the batched path does one lock+read round trip where
/// the legacy path does two sequential ones. With `small`, a 4 KiB write
/// straddling one group boundary (RAID4's fixed parity server covers both
/// groups): latency-bound, the two RMW round trips dominate and the saved
/// round trip shows directly. Without `small`, a write spanning kServers
/// groups (RAID5: groups g and g+kServers share parity placement):
/// bandwidth-bound, full-stripe bulk dilutes the saving to a modest edge.
Outcome straddle_run(raid::Scheme scheme, bool small, bool batching,
                     std::uint32_t rounds) {
  auto params = bench::make_rig(scheme, kServers, 1,
                                hw::profile_experimental2003());
  params.rpc_batching = batching;
  bench::Rig rig(params);
  Outcome o;
  o.bw = wl::run_on(
      rig, [](raid::Rig& r, bool tiny,
              std::uint32_t nrounds) -> sim::Task<double> {
        const auto layout = r.layout(kSu);
        const std::uint64_t width = layout.stripe_width();
        const std::uint64_t off = tiny ? width - 2 * KiB : width / 2;
        const std::uint64_t len = tiny ? 4 * KiB : kServers * width;
        auto f = co_await r.client_fs().create("f", layout);
        assert(f.ok());
        auto init =
            co_await r.client_fs().write(*f, 0, Buffer::phantom(off + len));
        assert(init.ok());
        (void)init;
        auto fl = co_await r.client_fs().flush(*f);
        assert(fl.ok());
        (void)fl;
        const sim::Time t0 = r.sim.now();
        for (std::uint32_t i = 0; i < nrounds; ++i) {
          auto wr =
              co_await r.client_fs().write(*f, off, Buffer::phantom(len));
          assert(wr.ok());
          (void)wr;
        }
        co_return static_cast<double>(nrounds) * static_cast<double>(len) /
            sim::to_seconds(r.sim.now() - t0);
      }(rig, small, rounds));
  collect(rig, o);
  return o;
}

/// Figure 4(b) geometry: one-block overwrites of a cached file — exactly
/// one partial group per write, nothing to coalesce. Batching must tie.
Outcome smallwrite_run(bool batching) {
  auto params = bench::make_rig(raid::Scheme::raid5, kServers, 1,
                                hw::profile_experimental2003());
  params.rpc_batching = batching;
  bench::Rig rig(params);
  wl::MicroParams p;
  p.stripe_unit = kSu;
  p.total_bytes = 16 * MiB;
  Outcome o;
  o.bw = wl::run_on(rig, wl::small_block_write(rig, p)).write_bw();
  collect(rig, o);
  return o;
}

/// Figure 3 geometry: five clients hammering distinct blocks of one stripe
/// — the lock-contention point; batching must not stretch critical sections.
Outcome contention_run(bool batching) {
  auto params = bench::make_rig(raid::Scheme::raid5, kServers, 5,
                                hw::profile_experimental2003());
  params.rpc_batching = batching;
  bench::Rig rig(params);
  wl::ContentionParams p;
  p.stripe_unit = kSu;
  p.nclients = 5;
  p.rounds = 40;
  Outcome o;
  o.bw = wl::run_on(rig, wl::stripe_contention(rig, p)).write_bw();
  collect(rig, o);
  return o;
}

}  // namespace

int main() {
  report::banner(
      "A9", "RPC batching + pipelined parity-lock acquisition",
      bench::setup_line(kServers, 1, "experimental-2003", kSu) +
          ", straddling writes span 6 groups (head+tail share one parity "
          "server)");
  report::expectations({
      "batching never loses: with one partial group per write the batched",
      "path degrades to the legacy wire traffic (ties on F4b/F3 points)",
      "a write with >=2 partial groups on one parity server takes one",
      "batched lock+read round trip instead of two sequential ones, and the",
      "server merges the adjacent parity units into one cached read",
      "fewer client RPCs on the wire whenever coalescing applies",
  });

  struct Point {
    const char* name;
    Outcome on;
    Outcome off;
  };
  std::vector<Point> points;
  points.push_back(
      {"R4 4K straddle (2 RMW)",
       straddle_run(raid::Scheme::raid4, true, true, 64),
       straddle_run(raid::Scheme::raid4, true, false, 64)});
  points.push_back(
      {"R5 6-group straddle",
       straddle_run(raid::Scheme::raid5, false, true, 64),
       straddle_run(raid::Scheme::raid5, false, false, 64)});
  points.push_back({"F4b small writes", smallwrite_run(true),
                    smallwrite_run(false)});
  points.push_back({"F3 contention", contention_run(true),
                    contention_run(false)});

  TextTable t({"point", "batched MB/s", "unbatched MB/s", "speedup",
               "rpcs on", "rpcs off", "batches", "merged reads"});
  for (const auto& pt : points) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.3fx",
                  pt.off.bw > 0 ? pt.on.bw / pt.off.bw : 0.0);
    t.add_row({pt.name, report::mbps(pt.on.bw), report::mbps(pt.off.bw),
               speedup, TextTable::num(pt.on.rpc_sent),
               TextTable::num(pt.off.rpc_sent),
               TextTable::num(pt.on.batches),
               TextTable::num(pt.off.merged + pt.on.merged)});
  }
  report::table("rpc batching ablation (RAID5)", t);

  // Machine-readable result (one JSON object; CSAR_CSV covers the table).
  std::printf("JSON {\"bench\":\"ablate_rpc_batching\",\"points\":[");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    std::printf(
        "%s{\"name\":\"%s\",\"batched_mbps\":%.3f,\"unbatched_mbps\":%.3f,"
        "\"rpcs_batched\":%" PRIu64 ",\"rpcs_unbatched\":%" PRIu64
        ",\"batches\":%" PRIu64 ",\"merged_reads\":%" PRIu64 "}",
        i ? "," : "", pt.name, pt.on.bw / 1e6, pt.off.bw / 1e6,
        pt.on.rpc_sent, pt.off.rpc_sent, pt.on.batches, pt.on.merged);
  }
  std::printf("]}\n");

  bool never_loses = true;
  for (const auto& pt : points) {
    if (pt.on.bw < 0.999 * pt.off.bw) never_loses = false;
  }
  report::check("batching >= unbatched on every point", never_loses);
  report::check("clear win on the 2-partial-group straddle point (>= 1.05x)",
                points[0].on.bw >= 1.05 * points[0].off.bw);
  report::check("fewer client RPCs on the straddle point",
                points[0].on.rpc_sent < points[0].off.rpc_sent);
  report::check("server merged adjacent parity reads on the straddle point",
                points[0].on.merged > 0);

  // Bit-determinism: identical runs of the batched config must end at the
  // identical simulated instant.
  const Outcome again = straddle_run(raid::Scheme::raid4, true, true, 64);
  report::check("batched run is bit-deterministic",
                again.end == points[0].on.end && again.bw == points[0].on.bw);
  return report::exit_code();
}
