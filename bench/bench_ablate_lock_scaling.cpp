// Ablation A3 (§5.1): how the parity-lock serialization scales with the
// number of clients contending for one stripe — the mechanism behind the
// 25-process RAID5 collapse in Figure 6(a).
#include "bench_common.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const auto profile = hw::profile_osc2003();
  report::banner("A3", "Parity-lock contention scaling — ablation of §5.1",
                 "17 I/O servers (16 blocks/stripe), clients 1..32 "
                 "rewriting blocks of one stripe");
  report::expectations({
      "R5 NO LOCK scales with clients until the servers saturate",
      "RAID5 per-client bandwidth collapses as lock queues grow",
  });

  const std::uint32_t kServers = 17;  // 16 data blocks per stripe
  TextTable t({"clients", "RAID5", "R5 NO LOCK", "RAID5 lock waits",
               "avg wait (ms)"});
  std::map<std::pair<std::uint32_t, raid::Scheme>, double> bw;
  for (std::uint32_t clients : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::vector<std::string> row = {TextTable::num(std::uint64_t{clients})};
    std::uint64_t waits = 0;
    double avg_wait_ms = 0;
    for (raid::Scheme s : {raid::Scheme::raid5, raid::Scheme::raid5_nolock}) {
      bench::Rig rig(bench::make_rig(s, kServers, clients, profile));
      wl::ContentionParams p;
      p.stripe_unit = kSu;
      p.nclients = std::min(clients, kServers - 1);
      p.rounds = 30;
      // More clients than blocks: wrap around (several clients per block
      // would overlap, so cap at blocks and add rounds instead).
      const auto res = wl::run_on(rig, wl::stripe_contention(rig, p));
      bw[{clients, s}] = res.write_bw();
      if (s == raid::Scheme::raid5) {
        sim::Duration wt = 0;
        for (std::uint32_t sv = 0; sv < kServers; ++sv) {
          waits += rig.server(sv).lock_stats().waits;
          wt += rig.server(sv).lock_stats().wait_time;
        }
        avg_wait_ms =
            waits ? sim::to_seconds(wt) * 1e3 / static_cast<double>(waits)
                  : 0.0;
      }
    }
    row.push_back(report::mbps(bw[{clients, raid::Scheme::raid5}]));
    row.push_back(report::mbps(bw[{clients, raid::Scheme::raid5_nolock}]));
    row.push_back(TextTable::num(waits));
    row.push_back(TextTable::num(avg_wait_ms, 2));
    t.add_row(std::move(row));
  }
  report::table("same-stripe aggregate write bandwidth (MB/s)", t);

  const double gap16 = bw[{16, raid::Scheme::raid5_nolock}] /
                       bw[{16, raid::Scheme::raid5}];
  const double gap1 =
      bw[{1, raid::Scheme::raid5_nolock}] / bw[{1, raid::Scheme::raid5}];
  std::printf("NO-LOCK advantage: %.2fx at 1 client, %.2fx at 16 clients\n",
              gap1, gap16);
  report::check("locking gap widens with contention", gap16 > gap1 * 1.3);
  return report::exit_code();
}
