// Ablation A7: reconstruction after a disk replacement — the cost of
// getting redundancy back, per scheme. With idle survivors, both mirror
// copies and parity reconstruction run at the replacement node's ingest
// speed (survivor reads are parallel), so the schemes' rebuild *rates* are
// comparable; the real asymmetry is READ AMPLIFICATION — parity rebuild
// reads N-1 bytes from the survivors for every byte restored, mirror
// rebuild reads one. That amplification is what steals foreground
// bandwidth during a real rebuild (the trade the paper's §3 survey — Petal,
// Tertiary Disk, RAID-x — wrestles with).
#include <algorithm>
#include <cstring>

#include "bench_common.hpp"
#include "raid/health.hpp"
#include "raid/rebuild.hpp"
#include "raid/recovery.hpp"

using namespace csar;

namespace {

struct RebuildOutcome {
  double mbps;
  double read_amplification;  // survivor bytes read per file byte protected
};

RebuildOutcome rebuild_run(raid::Scheme scheme, std::uint32_t nservers,
                           std::uint64_t file_bytes) {
  bench::Rig rig(bench::make_rig(scheme, nservers, 1,
                                hw::profile_experimental2003()));
  const double mbps = wl::run_on(rig, [](raid::Rig& r,
                            std::uint64_t total) -> sim::Task<double> {
    auto f = co_await r.client_fs().create("f", r.layout(64 * KiB));
    assert(f.ok());
    auto wr = co_await r.client_fs().write(*f, 0, Buffer::phantom(total));
    assert(wr.ok());
    (void)wr;
    auto fl = co_await r.client_fs().flush(*f);
    assert(fl.ok());
    (void)fl;

    const std::uint32_t victim = 1;
    r.server(victim).fail();
    r.server(victim).wipe();
    r.server(victim).recover();
    raid::Recovery rec = r.recovery();
    const sim::Time t0 = r.sim.now();
    auto rb = co_await rec.rebuild_server(*f, victim, total);
    assert(rb.ok());
    (void)rb;
    // Report rebuild speed in terms of the *file* bytes protected again.
    co_return static_cast<double>(total) /
        sim::to_seconds(r.sim.now() - t0) / 1e6;
  }(rig, file_bytes));
  // Survivor read traffic: what the rebuild pulled off the other servers,
  // per byte of the (whole) file being re-protected.
  std::uint64_t survivor_tx = 0;
  for (std::uint32_t s = 0; s < nservers; ++s) {
    if (s == 1) continue;  // the replaced server
    survivor_tx += rig.cluster.node(rig.server(s).node_id()).tx().bytes_total();
  }
  const std::uint32_t dn = nservers;  // rebuilt share ~= file/n
  (void)dn;
  return {mbps, static_cast<double>(survivor_tx) /
                    static_cast<double>(file_bytes)};
}

// --- A7b: rebuild throttling vs foreground latency ------------------------

struct CapOutcome {
  double rebuild_s = 0;       // rejoin -> admit
  double p50_ms = 0;          // foreground write latency percentiles
  double p99_ms = 0;
  std::uint64_t bytes = 0;    // reconstruction traffic charged
  std::uint64_t fp = 14695981039346656037ULL;  // FNV-1a, determinism check
};

void fold(CapOutcome& o, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    o.fp ^= (v >> (8 * i)) & 0xff;
    o.fp *= 1099511628211ULL;
  }
}

/// Crash server 1 under a RebuildCoordinator with the given rate cap and
/// restart it blank while a foreground writer keeps issuing 64 KiB writes;
/// report the rejoin->admit time and the foreground latency percentiles.
CapOutcome cap_run(double rate_cap) {
  raid::RigParams rp = bench::make_rig(raid::Scheme::hybrid, 6, 1,
                                       hw::profile_experimental2003());
  rp.rpc.timeout = sim::ms(150);
  rp.rpc.max_attempts = 4;
  rp.rpc.backoff = sim::ms(5);
  bench::Rig rig(rp);
  raid::HealthParams hp;
  hp.interval = sim::ms(50);
  raid::HealthMonitor mon(rig.client(), hp);
  rig.client_fs().enable_failover(&mon);
  raid::RebuildParams rbp;
  rbp.rate_cap = rate_cap;
  raid::RebuildCoordinator coord(rig, mon, rbp);

  std::vector<double> lat;
  sim::Time restart_at = 0;
  wl::run_on(
      rig,
      [](raid::Rig& r, raid::HealthMonitor& m, raid::RebuildCoordinator& co,
         std::vector<double>& lat, sim::Time& restart_at) -> sim::Task<int> {
        const std::uint64_t total = 128 * MiB;
        auto f = co_await r.client_fs().create("a7b", r.layout(64 * KiB));
        assert(f.ok());
        co.track(*f, total);
        auto wr = co_await r.client_fs().write(*f, 0, Buffer::phantom(total));
        assert(wr.ok());
        (void)wr;
        auto fl = co_await r.client_fs().flush(*f);
        assert(fl.ok());
        (void)fl;
        m.start();
        co.start();
        r.server(1).crash();
        co_await r.sim.sleep(sim::ms(200));
        restart_at = r.sim.now();
        r.server(1).restart(/*wipe_disk=*/true);
        // Foreground writer racing the rebuild: fixed op count so every
        // cap setting measures the same work.
        const std::uint64_t slots = total / (64 * KiB);
        for (std::uint32_t i = 0; i < 400; ++i) {
          const std::uint64_t off = ((i * 7ULL) % slots) * (64 * KiB);
          const sim::Time t0 = r.sim.now();
          auto w =
              co_await r.client_fs().write(*f, off, Buffer::phantom(64 * KiB));
          assert(w.ok());
          (void)w;
          lat.push_back(sim::to_seconds(r.sim.now() - t0) * 1e3);
          co_await r.sim.sleep(sim::ms(2));
        }
        const sim::Time bound = r.sim.now() + sim::sec(300);
        while (!co.idle() && r.sim.now() < bound) {
          co_await r.sim.sleep(sim::ms(5));
        }
        m.stop();
        co.stop();
        co_return 0;
      }(rig, mon, coord, lat, restart_at));

  // A later probe flap can trigger an extra live delta-resync on top of the
  // wipe rebuild, so completions may exceed one; the wipe rebuild is the
  // first admit.
  const auto& st = coord.stats();
  assert(st.rebuilds_completed >= 1 && !rig.server(1).fenced());
  CapOutcome o;
  o.rebuild_s = sim::to_seconds(st.first_admit_at - restart_at);
  o.bytes = st.bytes_rebuilt;
  std::vector<double> sorted = lat;
  std::sort(sorted.begin(), sorted.end());
  o.p50_ms = sorted[sorted.size() / 2];
  o.p99_ms = sorted[sorted.size() * 99 / 100];
  for (double v : lat) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    fold(o, bits);
  }
  fold(o, st.bytes_rebuilt);
  fold(o, st.passes);
  fold(o, st.recopy_passes);
  fold(o, static_cast<std::uint64_t>(st.last_rebuild_time));
  return o;
}

}  // namespace

int main() {
  const std::uint64_t kFile = 256 * MiB;
  report::banner("A7", "Server rebuild speed after disk replacement",
                 bench::setup_line(6, 1, "experimental-2003", 64 * KiB) +
                     ", 256 MiB file, server 1 replaced and rebuilt");
  report::expectations({
      "with idle survivors all schemes rebuild at comparable rates, scaling",
      "with server count (the lost share shrinks)",
      "the structural cost is survivor read traffic: parity rebuild reads",
      "~(N-1) bytes per rebuilt byte, a mirror copy reads ~2 (data+mirror)",
  });

  TextTable t({"scheme", "speed @4", "amp @4", "speed @6", "amp @6",
               "speed @8", "amp @8"});
  std::map<std::pair<raid::Scheme, std::uint32_t>, RebuildOutcome> out;
  for (raid::Scheme s : {raid::Scheme::raid1, raid::Scheme::raid5,
                         raid::Scheme::hybrid}) {
    std::vector<std::string> row = {raid::scheme_name(s)};
    for (std::uint32_t n : {4u, 6u, 8u}) {
      out[{s, n}] = rebuild_run(s, n, kFile);
      row.push_back(report::mbps(out[{s, n}].mbps * 1e6));
      row.push_back(TextTable::num(out[{s, n}].read_amplification, 2) + "x");
    }
    t.add_row(std::move(row));
  }
  report::table(
      "rebuild speed (file MB/s) and survivor read amplification "
      "(survivor bytes read / file byte)",
      t);

  // With idle survivors the speeds are comparable; the structural cost is
  // the read amplification parity rebuild imposes on the survivors.
  report::check("RAID1 amplification stays flat as servers grow",
                out[{raid::Scheme::raid1, 8}].read_amplification <
                    1.3 * out[{raid::Scheme::raid1, 4}].read_amplification);
  // Per *rebuilt* byte (the lost share is file/N), parity rebuild reads
  // ~(N-1)x: amplification per rebuilt byte = per-file amp x N.
  report::check("RAID5 per-rebuilt-byte amplification grows with width",
                out[{raid::Scheme::raid5, 8}].read_amplification * 8 >
                    1.5 * out[{raid::Scheme::raid5, 4}].read_amplification *
                        4);
  report::check("RAID5 reads survivors harder than RAID1 at 6 servers",
                out[{raid::Scheme::raid5, 6}].read_amplification >
                    2.0 * out[{raid::Scheme::raid1, 6}].read_amplification);
  report::check("rebuild speed scales with servers (smaller lost share)",
                out[{raid::Scheme::raid5, 8}].mbps >
                    out[{raid::Scheme::raid5, 4}].mbps);

  // A7b: the RebuildCoordinator's rate cap trades rebuild time for
  // foreground latency. An uncapped run sets the reference rate; capping
  // the copier at 50% / 25% of it must stretch the rebuild monotonically
  // while the foreground writer's tail latency relaxes.
  report::banner("A7b", "Online rebuild throttling: rebuild time vs "
                        "foreground write latency",
                 bench::setup_line(6, 1, "experimental-2003", 64 * KiB) +
                     ", 128 MiB file, server 1 crashes and restarts blank");
  report::expectations({
      "tighter rate caps stretch the rebuild (monotone duration)",
      "and relax the foreground writer's tail latency (monotone p99)",
      "the uncapped run is bit-deterministic across repeats",
  });
  const CapOutcome uncapped = cap_run(0.0);
  const CapOutcome uncapped2 = cap_run(0.0);
  const double rate = static_cast<double>(uncapped.bytes) /
                      (uncapped.rebuild_s > 0 ? uncapped.rebuild_s : 1.0);
  const CapOutcome half = cap_run(0.5 * rate);
  const CapOutcome quarter = cap_run(0.25 * rate);

  TextTable tb({"rate cap", "rebuild s", "fg p50 ms", "fg p99 ms"});
  const auto row = [&tb](const char* name, const CapOutcome& o) {
    tb.add_row({name, TextTable::num(o.rebuild_s, 2),
                TextTable::num(o.p50_ms, 2), TextTable::num(o.p99_ms, 2)});
  };
  row("uncapped", uncapped);
  row("50%", half);
  row("25%", quarter);
  report::table("throttled online rebuild (hybrid, 6 servers)", tb);

  report::check("rebuild time grows monotonically as the cap tightens",
                uncapped.rebuild_s < half.rebuild_s &&
                    half.rebuild_s < quarter.rebuild_s);
  report::check("foreground p99 relaxes monotonically as the cap tightens",
                uncapped.p99_ms >= half.p99_ms * 0.999 &&
                    half.p99_ms >= quarter.p99_ms * 0.999);
  report::check("uncapped rebuild run is bit-deterministic",
                uncapped.fp == uncapped2.fp);
  return report::exit_code();
}
