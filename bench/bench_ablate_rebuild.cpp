// Ablation A7: reconstruction after a disk replacement — the cost of
// getting redundancy back, per scheme. With idle survivors, both mirror
// copies and parity reconstruction run at the replacement node's ingest
// speed (survivor reads are parallel), so the schemes' rebuild *rates* are
// comparable; the real asymmetry is READ AMPLIFICATION — parity rebuild
// reads N-1 bytes from the survivors for every byte restored, mirror
// rebuild reads one. That amplification is what steals foreground
// bandwidth during a real rebuild (the trade the paper's §3 survey — Petal,
// Tertiary Disk, RAID-x — wrestles with).
#include "bench_common.hpp"
#include "raid/recovery.hpp"

using namespace csar;

namespace {

struct RebuildOutcome {
  double mbps;
  double read_amplification;  // survivor bytes read per file byte protected
};

RebuildOutcome rebuild_run(raid::Scheme scheme, std::uint32_t nservers,
                           std::uint64_t file_bytes) {
  raid::Rig rig(bench::make_rig(scheme, nservers, 1,
                                hw::profile_experimental2003()));
  const double mbps = wl::run_on(rig, [](raid::Rig& r,
                            std::uint64_t total) -> sim::Task<double> {
    auto f = co_await r.client_fs().create("f", r.layout(64 * KiB));
    assert(f.ok());
    auto wr = co_await r.client_fs().write(*f, 0, Buffer::phantom(total));
    assert(wr.ok());
    (void)wr;
    auto fl = co_await r.client_fs().flush(*f);
    assert(fl.ok());
    (void)fl;

    const std::uint32_t victim = 1;
    r.server(victim).fail();
    r.server(victim).wipe();
    r.server(victim).recover();
    raid::Recovery rec = r.recovery();
    const sim::Time t0 = r.sim.now();
    auto rb = co_await rec.rebuild_server(*f, victim, total);
    assert(rb.ok());
    (void)rb;
    // Report rebuild speed in terms of the *file* bytes protected again.
    co_return static_cast<double>(total) /
        sim::to_seconds(r.sim.now() - t0) / 1e6;
  }(rig, file_bytes));
  // Survivor read traffic: what the rebuild pulled off the other servers,
  // per byte of the (whole) file being re-protected.
  std::uint64_t survivor_tx = 0;
  for (std::uint32_t s = 0; s < nservers; ++s) {
    if (s == 1) continue;  // the replaced server
    survivor_tx += rig.cluster.node(rig.server(s).node_id()).tx().bytes_total();
  }
  const std::uint32_t dn = nservers;  // rebuilt share ~= file/n
  (void)dn;
  return {mbps, static_cast<double>(survivor_tx) /
                    static_cast<double>(file_bytes)};
}

}  // namespace

int main() {
  const std::uint64_t kFile = 256 * MiB;
  report::banner("A7", "Server rebuild speed after disk replacement",
                 bench::setup_line(6, 1, "experimental-2003", 64 * KiB) +
                     ", 256 MiB file, server 1 replaced and rebuilt");
  report::expectations({
      "with idle survivors all schemes rebuild at comparable rates, scaling",
      "with server count (the lost share shrinks)",
      "the structural cost is survivor read traffic: parity rebuild reads",
      "~(N-1) bytes per rebuilt byte, a mirror copy reads ~2 (data+mirror)",
  });

  TextTable t({"scheme", "speed @4", "amp @4", "speed @6", "amp @6",
               "speed @8", "amp @8"});
  std::map<std::pair<raid::Scheme, std::uint32_t>, RebuildOutcome> out;
  for (raid::Scheme s : {raid::Scheme::raid1, raid::Scheme::raid5,
                         raid::Scheme::hybrid}) {
    std::vector<std::string> row = {raid::scheme_name(s)};
    for (std::uint32_t n : {4u, 6u, 8u}) {
      out[{s, n}] = rebuild_run(s, n, kFile);
      row.push_back(report::mbps(out[{s, n}].mbps * 1e6));
      row.push_back(TextTable::num(out[{s, n}].read_amplification, 2) + "x");
    }
    t.add_row(std::move(row));
  }
  report::table(
      "rebuild speed (file MB/s) and survivor read amplification "
      "(survivor bytes read / file byte)",
      t);

  // With idle survivors the speeds are comparable; the structural cost is
  // the read amplification parity rebuild imposes on the survivors.
  report::check("RAID1 amplification stays flat as servers grow",
                out[{raid::Scheme::raid1, 8}].read_amplification <
                    1.3 * out[{raid::Scheme::raid1, 4}].read_amplification);
  // Per *rebuilt* byte (the lost share is file/N), parity rebuild reads
  // ~(N-1)x: amplification per rebuilt byte = per-file amp x N.
  report::check("RAID5 per-rebuilt-byte amplification grows with width",
                out[{raid::Scheme::raid5, 8}].read_amplification * 8 >
                    1.5 * out[{raid::Scheme::raid5, 4}].read_amplification *
                        4);
  report::check("RAID5 reads survivors harder than RAID1 at 6 servers",
                out[{raid::Scheme::raid5, 6}].read_amplification >
                    2.0 * out[{raid::Scheme::raid1, 6}].read_amplification);
  report::check("rebuild speed scales with servers (smaller lost share)",
                out[{raid::Scheme::raid5, 8}].mbps >
                    out[{raid::Scheme::raid5, 4}].mbps);
  return 0;
}
