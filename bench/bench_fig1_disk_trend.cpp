// Figure 1: the time to fill a disk to capacity over the years — the
// technology-trend argument for privileging bandwidth over storage
// efficiency (§2). Capacity grew ~1.6x/year while transfer rate grew only
// ~1.25x/year, so fill time grows ~1.28x/year: tenfold over ~15 years.
#include <cmath>

#include "bench_common.hpp"

using namespace csar;

int main() {
  report::banner("F1", "Time to fill a disk to capacity — Figure 1",
                 "historical trend model from §2 (Dahlin's technology data)");
  report::expectations({
      "fill time grows roughly tenfold from 1985 to 2000",
  });

  // Anchors: a 1985-era disk of ~30 MB at ~0.4 MB/s. Growth rates are the
  // effective ones behind Dahlin's historical data (capacity ~1.55x/yr,
  // transfer rate ~1.32x/yr) — these compound to the figure's tenfold
  // fill-time growth over 15 years. (§2's rounded 1.6x/1.25x figures would
  // compound to ~40x, more than the figure itself shows.)
  const double cap_growth = 1.55;
  const double bw_growth = 1.32;
  const double cap0_mb = 30.0;
  const double bw0_mbps = 0.4;
  TextTable t({"year", "capacity", "bandwidth (MB/s)", "fill time (min)"});
  double first_fill = 0;
  double last_fill = 0;
  for (int year = 1985; year <= 2000; ++year) {
    const double years = year - 1985;
    const double cap = cap0_mb * std::pow(cap_growth, years);
    const double bw = bw0_mbps * std::pow(bw_growth, years);
    const double fill_min = cap / bw / 60.0;
    if (year == 1985) first_fill = fill_min;
    last_fill = fill_min;
    t.add_row({TextTable::num(static_cast<std::uint64_t>(year)),
               format_bytes(static_cast<std::uint64_t>(cap * 1e6)),
               TextTable::num(bw, 2), TextTable::num(fill_min, 1)});
  }
  report::table("disk fill time by year", t);

  const double growth = last_fill / first_fill;
  std::printf("fill-time growth 1985->2000: %.1fx\n", growth);
  report::check("fill time grows ~10x over 15 years (8x..16x)",
                growth > 8.0 && growth < 16.0);
  return report::exit_code();
}
