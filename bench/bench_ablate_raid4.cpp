// Ablation A5 (§3): RAID4 vs RAID5 parity placement. Swift/RAID implemented
// both and reported RAID4 *worse* than RAID5 — with one dedicated parity
// server, every partial-stripe RMW in the file system funnels through it.
// CSAR's rotating placement spreads that load (and is what makes the
// single-failure recoverability proof work with data on all N servers).
#include "bench_common.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const std::uint32_t kServers = 6;
  const auto profile = hw::profile_experimental2003();
  report::banner("A5", "RAID4 vs RAID5 parity placement — §3 (Swift)",
                 bench::setup_line(kServers, 6, "experimental-2003", kSu));
  report::expectations({
      "full-stripe writes: RAID4 trails RAID5 by ~(N-1)/N (one server holds\n"
      "no data, so streaming capacity is a data server short)",
      "concurrent partial-stripe writers: RAID4 bottlenecks on the one "
      "parity server and falls behind RAID5",
  });

  // --- large aligned writes: placement barely matters ---
  TextTable big({"scheme", "full-stripe MB/s"});
  std::map<raid::Scheme, double> full_bw;
  for (raid::Scheme s : {raid::Scheme::raid4, raid::Scheme::raid5}) {
    bench::Rig rig(bench::make_rig(s, kServers, 1, profile));
    wl::MicroParams p;
    p.stripe_unit = kSu;
    p.total_bytes = 64 * MiB;
    full_bw[s] = wl::run_on(rig, wl::full_stripe_write(rig, p)).write_bw();
    big.add_row({raid::scheme_name(s), report::mbps(full_bw[s])});
  }
  report::table("single client, aligned full stripes", big);

  // --- concurrent partial-stripe writers in disjoint groups ---
  TextTable small({"clients", "RAID4", "RAID5", "RAID4 parity-server waits"});
  std::map<std::pair<std::uint32_t, raid::Scheme>, double> bw;
  for (std::uint32_t clients : {2u, 4u, 8u, 16u}) {
    std::vector<std::string> row = {TextTable::num(std::uint64_t{clients})};
    std::uint64_t waits = 0;
    for (raid::Scheme s : {raid::Scheme::raid4, raid::Scheme::raid5}) {
      bench::Rig rig(bench::make_rig(s, kServers, clients, profile));
      const double mbps = wl::run_on(
          rig,
          [](raid::Rig& r, std::uint32_t nclients) -> sim::Task<double> {
            auto f = co_await r.client_fs(0).create("f",
                                                    r.layout(64 * KiB));
            assert(f.ok());
            const std::uint64_t w = f->layout.stripe_width();
            const sim::Time t0 = r.sim.now();
            co_await wl::run_clients(
                r, nclients, [&](std::uint32_t c) -> sim::Task<void> {
                  return [](raid::Rig& rr, pvfs::OpenFile fl,
                            std::uint32_t client,
                            std::uint64_t width) -> sim::Task<void> {
                    // Partial writes, each client in its own groups: RAID5
                    // spreads the parity RMWs, RAID4 cannot.
                    for (int i = 0; i < 30; ++i) {
                      auto wr = co_await rr.client_fs(client).write(
                          fl,
                          (client * 32 + static_cast<std::uint64_t>(i)) *
                                  width +
                              512,
                          Buffer::phantom(128 * KiB));
                      assert(wr.ok());
                      (void)wr;
                    }
                  }(r, *f, c, w);
                });
            const double bytes = 30.0 * nclients * 128 * KiB;
            co_return bytes / sim::to_seconds(r.sim.now() - t0);
          }(rig, clients));
      bw[{clients, s}] = mbps;
      row.push_back(report::mbps(mbps));
      if (s == raid::Scheme::raid4) {
        for (std::uint32_t sv = 0; sv < kServers; ++sv) {
          waits += rig.server(sv).lock_stats().waits;
        }
      }
    }
    row.push_back(TextTable::num(waits));
    small.add_row(std::move(row));
  }
  report::table("concurrent partial-stripe writers, disjoint groups (MB/s)",
                small);

  const double expected_ratio =
      static_cast<double>(kServers - 1) / kServers;
  report::check("full stripes: RAID4/RAID5 ~ (N-1)/N (one data server short)",
                std::abs(full_bw[raid::Scheme::raid4] /
                             full_bw[raid::Scheme::raid5] -
                         expected_ratio) < 0.06);
  report::check("16 writers: RAID5 beats RAID4 (Swift's finding)",
                bw[{16, raid::Scheme::raid5}] >
                    1.15 * bw[{16, raid::Scheme::raid4}]);
  const double r4_scale =
      bw[{16, raid::Scheme::raid4}] / bw[{2, raid::Scheme::raid4}];
  const double r5_scale =
      bw[{16, raid::Scheme::raid5}] / bw[{2, raid::Scheme::raid5}];
  std::printf("scaling 2->16 clients: RAID4 %.2fx, RAID5 %.2fx\n", r4_scale,
              r5_scale);
  report::check("RAID5 scales better with writers", r5_scale > r4_scale);
  return report::exit_code();
}
