// Ablation A8: RAID1 mirror-balanced reads. The paper never reads
// redundancy in normal operation ("the expected performance of reads is the
// same as in PVFS"), leaving half of RAID1's aggregate read bandwidth on
// the table. Serving alternating stripe units from the mirror copies is
// the natural extension — this bench measures what it buys.
#include "bench_common.hpp"

using namespace csar;

namespace {

struct Outcome {
  double plain_mbps;
  double balanced_mbps;
};

Outcome run(std::uint32_t nservers) {
  bench::Rig rig(bench::make_rig(raid::Scheme::raid1, nservers, 1,
                                hw::profile_experimental2003()));
  return wl::run_on(rig, [](raid::Rig& r) -> sim::Task<Outcome> {
    auto f = co_await r.client_fs().create("f", r.layout(64 * KiB));
    assert(f.ok());
    const std::uint64_t total = 64 * MiB;
    auto wr = co_await r.client_fs().write(*f, 0, Buffer::phantom(total));
    assert(wr.ok());
    (void)wr;

    Outcome out{};
    const sim::Time t0 = r.sim.now();
    auto plain = co_await r.client_fs().read(*f, 0, total);
    assert(plain.ok());
    (void)plain;
    out.plain_mbps =
        static_cast<double>(total) / sim::to_seconds(r.sim.now() - t0) / 1e6;

    const sim::Time t1 = r.sim.now();
    auto balanced = co_await r.client_fs().read_balanced(*f, 0, total);
    assert(balanced.ok());
    (void)balanced;
    out.balanced_mbps =
        static_cast<double>(total) / sim::to_seconds(r.sim.now() - t1) / 1e6;
    co_return out;
  }(rig));
}

}  // namespace

int main() {
  report::banner("A8", "RAID1 mirror-balanced reads — extension ablation",
                 "single client reading 64 MiB sequentially, RAID1");
  report::expectations({
      "plain reads use only the primary copies (the paper's behaviour)",
      "balancing over both copies lifts single-client read bandwidth until",
      "the client link caps it",
  });

  TextTable t({"ioservers", "plain read", "balanced read", "gain"});
  std::map<std::uint32_t, Outcome> out;
  for (std::uint32_t n : {2u, 4u, 6u}) {
    out[n] = run(n);
    t.add_row({TextTable::num(std::uint64_t{n}),
               report::mbps(out[n].plain_mbps * 1e6),
               report::mbps(out[n].balanced_mbps * 1e6),
               TextTable::num(out[n].balanced_mbps / out[n].plain_mbps, 2) +
                   "x"});
  }
  report::table("single-client RAID1 read bandwidth (MB/s)", t);

  report::check("balanced beats plain at 4 servers",
                out[4].balanced_mbps > 1.2 * out[4].plain_mbps);
  report::check("plain read bandwidth unchanged by the feature's existence",
                out[4].plain_mbps > 0);
  return report::exit_code();
}
