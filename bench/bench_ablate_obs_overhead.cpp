// Ablation A11: cost of the observability layer (csar::obs).
//
// The tracer and metrics registry are wired through every hot path in the
// stack — client RPC issue, fabric transfer, server dispatch, parity-lock
// wait, disk access — behind nullable-pointer guards. This bench puts a
// number on both sides of that design:
//
//   off  the guards exist but no tracer/registry is attached (the default
//        for every perf bench) — this must cost nothing measurable, and the
//        simulation must be bit-identical to a build without the hooks;
//   on   a tracer + registry attached, every span and sample recorded.
//
// Attaching the tracer must not change the simulation itself: same event
// count, same simulated end time, byte-identical trace JSON across reruns.
// Host timing uses process CPU time (wall clock on a shared machine swings
// ±5% from scheduler noise alone, drowning a 2% effect), with off/on reps
// interleaved and best-of-N taken per config so host-speed drift cancels.
#include <ctime>

#include <cstdio>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace csar;

namespace {

constexpr std::uint32_t kServers = 6;
constexpr std::uint32_t kSu = 64 * KiB;
constexpr std::uint32_t kRounds = 192;
constexpr int kReps = 5;

/// Process CPU seconds — immune to other tenants stealing the core, which
/// is exactly the noise that makes sub-2% wall-clock comparisons unstable.
double cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Run {
  double cpu_s = 0.0;          // best-of-kReps process CPU seconds
  sim::Time end = 0;            // simulated end instant
  std::uint64_t events = 0;     // simulator events executed
  std::size_t spans = 0;        // spans recorded (traced runs)
  std::string json;             // trace dump of the last rep (traced runs)
};

/// The A9 six-group straddling-write workload (bench_ablate_rpc_batching):
/// misaligned RAID5 writes spanning kServers groups — every layer of the
/// stack is exercised on every op (RPCs, fabric, locks, cache, disk). Run
/// with real (pattern) payloads, not phantom ones, so the host-side cost per
/// simulated byte is the data-carrying one tracing overhead is judged
/// against.
sim::Task<void> straddle(raid::Rig& r, std::uint32_t rounds) {
  const auto layout = r.layout(kSu);
  const std::uint64_t width = layout.stripe_width();
  const std::uint64_t off = width / 2;
  const std::uint64_t len = kServers * width;
  auto f = co_await r.client_fs().create("f", layout);
  assert(f.ok());
  auto init =
      co_await r.client_fs().write(*f, 0, Buffer::pattern(off + len, 1));
  assert(init.ok());
  (void)init;
  for (std::uint32_t i = 0; i < rounds; ++i) {
    auto wr = co_await r.client_fs().write(*f, off,
                                           Buffer::pattern(len, 2 + i));
    assert(wr.ok());
    (void)wr;
  }
}

/// One timed run. Callers interleave off/on reps (off, on, off, on, ...)
/// and take the best of each so slow host-speed drift (thermal, noisy
/// neighbours) hits both configurations equally instead of biasing the
/// ratio toward whichever phase ran second.
void measure_once(bool traced, Run& out) {
  obs::Tracer tracer;
  obs::Registry metrics;
  raid::Rig rig(bench::make_rig(raid::Scheme::raid5, kServers, 1,
                                hw::profile_experimental2003()));
  if (traced) rig.set_obs(&tracer, &metrics);
  const double t0 = cpu_now();
  wl::run_on(rig, [](raid::Rig& r) -> sim::Task<int> {
    co_await straddle(r, kRounds);
    co_return 0;
  }(rig));
  const double secs = cpu_now() - t0;
  if (secs < out.cpu_s) out.cpu_s = secs;
  out.end = rig.sim.now();
  out.events = rig.sim.events_executed();
  if (traced) {
    out.spans = tracer.span_count();
    out.json = tracer.to_json();
    rig.set_obs(nullptr, nullptr);
  }
}

}  // namespace

int main() {
  report::banner(
      "A11", "Observability overhead (tracing off vs on)",
      bench::setup_line(kServers, 1, "experimental-2003", kSu) +
          ", 6-group straddling writes, best of " + std::to_string(kReps) +
          " reps");
  report::expectations({
      "detached (off) is the shipping default: nullable-pointer guards only",
      "attaching the tracer records every stage but adds ZERO simulation",
      "events — simulated time and event counts are bit-identical",
      "trace JSON is byte-identical across reruns of the same seed",
      "CPU-time slowdown of full tracing stays under 10% (the bound is",
      "relative: the perf-tuned hot path shrank the denominator, not the",
      "per-span cost)",
  });

  Run off, on, on2;
  off.cpu_s = on.cpu_s = on2.cpu_s = 1e9;
  measure_once(false, off);  // warm-up rep: page in code + allocator state
  for (int rep = 0; rep < kReps; ++rep) {
    measure_once(false, off);
    measure_once(true, on);
  }
  measure_once(true, on2);

  const double slow = off.cpu_s > 0 ? on.cpu_s / off.cpu_s - 1.0 : 0.0;
  TextTable t({"config", "cpu ms", "sim end ms", "events", "spans"});
  t.add_row({"tracing off", TextTable::num(
                                static_cast<std::uint64_t>(off.cpu_s * 1e3)),
             TextTable::num(static_cast<std::uint64_t>(
                 sim::to_seconds(off.end) * 1e3)),
             TextTable::num(off.events), "0"});
  t.add_row({"tracing on", TextTable::num(
                               static_cast<std::uint64_t>(on.cpu_s * 1e3)),
             TextTable::num(static_cast<std::uint64_t>(
                 sim::to_seconds(on.end) * 1e3)),
             TextTable::num(on.events), TextTable::num(on.spans)});
  report::table("obs overhead ablation", t);
  std::printf("JSON {\"bench\":\"ablate_obs_overhead\",\"off_ms\":%.3f,"
              "\"on_ms\":%.3f,\"slowdown\":%.4f,\"spans\":%zu}\n",
              off.cpu_s * 1e3, on.cpu_s * 1e3, slow, on.spans);

  report::check("attached tracer changes nothing simulated "
                "(events + end time identical)",
                on.events == off.events && on.end == off.end);
  report::check("trace JSON byte-identical across same-seed reruns",
                !on.json.empty() && on.json == on2.json);
  report::check("tracing records the full request path (>1000 spans)",
                on.spans > 1000);
  // Relative bound. The traced and untraced runs do identical simulated
  // work; after the DES/payload perf work the untraced run is ~4x
  // faster, so the same absolute per-span cost is a larger fraction.
  report::check("tracing CPU-time slowdown < 10%", slow < 0.10);
  return report::exit_code();
}
