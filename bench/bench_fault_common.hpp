// Fault-plan harness for the figure benches: run a workload generator under
// an injected FaultPlan with the full robustness stack attached — RPC
// deadlines + retry, HealthMonitor detection, CsarFs failover and an online
// RebuildCoordinator (no quiescing: detection, degraded IO, rebuild and
// admit all overlap the workload). Benches that include this must link
// csar_fault.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "raid/health.hpp"
#include "raid/rebuild.hpp"

namespace csar::bench {

struct FaultedOutcome {
  wl::WorkloadResult result;
  raid::RebuildStats rebuild;
  sim::Duration detection = 0;  ///< first crash -> monitor transition
  bool all_admitted = true;     ///< no restarted server left fenced
};

/// The perf benches run with wait-forever RPCs; a faulted run needs
/// deadlines and retries or the first crash would hang a client forever.
inline void arm_fault_tolerance(raid::RigParams& rp) {
  rp.rpc.timeout = sim::ms(150);
  rp.rpc.max_attempts = 4;
  rp.rpc.backoff = sim::ms(5);
}

/// Build the rig, attach injector + monitor + coordinator, run the workload
/// `make(rig, coord)` produces (it must set tolerate_faults and route
/// on_create into coord.track), then wait for every scheduled restart to be
/// rebuilt and admitted. Blocking, like wl::run_on.
inline FaultedOutcome run_faulted(
    const raid::RigParams& rp, const fault::FaultPlan& plan,
    const raid::RebuildParams& rbp,
    const std::function<sim::Task<wl::WorkloadResult>(
        raid::Rig&, raid::RebuildCoordinator&)>& make) {
  bench::Rig rig(rp);
  raid::HealthParams hp;
  hp.interval = sim::ms(100);
  raid::HealthMonitor mon(rig.client(), hp);
  std::vector<pvfs::IoServer*> server_ptrs;
  for (auto& s : rig.servers) server_ptrs.push_back(s.get());
  fault::FaultInjector inj(rig.cluster, rig.fabric, std::move(server_ptrs),
                           plan);
  for (auto& fs : rig.fs) fs->enable_failover(&mon);
  raid::RebuildCoordinator coord(rig, mon, rbp);

  FaultedOutcome out;
  rig.sim.spawn([](raid::Rig& r, raid::HealthMonitor& m,
                   fault::FaultInjector& in, raid::RebuildCoordinator& co,
                   const fault::FaultPlan& pl,
                   const std::function<sim::Task<wl::WorkloadResult>(
                       raid::Rig&, raid::RebuildCoordinator&)>& mk,
                   FaultedOutcome* o) -> sim::Task<void> {
    m.start();
    co.start();
    in.start();
    o->result = co_await mk(r, co);
    sim::Time last_restart = 0;
    for (const auto& c : pl.crashes) {
      if (c.restart_at && *c.restart_at > last_restart) {
        last_restart = *c.restart_at;
      }
    }
    if (last_restart > r.sim.now()) co_await r.sim.sleep_until(last_restart);
    // Outwait one full rebuild budget plus a retry: benches size give_up to
    // their dataset, so the harness bound must scale with it.
    const sim::Time give_up =
        r.sim.now() + 2 * co.params().give_up + sim::sec(30);
    while (!co.idle() && r.sim.now() < give_up) {
      co_await r.sim.sleep(sim::ms(5));
    }
    // Stop both pollers from inside the sim or sim.run() never drains.
    m.stop();
    co.stop();
  }(rig, mon, inj, coord, plan, make, &out));
  rig.sim.run();

  out.rebuild = coord.stats();
  for (const auto& c : plan.crashes) {
    if (c.restart_at && rig.server(c.server).fenced()) {
      out.all_admitted = false;
    }
  }
  if (auto t0 = inj.first_crash_time(); t0 && out.rebuild.first_down_at > *t0) {
    out.detection = out.rebuild.first_down_at - *t0;
  }
  return out;
}

}  // namespace csar::bench
