// Ablation A8: what each layer of the robustness stack buys under an
// identical fault storm.
//
// One deterministic FaultPlan (crash + blank-disk rejoin, a lossy link, a
// fail-slow disk, latent sector errors) is replayed against the same
// workload with the client machinery progressively enabled:
//   retry=1   deadlines only — a timed-out op fails unless failover saves it
//   retry=4   full stack: jittered exponential backoff absorbs the lossy
//             link, failover absorbs the crash window
// The claim worth pinning: the retry budget moves *availability* (fewer
// acknowledged-op failures during the storm) but never *integrity* — a read
// either fails loudly or returns bytes that match the shadow copy. Those
// are the two separate guarantees the scheme design cares about (§1's
// single-failure tolerance, audited end to end here).
#include "bench_common.hpp"
#include "fault/storm.hpp"
#include "pvfs/io_server.hpp"

using namespace csar;

namespace {

fault::StormParams storm_params(raid::Scheme scheme,
                                std::uint32_t max_attempts) {
  fault::StormParams p;
  p.rig.scheme = scheme;
  p.rig.nservers = 4;
  p.rig.rpc.timeout = sim::ms(150);
  p.rig.rpc.max_attempts = max_attempts;
  p.rig.rpc.backoff = sim::ms(5);
  p.health.interval = sim::ms(100);
  p.file_size = 2 * MiB;
  p.stripe_unit = 32 * KiB;
  p.io_size = 32 * KiB;
  p.ops = 300;
  p.op_gap = sim::ms(8);

  p.plan.seed = 77;
  p.plan.crashes.push_back({sim::ms(400), 1, sim::ms(1200), /*wipe=*/true});
  fault::SlowDisk sd;
  sd.start = sim::ms(500);
  sd.end = sim::ms(800);
  sd.server = 0;
  sd.factor = 3.0;
  p.plan.slow_disks.push_back(sd);
  fault::MediaFault mf;
  mf.at = sim::ms(2500);
  mf.server = 3;
  mf.file = pvfs::IoServer::data_name(1);
  mf.off = 0;
  mf.len = 1 * MiB;
  p.plan.media.push_back(mf);

  raid::Rig probe(p.rig);  // resolve node ids for the lossy link
  fault::LinkFault lf;
  lf.a = probe.client().node_id();
  lf.b = probe.server(2).node_id();
  lf.start = sim::ms(300);
  lf.end = sim::ms(900);
  lf.drop_p = 0.3;
  p.plan.links.push_back(lf);
  return p;
}

}  // namespace

int main() {
  report::banner("ablate-fault-storm",
                 "Retry budget vs availability under one identical storm",
                 "4 I/O servers, 1 client, 150 ms RPC deadline, "
                 "100 ms health probes");
  report::expectations({
      "more attempts -> fewer failed ops (higher availability)",
      "verify mismatches stay 0 in every configuration: retries change",
      "whether an op completes, never whether completed data is right",
  });

  TextTable t({"scheme", "attempts", "avail", "ops failed", "retries",
               "degraded", "mismatch"});
  bool integrity = true;
  double avail[2] = {0.0, 0.0};
  for (raid::Scheme scheme :
       {raid::Scheme::raid1, raid::Scheme::raid5, raid::Scheme::hybrid}) {
    int col = 0;
    for (std::uint32_t attempts : {1u, 4u}) {
      fault::StormMetrics m =
          fault::run_storm(storm_params(scheme, attempts));
      char a[16];
      std::snprintf(a, sizeof(a), "%.1f%%", 100.0 * m.availability);
      t.add_row({scheme_name(scheme), std::to_string(attempts), a,
                 std::to_string(m.ops_failed), std::to_string(m.rpc_retries),
                 std::to_string(m.degraded_reads + m.degraded_writes),
                 std::to_string(m.verify_mismatches)});
      integrity = integrity && m.verify_mismatches == 0;
      avail[col++] += m.availability;
    }
  }
  report::table("one storm, sweeping the retry budget", t);
  report::check("retry budget improves mean availability",
                avail[1] >= avail[0]);
  report::check("zero verify mismatches in every configuration", integrity);
  return report::exit_code();
}
