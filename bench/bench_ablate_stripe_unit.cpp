// Ablation A2 (§6.7): how the stripe unit size drives the Hybrid scheme's
// overflow fragmentation on a FLASH-like small-write workload — the reason
// Table 2 shows Hybrid above RAID1 at 64K but below it at 16K.
#include "bench_common.hpp"

using namespace csar;

int main() {
  const auto profile = hw::profile_experimental2003();
  report::banner("A2",
                 "Stripe-unit sweep: Hybrid overflow fragmentation — §6.7",
                 "6 I/O servers, FLASH-like workload (4 procs, 45 MB), "
                 "su in {4K..256K}");
  report::expectations({
      "small stripe units: more full stripes + less overflow rounding -> "
      "storage near RAID5",
      "large stripe units: every request is a partial stripe, each "
      "allocating two whole units -> storage beyond RAID1's 2x",
  });

  TextTable t({"stripe unit", "logical", "hybrid total", "overflow",
               "vs RAID0", "overflow fraction"});
  double ratio_small = 0;
  double ratio_large = 0;
  for (std::uint32_t su :
       {4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB}) {
    bench::Rig rig(
        bench::make_rig(raid::Scheme::hybrid, 6, 4, profile));
    wl::FlashParams p;
    p.nprocs = 4;
    p.stripe_unit = su;
    (void)wl::run_on(rig, wl::flash_io(rig, p));
    pvfs::StorageInfo sum;
    for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
      const auto info = rig.server(s).total_storage();
      sum.data_bytes += info.data_bytes;
      sum.red_bytes += info.red_bytes;
      sum.overflow_bytes += info.overflow_bytes;
    }
    // Logical bytes written == the RAID0 footprint for this workload.
    const double logical = 45e6;
    const std::uint64_t total =
        sum.data_bytes + sum.red_bytes + sum.overflow_bytes;
    const double ratio = static_cast<double>(total) / logical;
    if (su == 4 * KiB) ratio_small = ratio;
    if (su == 256 * KiB) ratio_large = ratio;
    // Fraction of the stored bytes sitting in (fragmented) overflow space.
    const double ovfl_frac =
        static_cast<double>(sum.overflow_bytes) / static_cast<double>(total);
    t.add_row({format_bytes(su), TextTable::num(logical / 1e6, 0) + " MB",
               TextTable::num(static_cast<double>(total) / 1e6, 0) + " MB",
               TextTable::num(static_cast<double>(sum.overflow_bytes) / 1e6,
                              0) +
                   " MB",
               TextTable::num(ratio, 2) + "x",
               TextTable::num(ovfl_frac, 2)});
  }
  report::table("Hybrid storage vs stripe unit (FLASH-like workload)", t);

  report::check("4K stripe unit cheaper than RAID1's 2.0x",
                ratio_small < 2.0);
  report::check("256K stripe unit costlier than RAID1's 2.0x",
                ratio_large > 2.0);
  return report::exit_code();
}
