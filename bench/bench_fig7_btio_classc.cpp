// Figure 7: NAS BTIO Class C (6802 MB) — write (a) and overwrite (b).
// The interesting effect: RAID1 writes twice the bytes, overflowing the
// server page caches and collapsing to disk rate; the Hybrid scheme's
// overwrite bandwidth ends up ~230% of both RAID1 and RAID5.
#include "bench_common.hpp"
#include "bench_fault_common.hpp"
#include "raid/diagnostics.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  // Five I/O servers: RAID1's 13.6 GB (2x data) is 2.7 GB/server, decisively
  // past the 2 GiB write-absorption capacity, while RAID5's 8.2 GB and
  // Hybrid's 9.3 GB still fit — the Class C regime of §6.5.
  const std::uint32_t kServers = 5;
  const std::uint32_t kProcs = 16;
  const auto profile = hw::profile_osc2003();
  report::banner("F7", "BTIO Class C: write (a) and overwrite (b) — Figure 7",
                 bench::setup_line(kServers, kProcs, "OSC-2003", kSu) +
                     ", 6802 MB total (phantom payloads)");
  report::expectations({
      "(a) RAID1 collapses: 2x data (13.6 GB) overflows the server caches",
      "(a) locking hurts RAID5 less than in Class B (§6.5)",
      "(b) RAID5 drops again on the cold-cache overwrite",
      "(b) Hybrid reaches ~230% of both RAID1 and RAID5",
  });

  const std::vector<raid::Scheme> schemes = {
      raid::Scheme::raid1, raid::Scheme::raid5, raid::Scheme::hybrid};
  TextTable t({"case", "RAID1", "RAID5", "Hybrid"});
  std::map<std::pair<raid::Scheme, bool>, double> bw;
  for (bool overwrite : {false, true}) {
    std::vector<std::string> row = {overwrite ? "overwrite" : "write"};
    for (raid::Scheme s : schemes) {
      bench::Rig rig(bench::make_rig(s, kServers, kProcs, profile));
      wl::BtioParams p;
      p.cls = wl::BtioClass::C;
      p.nprocs = kProcs;
      p.stripe_unit = kSu;
      p.overwrite = overwrite;
      const auto res = wl::run_on(rig, wl::btio(rig, p));
      raid::maybe_print_diagnostics(rig, raid::scheme_name(s));
      bw[{s, overwrite}] = res.write_bw();
      row.push_back(report::mbps(res.write_bw()));
    }
    t.add_row(std::move(row));
  }
  report::table("BTIO Class C bandwidth (MB/s), 16 procs", t);

  report::check("(a) RAID1 well below RAID5 (cache overflow)",
                bw[{raid::Scheme::raid1, false}] <
                    0.7 * bw[{raid::Scheme::raid5, false}]);
  report::check("(a) RAID1 well below Hybrid",
                bw[{raid::Scheme::raid1, false}] <
                    0.7 * bw[{raid::Scheme::hybrid, false}]);
  const double vs_r1 =
      bw[{raid::Scheme::hybrid, true}] / bw[{raid::Scheme::raid1, true}];
  const double vs_r5 =
      bw[{raid::Scheme::hybrid, true}] / bw[{raid::Scheme::raid5, true}];
  std::printf("(b) Hybrid overwrite vs RAID1: %.0f%%, vs RAID5: %.0f%% "
              "(paper: ~230%%)\n",
              vs_r1 * 100.0, vs_r5 * 100.0);
  report::check("(b) Hybrid >= 150% of RAID1 and RAID5 on overwrite",
                vs_r1 > 1.5 && vs_r5 > 1.5);

  // Faulted scenario: the 16-proc Class C write rides out a crash + blank
  // restart; the coordinator rebuilds the replacement disk online while the
  // collective writes continue (dirtied regions are re-copied, then the
  // server is admitted).
  report::banner("F7c", "BTIO-C through a crash + online wipe rebuild",
                 bench::setup_line(kServers, kProcs, "OSC-2003", kSu) +
                     ", server 3 crashes at 3 s, restarts blank at 8 s");
  raid::RigParams frp = bench::make_rig(raid::Scheme::hybrid, kServers,
                                        kProcs, profile);
  bench::arm_fault_tolerance(frp);
  fault::FaultPlan plan;
  plan.seed = 13;
  plan.crashes.push_back({sim::sec(3), 3, sim::sec(8), /*wipe=*/true});
  raid::RebuildParams rbp;
  // A blank Class C disk takes ~8.5 GB of reconstruction while 16 procs
  // keep the disks busy; the default 120 s budget is sized for the smaller
  // storm/test datasets.
  rbp.give_up = sim::sec(600);
  const auto out = bench::run_faulted(
      frp, plan, rbp,
      [&](raid::Rig& rg, raid::RebuildCoordinator& co)
          -> sim::Task<wl::WorkloadResult> {
        wl::BtioParams p;
        p.cls = wl::BtioClass::C;
        p.nprocs = kProcs;
        p.stripe_unit = kSu;
        p.tolerate_faults = true;
        p.on_create = [&co](const pvfs::OpenFile& f, std::uint64_t sz) {
          co.track(f, sz);
        };
        return wl::btio(rg, p);
      });
  std::printf("faulted: write %s, rebuild passes %llu (%llu re-copy), "
              "%llu bytes of reconstruction traffic\n",
              report::mbps(out.result.write_bw()).c_str(),
              static_cast<unsigned long long>(out.rebuild.passes),
              static_cast<unsigned long long>(out.rebuild.recopy_passes),
              static_cast<unsigned long long>(out.rebuild.bytes_rebuilt));
  report::check("faulted: zero failed ops through crash + rebuild",
                out.result.ops_failed == 0);
  report::check("faulted: full rebuild completed and server admitted",
                out.rebuild.full_rebuilds >= 1 && out.all_admitted);
  return report::exit_code();
}
