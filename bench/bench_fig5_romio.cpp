// Figure 5: ROMIO `perf` — concurrent clients each writing/reading a 4 MB
// buffer at rank*size; read and (post-flush) write bandwidth vs clients.
// A faulted scenario then reruns the workload through a mid-run server
// crash + wipe restart, with the online RebuildCoordinator reconstructing
// the disk while the clients keep writing.
#include "bench_common.hpp"
#include "bench_fault_common.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const std::uint32_t kServers = 6;
  const auto profile = hw::profile_experimental2003();
  report::banner("F5", "ROMIO perf read (a) and write (b) — Figure 5",
                 bench::setup_line(kServers, 6, "experimental-2003", kSu) +
                     ", 4 MB buffers, write bandwidth measured after flush");
  report::expectations({
      "reads: all schemes substantially similar (redundancy is never read)",
      "writes: RAID5 ~= Hybrid, both above RAID1 (large writes)",
  });

  TextTable tr({"clients", "RAID0", "RAID1", "RAID5", "Hybrid"});
  TextTable tw({"clients", "RAID0", "RAID1", "RAID5", "Hybrid"});
  std::map<std::pair<std::uint32_t, raid::Scheme>, wl::WorkloadResult> res;
  const std::vector<std::uint32_t> client_counts = {1, 2, 4, 6};
  for (std::uint32_t c : client_counts) {
    std::vector<std::string> row_r = {TextTable::num(std::uint64_t{c})};
    std::vector<std::string> row_w = {TextTable::num(std::uint64_t{c})};
    for (raid::Scheme s : bench::main_schemes()) {
      bench::Rig rig(bench::make_rig(s, kServers, c, profile));
      wl::RomioParams p;
      p.stripe_unit = kSu;
      p.nclients = c;
      p.rounds = 8;
      res[{c, s}] = wl::run_on(rig, wl::romio_perf(rig, p));
      row_r.push_back(report::mbps(res[{c, s}].read_bw()));
      row_w.push_back(report::mbps(res[{c, s}].write_bw()));
    }
    tr.add_row(std::move(row_r));
    tw.add_row(std::move(row_w));
  }
  report::table("(a) read bandwidth (MB/s)", tr);
  report::table("(b) write bandwidth after flush (MB/s)", tw);

  bool reads_similar = true;
  bool writes_ordered = true;
  for (std::uint32_t c : client_counts) {
    const double r0 = res[{c, raid::Scheme::raid0}].read_bw();
    for (raid::Scheme s : bench::main_schemes()) {
      if (std::abs(res[{c, s}].read_bw() - r0) > 0.10 * r0) {
        reads_similar = false;
      }
    }
    if (res[{c, raid::Scheme::raid5}].write_bw() <=
            res[{c, raid::Scheme::raid1}].write_bw() ||
        res[{c, raid::Scheme::hybrid}].write_bw() <=
            res[{c, raid::Scheme::raid1}].write_bw()) {
      writes_ordered = false;
    }
  }
  report::check("reads within 10% of RAID0 everywhere", reads_similar);
  report::check("RAID5 and Hybrid beat RAID1 on writes everywhere",
                writes_ordered);

  // Faulted scenario: the same 4-client workload with server 2 crashing
  // mid-write and rejoining on a blank disk. Failover masks the outage and
  // the coordinator rebuilds + admits online — no quiesce, no failed ops.
  report::banner("F5b", "ROMIO perf through a crash + online wipe rebuild",
                 bench::setup_line(kServers, 4, "experimental-2003", kSu) +
                     ", server 2 crashes at 150 ms, restarts blank at 600 ms");
  raid::RigParams frp = bench::make_rig(raid::Scheme::hybrid, kServers, 4,
                                        profile);
  bench::arm_fault_tolerance(frp);
  fault::FaultPlan plan;
  plan.seed = 99;
  plan.crashes.push_back({sim::ms(150), 2, sim::ms(600), /*wipe=*/true});
  const auto out = bench::run_faulted(
      frp, plan, raid::RebuildParams{},
      [&](raid::Rig& rg, raid::RebuildCoordinator& co)
          -> sim::Task<wl::WorkloadResult> {
        wl::RomioParams p;
        p.stripe_unit = kSu;
        p.nclients = 4;
        p.rounds = 8;
        p.tolerate_faults = true;
        p.on_create = [&co](const pvfs::OpenFile& f, std::uint64_t sz) {
          co.track(f, sz);
        };
        return wl::romio_perf(rg, p);
      });
  std::printf("faulted: write %s, read %s, detection %.0f ms, "
              "%llu dirty bytes re-copied across %llu passes\n",
              report::mbps(out.result.write_bw()).c_str(),
              report::mbps(out.result.read_bw()).c_str(),
              sim::to_seconds(out.detection) * 1e3,
              static_cast<unsigned long long>(out.rebuild.dirty_bytes),
              static_cast<unsigned long long>(out.rebuild.passes));
  report::check("faulted: zero failed ops through crash + rebuild",
                out.result.ops_failed == 0);
  report::check("faulted: crashed server rebuilt and admitted online",
                out.rebuild.rebuilds_completed >= 1 && out.all_admitted);
  return report::exit_code();
}
