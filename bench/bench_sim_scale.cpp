// Simulator-scaling macro-bench: open-loop traffic over growing deployments.
//
// This is the one bench that measures the *simulator*, not the simulated
// system: events/sec through the DES core, wall-clock per simulated second
// and peak RSS while sweeping {servers} x {tenants}. Simulated results
// (event counts, fingerprints) are deterministic and printed so a
// run-twice diff catches nondeterminism; wall-clock numbers go to the
// perf-trajectory JSON (BENCH_sim_throughput.json).
//
// Usage:
//   bench_sim_scale [--quick] [--out=FILE.json]
// --quick runs the single pinned small config the CI perf-smoke job uses.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "workloads/open_loop.hpp"

namespace {

struct Config {
  std::uint32_t nservers;
  std::uint32_t ntenants;
  double sim_seconds;  ///< arrival-window length
};

long peak_rss_kib() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

struct Row {
  Config cfg;
  std::uint64_t events = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t fingerprint = 0;
  double sim_elapsed_s = 0;
  double wall_s = 0;
  long rss_kib = 0;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
  double wall_per_sim_sec() const {
    return sim_elapsed_s > 0 ? wall_s / sim_elapsed_s : 0;
  }
};

Row run_config(const Config& cfg) {
  using csar::raid::Scheme;
  Row row{cfg};

  csar::raid::RigParams rp;
  rp.scheme = Scheme::hybrid;
  rp.nservers = cfg.nservers;
  // Tenants share client endpoints round-robin; client nodes are the
  // expensive part of the rig, tenants are cheap coroutines.
  rp.nclients = std::min<std::uint32_t>(cfg.ntenants, 16);

  csar::wl::OpenLoopParams olp;
  olp.ntenants = cfg.ntenants;
  olp.total_rate = 100.0 * cfg.ntenants;  // fixed per-tenant offered load
  olp.duration = static_cast<csar::sim::Duration>(cfg.sim_seconds * 1e9);
  olp.max_outstanding = 4;
  olp.request_bytes = 16 * 1024;
  olp.file_extent = 1ull << 20;
  olp.seed = 0xC5A20123ULL + cfg.nservers;

  const auto w0 = std::chrono::steady_clock::now();
  {
    csar::bench::Rig rig(rp);
    const auto stats = csar::wl::run_on(rig, run_open_loop(rig, olp));
    row.events = rig.sim.events_executed();
    row.arrivals = stats.arrivals;
    row.completed = stats.completed;
    row.shed = stats.shed;
    row.fingerprint = stats.fingerprint;
    row.sim_elapsed_s = csar::sim::to_seconds(stats.elapsed);
  }
  const auto w1 = std::chrono::steady_clock::now();
  row.wall_s = std::chrono::duration<double>(w1 - w0).count();
  row.rss_kib = peak_rss_kib();
  return row;
}

void print_row(const Row& r) {
  // Deterministic line first (run-twice diffs key on "SIM " lines only:
  // nothing wall-clock-dependent may appear on them).
  std::printf("SIM  servers=%3u tenants=%4u events=%llu arrivals=%llu "
              "completed=%llu shed=%llu fingerprint=0x%016llx\n",
              r.cfg.nservers, r.cfg.ntenants,
              static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.arrivals),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.fingerprint));
  std::printf("PERF servers=%3u tenants=%4u events/sec=%.3e "
              "wall_per_sim_sec=%.3f peak_rss_mib=%.1f\n",
              r.cfg.nservers, r.cfg.ntenants, r.events_per_sec(),
              r.wall_per_sim_sec(), r.rss_kib / 1024.0);
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool quick) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror("bench_sim_scale: fopen");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"servers\": %u, \"tenants\": %u, \"events_executed\": %llu, "
        "\"events_per_sec\": %.1f, \"wall_seconds\": %.4f, "
        "\"sim_seconds\": %.4f, \"wall_per_sim_sec\": %.4f, "
        "\"peak_rss_kib\": %ld, \"fingerprint\": \"0x%016llx\"}%s\n",
        r.cfg.nservers, r.cfg.ntenants,
        static_cast<unsigned long long>(r.events), r.events_per_sec(),
        r.wall_s, r.sim_elapsed_s, r.wall_per_sim_sec(), r.rss_kib,
        static_cast<unsigned long long>(r.fingerprint),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Config> configs;
  if (quick) {
    // Pinned perf-smoke config: small enough for a debug/CI runner but
    // large enough that the event queue sees all three wheel levels.
    configs.push_back({8, 64, 4.0});
  } else {
    configs = {
        {8, 16, 2.0},    {16, 64, 2.0},    {32, 256, 1.0},
        {64, 1024, 0.5}, {128, 2048, 0.5},
    };
  }

  std::printf("bench_sim_scale: open-loop DES throughput sweep (%s)\n",
              quick ? "quick" : "full");
  std::vector<Row> rows;
  for (const Config& cfg : configs) {
    rows.push_back(run_config(cfg));
    print_row(rows.back());
  }
  write_json(out, rows, quick);
  return 0;
}
