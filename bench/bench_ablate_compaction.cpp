// Ablation A4 (§6.7): the paper's proposed background cleaner. "The storage
// used for overflow regions could be recovered by implementing a simple
// process that reads files in their entirety and writes them in a large
// chunk... the long-term storage of the Hybrid scheme would be the same as
// the RAID5 scheme."
#include "bench_common.hpp"

using namespace csar;

int main() {
  const std::uint32_t kSu = 64 * KiB;
  const auto profile = hw::profile_experimental2003();
  report::banner("A4", "Overflow compaction (background cleaner) — §6.7",
                 bench::setup_line(6, 4, "experimental-2003", kSu) +
                     ", FLASH-like small-write workload then one cleaner "
                     "pass");
  report::expectations({
      "before: Hybrid storage can exceed RAID1's 2x (fragmented overflow)",
      "after one cleaner pass: storage equals the RAID5 footprint",
      "the cleaner consumes bounded time (one sequential read+write pass)",
  });

  bench::Rig rig(bench::make_rig(raid::Scheme::hybrid, 6, 4, profile));
  wl::FlashParams p;
  p.nprocs = 4;
  p.stripe_unit = kSu;
  (void)wl::run_on(rig, wl::flash_io(rig, p));

  auto storage = [&]() {
    pvfs::StorageInfo sum;
    for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
      const auto info = rig.server(s).total_storage();
      sum.data_bytes += info.data_bytes;
      sum.red_bytes += info.red_bytes;
      sum.overflow_bytes += info.overflow_bytes;
    }
    return sum;
  };

  const auto before = storage();
  const std::uint64_t logical = 45 * MB;

  const double cleaner_secs = wl::run_on(
      rig, [](raid::Rig& r, std::uint64_t size) -> sim::Task<double> {
        auto f = co_await r.client_fs(0).open("flash-0");
        assert(f.ok());
        const sim::Time t0 = r.sim.now();
        auto rc = co_await r.client_fs(0).compact(*f, size);
        assert(rc.ok());
        (void)rc;
        co_return sim::to_seconds(r.sim.now() - t0);
      }(rig, logical));
  const auto after = storage();

  TextTable t({"", "data", "parity", "overflow", "total", "vs logical"});
  auto add = [&](const char* name, const pvfs::StorageInfo& s) {
    const std::uint64_t total =
        s.data_bytes + s.red_bytes + s.overflow_bytes;
    t.add_row({name, TextTable::num(s.data_bytes / 1000000),
               TextTable::num(s.red_bytes / 1000000),
               TextTable::num(s.overflow_bytes / 1000000),
               TextTable::num(total / 1000000),
               TextTable::num(static_cast<double>(total) /
                                  static_cast<double>(logical),
                              2) +
                   "x"});
  };
  add("before cleaner", before);
  add("after cleaner", after);
  report::table("Hybrid storage in MB (logical file: 45 MB)", t);
  std::printf("cleaner pass took %.2f simulated seconds\n", cleaner_secs);

  report::check("cleaner removed all overflow", after.overflow_bytes == 0);
  const double after_ratio =
      static_cast<double>(after.data_bytes + after.red_bytes) /
      static_cast<double>(logical);
  report::check("post-cleaner footprint ~ RAID5's 1.2x (within 5%)",
                after_ratio > 1.15 && after_ratio < 1.27);
  report::check("storage strictly reduced",
                after.data_bytes + after.red_bytes + after.overflow_bytes <
                    before.data_bytes + before.red_bytes +
                        before.overflow_bytes);
  return report::exit_code();
}
