# One binary per reproduced table/figure plus ablations; all run standalone
# and print paper-style rows with EXPECT/CHECK lines.
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench contains only the bench binaries and
# `for b in build/bench/*; do $b; done` runs clean.
function(csar_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE csar_workloads csar_mpiio csar_report)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/src)
endfunction()

csar_add_bench(bench_fig1_disk_trend)
csar_add_bench(bench_fig3_locking)
csar_add_bench(bench_fig4_fullstripe)
csar_add_bench(bench_fig4_smallwrite)
csar_add_bench(bench_fig5_romio)
target_link_libraries(bench_fig5_romio PRIVATE csar_fault)
csar_add_bench(bench_fig6_btio_classb)
target_link_libraries(bench_fig6_btio_classb PRIVATE csar_fault)
csar_add_bench(bench_fig7_btio_classc)
target_link_libraries(bench_fig7_btio_classc PRIVATE csar_fault)
csar_add_bench(bench_fig8_apps)
csar_add_bench(bench_table2_storage)
csar_add_bench(bench_sec52_write_buffering)
csar_add_bench(bench_ablate_stripe_unit)
csar_add_bench(bench_ablate_lock_scaling)
csar_add_bench(bench_ablate_compaction)

csar_add_bench(bench_ablate_fault_storm)
target_link_libraries(bench_ablate_fault_storm PRIVATE csar_fault)

csar_add_bench(bench_ablate_adaptive)
target_link_libraries(bench_ablate_adaptive PRIVATE csar_fault)

add_executable(bench_ablate_parity_kernel ${CMAKE_SOURCE_DIR}/bench/bench_ablate_parity_kernel.cpp)
set_target_properties(bench_ablate_parity_kernel PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
target_link_libraries(bench_ablate_parity_kernel PRIVATE csar_common benchmark::benchmark)
target_include_directories(bench_ablate_parity_kernel PRIVATE ${CMAKE_SOURCE_DIR}/src)
csar_add_bench(bench_ablate_rpc_batching)
csar_add_bench(bench_ablate_raid4)
csar_add_bench(bench_ablate_collective)
csar_add_bench(bench_ablate_rebuild)
csar_add_bench(bench_ablate_erasure)
csar_add_bench(bench_ablate_mirror_reads)
csar_add_bench(bench_ablate_obs_overhead)
csar_add_bench(bench_ablate_manager_journal)
csar_add_bench(bench_sim_scale)

csar_add_bench(bench_ablate_fleet)
target_link_libraries(bench_ablate_fleet PRIVATE csar_fleet)
